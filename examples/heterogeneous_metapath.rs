//! Heterogeneous networks: metapath2vec over a synthetic academic graph
//! (authors, papers, venues) — the AMiner-style workload of the paper.
//!
//! Run with:
//! ```text
//! cargo run --release -p uninet-core --example heterogeneous_metapath
//! ```

use uninet_core::{Engine, ModelSpec, UniNetError};
use uninet_graph::{GraphBuilder, NodeId};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds a synthetic academic network:
/// * authors (type 0) write papers (type 1),
/// * papers are published at venues (type 2),
/// * authors cluster into research areas, each area favouring one venue.
fn academic_graph(
    num_areas: usize,
    authors_per_area: usize,
    papers_per_author: usize,
) -> (uninet_graph::Graph, Vec<usize>) {
    let mut rng = SmallRng::seed_from_u64(99);
    let mut b = GraphBuilder::new();
    let num_authors = num_areas * authors_per_area;
    let num_papers = num_authors * papers_per_author;
    let num_venues = num_areas;

    let author_id = |a: usize| a as NodeId;
    let paper_id = |p: usize| (num_authors + p) as NodeId;
    let venue_id = |v: usize| (num_authors + num_papers + v) as NodeId;

    let mut node_types = vec![0u16; num_authors];
    node_types.extend(std::iter::repeat_n(1u16, num_papers));
    node_types.extend(std::iter::repeat_n(2u16, num_venues));

    let mut author_area = vec![0usize; num_authors];
    let mut paper_count = 0usize;
    for area in 0..num_areas {
        for i in 0..authors_per_area {
            let author = area * authors_per_area + i;
            author_area[author] = area;
            for _ in 0..papers_per_author {
                let paper = paper_count;
                paper_count += 1;
                b.add_edge(author_id(author), paper_id(paper), 1.0);
                // Occasional cross-area co-author.
                if rng.gen_bool(0.3) {
                    let coauthor = rng.gen_range(0..num_authors);
                    b.add_edge(author_id(coauthor), paper_id(paper), 1.0);
                }
                // Publish at the area's venue (90%) or a random one (10%).
                let venue = if rng.gen_bool(0.9) {
                    area
                } else {
                    rng.gen_range(0..num_venues)
                };
                b.add_edge(paper_id(paper), venue_id(venue), 1.0);
            }
        }
    }
    b.set_node_types(node_types);
    (b.symmetric(true).dedup(true).build(), author_area)
}

fn main() -> Result<(), UniNetError> {
    let (graph, author_area) = academic_graph(4, 150, 3);
    println!(
        "academic graph: {} nodes, {} edges, {} node types",
        graph.num_nodes(),
        graph.num_edges(),
        graph.num_node_types()
    );

    // Author–Paper–Venue–Paper–Author metapath. A metapath with fewer than
    // two node types is rejected by the builder with
    // `UniNetError::InvalidConfig` instead of being silently replaced.
    let engine = Engine::builder()
        .graph(graph)
        .model(ModelSpec::MetaPath2Vec {
            metapath: vec![0, 1, 2, 1, 0],
        })
        .num_walks(8)
        .walk_length(40)
        .threads(8)
        .dim(64)
        .window(5)
        .epochs(2)
        .build()?;

    let report = engine.train()?;
    println!(
        "generated {} metapath-guided walks in {:?} (init {:?})",
        report.corpus.num_walks(),
        report.timing.walk,
        report.timing.init
    );

    // Do embeddings of authors in the same research area end up closer
    // together than authors of different areas? Query the engine's snapshot.
    let num_authors = author_area.len();
    let snapshot = engine.snapshot();
    let mut rng = SmallRng::seed_from_u64(7);
    let (mut intra, mut inter, mut intra_n, mut inter_n) = (0.0f64, 0.0f64, 0u32, 0u32);
    for _ in 0..20_000 {
        let a = rng.gen_range(0..num_authors);
        let b = rng.gen_range(0..num_authors);
        if a == b {
            continue;
        }
        let s = snapshot.cosine(a as u32, b as u32).unwrap_or(0.0) as f64;
        if author_area[a] == author_area[b] {
            intra += s;
            intra_n += 1;
        } else {
            inter += s;
            inter_n += 1;
        }
    }
    println!(
        "mean cosine similarity: same research area {:.3}, different areas {:.3}",
        intra / intra_n as f64,
        inter / inter_n as f64
    );
    println!("(a larger same-area similarity means the metapath walks captured the semantics)");
    Ok(())
}
