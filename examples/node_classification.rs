//! Node classification: the workload behind Figure 5 of the paper.
//!
//! Generates a labeled planted-partition graph (a stand-in for BlogCatalog),
//! learns node2vec embeddings with UniNet's M-H sampler under all three
//! initialization strategies, and reports micro/macro F1 of one-vs-rest
//! logistic regression at several train fractions.
//!
//! Run with:
//! ```text
//! cargo run --release -p uninet-core --example node_classification
//! ```

use uninet_core::{EdgeSamplerKind, Engine, InitStrategy, ModelSpec, Table, UniNetError};
use uninet_eval::multilabel::classify_with_fraction;
use uninet_graph::generators::{planted_partition, PlantedPartitionConfig};

fn main() -> Result<(), UniNetError> {
    // A BlogCatalog-like labeled graph (scaled down).
    let lg = planted_partition(&PlantedPartitionConfig {
        num_nodes: 2_000,
        num_communities: 8,
        intra_degree: 16.0,
        inter_degree: 4.0,
        multi_label_prob: 0.2,
        seed: 21,
    });
    println!(
        "labeled graph: {} nodes, {} edges, {} labels",
        lg.graph.num_nodes(),
        lg.graph.num_edges(),
        lg.num_labels
    );

    let strategies = [
        ("UniNet(Weight)", InitStrategy::high_weight_exact()),
        ("UniNet(Rand)", InitStrategy::Random),
        ("UniNet(BurnIn)", InitStrategy::BurnIn { iterations: 100 }),
    ];
    let fractions = [0.1, 0.3, 0.5, 0.7, 0.9];

    let mut table = Table::new(
        "node2vec accuracy on a BlogCatalog-like graph",
        &["init", "train fraction", "micro-F1", "macro-F1"],
    );

    for (label, init) in strategies {
        let engine = Engine::builder()
            .graph(lg.graph.clone())
            .model(ModelSpec::Node2Vec { p: 0.25, q: 4.0 })
            .num_walks(6)
            .walk_length(40)
            .threads(8)
            .sampler(EdgeSamplerKind::MetropolisHastings(init))
            .dim(64)
            .epochs(2)
            .window(5)
            .build()?;
        engine.train()?;
        let snapshot = engine.snapshot();
        let features: Vec<Vec<f32>> = (0..lg.graph.num_nodes() as u32)
            .map(|v| snapshot.embeddings().vector(v).to_vec())
            .collect();

        for &fraction in &fractions {
            let report = classify_with_fraction(&features, &lg.labels, lg.num_labels, fraction, 33);
            table.add_row(&[
                label.to_string(),
                format!("{fraction:.1}"),
                format!("{:.4}", report.f1.micro),
                format!("{:.4}", report.f1.macro_),
            ]);
        }
    }

    println!("\n{}", table.render_markdown());
    Ok(())
}
