//! Quickstart: learn DeepWalk embeddings of a small synthetic social network
//! with UniNet's Metropolis-Hastings edge sampler and inspect the result.
//!
//! Run with:
//! ```text
//! cargo run --release -p uninet-core --example quickstart
//! ```

use uninet_core::{format_duration, ModelSpec, UniNet, UniNetConfig};
use uninet_graph::generators::barabasi_albert;
use uninet_graph::GraphStats;

fn main() {
    // 1. Build (or load) a graph. Here: a 2 000-node scale-free network.
    let graph = barabasi_albert(2_000, 5, true, 7);
    let stats = GraphStats::compute(&graph);
    println!(
        "graph: {} nodes, {} edges, mean degree {:.1}, max degree {}",
        stats.num_nodes, stats.num_edges, stats.mean_degree, stats.max_degree
    );

    // 2. Configure the pipeline: 10 walks of length 80 per node (the paper's
    //    defaults), 64-dimensional skip-gram embeddings.
    let mut config = UniNetConfig::default();
    config.walk.num_walks = 10;
    config.walk.walk_length = 80;
    config.walk.num_threads = 8;
    config.embedding.dim = 64;
    config.embedding.num_threads = 8;
    config.embedding.epochs = 1;

    // 3. Run DeepWalk end-to-end.
    let result = UniNet::new(config).run(&graph, &ModelSpec::DeepWalk);
    println!(
        "walks: {} sequences, {} tokens (mean length {:.1})",
        result.corpus.num_walks(),
        result.corpus.total_tokens(),
        result.corpus.mean_length()
    );
    println!(
        "timing: Ti={} Tw={} Tl={} (total {})",
        format_duration(result.timing.init),
        format_duration(result.timing.walk),
        format_duration(result.timing.learn),
        format_duration(result.timing.total())
    );

    // 4. Inspect the embeddings: nearest neighbours of the highest-degree hub.
    let hub = (0..graph.num_nodes() as u32)
        .max_by_key(|&v| graph.degree(v))
        .expect("non-empty graph");
    println!(
        "most similar nodes to hub {hub} (degree {}):",
        graph.degree(hub)
    );
    for (node, sim) in result.embeddings.most_similar(hub, 5) {
        println!(
            "  node {node:5}  cosine {sim:.3}  degree {}",
            graph.degree(node)
        );
    }
}
