//! Quickstart: learn DeepWalk embeddings of a small synthetic social network
//! with UniNet's Metropolis-Hastings edge sampler and query the result
//! through the engine's embedding store.
//!
//! Run with:
//! ```text
//! cargo run --release -p uninet-core --example quickstart
//! ```

use uninet_core::{format_duration, Engine, ModelSpec, UniNetError};
use uninet_graph::generators::barabasi_albert;
use uninet_graph::GraphStats;

fn main() -> Result<(), UniNetError> {
    // 1. Build (or load) a graph. Here: a 2 000-node scale-free network.
    let graph = barabasi_albert(2_000, 5, true, 7);
    let stats = GraphStats::compute(&graph);
    println!(
        "graph: {} nodes, {} edges, mean degree {:.1}, max degree {}",
        stats.num_nodes, stats.num_edges, stats.mean_degree, stats.max_degree
    );
    let hub = (0..graph.num_nodes() as u32)
        .max_by_key(|&v| graph.degree(v))
        .expect("non-empty graph");
    let hub_degree = graph.degree(hub);
    let degree_of = {
        let degrees: Vec<usize> = (0..graph.num_nodes() as u32)
            .map(|v| graph.degree(v))
            .collect();
        move |v: u32| degrees[v as usize]
    };

    // 2. Configure the engine: 10 walks of length 80 per node (the paper's
    //    defaults), 64-dimensional skip-gram embeddings. The builder
    //    validates everything up front.
    let engine = Engine::builder()
        .graph(graph)
        .model(ModelSpec::DeepWalk)
        .num_walks(10)
        .walk_length(80)
        .threads(8)
        .dim(64)
        .epochs(1)
        .build()?;

    // 3. Run DeepWalk end-to-end; the learned embeddings are published to the
    //    engine's store.
    let report = engine.train()?;
    println!(
        "walks: {} sequences, {} tokens (mean length {:.1})",
        report.corpus.num_walks(),
        report.corpus.total_tokens(),
        report.corpus.mean_length()
    );
    println!(
        "timing: Ti={} Tw={} Tl={} (total {})",
        format_duration(report.timing.init),
        format_duration(report.timing.walk),
        format_duration(report.timing.learn),
        format_duration(report.timing.total())
    );

    // 4. Query the embeddings: nearest neighbours of the highest-degree hub,
    //    served from the store's epoch-versioned snapshot.
    println!(
        "most similar nodes to hub {hub} (degree {hub_degree}), epoch {}:",
        report.epoch
    );
    for (node, sim) in engine.top_k(hub, 5) {
        println!(
            "  node {node:5}  cosine {sim:.3}  degree {}",
            degree_of(node)
        );
    }
    Ok(())
}
