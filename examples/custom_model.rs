//! Defining a *new* random-walk model with UniNet's unified abstraction —
//! the extensibility story of Section IV-B (Figure 3) of the paper.
//!
//! The custom model below is a "degree-penalized walk": the transition weight
//! of an edge is its static weight divided by the destination's degree raised
//! to a configurable exponent, discouraging the walker from constantly passing
//! through hubs. Only `calculate_weight` / `update_state` need to be written;
//! sampling, state management and parallelism come from the framework.
//!
//! This example deliberately drives the low-level `WalkEngine` layer: the
//! high-level `uninet_core::Engine` facade covers the five built-in
//! `ModelSpec`s, while user-defined `RandomWalkModel`s plug in one layer
//! below, against the same sampler and trainer machinery (see `quickstart.rs`
//! for the builder-based facade).
//!
//! Run with:
//! ```text
//! cargo run --release -p uninet-core --example custom_model
//! ```

use uninet_embedding::{Word2VecConfig, Word2VecTrainer};
use uninet_graph::generators::barabasi_albert;
use uninet_graph::{EdgeRef, Graph, NodeId};
use uninet_walker::{
    EdgeSamplerKind, InitStrategy, RandomWalkModel, WalkEngine, WalkEngineConfig, WalkerState,
};

/// A first-order walk that down-weights high-degree destinations.
struct DegreePenalizedWalk {
    /// Exponent on the destination degree (0 = plain DeepWalk).
    gamma: f32,
}

impl RandomWalkModel for DegreePenalizedWalk {
    fn name(&self) -> &'static str {
        "degree-penalized-walk"
    }

    fn calculate_weight(&self, graph: &Graph, _state: WalkerState, next: EdgeRef) -> f32 {
        next.weight / (graph.degree(next.dst).max(1) as f32).powf(self.gamma)
    }

    fn update_state(&self, _graph: &Graph, _state: WalkerState, next: EdgeRef) -> WalkerState {
        WalkerState::at(next.dst)
    }

    fn bucket_size(&self, _graph: &Graph, _v: NodeId) -> usize {
        1
    }

    fn is_second_order(&self) -> bool {
        false
    }
}

fn hub_visit_fraction(graph: &Graph, corpus: &uninet_walker::WalkCorpus, top_k: usize) -> f64 {
    let mut hubs: Vec<u32> = (0..graph.num_nodes() as u32).collect();
    hubs.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
    hubs.truncate(top_k);
    let hub_set: std::collections::HashSet<u32> = hubs.into_iter().collect();
    let counts = corpus.visit_counts(graph.num_nodes());
    let hub_visits: u64 = hub_set.iter().map(|&v| counts[v as usize]).sum();
    let total: u64 = counts.iter().sum();
    hub_visits as f64 / total.max(1) as f64
}

fn main() {
    let graph = barabasi_albert(3_000, 4, false, 13);
    println!(
        "scale-free graph: {} nodes, {} edges, max degree {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_degree()
    );

    let engine = WalkEngine::new(
        WalkEngineConfig::default()
            .with_num_walks(5)
            .with_walk_length(40)
            .with_threads(8)
            .with_sampler(EdgeSamplerKind::MetropolisHastings(
                InitStrategy::high_weight_exact(),
            )),
    );

    // Plain walk vs degree-penalized walk: how much time is spent in the hubs?
    for gamma in [0.0f32, 0.5, 1.0] {
        let model = DegreePenalizedWalk { gamma };
        let (corpus, timing) = engine.generate(&graph, &model);
        let hub_frac = hub_visit_fraction(&graph, &corpus, 30);
        println!(
            "gamma = {gamma:3.1}: top-30 hubs receive {:5.1}% of all visits  (walk time {:?})",
            100.0 * hub_frac,
            timing.walk
        );

        // The corpus plugs straight into the word2vec trainer, like any
        // built-in model.
        if gamma == 1.0 {
            let trainer = Word2VecTrainer::new(Word2VecConfig {
                dim: 32,
                window: 5,
                epochs: 1,
                num_threads: 8,
                ..Default::default()
            });
            let (embeddings, stats) = trainer.train(corpus.walks(), graph.num_nodes());
            println!(
                "trained {}-dim embeddings from the custom model ({} pairs, final loss {:.3})",
                embeddings.dim(),
                stats.pairs_processed,
                stats.final_loss
            );
        }
    }
}
