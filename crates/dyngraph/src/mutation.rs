//! Mutation events: the unit of change flowing through the streaming pipeline.

use uninet_graph::NodeId;

/// One mutation of the graph's edge set.
///
/// Node ids must lie inside the graph's fixed node universe; the dynamic
/// graph rejects (and counts) mutations referencing unknown nodes rather than
/// growing the universe mid-stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphMutation {
    /// Insert edge `src -> dst` (upserts the weight when the edge exists).
    AddEdge {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Edge weight.
        weight: f32,
    },
    /// Remove edge `src -> dst`.
    RemoveEdge {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// Change the weight of the existing edge `src -> dst`.
    UpdateWeight {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// New edge weight.
        weight: f32,
    },
}

impl GraphMutation {
    /// The edge endpoints referenced by this mutation.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        match *self {
            GraphMutation::AddEdge { src, dst, .. }
            | GraphMutation::RemoveEdge { src, dst }
            | GraphMutation::UpdateWeight { src, dst, .. } => (src, dst),
        }
    }

    /// True when the mutation can never change the topology (neighbor sets /
    /// degrees), only edge weights.
    pub fn is_weight_only(&self) -> bool {
        matches!(self, GraphMutation::UpdateWeight { .. })
    }
}

/// An ordered batch of mutations applied as one maintenance unit.
///
/// Batching amortizes sampler maintenance: all mutations are applied to the
/// overlay first, then each affected node's sampler state is repaired once.
#[derive(Debug, Clone, Default)]
pub struct UpdateBatch {
    mutations: Vec<GraphMutation>,
}

impl UpdateBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a batch from pre-collected mutations.
    pub fn from_mutations(mutations: Vec<GraphMutation>) -> Self {
        UpdateBatch { mutations }
    }

    /// Appends one mutation.
    pub fn push(&mut self, m: GraphMutation) -> &mut Self {
        self.mutations.push(m);
        self
    }

    /// Builder-style edge insert.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: f32) -> &mut Self {
        self.push(GraphMutation::AddEdge { src, dst, weight })
    }

    /// Builder-style edge removal.
    pub fn remove_edge(&mut self, src: NodeId, dst: NodeId) -> &mut Self {
        self.push(GraphMutation::RemoveEdge { src, dst })
    }

    /// Builder-style reweight.
    pub fn update_weight(&mut self, src: NodeId, dst: NodeId, weight: f32) -> &mut Self {
        self.push(GraphMutation::UpdateWeight { src, dst, weight })
    }

    /// The mutations in application order.
    pub fn mutations(&self) -> &[GraphMutation] {
        &self.mutations
    }

    /// Number of mutations.
    pub fn len(&self) -> usize {
        self.mutations.len()
    }

    /// True when the batch holds no mutations.
    pub fn is_empty(&self) -> bool {
        self.mutations.is_empty()
    }

    /// True when every mutation is weight-only (the cheap maintenance path).
    pub fn is_weight_only(&self) -> bool {
        self.mutations.iter().all(GraphMutation::is_weight_only)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_in_order() {
        let mut b = UpdateBatch::new();
        b.add_edge(0, 1, 2.0)
            .update_weight(1, 2, 0.5)
            .remove_edge(2, 0);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(
            b.mutations()[0],
            GraphMutation::AddEdge {
                src: 0,
                dst: 1,
                weight: 2.0
            }
        );
        assert_eq!(
            b.mutations()[2],
            GraphMutation::RemoveEdge { src: 2, dst: 0 }
        );
    }

    #[test]
    fn weight_only_classification() {
        let mut b = UpdateBatch::new();
        b.update_weight(0, 1, 1.5).update_weight(1, 0, 2.5);
        assert!(b.is_weight_only());
        b.add_edge(2, 3, 1.0);
        assert!(!b.is_weight_only());
    }

    #[test]
    fn endpoints_cover_all_variants() {
        assert_eq!(
            GraphMutation::AddEdge {
                src: 1,
                dst: 2,
                weight: 1.0
            }
            .endpoints(),
            (1, 2)
        );
        assert_eq!(
            GraphMutation::RemoveEdge { src: 3, dst: 4 }.endpoints(),
            (3, 4)
        );
        assert_eq!(
            GraphMutation::UpdateWeight {
                src: 5,
                dst: 6,
                weight: 2.0
            }
            .endpoints(),
            (5, 6)
        );
        assert!(GraphMutation::UpdateWeight {
            src: 0,
            dst: 0,
            weight: 0.0
        }
        .is_weight_only());
        assert!(!GraphMutation::RemoveEdge { src: 0, dst: 0 }.is_weight_only());
    }
}
