//! Mutation events: the unit of change flowing through the streaming pipeline.

use uninet_graph::NodeId;

/// One mutation of the graph's node or edge set.
///
/// Edge ops must reference **live** nodes; the dynamic graph rejects (and
/// counts) mutations naming unknown or retired endpoints. [`GraphMutation::AddNode`]
/// is the only op that grows the universe: it declares id `node` live,
/// extending the id space when `node` lies past the current capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphMutation {
    /// Insert edge `src -> dst` (upserts the weight when the edge exists).
    AddEdge {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Edge weight.
        weight: f32,
    },
    /// Remove edge `src -> dst`.
    RemoveEdge {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// Change the weight of the existing edge `src -> dst`.
    UpdateWeight {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// New edge weight.
        weight: f32,
    },
    /// Declare node `node` live, growing the id space when needed.
    /// Rejected when the id is already live; re-adding a retired id is a
    /// legal *rejoin* (the node comes back with an empty adjacency).
    AddNode {
        /// The arriving node's id (also its CSR row, forever).
        node: NodeId,
    },
    /// Retire node `node`: drop all incident edges and mark the id dead.
    /// Rejected when the id is not currently live.
    RemoveNode {
        /// The departing node's id.
        node: NodeId,
    },
}

impl GraphMutation {
    /// The node ids referenced by this mutation. Node ops reference a single
    /// id, returned in both slots.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        match *self {
            GraphMutation::AddEdge { src, dst, .. }
            | GraphMutation::RemoveEdge { src, dst }
            | GraphMutation::UpdateWeight { src, dst, .. } => (src, dst),
            GraphMutation::AddNode { node } | GraphMutation::RemoveNode { node } => (node, node),
        }
    }

    /// True when the mutation can never change the topology (neighbor sets /
    /// degrees), only edge weights.
    pub fn is_weight_only(&self) -> bool {
        matches!(self, GraphMutation::UpdateWeight { .. })
    }

    /// True for node-universe mutations (arrival / retirement).
    pub fn is_node_op(&self) -> bool {
        matches!(
            self,
            GraphMutation::AddNode { .. } | GraphMutation::RemoveNode { .. }
        )
    }
}

/// An ordered batch of mutations applied as one maintenance unit.
///
/// Batching amortizes sampler maintenance: all mutations are applied to the
/// overlay first, then each affected node's sampler state is repaired once.
#[derive(Debug, Clone, Default)]
pub struct UpdateBatch {
    mutations: Vec<GraphMutation>,
}

impl UpdateBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a batch from pre-collected mutations.
    pub fn from_mutations(mutations: Vec<GraphMutation>) -> Self {
        UpdateBatch { mutations }
    }

    /// Appends one mutation.
    pub fn push(&mut self, m: GraphMutation) -> &mut Self {
        self.mutations.push(m);
        self
    }

    /// Builder-style edge insert.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: f32) -> &mut Self {
        self.push(GraphMutation::AddEdge { src, dst, weight })
    }

    /// Builder-style edge removal.
    pub fn remove_edge(&mut self, src: NodeId, dst: NodeId) -> &mut Self {
        self.push(GraphMutation::RemoveEdge { src, dst })
    }

    /// Builder-style reweight.
    pub fn update_weight(&mut self, src: NodeId, dst: NodeId, weight: f32) -> &mut Self {
        self.push(GraphMutation::UpdateWeight { src, dst, weight })
    }

    /// Builder-style node arrival.
    pub fn add_node(&mut self, node: NodeId) -> &mut Self {
        self.push(GraphMutation::AddNode { node })
    }

    /// Builder-style node retirement.
    pub fn remove_node(&mut self, node: NodeId) -> &mut Self {
        self.push(GraphMutation::RemoveNode { node })
    }

    /// The mutations in application order.
    pub fn mutations(&self) -> &[GraphMutation] {
        &self.mutations
    }

    /// Number of mutations.
    pub fn len(&self) -> usize {
        self.mutations.len()
    }

    /// True when the batch holds no mutations.
    pub fn is_empty(&self) -> bool {
        self.mutations.is_empty()
    }

    /// True when every mutation is weight-only (the cheap maintenance path).
    pub fn is_weight_only(&self) -> bool {
        self.mutations.iter().all(GraphMutation::is_weight_only)
    }

    /// True when the batch contains any node arrival/retirement (those
    /// batches take the serial application path and force compaction).
    pub fn has_node_ops(&self) -> bool {
        self.mutations.iter().any(GraphMutation::is_node_op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_in_order() {
        let mut b = UpdateBatch::new();
        b.add_edge(0, 1, 2.0)
            .update_weight(1, 2, 0.5)
            .remove_edge(2, 0);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(
            b.mutations()[0],
            GraphMutation::AddEdge {
                src: 0,
                dst: 1,
                weight: 2.0
            }
        );
        assert_eq!(
            b.mutations()[2],
            GraphMutation::RemoveEdge { src: 2, dst: 0 }
        );
    }

    #[test]
    fn weight_only_classification() {
        let mut b = UpdateBatch::new();
        b.update_weight(0, 1, 1.5).update_weight(1, 0, 2.5);
        assert!(b.is_weight_only());
        b.add_edge(2, 3, 1.0);
        assert!(!b.is_weight_only());
    }

    #[test]
    fn endpoints_cover_all_variants() {
        assert_eq!(
            GraphMutation::AddEdge {
                src: 1,
                dst: 2,
                weight: 1.0
            }
            .endpoints(),
            (1, 2)
        );
        assert_eq!(
            GraphMutation::RemoveEdge { src: 3, dst: 4 }.endpoints(),
            (3, 4)
        );
        assert_eq!(
            GraphMutation::UpdateWeight {
                src: 5,
                dst: 6,
                weight: 2.0
            }
            .endpoints(),
            (5, 6)
        );
        assert!(GraphMutation::UpdateWeight {
            src: 0,
            dst: 0,
            weight: 0.0
        }
        .is_weight_only());
        assert!(!GraphMutation::RemoveEdge { src: 0, dst: 0 }.is_weight_only());
    }

    #[test]
    fn node_ops_classify_and_report_endpoints() {
        let add = GraphMutation::AddNode { node: 7 };
        let del = GraphMutation::RemoveNode { node: 9 };
        assert!(add.is_node_op() && del.is_node_op());
        assert!(!add.is_weight_only() && !del.is_weight_only());
        assert_eq!(add.endpoints(), (7, 7));
        assert_eq!(del.endpoints(), (9, 9));
        assert!(!GraphMutation::AddEdge {
            src: 0,
            dst: 1,
            weight: 1.0
        }
        .is_node_op());

        let mut b = UpdateBatch::new();
        b.add_edge(0, 1, 1.0);
        assert!(!b.has_node_ops());
        b.add_node(5).remove_node(2);
        assert!(b.has_node_ops());
        assert_eq!(b.mutations()[1], GraphMutation::AddNode { node: 5 });
        assert_eq!(b.mutations()[2], GraphMutation::RemoveNode { node: 2 });
    }
}
