//! [`DynamicGraph`]: an immutable CSR base plus a per-vertex delta-adjacency
//! overlay, with periodic compaction back into CSR form.
//!
//! Design:
//!
//! * **Weight updates are O(1) and immediate.** Reweighting never moves CSR
//!   entries, so the new weight is written straight into the base arrays.
//!   This is the workload where the paper's M-H sampler shines: no sampler
//!   state needs rebuilding at all.
//! * **Topology updates accumulate in the overlay.** Inserts/deletes are
//!   logged per vertex; queries merge the overlay with the base on the fly.
//!   Once the overlay grows past a threshold (policy owned by the
//!   [`crate::IncrementalMaintainer`]) the graph is compacted: a fresh CSR is
//!   built in O(|V| + |E|) and the overlay is cleared.
//! * **The node universe is fixed.** Mutations referencing out-of-range nodes
//!   are rejected and counted, mirroring a production ingest pipeline that
//!   quarantines malformed events instead of crashing.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use uninet_graph::{Graph, NodeId};

use crate::mutation::GraphMutation;

/// Outcome classification of one applied mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationEffect {
    /// Only an edge weight changed (no sampler-topology impact).
    Reweighted,
    /// The neighbor set of at least one endpoint changed.
    TopologyChanged,
    /// The mutation was a no-op (e.g. removing an absent edge) or referenced
    /// an out-of-range node; it was counted and skipped.
    Rejected,
}

/// Per-vertex delta log: edges inserted on top of the base CSR and base edges
/// marked deleted. Both are keyed by destination for O(log d) lookups.
#[derive(Debug, Clone, Default)]
struct VertexDelta {
    /// Edges present in the overlay but not the base (dst -> weight).
    inserts: BTreeMap<NodeId, f32>,
    /// Base edges masked out by deletions.
    deletes: BTreeSet<NodeId>,
}

impl VertexDelta {
    fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    fn pending(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }
}

/// Counters describing the state of the overlay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverlayStats {
    /// Vertices with a non-empty delta log.
    pub dirty_vertices: usize,
    /// Total pending inserts across all vertices.
    pub pending_inserts: usize,
    /// Total pending deletes across all vertices.
    pub pending_deletes: usize,
}

/// An updatable graph: immutable CSR base + delta overlay.
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    base: Graph,
    overlay: HashMap<NodeId, VertexDelta>,
    /// Mirror every mutation (`(u,v)` also applies to `(v,u)`), matching
    /// graphs built with `GraphBuilder::symmetric(true)`.
    symmetric: bool,
    /// Monotone counter bumped by every effective mutation.
    version: u64,
    /// Mutations rejected since construction.
    rejected: u64,
    /// Nodes whose adjacency changed since the last compaction.
    touched_since_compaction: BTreeSet<NodeId>,
}

impl DynamicGraph {
    /// Wraps a CSR graph. `symmetric` mirrors each mutation onto the reverse
    /// edge, matching how undirected graphs are stored in this workspace.
    pub fn new(base: Graph, symmetric: bool) -> Self {
        DynamicGraph {
            base,
            overlay: HashMap::new(),
            symmetric,
            version: 0,
            rejected: 0,
            touched_since_compaction: BTreeSet::new(),
        }
    }

    /// The CSR substrate samplers and walkers run over.
    ///
    /// Weight updates are already visible here; topology updates become
    /// visible after [`DynamicGraph::compact`]. The overlay-merged truth is
    /// available through the query methods below.
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// Whether mutations are mirrored onto the reverse edge.
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// Number of nodes (fixed for the lifetime of the dynamic graph).
    pub fn num_nodes(&self) -> usize {
        self.base.num_nodes()
    }

    /// Monotone version counter (one tick per effective mutation).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of rejected mutations so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Nodes whose adjacency changed since the last compaction.
    pub fn touched_since_compaction(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.touched_since_compaction.iter().copied()
    }

    /// Overlay size counters.
    pub fn overlay_stats(&self) -> OverlayStats {
        let mut s = OverlayStats {
            dirty_vertices: 0,
            pending_inserts: 0,
            pending_deletes: 0,
        };
        for d in self.overlay.values() {
            if !d.is_empty() {
                s.dirty_vertices += 1;
                s.pending_inserts += d.inserts.len();
                s.pending_deletes += d.deletes.len();
            }
        }
        s
    }

    /// Total pending overlay entries (inserts + deletes).
    pub fn pending(&self) -> usize {
        self.overlay.values().map(VertexDelta::pending).sum()
    }

    /// Merged out-degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        let base = self.base.degree(v);
        match self.overlay.get(&v) {
            None => base,
            Some(d) => base - d.deletes.len() + d.inserts.len(),
        }
    }

    /// Merged, sorted neighbor list of `v`.
    pub fn neighbors(&self, v: NodeId) -> Vec<NodeId> {
        self.neighbor_weights(v)
            .into_iter()
            .map(|(dst, _)| dst)
            .collect()
    }

    /// Merged, sorted `(neighbor, weight)` list of `v`.
    pub fn neighbor_weights(&self, v: NodeId) -> Vec<(NodeId, f32)> {
        let base_n = self.base.neighbors(v);
        let base_w = self.base.weights(v);
        match self.overlay.get(&v) {
            None => base_n.iter().copied().zip(base_w.iter().copied()).collect(),
            Some(d) => {
                let mut out = Vec::with_capacity(base_n.len() + d.inserts.len());
                let mut ins = d.inserts.iter().peekable();
                for (&dst, &w) in base_n.iter().zip(base_w.iter()) {
                    while let Some((&idst, &iw)) = ins.peek() {
                        if idst < dst {
                            out.push((idst, iw));
                            ins.next();
                        } else {
                            break;
                        }
                    }
                    if !d.deletes.contains(&dst) {
                        out.push((dst, w));
                    }
                }
                for (&idst, &iw) in ins {
                    out.push((idst, iw));
                }
                out
            }
        }
    }

    /// Merged edge-existence test.
    pub fn has_edge(&self, u: NodeId, dst: NodeId) -> bool {
        self.weight(u, dst).is_some()
    }

    /// Merged weight of edge `(u, dst)`, if present.
    pub fn weight(&self, u: NodeId, dst: NodeId) -> Option<f32> {
        if let Some(d) = self.overlay.get(&u) {
            if let Some(&w) = d.inserts.get(&dst) {
                return Some(w);
            }
            if d.deletes.contains(&dst) {
                return None;
            }
        }
        self.base
            .find_neighbor(u, dst)
            .map(|k| self.base.weight_at(u, k))
    }

    /// Applies one mutation (and its mirror when symmetric), classifying the
    /// effect. Weight changes hit the base CSR in place; topology changes go
    /// to the overlay.
    ///
    /// The returned effect is the *strongest* of the two directions
    /// (`TopologyChanged` > `Reweighted` > `Rejected`): on an asymmetric base
    /// the forward direction may insert while the mirror merely reweights,
    /// and maintenance must see both. Use [`DynamicGraph::apply_with_effects`]
    /// for the per-direction breakdown.
    pub fn apply(&mut self, m: GraphMutation) -> MutationEffect {
        let (forward, mirror) = self.apply_with_effects(m);
        match (forward, mirror) {
            (MutationEffect::TopologyChanged, _) | (_, MutationEffect::TopologyChanged) => {
                MutationEffect::TopologyChanged
            }
            (MutationEffect::Reweighted, _) | (_, MutationEffect::Reweighted) => {
                MutationEffect::Reweighted
            }
            _ => MutationEffect::Rejected,
        }
    }

    /// Applies one mutation, returning the `(forward, mirror)` effects.
    ///
    /// `mirror` is `Rejected` when the graph is directed or the forward
    /// application was rejected.
    pub fn apply_with_effects(&mut self, m: GraphMutation) -> (MutationEffect, MutationEffect) {
        let (src, dst) = m.endpoints();
        let n = self.num_nodes() as NodeId;
        if src >= n || dst >= n || src == dst {
            self.rejected += 1;
            return (MutationEffect::Rejected, MutationEffect::Rejected);
        }
        let forward = self.apply_directed(m);
        let mut mirror = MutationEffect::Rejected;
        if self.symmetric && forward != MutationEffect::Rejected {
            let mirrored = match m {
                GraphMutation::AddEdge { src, dst, weight } => GraphMutation::AddEdge {
                    src: dst,
                    dst: src,
                    weight,
                },
                GraphMutation::RemoveEdge { src, dst } => {
                    GraphMutation::RemoveEdge { src: dst, dst: src }
                }
                GraphMutation::UpdateWeight { src, dst, weight } => GraphMutation::UpdateWeight {
                    src: dst,
                    dst: src,
                    weight,
                },
            };
            mirror = self.apply_directed(mirrored);
        }
        if forward != MutationEffect::Rejected {
            self.version += 1;
        } else {
            self.rejected += 1;
        }
        (forward, mirror)
    }

    fn apply_directed(&mut self, m: GraphMutation) -> MutationEffect {
        match m {
            GraphMutation::UpdateWeight { src, dst, weight } => {
                // Overlay insert first: it shadows the base edge.
                if let Some(d) = self.overlay.get_mut(&src) {
                    if let Some(w) = d.inserts.get_mut(&dst) {
                        *w = weight;
                        return MutationEffect::Reweighted;
                    }
                    if d.deletes.contains(&dst) {
                        return MutationEffect::Rejected;
                    }
                }
                if self.base.set_weight(src, dst, weight) {
                    MutationEffect::Reweighted
                } else {
                    MutationEffect::Rejected
                }
            }
            GraphMutation::AddEdge { src, dst, weight } => {
                if self.weight(src, dst).is_some() {
                    // Upsert semantics: adding an existing edge reweights it.
                    return self.apply_directed(GraphMutation::UpdateWeight { src, dst, weight });
                }
                let d = self.overlay.entry(src).or_default();
                if d.deletes.remove(&dst) {
                    // Un-delete: the base edge resurfaces with the new weight.
                    self.base.set_weight(src, dst, weight);
                } else {
                    d.inserts.insert(dst, weight);
                }
                self.touched_since_compaction.insert(src);
                MutationEffect::TopologyChanged
            }
            GraphMutation::RemoveEdge { src, dst } => {
                let d = self.overlay.entry(src).or_default();
                if d.inserts.remove(&dst).is_some() {
                    self.touched_since_compaction.insert(src);
                    return MutationEffect::TopologyChanged;
                }
                if !d.deletes.contains(&dst) && self.base.find_neighbor(src, dst).is_some() {
                    d.deletes.insert(dst);
                    self.touched_since_compaction.insert(src);
                    MutationEffect::TopologyChanged
                } else {
                    MutationEffect::Rejected
                }
            }
        }
    }

    /// Rebuilds the base CSR from the merged view, clearing the overlay.
    ///
    /// O(|V| + |E|). Node types, edge types and the type registry are
    /// preserved; edges inserted through the overlay get edge type 0 in
    /// edge-typed graphs. Returns the set of nodes whose adjacency changed
    /// since the previous compaction (the sampler-maintenance work list).
    pub fn compact(&mut self) -> Vec<NodeId> {
        let touched: Vec<NodeId> = self.touched_since_compaction.iter().copied().collect();
        if self.overlay.is_empty() {
            self.touched_since_compaction.clear();
            return touched;
        }
        let n = self.num_nodes();
        let has_edge_types = !self.base.edge_types().is_empty();

        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(self.base.num_edges());
        let mut weights = Vec::with_capacity(self.base.num_edges());
        let mut edge_types: Vec<u16> = Vec::new();
        offsets.push(0usize);
        for v in 0..n as NodeId {
            if let Some(d) = self.overlay.get(&v) {
                let base_n = self.base.neighbors(v);
                let mut ins = d.inserts.iter().peekable();
                for (k, &dst) in base_n.iter().enumerate() {
                    while let Some((&idst, &iw)) = ins.peek() {
                        if idst < dst {
                            neighbors.push(idst);
                            weights.push(iw);
                            if has_edge_types {
                                edge_types.push(0);
                            }
                            ins.next();
                        } else {
                            break;
                        }
                    }
                    if !d.deletes.contains(&dst) {
                        neighbors.push(dst);
                        weights.push(self.base.weight_at(v, k));
                        if has_edge_types {
                            edge_types.push(self.base.edge_type_at(v, k));
                        }
                    }
                }
                for (&idst, &iw) in ins {
                    neighbors.push(idst);
                    weights.push(iw);
                    if has_edge_types {
                        edge_types.push(0);
                    }
                }
            } else {
                // Fast path: copy the untouched adjacency verbatim.
                neighbors.extend_from_slice(self.base.neighbors(v));
                weights.extend_from_slice(self.base.weights(v));
                if has_edge_types {
                    edge_types.extend_from_slice(self.base.edge_types_of(v));
                }
            }
            offsets.push(neighbors.len());
        }

        self.base = Graph::from_csr_parts(
            offsets,
            neighbors,
            weights,
            self.base.node_types().to_vec(),
            edge_types,
            self.base.num_node_types(),
            self.base.num_edge_types(),
            self.base.type_registry().clone(),
        );
        self.overlay.clear();
        self.touched_since_compaction.clear();
        touched
    }

    /// Builds a fresh CSR of the merged view without mutating the overlay
    /// (used by equivalence tests).
    pub fn materialize(&self) -> Graph {
        let mut copy = self.clone();
        copy.compact();
        copy.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uninet_graph::GraphBuilder;

    fn square() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 3, 1.0);
        b.add_edge(3, 0, 1.0);
        b.symmetric(true).build()
    }

    #[test]
    fn weight_update_is_in_place_and_symmetric() {
        let mut dg = DynamicGraph::new(square(), true);
        assert_eq!(
            dg.apply(GraphMutation::UpdateWeight {
                src: 0,
                dst: 1,
                weight: 5.0
            }),
            MutationEffect::Reweighted
        );
        assert_eq!(dg.weight(0, 1), Some(5.0));
        assert_eq!(dg.weight(1, 0), Some(5.0));
        // In place: visible on the CSR base without compaction.
        let k = dg.base().find_neighbor(0, 1).unwrap();
        assert_eq!(dg.base().weight_at(0, k), 5.0);
        assert_eq!(dg.pending(), 0);
    }

    #[test]
    fn insert_shows_in_merged_view_before_compaction() {
        let mut dg = DynamicGraph::new(square(), true);
        assert_eq!(
            dg.apply(GraphMutation::AddEdge {
                src: 0,
                dst: 2,
                weight: 2.0
            }),
            MutationEffect::TopologyChanged
        );
        assert_eq!(dg.degree(0), 3);
        assert!(dg.has_edge(0, 2));
        assert!(dg.has_edge(2, 0));
        assert_eq!(dg.neighbors(0), vec![1, 2, 3]);
        // Base CSR is stale until compaction.
        assert!(!dg.base().has_edge(0, 2));
        let touched = dg.compact();
        assert_eq!(touched, vec![0, 2]);
        assert!(dg.base().has_edge(0, 2));
        assert_eq!(dg.pending(), 0);
    }

    #[test]
    fn delete_and_undelete() {
        let mut dg = DynamicGraph::new(square(), true);
        assert_eq!(
            dg.apply(GraphMutation::RemoveEdge { src: 0, dst: 1 }),
            MutationEffect::TopologyChanged
        );
        assert!(!dg.has_edge(0, 1));
        assert!(!dg.has_edge(1, 0));
        assert_eq!(dg.degree(0), 1);
        // Re-adding resurfaces the edge with the new weight.
        dg.apply(GraphMutation::AddEdge {
            src: 0,
            dst: 1,
            weight: 9.0,
        });
        assert_eq!(dg.weight(0, 1), Some(9.0));
        assert_eq!(dg.degree(0), 2);
    }

    #[test]
    fn rejects_out_of_range_and_missing() {
        let mut dg = DynamicGraph::new(square(), true);
        assert_eq!(
            dg.apply(GraphMutation::AddEdge {
                src: 0,
                dst: 99,
                weight: 1.0
            }),
            MutationEffect::Rejected
        );
        assert_eq!(
            dg.apply(GraphMutation::RemoveEdge { src: 0, dst: 2 }),
            MutationEffect::Rejected
        );
        assert_eq!(
            dg.apply(GraphMutation::UpdateWeight {
                src: 0,
                dst: 2,
                weight: 1.0
            }),
            MutationEffect::Rejected
        );
        assert_eq!(dg.rejected(), 3);
        assert_eq!(dg.version(), 0);
    }

    #[test]
    fn upsert_add_reweights_existing_edge() {
        let mut dg = DynamicGraph::new(square(), true);
        assert_eq!(
            dg.apply(GraphMutation::AddEdge {
                src: 0,
                dst: 1,
                weight: 4.0
            }),
            MutationEffect::Reweighted
        );
        assert_eq!(dg.weight(0, 1), Some(4.0));
        assert_eq!(dg.pending(), 0);
    }

    #[test]
    fn materialize_matches_compact() {
        let mut dg = DynamicGraph::new(square(), true);
        dg.apply(GraphMutation::AddEdge {
            src: 1,
            dst: 3,
            weight: 2.5,
        });
        dg.apply(GraphMutation::RemoveEdge { src: 2, dst: 3 });
        dg.apply(GraphMutation::UpdateWeight {
            src: 0,
            dst: 1,
            weight: 7.0,
        });
        let snapshot = dg.materialize();
        dg.compact();
        let compacted = dg.base();
        assert_eq!(snapshot.num_edges(), compacted.num_edges());
        for v in 0..4u32 {
            assert_eq!(snapshot.neighbors(v), compacted.neighbors(v));
            assert_eq!(snapshot.weights(v), compacted.weights(v));
        }
        snapshot.validate().unwrap();
    }

    #[test]
    fn asymmetric_base_reports_both_direction_effects() {
        // Directed base containing only (1,0); symmetric mutation on (0,1):
        // the forward direction inserts (topology) while the mirror upserts
        // the existing base edge in place (reweight). Both must be reported
        // or node 1's sampler maintenance is silently skipped.
        let mut b = GraphBuilder::new();
        b.add_edge(1, 0, 1.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(2, 1, 1.0);
        let g = b.symmetric(false).build();
        let mut dg = DynamicGraph::new(g, true);
        let (forward, mirror) = dg.apply_with_effects(GraphMutation::AddEdge {
            src: 0,
            dst: 1,
            weight: 7.0,
        });
        assert_eq!(forward, MutationEffect::TopologyChanged);
        assert_eq!(mirror, MutationEffect::Reweighted);
        assert_eq!(dg.weight(0, 1), Some(7.0));
        assert_eq!(dg.weight(1, 0), Some(7.0));
        // The reweighted side hit the base CSR directly.
        let k = dg.base().find_neighbor(1, 0).unwrap();
        assert_eq!(dg.base().weight_at(1, k), 7.0);

        // Inverse case: forward upsert-reweights the existing (2,1), mirror
        // inserts the missing (1,2) — apply() must still classify the
        // mutation as topology-changing so the compaction threshold fires.
        let effect = dg.apply(GraphMutation::AddEdge {
            src: 2,
            dst: 1,
            weight: 3.0,
        });
        assert_eq!(effect, MutationEffect::TopologyChanged);
        assert!(dg.has_edge(1, 2));
        assert_eq!(dg.weight(2, 1), Some(3.0));
    }

    #[test]
    fn overlay_stats_track_pending_work() {
        let mut dg = DynamicGraph::new(square(), false);
        dg.apply(GraphMutation::AddEdge {
            src: 0,
            dst: 2,
            weight: 1.0,
        });
        dg.apply(GraphMutation::RemoveEdge { src: 1, dst: 2 });
        let s = dg.overlay_stats();
        assert_eq!(s.dirty_vertices, 2);
        assert_eq!(s.pending_inserts, 1);
        assert_eq!(s.pending_deletes, 1);
        assert_eq!(dg.pending(), 2);
    }
}
