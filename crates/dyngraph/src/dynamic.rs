//! [`DynamicGraph`]: an immutable CSR base plus a per-vertex delta-adjacency
//! overlay, with periodic compaction back into CSR form.
//!
//! Design:
//!
//! * **Weight updates are O(1) and immediate.** Reweighting never moves CSR
//!   entries, so the new weight is written straight into the base arrays.
//!   This is the workload where the paper's M-H sampler shines: no sampler
//!   state needs rebuilding at all.
//! * **Topology updates accumulate in the overlay.** Inserts/deletes are
//!   logged per vertex; queries merge the overlay with the base on the fly.
//!   Once the overlay grows past a threshold (policy owned by the
//!   [`crate::IncrementalMaintainer`]) the graph is compacted: a fresh CSR is
//!   built in O(|V| + |E|) and the overlay is cleared.
//! * **The node universe is open.** [`GraphMutation::AddNode`] grows the id
//!   space (new rows start empty and *live*), [`GraphMutation::RemoveNode`]
//!   drops all incident edges and marks the id *retired*. Edge mutations
//!   referencing out-of-range, retired or never-declared ids are rejected and
//!   counted, mirroring a production ingest pipeline that quarantines
//!   malformed events instead of crashing. Retired ids are never recycled for
//!   a different identity — a retired id may only *rejoin* as the same node
//!   (via a fresh `AddNode`), so published embedding snapshots can keep
//!   serving their frozen universe without ids changing meaning under them.
//! * **Vertex-range sharding.** The overlay is stored as one delta log per
//!   vertex, so [`DynamicGraph::shard_views`] can hand out disjoint mutable
//!   [`ShardView`]s over contiguous vertex ranges; shards apply mutations
//!   whose endpoints both fall inside their range fully in parallel, and the
//!   per-row state machine is shared with the serial path, so the merged
//!   result is identical to sequential application (see `crates/ingest`).

use std::collections::{BTreeMap, BTreeSet};

use uninet_graph::{Graph, NodeId};

use crate::mutation::GraphMutation;

/// Outcome classification of one applied mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationEffect {
    /// Only an edge weight changed (no sampler-topology impact).
    Reweighted,
    /// The neighbor set of at least one endpoint changed.
    TopologyChanged,
    /// A node arrived: the id is now live (the id space may have grown).
    NodeArrived,
    /// A node retired: its incident edges were dropped and the id is dead.
    NodeRetired,
    /// The mutation was a no-op (e.g. removing an absent edge) or referenced
    /// an out-of-range, retired or undeclared node; it was counted and
    /// skipped.
    Rejected,
}

/// Per-vertex delta log: edges inserted on top of the base CSR and base edges
/// marked deleted. Both are keyed by destination for O(log d) lookups.
#[derive(Debug, Clone, Default)]
struct VertexDelta {
    /// Edges present in the overlay but not the base (dst -> weight).
    inserts: BTreeMap<NodeId, f32>,
    /// Base edges masked out by deletions.
    deletes: BTreeSet<NodeId>,
}

impl VertexDelta {
    fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// What one directed row application did, in a form that both the serial
/// [`DynamicGraph::apply_directed`] path and the parallel [`ShardView`] path
/// fold into their own bookkeeping. Sharing this state machine is what makes
/// sharded application sequentially equivalent by construction.
struct RowOutcome {
    effect: MutationEffect,
    /// Deferred base-CSR weight write `(src, slot, weight)`. The base graph is
    /// only borrowed immutably during row application, so writes are applied
    /// by the caller (immediately on the serial path, at commit time on the
    /// sharded path). Weight *values* never influence control flow, so
    /// deferring them preserves the outcome of every later mutation.
    weight_write: Option<(NodeId, usize, f32)>,
    /// Change in pending overlay insert count (-1, 0 or +1).
    d_inserts: i8,
    /// Change in pending overlay delete count (-1, 0 or +1).
    d_deletes: i8,
    /// Whether the row's adjacency changed (node joins the touched set).
    touched: bool,
}

impl RowOutcome {
    fn rejected() -> Self {
        RowOutcome {
            effect: MutationEffect::Rejected,
            weight_write: None,
            d_inserts: 0,
            d_deletes: 0,
            touched: false,
        }
    }

    fn reweighted(write: Option<(NodeId, usize, f32)>) -> Self {
        RowOutcome {
            effect: MutationEffect::Reweighted,
            weight_write: write,
            d_inserts: 0,
            d_deletes: 0,
            touched: false,
        }
    }
}

/// Applies one directed mutation to a single vertex row: the overlay delta of
/// `src` plus (deferred) writes into the base CSR row of `src`. This is the
/// single source of truth for mutation semantics; see [`RowOutcome`].
///
/// Rows past the base CSR (arrived nodes not yet compacted) have an empty
/// base adjacency, so base lookups are guarded by range.
fn apply_directed_row(base: &Graph, delta: &mut VertexDelta, m: GraphMutation) -> RowOutcome {
    let base_find = |src: NodeId, dst: NodeId| {
        if (src as usize) < base.num_nodes() {
            base.find_neighbor(src, dst)
        } else {
            None
        }
    };
    match m {
        GraphMutation::UpdateWeight { src, dst, weight } => {
            // Overlay insert first: it shadows the base edge.
            if let Some(w) = delta.inserts.get_mut(&dst) {
                *w = weight;
                return RowOutcome::reweighted(None);
            }
            if delta.deletes.contains(&dst) {
                return RowOutcome::rejected();
            }
            match base_find(src, dst) {
                Some(k) => RowOutcome::reweighted(Some((src, k, weight))),
                None => RowOutcome::rejected(),
            }
        }
        GraphMutation::AddEdge { src, dst, weight } => {
            let exists = delta.inserts.contains_key(&dst)
                || (!delta.deletes.contains(&dst) && base_find(src, dst).is_some());
            if exists {
                // Upsert semantics: adding an existing edge reweights it.
                return apply_directed_row(
                    base,
                    delta,
                    GraphMutation::UpdateWeight { src, dst, weight },
                );
            }
            if delta.deletes.remove(&dst) {
                // Un-delete: the base edge resurfaces with the new weight.
                let write = base_find(src, dst).map(|k| (src, k, weight));
                RowOutcome {
                    effect: MutationEffect::TopologyChanged,
                    weight_write: write,
                    d_inserts: 0,
                    d_deletes: -1,
                    touched: true,
                }
            } else {
                delta.inserts.insert(dst, weight);
                RowOutcome {
                    effect: MutationEffect::TopologyChanged,
                    weight_write: None,
                    d_inserts: 1,
                    d_deletes: 0,
                    touched: true,
                }
            }
        }
        GraphMutation::RemoveEdge { src, dst } => {
            if delta.inserts.remove(&dst).is_some() {
                return RowOutcome {
                    effect: MutationEffect::TopologyChanged,
                    weight_write: None,
                    d_inserts: -1,
                    d_deletes: 0,
                    touched: true,
                };
            }
            if !delta.deletes.contains(&dst) && base_find(src, dst).is_some() {
                delta.deletes.insert(dst);
                RowOutcome {
                    effect: MutationEffect::TopologyChanged,
                    weight_write: None,
                    d_inserts: 0,
                    d_deletes: 1,
                    touched: true,
                }
            } else {
                RowOutcome::rejected()
            }
        }
        GraphMutation::AddNode { .. } | GraphMutation::RemoveNode { .. } => {
            unreachable!("node ops are handled before row application")
        }
    }
}

/// Mirrors a mutation onto the reverse edge.
fn mirror_of(m: GraphMutation) -> GraphMutation {
    match m {
        GraphMutation::AddEdge { src, dst, weight } => GraphMutation::AddEdge {
            src: dst,
            dst: src,
            weight,
        },
        GraphMutation::RemoveEdge { src, dst } => GraphMutation::RemoveEdge { src: dst, dst: src },
        GraphMutation::UpdateWeight { src, dst, weight } => GraphMutation::UpdateWeight {
            src: dst,
            dst: src,
            weight,
        },
        GraphMutation::AddNode { .. } | GraphMutation::RemoveNode { .. } => {
            unreachable!("node ops have no mirror")
        }
    }
}

/// Counters describing the state of the overlay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverlayStats {
    /// Vertices with a non-empty delta log.
    pub dirty_vertices: usize,
    /// Total pending inserts across all vertices.
    pub pending_inserts: usize,
    /// Total pending deletes across all vertices.
    pub pending_deletes: usize,
}

/// An updatable graph: immutable CSR base + delta overlay.
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    base: Graph,
    /// One delta log per vertex (indexed by node id). Empty deltas allocate
    /// nothing, and the flat layout is what lets [`DynamicGraph::shard_views`]
    /// split the overlay into disjoint mutable vertex ranges.
    overlay: Vec<VertexDelta>,
    /// Mirror every mutation (`(u,v)` also applies to `(v,u)`), matching
    /// graphs built with `GraphBuilder::symmetric(true)`.
    symmetric: bool,
    /// Liveness per id (same length as `overlay`). Ids start live; `AddNode`
    /// past the current capacity grows both vectors, leaving skipped ids
    /// *vacant* (`false`, never declared); `RemoveNode` retires an id in
    /// place. Rows of the base CSR past `base.num_nodes()` don't exist yet —
    /// they materialize (empty) at the next compaction.
    live: Vec<bool>,
    /// Monotone counter bumped by every effective mutation.
    version: u64,
    /// Mutations rejected since construction.
    rejected: u64,
    /// Nodes whose adjacency changed since the last compaction.
    touched_since_compaction: BTreeSet<NodeId>,
    /// Running count of pending overlay inserts (O(1) `pending()`).
    pending_inserts: usize,
    /// Running count of pending overlay deletes.
    pending_deletes: usize,
}

impl DynamicGraph {
    /// Wraps a CSR graph. `symmetric` mirrors each mutation onto the reverse
    /// edge, matching how undirected graphs are stored in this workspace.
    pub fn new(base: Graph, symmetric: bool) -> Self {
        let n = base.num_nodes();
        Self::with_universe(base, symmetric, vec![true; n])
    }

    /// Wraps a CSR graph with an explicit liveness mask (crash recovery /
    /// snapshot restore). `live.len()` must be at least `base.num_nodes()`;
    /// a longer mask declares capacity past the base CSR (arrived nodes not
    /// yet compacted into a CSR row).
    pub fn with_universe(base: Graph, symmetric: bool, live: Vec<bool>) -> Self {
        assert!(
            live.len() >= base.num_nodes(),
            "live mask shorter than the base CSR ({} < {})",
            live.len(),
            base.num_nodes()
        );
        let capacity = live.len();
        DynamicGraph {
            base,
            overlay: vec![VertexDelta::default(); capacity],
            symmetric,
            live,
            version: 0,
            rejected: 0,
            touched_since_compaction: BTreeSet::new(),
            pending_inserts: 0,
            pending_deletes: 0,
        }
    }

    /// The CSR substrate samplers and walkers run over.
    ///
    /// Weight updates are already visible here; topology updates become
    /// visible after [`DynamicGraph::compact`]. The overlay-merged truth is
    /// available through the query methods below.
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// Whether mutations are mirrored onto the reverse edge.
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// Capacity of the id space (live + retired + vacant ids). Grows when an
    /// `AddNode` declares an id past the current end; never shrinks.
    pub fn num_nodes(&self) -> usize {
        self.overlay.len()
    }

    /// Whether id `v` is currently live (in range, declared, not retired).
    pub fn is_live(&self, v: NodeId) -> bool {
        self.live.get(v as usize).copied().unwrap_or(false)
    }

    /// The liveness mask over the full id space (`num_nodes()` entries).
    pub fn live_mask(&self) -> &[bool] {
        &self.live
    }

    /// Number of live ids.
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// Extends the id space to at least `capacity` ids; new ids are vacant.
    fn grow_to(&mut self, capacity: usize) {
        if capacity > self.overlay.len() {
            self.overlay.resize_with(capacity, VertexDelta::default);
            self.live.resize(capacity, false);
        }
    }

    /// Monotone version counter (one tick per effective mutation).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of rejected mutations so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Nodes whose adjacency changed since the last compaction.
    pub fn touched_since_compaction(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.touched_since_compaction.iter().copied()
    }

    /// Overlay size counters.
    pub fn overlay_stats(&self) -> OverlayStats {
        let mut s = OverlayStats {
            dirty_vertices: 0,
            pending_inserts: self.pending_inserts,
            pending_deletes: self.pending_deletes,
        };
        for d in &self.overlay {
            if !d.is_empty() {
                s.dirty_vertices += 1;
            }
        }
        s
    }

    /// Total pending overlay entries (inserts + deletes). O(1).
    pub fn pending(&self) -> usize {
        self.pending_inserts + self.pending_deletes
    }

    /// The base CSR adjacency of `v`, empty for rows past the base (arrived
    /// nodes not yet compacted).
    fn base_row(&self, v: NodeId) -> (&[NodeId], &[f32]) {
        if (v as usize) < self.base.num_nodes() {
            (self.base.neighbors(v), self.base.weights(v))
        } else {
            (&[], &[])
        }
    }

    /// Merged out-degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        let base = if (v as usize) < self.base.num_nodes() {
            self.base.degree(v)
        } else {
            0
        };
        let d = &self.overlay[v as usize];
        base - d.deletes.len() + d.inserts.len()
    }

    /// Merged, sorted neighbor list of `v`.
    pub fn neighbors(&self, v: NodeId) -> Vec<NodeId> {
        self.neighbor_weights(v)
            .into_iter()
            .map(|(dst, _)| dst)
            .collect()
    }

    /// Merged, sorted `(neighbor, weight)` list of `v`.
    pub fn neighbor_weights(&self, v: NodeId) -> Vec<(NodeId, f32)> {
        let (base_n, base_w) = self.base_row(v);
        let d = &self.overlay[v as usize];
        if d.is_empty() {
            return base_n.iter().copied().zip(base_w.iter().copied()).collect();
        }
        let mut out = Vec::with_capacity(base_n.len() + d.inserts.len());
        let mut ins = d.inserts.iter().peekable();
        for (&dst, &w) in base_n.iter().zip(base_w.iter()) {
            while let Some((&idst, &iw)) = ins.peek() {
                if idst < dst {
                    out.push((idst, iw));
                    ins.next();
                } else {
                    break;
                }
            }
            if !d.deletes.contains(&dst) {
                out.push((dst, w));
            }
        }
        for (&idst, &iw) in ins {
            out.push((idst, iw));
        }
        out
    }

    /// Merged edge-existence test.
    pub fn has_edge(&self, u: NodeId, dst: NodeId) -> bool {
        self.weight(u, dst).is_some()
    }

    /// Merged weight of edge `(u, dst)`, if present.
    pub fn weight(&self, u: NodeId, dst: NodeId) -> Option<f32> {
        let d = &self.overlay[u as usize];
        if let Some(&w) = d.inserts.get(&dst) {
            return Some(w);
        }
        if d.deletes.contains(&dst) || (u as usize) >= self.base.num_nodes() {
            return None;
        }
        self.base
            .find_neighbor(u, dst)
            .map(|k| self.base.weight_at(u, k))
    }

    /// Applies one mutation (and its mirror when symmetric), classifying the
    /// effect. Weight changes hit the base CSR in place; topology changes go
    /// to the overlay.
    ///
    /// The returned effect is the *strongest* of the two directions
    /// (`TopologyChanged` > `Reweighted` > `Rejected`): on an asymmetric base
    /// the forward direction may insert while the mirror merely reweights,
    /// and maintenance must see both. Use [`DynamicGraph::apply_with_effects`]
    /// for the per-direction breakdown.
    pub fn apply(&mut self, m: GraphMutation) -> MutationEffect {
        let (forward, mirror) = self.apply_with_effects(m);
        match (forward, mirror) {
            (MutationEffect::NodeArrived, _) => MutationEffect::NodeArrived,
            (MutationEffect::NodeRetired, _) => MutationEffect::NodeRetired,
            (MutationEffect::TopologyChanged, _) | (_, MutationEffect::TopologyChanged) => {
                MutationEffect::TopologyChanged
            }
            (MutationEffect::Reweighted, _) | (_, MutationEffect::Reweighted) => {
                MutationEffect::Reweighted
            }
            _ => MutationEffect::Rejected,
        }
    }

    /// Applies one mutation, returning the `(forward, mirror)` effects.
    ///
    /// `mirror` is `Rejected` when the graph is directed, the mutation is a
    /// node op (node ops have no mirror), or the forward application was
    /// rejected.
    pub fn apply_with_effects(&mut self, m: GraphMutation) -> (MutationEffect, MutationEffect) {
        match m {
            GraphMutation::AddNode { node } => {
                let effect = self.apply_add_node(node);
                return (effect, MutationEffect::Rejected);
            }
            GraphMutation::RemoveNode { node } => {
                let effect = self.apply_remove_node(node);
                return (effect, MutationEffect::Rejected);
            }
            _ => {}
        }
        let (src, dst) = m.endpoints();
        let n = self.num_nodes() as NodeId;
        if src >= n || dst >= n || src == dst || !self.live[src as usize] || !self.live[dst as usize]
        {
            self.rejected += 1;
            return (MutationEffect::Rejected, MutationEffect::Rejected);
        }
        let forward = self.apply_directed(m);
        let mut mirror = MutationEffect::Rejected;
        if self.symmetric && forward != MutationEffect::Rejected {
            mirror = self.apply_directed(mirror_of(m));
        }
        if forward != MutationEffect::Rejected {
            self.version += 1;
        } else {
            self.rejected += 1;
        }
        (forward, mirror)
    }

    /// Declares id `node` live, growing the id space when needed. A retired
    /// id rejoins with an empty adjacency; a live id is a duplicate arrival
    /// and is rejected.
    fn apply_add_node(&mut self, node: NodeId) -> MutationEffect {
        let idx = node as usize;
        if self.live.get(idx).copied().unwrap_or(false) {
            self.rejected += 1;
            return MutationEffect::Rejected;
        }
        self.grow_to(idx + 1);
        self.live[idx] = true;
        self.touched_since_compaction.insert(node);
        self.version += 1;
        MutationEffect::NodeArrived
    }

    /// Retires id `node`: drops every incident edge (both directions) and
    /// marks the id dead. Rejected when the id is not currently live.
    fn apply_remove_node(&mut self, node: NodeId) -> MutationEffect {
        let idx = node as usize;
        if !self.live.get(idx).copied().unwrap_or(false) {
            self.rejected += 1;
            return MutationEffect::Rejected;
        }
        // Out-edges, plus their reverse rows when present. On symmetric
        // graphs this covers every incident edge (in-edge implies out-edge).
        let out: Vec<NodeId> = self.neighbors(node);
        for dst in out {
            self.apply_directed(GraphMutation::RemoveEdge { src: node, dst });
            self.apply_directed(GraphMutation::RemoveEdge {
                src: dst,
                dst: node,
            });
        }
        if !self.symmetric {
            // Directed graphs can hold in-edges with no reverse: scan rows.
            for u in 0..self.num_nodes() as NodeId {
                if u != node && self.weight(u, node).is_some() {
                    self.apply_directed(GraphMutation::RemoveEdge { src: u, dst: node });
                }
            }
        }
        self.live[idx] = false;
        self.touched_since_compaction.insert(node);
        self.version += 1;
        MutationEffect::NodeRetired
    }

    fn apply_directed(&mut self, m: GraphMutation) -> MutationEffect {
        let (src, _) = m.endpoints();
        let out = apply_directed_row(&self.base, &mut self.overlay[src as usize], m);
        if let Some((v, k, w)) = out.weight_write {
            self.base.set_weight_at(v, k, w);
        }
        if out.touched {
            self.touched_since_compaction.insert(src);
        }
        self.pending_inserts = self
            .pending_inserts
            .wrapping_add_signed(out.d_inserts as isize);
        self.pending_deletes = self
            .pending_deletes
            .wrapping_add_signed(out.d_deletes as isize);
        out.effect
    }

    /// Rebuilds the base CSR from the merged view, clearing the overlay.
    ///
    /// O(|V| + |E|). Node types, edge types and the type registry are
    /// preserved; edges inserted through the overlay get edge type 0 in
    /// edge-typed graphs. Returns the set of nodes whose adjacency changed
    /// since the previous compaction (the sampler-maintenance work list).
    pub fn compact(&mut self) -> Vec<NodeId> {
        let touched: Vec<NodeId> = self.touched_since_compaction.iter().copied().collect();
        // The early-out also requires an un-grown id space: arrived nodes
        // must materialize their (empty) CSR rows even with no pending edges.
        if self.pending() == 0 && self.num_nodes() == self.base.num_nodes() {
            self.touched_since_compaction.clear();
            return touched;
        }
        let n = self.num_nodes();
        let base_rows = self.base.num_nodes();
        let has_edge_types = !self.base.edge_types().is_empty();

        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(self.base.num_edges());
        let mut weights = Vec::with_capacity(self.base.num_edges());
        let mut edge_types: Vec<u16> = Vec::new();
        offsets.push(0usize);
        for v in 0..n as NodeId {
            let d = &self.overlay[v as usize];
            if (v as usize) >= base_rows {
                // Grown row: no base adjacency, only overlay inserts.
                for (&idst, &iw) in &d.inserts {
                    neighbors.push(idst);
                    weights.push(iw);
                    if has_edge_types {
                        edge_types.push(0);
                    }
                }
            } else if !d.is_empty() {
                let base_n = self.base.neighbors(v);
                let mut ins = d.inserts.iter().peekable();
                for (k, &dst) in base_n.iter().enumerate() {
                    while let Some((&idst, &iw)) = ins.peek() {
                        if idst < dst {
                            neighbors.push(idst);
                            weights.push(iw);
                            if has_edge_types {
                                edge_types.push(0);
                            }
                            ins.next();
                        } else {
                            break;
                        }
                    }
                    if !d.deletes.contains(&dst) {
                        neighbors.push(dst);
                        weights.push(self.base.weight_at(v, k));
                        if has_edge_types {
                            edge_types.push(self.base.edge_type_at(v, k));
                        }
                    }
                }
                for (&idst, &iw) in ins {
                    neighbors.push(idst);
                    weights.push(iw);
                    if has_edge_types {
                        edge_types.push(0);
                    }
                }
            } else {
                // Fast path: copy the untouched adjacency verbatim.
                neighbors.extend_from_slice(self.base.neighbors(v));
                weights.extend_from_slice(self.base.weights(v));
                if has_edge_types {
                    edge_types.extend_from_slice(self.base.edge_types_of(v));
                }
            }
            offsets.push(neighbors.len());
        }

        // Typed graphs give grown nodes the default type 0.
        let mut node_types = self.base.node_types().to_vec();
        if !node_types.is_empty() {
            node_types.resize(n, 0);
        }
        self.base = Graph::from_csr_parts(
            offsets,
            neighbors,
            weights,
            node_types,
            edge_types,
            self.base.num_node_types(),
            self.base.num_edge_types(),
            self.base.type_registry().clone(),
        );
        for d in &mut self.overlay {
            if !d.is_empty() {
                d.inserts.clear();
                d.deletes.clear();
            }
        }
        self.pending_inserts = 0;
        self.pending_deletes = 0;
        self.touched_since_compaction.clear();
        touched
    }

    /// Builds a fresh CSR of the merged view without mutating the overlay
    /// (used by equivalence tests).
    pub fn materialize(&self) -> Graph {
        let mut copy = self.clone();
        copy.compact();
        copy.base
    }

    /// Consumes the dynamic graph, folding any pending overlay into the CSR,
    /// and returns the merged base — the zero-copy teardown counterpart of
    /// [`DynamicGraph::materialize`].
    pub fn into_base(mut self) -> Graph {
        self.compact();
        self.base
    }

    /// Splits the overlay into disjoint mutable [`ShardView`]s over the
    /// contiguous vertex ranges `bounds[i]..bounds[i+1]`.
    ///
    /// `bounds` must start at 0, end at `num_nodes`, and be non-decreasing.
    /// Each view can apply mutations whose endpoints both lie inside its
    /// range, from its own thread; base-CSR weight writes are deferred into
    /// the view's [`ShardOutcome`], which [`DynamicGraph::commit_shards`]
    /// folds back in. Mutations on the same edge must stay in one view (and
    /// in order) for sequential equivalence — mutations on different edges
    /// commute. `crates/ingest` owns that partitioning policy.
    pub fn shard_views(&mut self, bounds: &[usize]) -> Vec<ShardView<'_>> {
        let n = self.num_nodes();
        assert!(
            bounds.len() >= 2 && bounds[0] == 0 && *bounds.last().expect("non-empty") == n,
            "shard bounds must cover 0..{n}"
        );
        let symmetric = self.symmetric;
        let base = &self.base;
        let live = &self.live;
        let mut views = Vec::with_capacity(bounds.len() - 1);
        let mut rest: &mut [VertexDelta] = &mut self.overlay;
        for w in bounds.windows(2) {
            assert!(w[0] <= w[1], "shard bounds must be non-decreasing");
            let (head, tail) = rest.split_at_mut(w[1] - w[0]);
            rest = tail;
            views.push(ShardView {
                base,
                overlay: head,
                start: w[0],
                num_nodes: n,
                symmetric,
                live,
                outcome: ShardOutcome::default(),
            });
        }
        views
    }

    /// Folds the outcomes of a sharded application round back into the graph:
    /// deferred base-weight writes, touched sets and counters. Commit order
    /// across shards is irrelevant — shards own disjoint vertex rows.
    pub fn commit_shards<I: IntoIterator<Item = ShardOutcome>>(&mut self, outcomes: I) {
        for o in outcomes {
            for (v, k, w) in o.weight_writes {
                self.base.set_weight_at(v, k, w);
            }
            self.touched_since_compaction.extend(o.touched);
            self.pending_inserts = self.pending_inserts.wrapping_add_signed(o.d_inserts);
            self.pending_deletes = self.pending_deletes.wrapping_add_signed(o.d_deletes);
            self.version += o.version;
            self.rejected += o.rejected;
        }
    }
}

/// A mutable view over one contiguous vertex range of a [`DynamicGraph`],
/// produced by [`DynamicGraph::shard_views`]. Applies mutations whose
/// endpoints both fall inside the range, using the same per-row state machine
/// as the serial path; everything that crosses row boundaries (base weight
/// writes, counters, touched sets) is accumulated in a [`ShardOutcome`].
#[derive(Debug)]
pub struct ShardView<'a> {
    base: &'a Graph,
    overlay: &'a mut [VertexDelta],
    start: usize,
    num_nodes: usize,
    symmetric: bool,
    /// Shared (read-only) liveness mask — node ops never run during a shard
    /// round, so the mask is frozen while views are alive.
    live: &'a [bool],
    outcome: ShardOutcome,
}

/// The deferred side effects of one shard's application round.
#[derive(Debug, Default)]
pub struct ShardOutcome {
    weight_writes: Vec<(NodeId, usize, f32)>,
    touched: Vec<NodeId>,
    d_inserts: isize,
    d_deletes: isize,
    version: u64,
    rejected: u64,
}

impl ShardView<'_> {
    /// The vertex range this view owns.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.overlay.len()
    }

    /// True when both endpoints of `m` fall inside this view's range.
    pub fn owns(&self, m: &GraphMutation) -> bool {
        let (src, dst) = m.endpoints();
        let r = self.range();
        r.contains(&(src as usize)) && r.contains(&(dst as usize))
    }

    /// Applies one mutation (both directions when symmetric), mirroring
    /// [`DynamicGraph::apply_with_effects`] exactly.
    ///
    /// # Panics
    ///
    /// Panics when an in-range endpoint falls outside this shard's vertex
    /// range (the batch partitioner must route such mutations to the serial
    /// residual path), or when handed a node op — batches containing node
    /// arrivals/retirements must be applied serially, since a universe change
    /// invalidates the frozen liveness mask shards read.
    pub fn apply_with_effects(&mut self, m: GraphMutation) -> (MutationEffect, MutationEffect) {
        assert!(
            !m.is_node_op(),
            "node ops must take the serial application path"
        );
        let (src, dst) = m.endpoints();
        let n = self.num_nodes as NodeId;
        if src >= n || dst >= n || src == dst || !self.live[src as usize] || !self.live[dst as usize]
        {
            self.outcome.rejected += 1;
            return (MutationEffect::Rejected, MutationEffect::Rejected);
        }
        let forward = self.apply_directed(m);
        let mut mirror = MutationEffect::Rejected;
        if self.symmetric && forward != MutationEffect::Rejected {
            mirror = self.apply_directed(mirror_of(m));
        }
        if forward != MutationEffect::Rejected {
            self.outcome.version += 1;
        } else {
            self.outcome.rejected += 1;
        }
        (forward, mirror)
    }

    fn apply_directed(&mut self, m: GraphMutation) -> MutationEffect {
        let (src, _) = m.endpoints();
        let row = (src as usize)
            .checked_sub(self.start)
            .expect("mutation endpoint below shard range");
        let out = apply_directed_row(self.base, &mut self.overlay[row], m);
        if let Some(write) = out.weight_write {
            self.outcome.weight_writes.push(write);
        }
        if out.touched {
            self.outcome.touched.push(src);
        }
        self.outcome.d_inserts += out.d_inserts as isize;
        self.outcome.d_deletes += out.d_deletes as isize;
        out.effect
    }

    /// Consumes the view, releasing its overlay borrow and returning the
    /// accumulated side effects for [`DynamicGraph::commit_shards`].
    pub fn finish(self) -> ShardOutcome {
        self.outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uninet_graph::GraphBuilder;

    fn square() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 3, 1.0);
        b.add_edge(3, 0, 1.0);
        b.symmetric(true).build()
    }

    #[test]
    fn weight_update_is_in_place_and_symmetric() {
        let mut dg = DynamicGraph::new(square(), true);
        assert_eq!(
            dg.apply(GraphMutation::UpdateWeight {
                src: 0,
                dst: 1,
                weight: 5.0
            }),
            MutationEffect::Reweighted
        );
        assert_eq!(dg.weight(0, 1), Some(5.0));
        assert_eq!(dg.weight(1, 0), Some(5.0));
        // In place: visible on the CSR base without compaction.
        let k = dg.base().find_neighbor(0, 1).unwrap();
        assert_eq!(dg.base().weight_at(0, k), 5.0);
        assert_eq!(dg.pending(), 0);
    }

    #[test]
    fn insert_shows_in_merged_view_before_compaction() {
        let mut dg = DynamicGraph::new(square(), true);
        assert_eq!(
            dg.apply(GraphMutation::AddEdge {
                src: 0,
                dst: 2,
                weight: 2.0
            }),
            MutationEffect::TopologyChanged
        );
        assert_eq!(dg.degree(0), 3);
        assert!(dg.has_edge(0, 2));
        assert!(dg.has_edge(2, 0));
        assert_eq!(dg.neighbors(0), vec![1, 2, 3]);
        // Base CSR is stale until compaction.
        assert!(!dg.base().has_edge(0, 2));
        let touched = dg.compact();
        assert_eq!(touched, vec![0, 2]);
        assert!(dg.base().has_edge(0, 2));
        assert_eq!(dg.pending(), 0);
    }

    #[test]
    fn delete_and_undelete() {
        let mut dg = DynamicGraph::new(square(), true);
        assert_eq!(
            dg.apply(GraphMutation::RemoveEdge { src: 0, dst: 1 }),
            MutationEffect::TopologyChanged
        );
        assert!(!dg.has_edge(0, 1));
        assert!(!dg.has_edge(1, 0));
        assert_eq!(dg.degree(0), 1);
        // Re-adding resurfaces the edge with the new weight.
        dg.apply(GraphMutation::AddEdge {
            src: 0,
            dst: 1,
            weight: 9.0,
        });
        assert_eq!(dg.weight(0, 1), Some(9.0));
        assert_eq!(dg.degree(0), 2);
    }

    #[test]
    fn rejects_out_of_range_and_missing() {
        let mut dg = DynamicGraph::new(square(), true);
        assert_eq!(
            dg.apply(GraphMutation::AddEdge {
                src: 0,
                dst: 99,
                weight: 1.0
            }),
            MutationEffect::Rejected
        );
        assert_eq!(
            dg.apply(GraphMutation::RemoveEdge { src: 0, dst: 2 }),
            MutationEffect::Rejected
        );
        assert_eq!(
            dg.apply(GraphMutation::UpdateWeight {
                src: 0,
                dst: 2,
                weight: 1.0
            }),
            MutationEffect::Rejected
        );
        assert_eq!(dg.rejected(), 3);
        assert_eq!(dg.version(), 0);
    }

    #[test]
    fn upsert_add_reweights_existing_edge() {
        let mut dg = DynamicGraph::new(square(), true);
        assert_eq!(
            dg.apply(GraphMutation::AddEdge {
                src: 0,
                dst: 1,
                weight: 4.0
            }),
            MutationEffect::Reweighted
        );
        assert_eq!(dg.weight(0, 1), Some(4.0));
        assert_eq!(dg.pending(), 0);
    }

    #[test]
    fn materialize_matches_compact() {
        let mut dg = DynamicGraph::new(square(), true);
        dg.apply(GraphMutation::AddEdge {
            src: 1,
            dst: 3,
            weight: 2.5,
        });
        dg.apply(GraphMutation::RemoveEdge { src: 2, dst: 3 });
        dg.apply(GraphMutation::UpdateWeight {
            src: 0,
            dst: 1,
            weight: 7.0,
        });
        let snapshot = dg.materialize();
        dg.compact();
        let compacted = dg.base();
        assert_eq!(snapshot.num_edges(), compacted.num_edges());
        for v in 0..4u32 {
            assert_eq!(snapshot.neighbors(v), compacted.neighbors(v));
            assert_eq!(snapshot.weights(v), compacted.weights(v));
        }
        snapshot.validate().unwrap();
    }

    #[test]
    fn asymmetric_base_reports_both_direction_effects() {
        // Directed base containing only (1,0); symmetric mutation on (0,1):
        // the forward direction inserts (topology) while the mirror upserts
        // the existing base edge in place (reweight). Both must be reported
        // or node 1's sampler maintenance is silently skipped.
        let mut b = GraphBuilder::new();
        b.add_edge(1, 0, 1.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(2, 1, 1.0);
        let g = b.symmetric(false).build();
        let mut dg = DynamicGraph::new(g, true);
        let (forward, mirror) = dg.apply_with_effects(GraphMutation::AddEdge {
            src: 0,
            dst: 1,
            weight: 7.0,
        });
        assert_eq!(forward, MutationEffect::TopologyChanged);
        assert_eq!(mirror, MutationEffect::Reweighted);
        assert_eq!(dg.weight(0, 1), Some(7.0));
        assert_eq!(dg.weight(1, 0), Some(7.0));
        // The reweighted side hit the base CSR directly.
        let k = dg.base().find_neighbor(1, 0).unwrap();
        assert_eq!(dg.base().weight_at(1, k), 7.0);

        // Inverse case: forward upsert-reweights the existing (2,1), mirror
        // inserts the missing (1,2) — apply() must still classify the
        // mutation as topology-changing so the compaction threshold fires.
        let effect = dg.apply(GraphMutation::AddEdge {
            src: 2,
            dst: 1,
            weight: 3.0,
        });
        assert_eq!(effect, MutationEffect::TopologyChanged);
        assert!(dg.has_edge(1, 2));
        assert_eq!(dg.weight(2, 1), Some(3.0));
    }

    #[test]
    fn shard_views_match_sequential_application() {
        // Mutations grouped so both endpoints stay inside one shard of [0,2)/[2,4).
        let muts_a = vec![
            GraphMutation::UpdateWeight {
                src: 0,
                dst: 1,
                weight: 5.0,
            },
            GraphMutation::RemoveEdge { src: 0, dst: 1 },
            GraphMutation::AddEdge {
                src: 0,
                dst: 1,
                weight: 2.0,
            },
        ];
        let muts_b = vec![
            GraphMutation::AddEdge {
                src: 2,
                dst: 3,
                weight: 9.0,
            },
            GraphMutation::UpdateWeight {
                src: 3,
                dst: 2,
                weight: 1.5,
            },
        ];

        let mut serial = DynamicGraph::new(square(), true);
        for &m in muts_a.iter().chain(&muts_b) {
            serial.apply(m);
        }

        let mut sharded = DynamicGraph::new(square(), true);
        let mut views = sharded.shard_views(&[0, 2, 4]);
        let mut outcomes = Vec::new();
        for (view, ops) in views.iter_mut().zip([&muts_a, &muts_b]) {
            for &m in ops {
                assert!(view.owns(&m));
                view.apply_with_effects(m);
            }
        }
        for view in views {
            outcomes.push(view.finish());
        }
        sharded.commit_shards(outcomes);

        assert_eq!(serial.pending(), sharded.pending());
        assert_eq!(serial.version(), sharded.version());
        assert_eq!(serial.rejected(), sharded.rejected());
        let a = serial.materialize();
        let b = sharded.materialize();
        for v in 0..4u32 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
            assert_eq!(a.weights(v), b.weights(v));
        }
    }

    #[test]
    fn shard_view_rejects_out_of_range_like_serial() {
        let mut dg = DynamicGraph::new(square(), true);
        let mut views = dg.shard_views(&[0, 4]);
        let effects = views[0].apply_with_effects(GraphMutation::AddEdge {
            src: 0,
            dst: 99,
            weight: 1.0,
        });
        assert_eq!(
            effects,
            (MutationEffect::Rejected, MutationEffect::Rejected)
        );
        let outcome = views.remove(0).finish();
        dg.commit_shards([outcome]);
        assert_eq!(dg.rejected(), 1);
        assert_eq!(dg.version(), 0);
    }

    #[test]
    fn node_arrival_grows_universe_and_allows_rejoin() {
        let mut dg = DynamicGraph::new(square(), true);
        assert_eq!(dg.num_nodes(), 4);
        assert_eq!(
            dg.apply(GraphMutation::AddNode { node: 6 }),
            MutationEffect::NodeArrived
        );
        assert_eq!(dg.num_nodes(), 7);
        assert!(dg.is_live(6));
        // Ids skipped by the growth stay vacant.
        assert!(!dg.is_live(4) && !dg.is_live(5));
        assert_eq!(dg.live_count(), 5);
        // Duplicate arrival is rejected.
        assert_eq!(
            dg.apply(GraphMutation::AddNode { node: 6 }),
            MutationEffect::Rejected
        );
        // The new node can take edges before any compaction.
        assert_eq!(
            dg.apply(GraphMutation::AddEdge {
                src: 6,
                dst: 0,
                weight: 2.0
            }),
            MutationEffect::TopologyChanged
        );
        assert_eq!(dg.degree(6), 1);
        assert!(dg.has_edge(0, 6));
        let base = dg.materialize();
        assert_eq!(base.num_nodes(), 7);
        assert_eq!(base.neighbors(6), &[0]);
        assert_eq!(base.degree(4), 0);

        // Retire and rejoin: the id comes back live with empty adjacency.
        assert_eq!(
            dg.apply(GraphMutation::RemoveNode { node: 6 }),
            MutationEffect::NodeRetired
        );
        assert!(!dg.is_live(6));
        assert_eq!(
            dg.apply(GraphMutation::AddNode { node: 6 }),
            MutationEffect::NodeArrived
        );
        assert!(dg.is_live(6));
        assert_eq!(dg.degree(6), 0);
    }

    #[test]
    fn node_retirement_drops_incident_edges_symmetric() {
        let mut dg = DynamicGraph::new(square(), true);
        assert_eq!(
            dg.apply(GraphMutation::RemoveNode { node: 0 }),
            MutationEffect::NodeRetired
        );
        assert_eq!(dg.degree(0), 0);
        assert!(!dg.has_edge(1, 0));
        assert!(!dg.has_edge(3, 0));
        assert!(!dg.is_live(0));
        // Removing a dead id again is rejected.
        assert_eq!(
            dg.apply(GraphMutation::RemoveNode { node: 0 }),
            MutationEffect::Rejected
        );
        // Edge ops naming the retired endpoint are rejected.
        assert_eq!(
            dg.apply(GraphMutation::AddEdge {
                src: 1,
                dst: 0,
                weight: 1.0
            }),
            MutationEffect::Rejected
        );
        let base = dg.materialize();
        assert_eq!(base.degree(0), 0);
        assert_eq!(base.neighbors(1), &[2]);
    }

    #[test]
    fn node_retirement_drops_in_edges_directed() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 2, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 3, 1.0);
        let g = b.symmetric(false).build();
        let mut dg = DynamicGraph::new(g, false);
        assert_eq!(
            dg.apply(GraphMutation::RemoveNode { node: 2 }),
            MutationEffect::NodeRetired
        );
        assert_eq!(dg.degree(2), 0);
        assert!(!dg.has_edge(0, 2), "in-edge 0->2 survived retirement");
        assert!(!dg.has_edge(1, 2), "in-edge 1->2 survived retirement");
        assert!(!dg.has_edge(2, 3));
    }

    #[test]
    fn compact_materializes_grown_rows_even_without_pending_edges() {
        let mut dg = DynamicGraph::new(square(), true);
        dg.apply(GraphMutation::AddNode { node: 5 });
        assert_eq!(dg.pending(), 0);
        let touched = dg.compact();
        assert_eq!(touched, vec![5]);
        assert_eq!(dg.base().num_nodes(), 6);
        assert_eq!(dg.base().degree(5), 0);
    }

    #[test]
    fn with_universe_restores_liveness() {
        let mut live = vec![true; 4];
        live[2] = false;
        let dg = DynamicGraph::with_universe(square(), true, live);
        assert!(!dg.is_live(2));
        assert_eq!(dg.live_count(), 3);
        assert_eq!(dg.live_mask(), &[true, true, false, true]);
    }

    #[test]
    fn overlay_stats_track_pending_work() {
        let mut dg = DynamicGraph::new(square(), false);
        dg.apply(GraphMutation::AddEdge {
            src: 0,
            dst: 2,
            weight: 1.0,
        });
        dg.apply(GraphMutation::RemoveEdge { src: 1, dst: 2 });
        let s = dg.overlay_stats();
        assert_eq!(s.dirty_vertices, 2);
        assert_eq!(s.pending_inserts, 1);
        assert_eq!(s.pending_deletes, 1);
        assert_eq!(dg.pending(), 2);
    }
}
