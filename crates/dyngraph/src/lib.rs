//! # uninet-dyngraph
//!
//! Dynamic-graph subsystem: streaming edge updates with incremental sampler
//! maintenance and walk refresh.
//!
//! The UniNet paper's central systems claim is that its Metropolis–Hastings
//! edge sampler needs O(1) time *and* memory per walker state and samples
//! from **unnormalized** weight distributions. The consequence this crate
//! exercises: when the graph changes under live traffic, M-H sampler state
//! survives weight mutations with **zero** rebuild work, while the alias
//! tables used by node2vec's reference implementation (and KnightKing's
//! proposal step) must re-materialize every affected O(deg)-sized table.
//!
//! Components:
//!
//! * [`GraphMutation`] / [`UpdateBatch`] — the mutation event API.
//! * [`DynamicGraph`] — an immutable CSR base plus per-vertex delta overlay
//!   (insert/delete logs, in-place reweights) with periodic compaction.
//! * [`IncrementalMaintainer`] — propagates each batch into sampler state:
//!   M-H chains are kept alive across weight changes; alias/KnightKing/
//!   memory-aware samplers get targeted invalidation and rebuild of only the
//!   affected buckets in the `SamplerManager`'s 2D index.
//! * [`WalkRefresher`] — finds walks whose trajectories pass through mutated
//!   vertices (inverted node → walk index) and regenerates only those.
//! * [`stream`] — a plain-text edge-update stream format plus batching, used
//!   by the `uninet --updates` CLI streaming mode.
//!
//! `uninet-ingest` drives these components concurrently (sharded application,
//! parallel maintenance), and `uninet-core`'s `Engine::stream` wraps the
//! whole pipeline in a session the embedding query service stays live under.
//!
//! ## Example
//!
//! ```
//! use uninet_dyngraph::{DynamicGraph, GraphMutation, IncrementalMaintainer, UpdateBatch};
//! use uninet_graph::GraphBuilder;
//! use uninet_sampler::{EdgeSamplerKind, InitStrategy};
//! use uninet_walker::models::DeepWalk;
//! use uninet_walker::SamplerManager;
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 1, 1.0);
//! b.add_edge(1, 2, 1.0);
//! b.add_edge(2, 0, 1.0);
//! let graph = b.symmetric(true).build();
//!
//! let model = DeepWalk::new();
//! let mut dg = DynamicGraph::new(graph, true);
//! let mut manager = SamplerManager::new(
//!     dg.base(),
//!     &model,
//!     EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
//!     0,
//! );
//!
//! let mut batch = UpdateBatch::new();
//! batch.update_weight(0, 1, 5.0);
//! let report = IncrementalMaintainer::default()
//!     .apply_batch(&mut dg, &mut manager, &model, &batch);
//! assert_eq!(report.weight_mutations, 1);
//! // The reweight preserved the M-H chain state of node 0's bucket:
//! assert!(report.maintenance.chains_preserved > 0);
//! ```

pub mod dynamic;
pub mod maintain;
pub mod mutation;
pub mod refresh;
pub mod stream;

pub use dynamic::{DynamicGraph, MutationEffect, OverlayStats, ShardOutcome, ShardView};
pub use maintain::{BatchReport, IncrementalMaintainer, MaintainerConfig};
pub use mutation::{GraphMutation, UpdateBatch};
pub use refresh::{RefreshStats, WalkRefresher};
pub use stream::{
    into_batches, parse_line, read_update_stream, read_update_stream_file,
    read_update_stream_validated, read_update_stream_validated_file, ParseIssue, StreamError,
    StreamValidator,
};
