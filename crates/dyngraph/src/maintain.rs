//! [`IncrementalMaintainer`]: propagates update batches into the graph and
//! the sampler state, with per-family cost accounting.
//!
//! The core asymmetry it demonstrates (the paper's dynamic-workload claim):
//!
//! * Weight-only batches cost the **M-H backend nothing** — chains read
//!   unnormalized weights on demand, so the write to the CSR weight array is
//!   the entire update.
//! * The same batch forces **alias-family backends** to rebuild every
//!   materialized table over a touched node at O(deg) per state.
//! * Topology batches are buffered in the overlay and amortized: compaction
//!   back into CSR plus targeted invalidation of only the affected buckets.

use std::time::{Duration, Instant};

use uninet_graph::NodeId;
use uninet_walker::{MaintenanceStats, RandomWalkModel, SamplerManager};

use crate::dynamic::{DynamicGraph, MutationEffect};
use crate::mutation::{GraphMutation, UpdateBatch};

/// Tuning knobs of the maintainer.
#[derive(Debug, Clone, Copy)]
pub struct MaintainerConfig {
    /// Pending overlay entries (inserts + deletes) that trigger compaction of
    /// the delta overlay back into CSR. 0 compacts after every
    /// topology-changing batch.
    pub compaction_threshold: usize,
}

impl Default for MaintainerConfig {
    fn default() -> Self {
        MaintainerConfig {
            compaction_threshold: 1024,
        }
    }
}

/// What one [`IncrementalMaintainer::apply_batch`] call did.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// Mutations that changed only weights.
    pub weight_mutations: usize,
    /// Mutations that changed topology.
    pub topology_mutations: usize,
    /// Mutations rejected (missing edge / out-of-range node / self-loop).
    pub rejected_mutations: usize,
    /// Ids declared live by this batch (in application order, deduped).
    pub arrivals: Vec<NodeId>,
    /// Ids retired by this batch (in application order, deduped).
    pub retirements: Vec<NodeId>,
    /// Nodes whose sampler buckets were maintained on the weight path.
    pub weight_touched: Vec<NodeId>,
    /// Whether this batch triggered a compaction.
    pub compacted: bool,
    /// Nodes invalidated by the compaction (empty if `!compacted`).
    pub topology_touched: Vec<NodeId>,
    /// Sampler maintenance cost accounting for this batch.
    pub maintenance: MaintenanceStats,
    /// Time spent applying mutations to the dynamic graph.
    pub apply_time: Duration,
    /// Time spent repairing sampler state (incl. compaction).
    pub maintain_time: Duration,
}

impl BatchReport {
    /// Folds one mutation's `(forward, mirror)` effects into the tallies:
    /// touched nodes on the weight path, and the weight/topology/rejected
    /// classification. This is the single source of truth for report
    /// bookkeeping, shared by the serial maintainer and the sharded ingest
    /// path (`uninet-ingest`), so the two can never drift.
    ///
    /// `weight_touched` entries are appended unsorted; callers dedup once per
    /// batch before sampler maintenance.
    pub fn record_effects(
        &mut self,
        m: GraphMutation,
        (forward, mirror): (MutationEffect, MutationEffect),
    ) {
        let (src, dst) = m.endpoints();
        // On an asymmetric base one direction may insert while the other
        // reweights in place; both sides need their maintenance.
        if forward == MutationEffect::Reweighted {
            self.weight_touched.push(src);
        }
        if mirror == MutationEffect::Reweighted {
            self.weight_touched.push(dst);
        }
        match (forward, mirror) {
            (MutationEffect::NodeArrived, _) => {
                self.arrivals.push(src);
                self.topology_mutations += 1;
            }
            (MutationEffect::NodeRetired, _) => {
                self.retirements.push(src);
                self.topology_mutations += 1;
            }
            (MutationEffect::TopologyChanged, _) | (_, MutationEffect::TopologyChanged) => {
                self.topology_mutations += 1;
            }
            (MutationEffect::Reweighted, _) | (_, MutationEffect::Reweighted) => {
                self.weight_mutations += 1;
            }
            _ => {
                self.rejected_mutations += 1;
            }
        }
    }

    /// Accumulates another report into this one.
    pub fn merge(&mut self, other: &BatchReport) {
        self.weight_mutations += other.weight_mutations;
        self.topology_mutations += other.topology_mutations;
        self.rejected_mutations += other.rejected_mutations;
        self.arrivals.extend_from_slice(&other.arrivals);
        self.retirements.extend_from_slice(&other.retirements);
        self.compacted |= other.compacted;
        self.maintenance.merge(&other.maintenance);
        self.apply_time += other.apply_time;
        self.maintain_time += other.maintain_time;
    }
}

/// Propagates [`UpdateBatch`]es into a [`DynamicGraph`] and the
/// [`SamplerManager`] serving walkers over it.
#[derive(Debug, Clone, Copy, Default)]
pub struct IncrementalMaintainer {
    config: MaintainerConfig,
}

impl IncrementalMaintainer {
    /// Creates a maintainer with the given configuration.
    pub fn new(config: MaintainerConfig) -> Self {
        IncrementalMaintainer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &MaintainerConfig {
        &self.config
    }

    /// Applies one batch to the graph, then repairs sampler state.
    ///
    /// Weight changes are maintained immediately (they are visible to walkers
    /// right away); topology changes accumulate in the overlay until the
    /// compaction threshold is reached, at which point the CSR is rebuilt and
    /// only the buckets of mutated nodes (plus, for second-order models, their
    /// neighbors, whose dynamic weights read the mutated adjacency) are
    /// invalidated.
    pub fn apply_batch<M: RandomWalkModel + ?Sized>(
        &self,
        graph: &mut DynamicGraph,
        manager: &mut SamplerManager,
        model: &M,
        batch: &UpdateBatch,
    ) -> BatchReport {
        let mut report = BatchReport::default();

        let t0 = Instant::now();
        for &m in batch.mutations() {
            let effects = graph.apply_with_effects(m);
            report.record_effects(m, effects);
        }
        report.weight_touched.sort_unstable();
        report.weight_touched.dedup();
        report.apply_time = t0.elapsed();

        let t1 = Instant::now();
        if !report.weight_touched.is_empty() {
            let touched = std::mem::take(&mut report.weight_touched);
            // The sampler's bucket layout covers the base CSR. An id that
            // arrived *in this batch* lives only in the overlay until the
            // forced compaction below, which rebuilds its bucket from the
            // merged weights — maintaining it here would index past the
            // layout. Ids already in the base are maintained immediately.
            let covered: Vec<NodeId> = touched
                .iter()
                .copied()
                .filter(|&v| (v as usize) < graph.base().num_nodes())
                .collect();
            if !covered.is_empty() {
                report
                    .maintenance
                    .merge(&manager.maintain_weights(graph.base(), model, &covered));
            }
            report.weight_touched = touched;
        }

        // Effective node ops force compaction regardless of the threshold:
        // the base CSR, the sampler's bucket layout and the walk refresher
        // must all see the new universe at once, or walkers would read rows
        // that don't exist yet.
        let universe_changed = !report.arrivals.is_empty() || !report.retirements.is_empty();
        if universe_changed
            || (report.topology_mutations > 0 && graph.pending() >= self.config.compaction_threshold)
        {
            report.merge_compaction(self.compact_now(graph, manager, model));
        }
        report.maintain_time = t1.elapsed();
        report
    }

    /// Forces compaction and sampler re-alignment regardless of the threshold
    /// (used at end-of-stream and before retraining embeddings).
    pub fn flush<M: RandomWalkModel + ?Sized>(
        &self,
        graph: &mut DynamicGraph,
        manager: &mut SamplerManager,
        model: &M,
    ) -> BatchReport {
        let mut report = BatchReport::default();
        let t = Instant::now();
        if graph.pending() > 0 || graph.num_nodes() != graph.base().num_nodes() {
            report.merge_compaction(self.compact_now(graph, manager, model));
        }
        report.maintain_time = t.elapsed();
        report
    }

    fn compact_now<M: RandomWalkModel + ?Sized>(
        &self,
        graph: &mut DynamicGraph,
        manager: &mut SamplerManager,
        model: &M,
    ) -> (Vec<NodeId>, MaintenanceStats) {
        // Two invalidation sets: nodes whose own adjacency changed (their
        // buckets are structurally wrong for every backend), and — for
        // second-order models whose dynamic weights probe other nodes'
        // adjacency (e.g. node2vec's d(prev, u) test) — their neighborhoods,
        // whose *materialized* distributions are stale but whose M-H chains
        // are still valid (chains never materialize weights).
        let mut mutated: Vec<NodeId> = graph.touched_since_compaction().collect();
        mutated.sort_unstable();
        let mut stale: Vec<NodeId> = Vec::new();
        if model.is_second_order() {
            for &v in &mutated {
                stale.extend(graph.neighbors(v));
                // Also the pre-compaction neighbors: nodes that pointed at a
                // now-deleted edge still hold stale materialized state.
                // Arrived nodes have no base row yet, hence the range guard.
                if (v as usize) < graph.base().num_nodes() {
                    stale.extend(graph.base().neighbors(v).iter().copied());
                }
            }
            stale.sort_unstable();
            stale.dedup();
            stale.retain(|v| mutated.binary_search(v).is_err());
        }

        graph.compact();
        let stats = manager.maintain_topology(graph.base(), model, &mutated, &stale);
        let mut touched = mutated;
        touched.extend(stale);
        touched.sort_unstable();
        (touched, stats)
    }
}

impl BatchReport {
    fn merge_compaction(&mut self, (touched, stats): (Vec<NodeId>, MaintenanceStats)) {
        self.compacted = true;
        self.topology_touched = touched;
        self.maintenance.merge(&stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use uninet_graph::generators::{barabasi_albert, rmat, RmatConfig};
    use uninet_sampler::{EdgeSamplerKind, InitStrategy};
    use uninet_walker::models::{DeepWalk, Node2Vec};
    use uninet_walker::WalkerState;

    fn test_graph() -> uninet_graph::Graph {
        rmat(&RmatConfig {
            num_nodes: 120,
            num_edges: 900,
            weighted: true,
            seed: 5,
            ..Default::default()
        })
    }

    fn reweight_batch(g: &DynamicGraph, count: usize) -> UpdateBatch {
        let mut batch = UpdateBatch::new();
        let mut added = 0;
        'outer: for v in 0..g.num_nodes() as NodeId {
            for dst in g.neighbors(v) {
                if added >= count {
                    break 'outer;
                }
                batch.update_weight(v, dst, 3.0 + added as f32);
                added += 1;
            }
        }
        batch
    }

    #[test]
    fn weight_batch_costs_mh_nothing_and_alias_rebuilds() {
        let base = test_graph();
        let model = DeepWalk::new();
        let maintainer = IncrementalMaintainer::default();

        let mut dg_mh = DynamicGraph::new(base.clone(), true);
        let mut mh = SamplerManager::new(
            dg_mh.base(),
            &model,
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
            0,
        );
        let batch = reweight_batch(&dg_mh, 16);
        let r = maintainer.apply_batch(&mut dg_mh, &mut mh, &model, &batch);
        assert_eq!(r.weight_mutations, 16);
        assert_eq!(r.maintenance.states_rebuilt, 0);
        assert!(r.maintenance.chains_preserved > 0);
        assert_eq!(r.maintenance.bytes_rebuilt, 0);

        let mut dg_alias = DynamicGraph::new(base, true);
        let mut alias = SamplerManager::new(dg_alias.base(), &model, EdgeSamplerKind::Alias, 0);
        let r = maintainer.apply_batch(&mut dg_alias, &mut alias, &model, &batch);
        assert!(r.maintenance.states_rebuilt > 0);
        assert!(r.maintenance.bytes_rebuilt > 0);
    }

    #[test]
    fn weight_update_changes_sampling_distribution_without_rebuild() {
        // One hub node with two equal-weight neighbors; after reweighting one
        // edge 9:1 the M-H chain must track the new target with no
        // maintenance call beyond the in-place weight write.
        let mut b = uninet_graph::GraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(1, 2, 1.0);
        let g = b.symmetric(true).build();
        let model = DeepWalk::new();
        let mut dg = DynamicGraph::new(g, true);
        let mut manager = SamplerManager::new(
            dg.base(),
            &model,
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
            0,
        );
        let maintainer = IncrementalMaintainer::default();
        let mut batch = UpdateBatch::new();
        batch.update_weight(0, 1, 9.0);
        maintainer.apply_batch(&mut dg, &mut manager, &model, &batch);

        let mut rng = SmallRng::seed_from_u64(11);
        let state = WalkerState::at(0);
        let mut hits = [0usize; 2];
        for _ in 0..40_000 {
            let k = manager.sample(dg.base(), &model, state, &mut rng).unwrap();
            hits[k] += 1;
        }
        let frac = hits[0] as f64 / 40_000.0;
        assert!((frac - 0.9).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    fn topology_batch_compacts_at_threshold() {
        let base = barabasi_albert(200, 3, true, 9);
        let model = Node2Vec::new(0.5, 2.0);
        let maintainer = IncrementalMaintainer::new(MaintainerConfig {
            compaction_threshold: 4,
        });
        let mut dg = DynamicGraph::new(base, true);
        let mut manager = SamplerManager::new(
            dg.base(),
            &model,
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
            0,
        );

        let mut batch = UpdateBatch::new();
        batch.add_edge(0, 50, 1.0);
        let r = maintainer.apply_batch(&mut dg, &mut manager, &model, &batch);
        assert!(!r.compacted, "below threshold");
        assert_eq!(dg.pending(), 2); // symmetric insert

        let mut batch = UpdateBatch::new();
        batch.add_edge(1, 60, 1.0);
        let r = maintainer.apply_batch(&mut dg, &mut manager, &model, &batch);
        assert!(r.compacted, "threshold reached");
        assert_eq!(dg.pending(), 0);
        assert!(dg.base().has_edge(0, 50));
        assert!(dg.base().has_edge(1, 60));
        assert!(r.topology_touched.contains(&0));
        assert!(r.topology_touched.contains(&50));
        // node2vec buckets: one state per edge — manager must track new layout.
        assert_eq!(manager.num_states(), dg.base().num_edges());
    }

    #[test]
    fn asymmetric_base_mirror_reweight_is_maintained() {
        // Directed base with only (1,0): a symmetric AddEdge(0,1) inserts the
        // forward edge and upsert-reweights the mirror in place. The alias
        // table of node 1 must be rebuilt or it keeps sampling the old
        // distribution forever.
        let mut b = uninet_graph::GraphBuilder::new();
        b.add_edge(1, 0, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(2, 0, 1.0);
        let g = b.symmetric(false).build();
        let model = DeepWalk::new();
        let mut dg = DynamicGraph::new(g, true);
        let mut manager = SamplerManager::new(dg.base(), &model, EdgeSamplerKind::Alias, 0);
        let maintainer = IncrementalMaintainer::default();
        let mut batch = UpdateBatch::new();
        batch.add_edge(0, 1, 9.0);
        let r = maintainer.apply_batch(&mut dg, &mut manager, &model, &batch);
        assert_eq!(r.topology_mutations, 1);
        assert!(
            r.weight_touched.contains(&1),
            "mirror reweight of node 1 not maintained"
        );
        assert!(r.maintenance.states_rebuilt > 0);

        // Node 1's rebuilt table must reflect the 9.0 weight on (1,0).
        let mut rng = SmallRng::seed_from_u64(3);
        let state = model.initial_state(dg.base(), 1);
        let deg = dg.base().degree(1);
        let k0 = dg.base().find_neighbor(1, 0).unwrap();
        let mut hits = vec![0usize; deg];
        for _ in 0..20_000 {
            hits[manager.sample(dg.base(), &model, state, &mut rng).unwrap()] += 1;
        }
        let frac = hits[k0] as f64 / 20_000.0;
        assert!((frac - 0.9).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    fn second_order_compaction_keeps_neighbor_chains() {
        // node2vec (second-order): inserting one edge must reset only the
        // endpoints' buckets; neighbors' M-H chains are stale-distribution
        // but structurally valid and must be carried over.
        let base = barabasi_albert(150, 4, true, 13);
        let model = Node2Vec::new(0.5, 2.0);
        let mut dg = DynamicGraph::new(base, true);
        let mut manager = SamplerManager::new(
            dg.base(),
            &model,
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
            0,
        );
        let src = 0u32;
        let dst = (1..150u32)
            .find(|&v| !dg.has_edge(src, v))
            .expect("hub connected to every node");
        let maintainer = IncrementalMaintainer::new(MaintainerConfig {
            compaction_threshold: 0,
        });
        let mut batch = UpdateBatch::new();
        batch.add_edge(src, dst, 1.0);
        let r = maintainer.apply_batch(&mut dg, &mut manager, &model, &batch);
        assert!(r.compacted);
        let expected_reset = dg.base().degree(src) + dg.base().degree(dst);
        assert_eq!(
            r.maintenance.chains_reset, expected_reset,
            "only the endpoints' buckets should reset"
        );
        assert!(r.maintenance.chains_preserved > 0);
    }

    #[test]
    fn node_ops_force_compaction_and_grow_sampler_state() {
        let base = test_graph();
        let n0 = base.num_nodes();
        let model = DeepWalk::new();
        // Huge threshold: only the node ops can trigger the compaction.
        let maintainer = IncrementalMaintainer::new(MaintainerConfig {
            compaction_threshold: 1_000_000,
        });
        let mut dg = DynamicGraph::new(base, true);
        let mut manager = SamplerManager::new(dg.base(), &model, EdgeSamplerKind::Alias, 0);

        let mut batch = UpdateBatch::new();
        batch.add_node(n0 as NodeId);
        batch.add_edge(n0 as NodeId, 3, 2.0);
        batch.remove_node(7);
        let r = maintainer.apply_batch(&mut dg, &mut manager, &model, &batch);
        assert!(r.compacted, "node ops must force compaction");
        assert_eq!(r.arrivals, vec![n0 as NodeId]);
        assert_eq!(r.retirements, vec![7]);
        assert_eq!(dg.base().num_nodes(), n0 + 1);
        assert_eq!(dg.base().degree(7), 0);
        assert!(dg.base().has_edge(n0 as NodeId, 3));
        // DeepWalk: one state per node — the manager grew with the universe.
        assert_eq!(manager.num_states(), n0 + 1);

        // The arrived node samples, the retired node is stuck.
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(manager
            .sample(dg.base(), &model, WalkerState::at(n0 as NodeId), &mut rng)
            .is_some());
        assert!(manager
            .sample(dg.base(), &model, WalkerState::at(7), &mut rng)
            .is_none());

        // Rejected node ops alone must not force a compaction.
        let mut batch = UpdateBatch::new();
        batch.add_node(3); // already live
        let r = maintainer.apply_batch(&mut dg, &mut manager, &model, &batch);
        assert_eq!(r.rejected_mutations, 1);
        assert!(!r.compacted);
    }

    #[test]
    fn flush_compacts_leftovers() {
        let base = test_graph();
        let model = DeepWalk::new();
        let maintainer = IncrementalMaintainer::new(MaintainerConfig {
            compaction_threshold: 1_000_000,
        });
        let mut dg = DynamicGraph::new(base, true);
        let mut manager = SamplerManager::new(
            dg.base(),
            &model,
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
            0,
        );
        let mut batch = UpdateBatch::new();
        batch.add_edge(3, 77, 2.0);
        let r = maintainer.apply_batch(&mut dg, &mut manager, &model, &batch);
        assert!(!r.compacted);
        assert!(dg.pending() > 0);
        let r = maintainer.flush(&mut dg, &mut manager, &model);
        assert!(r.compacted);
        assert_eq!(dg.pending(), 0);
        assert!(dg.base().has_edge(3, 77));
        assert_eq!(manager.num_states(), dg.base().num_nodes());
    }

    #[test]
    fn same_batch_arrival_plus_reweight_stays_in_the_bucket_layout() {
        // Regression: a batch that declares an id past the base CSR, wires
        // it in and reweights the new edge used to run weight maintenance
        // against the pre-compaction bucket layout, indexing past its end.
        // The arrived id's bucket is instead built by the same batch's
        // forced compaction, from the merged (reweighted) adjacency.
        let base = test_graph();
        let n = base.num_nodes() as NodeId;
        let model = DeepWalk::new();
        let maintainer = IncrementalMaintainer::default();
        let mut dg = DynamicGraph::new(base, true);
        let mut manager = SamplerManager::new(dg.base(), &model, EdgeSamplerKind::Alias, 0);

        let mut batch = UpdateBatch::new();
        batch.add_node(n);
        batch.add_edge(n, 3, 1.0);
        batch.update_weight(n, 3, 4.5);
        let r = maintainer.apply_batch(&mut dg, &mut manager, &model, &batch);

        assert_eq!(r.arrivals, vec![n]);
        assert!(r.compacted, "a universe change forces compaction");
        assert_eq!(manager.num_states(), dg.base().num_nodes());
        assert_eq!(dg.weight(n, 3), Some(4.5));
        assert_eq!(dg.weight(3, n), Some(4.5), "mirror reweighted too");
        // The new bucket is usable immediately.
        let state = model.initial_state(dg.base(), n);
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(manager.sample(dg.base(), &model, state, &mut rng).is_some());
    }
}
