//! Edge-update stream I/O: a plain-text event format, semantic validation
//! against the open-world node universe, and batching helpers.
//!
//! Format (whitespace separated, `#`/`%` comments ignored):
//!
//! ```text
//! add <src> <dst> [weight]     # or: + <src> <dst> [weight]
//! del <src> <dst>              # or: - <src> <dst>
//! w   <src> <dst> <weight>     # or: ~ <src> <dst> <weight>   (reweight)
//! addnode <node>               # or: +n <node>   (node arrival)
//! rmnode  <node>               # or: -n <node>   (node retirement)
//! ```
//!
//! [`StreamValidator`] / [`read_update_stream_validated`] additionally track
//! the id lifecycle (live → retired → rejoined) so that duplicate arrivals,
//! retirements of unknown ids and edge ops naming retired endpoints are
//! reported as typed [`ParseIssue`]s with `file:line` context instead of
//! being silently skipped downstream.

use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};

use uninet_graph::NodeId;

use crate::mutation::{GraphMutation, UpdateBatch};

/// Why a single event line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseIssue {
    /// A required field was absent.
    MissingField(&'static str),
    /// A field was present but not a valid number.
    InvalidNumber {
        /// Which field failed (`src`, `dst`, `weight`).
        field: &'static str,
        /// The offending token.
        token: String,
    },
    /// The opcode was not one of `add`/`del`/`w`/`addnode`/`rmnode` (or
    /// their aliases).
    UnknownOp(String),
    /// An `addnode` named an id that is already live.
    DuplicateAddNode {
        /// The duplicated id.
        node: NodeId,
    },
    /// An op referenced an id that was never declared (out of range of the
    /// initial universe and never introduced by an `addnode`).
    UnknownNode {
        /// The undeclared id.
        node: NodeId,
        /// The op that referenced it.
        op: &'static str,
    },
    /// An op referenced an id that has been retired by an earlier `rmnode`.
    RetiredEndpoint {
        /// The retired id.
        node: NodeId,
        /// The op that referenced it.
        op: &'static str,
    },
}

impl std::fmt::Display for ParseIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseIssue::MissingField(field) => write!(f, "missing {field}"),
            ParseIssue::InvalidNumber { field, token } => {
                write!(f, "invalid {field}: {token:?}")
            }
            ParseIssue::UnknownOp(op) => write!(f, "unknown op {op:?}"),
            ParseIssue::DuplicateAddNode { node } => {
                write!(f, "duplicate addnode: id {node} is already live")
            }
            ParseIssue::UnknownNode { node, op } => {
                write!(f, "{op} references undeclared node {node}")
            }
            ParseIssue::RetiredEndpoint { node, op } => {
                write!(f, "{op} references retired node {node}")
            }
        }
    }
}

impl std::error::Error for ParseIssue {}

/// Errors produced while reading an update stream.
///
/// Both variants carry the source file (when the stream came from one) so
/// `Display` can point at `file:line` like a compiler diagnostic.
#[derive(Debug)]
pub enum StreamError {
    /// A line could not be parsed as an update event.
    Parse {
        /// Source file, if the stream was read from one.
        path: Option<PathBuf>,
        /// 1-based line number.
        line: usize,
        /// The offending line content.
        content: String,
        /// What exactly was wrong with the line.
        issue: ParseIssue,
    },
    /// An I/O error occurred.
    Io {
        /// Source file, if the stream was read from one.
        path: Option<PathBuf>,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl StreamError {
    /// Attaches a source path to an error that was produced without one.
    pub fn with_path<P: AsRef<Path>>(self, p: P) -> Self {
        let p = p.as_ref().to_path_buf();
        match self {
            StreamError::Parse {
                line,
                content,
                issue,
                ..
            } => StreamError::Parse {
                path: Some(p),
                line,
                content,
                issue,
            },
            StreamError::Io { source, .. } => StreamError::Io {
                path: Some(p),
                source,
            },
        }
    }
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Parse {
                path,
                line,
                content,
                issue,
            } => match path {
                Some(p) => write!(
                    f,
                    "cannot parse update at {}:{line}: {content:?} ({issue})",
                    p.display()
                ),
                None => write!(
                    f,
                    "cannot parse update at line {line}: {content:?} ({issue})"
                ),
            },
            StreamError::Io { path, source } => match path {
                Some(p) => write!(f, "cannot read update stream {}: {source}", p.display()),
                None => write!(f, "i/o error: {source}"),
            },
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Parse { issue, .. } => Some(issue),
            StreamError::Io { source, .. } => Some(source),
        }
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io {
            path: None,
            source: e,
        }
    }
}

/// Parses one event line (`None` for blanks and comments).
pub fn parse_line(line: &str) -> Result<Option<GraphMutation>, ParseIssue> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
        return Ok(None);
    }
    let mut it = line.split_whitespace();
    let op = it.next().ok_or(ParseIssue::MissingField("op"))?;
    // Validate the opcode first so a garbage line is diagnosed as an unknown
    // op rather than as a bad operand of an op that was never recognized.
    if !matches!(
        op,
        "add" | "+" | "del" | "-" | "w" | "~" | "reweight" | "addnode" | "+n" | "rmnode" | "-n"
    ) {
        return Err(ParseIssue::UnknownOp(op.to_string()));
    }
    let node = |tok: Option<&str>, field: &'static str| -> Result<NodeId, ParseIssue> {
        let tok = tok.ok_or(ParseIssue::MissingField(field))?;
        tok.parse().map_err(|_| ParseIssue::InvalidNumber {
            field,
            token: tok.to_string(),
        })
    };
    // Node ops carry a single id operand.
    match op {
        "addnode" | "+n" => {
            return Ok(Some(GraphMutation::AddNode {
                node: node(it.next(), "node")?,
            }))
        }
        "rmnode" | "-n" => {
            return Ok(Some(GraphMutation::RemoveNode {
                node: node(it.next(), "node")?,
            }))
        }
        _ => {}
    }
    let src = node(it.next(), "src")?;
    let dst = node(it.next(), "dst")?;
    let weight =
        |it: &mut dyn Iterator<Item = &str>, default: Option<f32>| -> Result<f32, ParseIssue> {
            match it.next() {
                Some(tok) => tok.parse::<f32>().map_err(|_| ParseIssue::InvalidNumber {
                    field: "weight",
                    token: tok.to_string(),
                }),
                None => default.ok_or(ParseIssue::MissingField("weight")),
            }
        };
    let m = match op {
        "add" | "+" => GraphMutation::AddEdge {
            src,
            dst,
            weight: weight(&mut it, Some(1.0))?,
        },
        "del" | "-" => GraphMutation::RemoveEdge { src, dst },
        "w" | "~" | "reweight" => GraphMutation::UpdateWeight {
            src,
            dst,
            weight: weight(&mut it, None)?,
        },
        _ => unreachable!("opcode validated above"),
    };
    Ok(Some(m))
}

/// Lifecycle of one id as seen by the [`StreamValidator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IdState {
    /// Declared and usable as an edge endpoint.
    Live,
    /// Retired by an `rmnode`; may rejoin via `addnode`.
    Retired,
    /// Inside the id range but never declared (skipped by a growth).
    Vacant,
}

/// Tracks the node-universe lifecycle across a stream of mutations so that
/// semantically invalid events are rejected with a typed [`ParseIssue`]
/// instead of being silently dropped by the dynamic graph later.
///
/// The validator mirrors [`crate::DynamicGraph`]'s acceptance rules exactly:
/// ids `0..initial_nodes` start live, `addnode` grows the universe (skipped
/// ids are *vacant*, not live), `rmnode` retires, a retired id may rejoin.
#[derive(Debug, Clone)]
pub struct StreamValidator {
    states: Vec<IdState>,
}

impl StreamValidator {
    /// A validator over a universe whose ids `0..initial_nodes` are live.
    pub fn new(initial_nodes: usize) -> Self {
        StreamValidator {
            states: vec![IdState::Live; initial_nodes],
        }
    }

    fn state(&self, v: NodeId) -> IdState {
        self.states
            .get(v as usize)
            .copied()
            .unwrap_or(IdState::Vacant)
    }

    fn endpoint_ok(&self, v: NodeId, op: &'static str) -> Result<(), ParseIssue> {
        match self.state(v) {
            IdState::Live => Ok(()),
            IdState::Retired => Err(ParseIssue::RetiredEndpoint { node: v, op }),
            IdState::Vacant => Err(ParseIssue::UnknownNode { node: v, op }),
        }
    }

    /// Checks `m` against the current universe and, when valid, records its
    /// effect on the id lifecycle.
    pub fn validate(&mut self, m: &GraphMutation) -> Result<(), ParseIssue> {
        match *m {
            GraphMutation::AddNode { node } => {
                if self.state(node) == IdState::Live {
                    return Err(ParseIssue::DuplicateAddNode { node });
                }
                let idx = node as usize;
                if idx >= self.states.len() {
                    self.states.resize(idx + 1, IdState::Vacant);
                }
                self.states[idx] = IdState::Live;
                Ok(())
            }
            GraphMutation::RemoveNode { node } => {
                self.endpoint_ok(node, "rmnode")?;
                self.states[node as usize] = IdState::Retired;
                Ok(())
            }
            GraphMutation::AddEdge { src, dst, .. } => {
                self.endpoint_ok(src, "add")?;
                self.endpoint_ok(dst, "add")
            }
            GraphMutation::RemoveEdge { src, dst } => {
                self.endpoint_ok(src, "del")?;
                self.endpoint_ok(dst, "del")
            }
            GraphMutation::UpdateWeight { src, dst, .. } => {
                self.endpoint_ok(src, "w")?;
                self.endpoint_ok(dst, "w")
            }
        }
    }
}

/// Reads a full update stream from any reader.
pub fn read_update_stream<R: Read>(reader: R) -> Result<Vec<GraphMutation>, StreamError> {
    let mut out = Vec::new();
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        match parse_line(&line) {
            Ok(Some(m)) => out.push(m),
            Ok(None) => {}
            Err(issue) => {
                return Err(StreamError::Parse {
                    path: None,
                    line: i + 1,
                    content: line,
                    issue,
                })
            }
        }
    }
    Ok(out)
}

/// Reads an update stream from a file; errors carry the path for context.
pub fn read_update_stream_file<P: AsRef<Path>>(path: P) -> Result<Vec<GraphMutation>, StreamError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| StreamError::Io {
        path: Some(path.to_path_buf()),
        source: e,
    })?;
    read_update_stream(file).map_err(|e| e.with_path(path))
}

/// [`read_update_stream`] plus semantic validation against a node universe
/// whose ids `0..initial_nodes` start live: duplicate arrivals, retirements
/// of undeclared ids and edge ops naming retired/undeclared endpoints are
/// typed parse errors with line context, never silent skips.
pub fn read_update_stream_validated<R: Read>(
    reader: R,
    initial_nodes: usize,
) -> Result<Vec<GraphMutation>, StreamError> {
    let mut validator = StreamValidator::new(initial_nodes);
    let mut out = Vec::new();
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let parsed = parse_line(&line).and_then(|m| {
            if let Some(m) = &m {
                validator.validate(m)?;
            }
            Ok(m)
        });
        match parsed {
            Ok(Some(m)) => out.push(m),
            Ok(None) => {}
            Err(issue) => {
                return Err(StreamError::Parse {
                    path: None,
                    line: i + 1,
                    content: line,
                    issue,
                })
            }
        }
    }
    Ok(out)
}

/// [`read_update_stream_validated`] over a file; errors carry the path.
pub fn read_update_stream_validated_file<P: AsRef<Path>>(
    path: P,
    initial_nodes: usize,
) -> Result<Vec<GraphMutation>, StreamError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| StreamError::Io {
        path: Some(path.to_path_buf()),
        source: e,
    })?;
    read_update_stream_validated(file, initial_nodes).map_err(|e| e.with_path(path))
}

/// Splits a mutation list into batches of at most `batch_size` events.
pub fn into_batches(mutations: &[GraphMutation], batch_size: usize) -> Vec<UpdateBatch> {
    let batch_size = batch_size.max(1);
    mutations
        .chunks(batch_size)
        .map(|c| UpdateBatch::from_mutations(c.to_vec()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_ops_and_aliases() {
        let text = "\
# comment
add 0 1 2.5
+ 1 2
del 2 3
- 3 4
w 4 5 0.5
~ 5 6 1.5
reweight 6 7 2.0
";
        let ms = read_update_stream(text.as_bytes()).unwrap();
        assert_eq!(ms.len(), 7);
        assert_eq!(
            ms[0],
            GraphMutation::AddEdge {
                src: 0,
                dst: 1,
                weight: 2.5
            }
        );
        assert_eq!(
            ms[1],
            GraphMutation::AddEdge {
                src: 1,
                dst: 2,
                weight: 1.0
            }
        );
        assert_eq!(ms[2], GraphMutation::RemoveEdge { src: 2, dst: 3 });
        assert_eq!(
            ms[4],
            GraphMutation::UpdateWeight {
                src: 4,
                dst: 5,
                weight: 0.5
            }
        );
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let err = read_update_stream("add 0 1\nbogus line\n".as_bytes()).unwrap_err();
        match &err {
            StreamError::Parse { line, issue, .. } => {
                assert_eq!(*line, 2);
                assert_eq!(*issue, ParseIssue::UnknownOp("bogus".to_string()));
            }
            other => panic!("unexpected: {other}"),
        }
        assert!(format!("{err}").contains("line 2"));
    }

    #[test]
    fn file_errors_carry_path_and_line_in_display() {
        let err = read_update_stream("w 1 nan-ish 2.0\n".as_bytes())
            .unwrap_err()
            .with_path("updates.txt");
        let msg = format!("{err}");
        assert!(msg.contains("updates.txt:1"), "missing file:line in {msg}");
        assert!(msg.contains("invalid dst"), "missing issue in {msg}");

        let missing = read_update_stream_file("/nonexistent/updates.txt").unwrap_err();
        assert!(format!("{missing}").contains("/nonexistent/updates.txt"));
    }

    #[test]
    fn parse_issues_are_typed() {
        assert_eq!(
            parse_line("add").unwrap_err(),
            ParseIssue::MissingField("src")
        );
        assert_eq!(
            parse_line("add 0").unwrap_err(),
            ParseIssue::MissingField("dst")
        );
        assert_eq!(
            parse_line("add x 1").unwrap_err(),
            ParseIssue::InvalidNumber {
                field: "src",
                token: "x".to_string()
            }
        );
        assert_eq!(
            parse_line("w 0 1 heavy").unwrap_err(),
            ParseIssue::InvalidNumber {
                field: "weight",
                token: "heavy".to_string()
            }
        );
        assert_eq!(
            parse_line("frob 0 1").unwrap_err(),
            ParseIssue::UnknownOp("frob".to_string())
        );
    }

    #[test]
    fn reweight_requires_weight() {
        assert!(parse_line("w 1 2").is_err());
        assert!(parse_line("w 1 2 3.0").unwrap().is_some());
        assert!(parse_line("   ").unwrap().is_none());
        assert!(parse_line("# x").unwrap().is_none());
    }

    #[test]
    fn parses_node_ops_and_aliases() {
        let ms = read_update_stream("addnode 9\n+n 10\nrmnode 9\n-n 10\n".as_bytes()).unwrap();
        assert_eq!(ms[0], GraphMutation::AddNode { node: 9 });
        assert_eq!(ms[1], GraphMutation::AddNode { node: 10 });
        assert_eq!(ms[2], GraphMutation::RemoveNode { node: 9 });
        assert_eq!(ms[3], GraphMutation::RemoveNode { node: 10 });
        assert_eq!(
            parse_line("addnode").unwrap_err(),
            ParseIssue::MissingField("node")
        );
        assert_eq!(
            parse_line("rmnode seven").unwrap_err(),
            ParseIssue::InvalidNumber {
                field: "node",
                token: "seven".to_string()
            }
        );
    }

    #[test]
    fn validator_accepts_legal_lifecycle() {
        // Universe 0..3 live; 5 arrives (4 stays vacant), takes edges,
        // retires, rejoins.
        let text = "\
addnode 5
add 5 0 2.0
rmnode 5
addnode 5
add 5 1
rmnode 2
";
        let ms = read_update_stream_validated(text.as_bytes(), 3).unwrap();
        assert_eq!(ms.len(), 6);
    }

    #[test]
    fn validator_rejects_duplicate_addnode() {
        let err = read_update_stream_validated("addnode 1\n".as_bytes(), 3).unwrap_err();
        match err {
            StreamError::Parse { line, issue, .. } => {
                assert_eq!(line, 1);
                assert_eq!(issue, ParseIssue::DuplicateAddNode { node: 1 });
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn validator_rejects_unknown_and_vacant_ids() {
        // rmnode of an id past the universe.
        let err = read_update_stream_validated("rmnode 7\n".as_bytes(), 3).unwrap_err();
        match err {
            StreamError::Parse { issue, .. } => {
                assert_eq!(
                    issue,
                    ParseIssue::UnknownNode {
                        node: 7,
                        op: "rmnode"
                    }
                );
            }
            other => panic!("unexpected: {other}"),
        }
        // Growth to id 5 leaves 4 vacant: edge ops on 4 are unknown-node.
        let err =
            read_update_stream_validated("addnode 5\nadd 0 4\n".as_bytes(), 3).unwrap_err();
        match err {
            StreamError::Parse { line, issue, .. } => {
                assert_eq!(line, 2);
                assert_eq!(issue, ParseIssue::UnknownNode { node: 4, op: "add" });
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn validator_rejects_retired_endpoints() {
        let text = "rmnode 1\nw 0 1 2.0\n";
        let err = read_update_stream_validated(text.as_bytes(), 3).unwrap_err();
        match err {
            StreamError::Parse { line, issue, .. } => {
                assert_eq!(line, 2);
                assert_eq!(issue, ParseIssue::RetiredEndpoint { node: 1, op: "w" });
            }
            other => panic!("unexpected: {other}"),
        }
        let msg = format!(
            "{}",
            read_update_stream_validated("del 0 1\nrmnode 0\nadd 0 2\n".as_bytes(), 3)
                .unwrap_err()
                .with_path("churn.txt")
        );
        assert!(msg.contains("churn.txt:3"), "missing file:line in {msg}");
        assert!(msg.contains("retired node 0"), "missing issue in {msg}");
    }

    #[test]
    fn batching_splits_evenly() {
        let ms: Vec<GraphMutation> = (0..10)
            .map(|i| GraphMutation::UpdateWeight {
                src: i,
                dst: i + 1,
                weight: 1.0,
            })
            .collect();
        let batches = into_batches(&ms, 4);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches[2].len(), 2);
        assert!(batches.iter().all(|b| b.is_weight_only()));
    }
}
