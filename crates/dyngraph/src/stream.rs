//! Edge-update stream I/O: a plain-text event format and batching helpers.
//!
//! Format (whitespace separated, `#`/`%` comments ignored):
//!
//! ```text
//! add <src> <dst> [weight]     # or: + <src> <dst> [weight]
//! del <src> <dst>              # or: - <src> <dst>
//! w   <src> <dst> <weight>     # or: ~ <src> <dst> <weight>   (reweight)
//! ```

use std::io::{BufRead, BufReader, Read};
use std::path::Path;

use uninet_graph::NodeId;

use crate::mutation::{GraphMutation, UpdateBatch};

/// Errors produced while parsing an update stream.
#[derive(Debug)]
pub enum StreamError {
    /// A line could not be parsed as an update event.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending line content.
        content: String,
    },
    /// An I/O error occurred.
    Io(std::io::Error),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Parse { line, content } => {
                write!(f, "cannot parse update at line {line}: {content:?}")
            }
            StreamError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

/// Parses one event line (`None` for blanks and comments).
pub fn parse_line(line: &str) -> Result<Option<GraphMutation>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
        return Ok(None);
    }
    let mut it = line.split_whitespace();
    let op = it.next().ok_or("missing op")?;
    let src: NodeId = it
        .next()
        .ok_or("missing src")?
        .parse()
        .map_err(|_| "bad src")?;
    let dst: NodeId = it
        .next()
        .ok_or("missing dst")?
        .parse()
        .map_err(|_| "bad dst")?;
    let weight =
        |it: &mut dyn Iterator<Item = &str>, default: Option<f32>| -> Result<f32, String> {
            match it.next() {
                Some(tok) => tok.parse::<f32>().map_err(|_| "bad weight".to_string()),
                None => default.ok_or_else(|| "missing weight".to_string()),
            }
        };
    let m = match op {
        "add" | "+" => GraphMutation::AddEdge {
            src,
            dst,
            weight: weight(&mut it, Some(1.0))?,
        },
        "del" | "-" => GraphMutation::RemoveEdge { src, dst },
        "w" | "~" | "reweight" => GraphMutation::UpdateWeight {
            src,
            dst,
            weight: weight(&mut it, None)?,
        },
        other => return Err(format!("unknown op {other:?}")),
    };
    Ok(Some(m))
}

/// Reads a full update stream from any reader.
pub fn read_update_stream<R: Read>(reader: R) -> Result<Vec<GraphMutation>, StreamError> {
    let mut out = Vec::new();
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        match parse_line(&line) {
            Ok(Some(m)) => out.push(m),
            Ok(None) => {}
            Err(_) => {
                return Err(StreamError::Parse {
                    line: i + 1,
                    content: line,
                })
            }
        }
    }
    Ok(out)
}

/// Reads an update stream from a file.
pub fn read_update_stream_file<P: AsRef<Path>>(path: P) -> Result<Vec<GraphMutation>, StreamError> {
    let file = std::fs::File::open(path)?;
    read_update_stream(file)
}

/// Splits a mutation list into batches of at most `batch_size` events.
pub fn into_batches(mutations: &[GraphMutation], batch_size: usize) -> Vec<UpdateBatch> {
    let batch_size = batch_size.max(1);
    mutations
        .chunks(batch_size)
        .map(|c| UpdateBatch::from_mutations(c.to_vec()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_ops_and_aliases() {
        let text = "\
# comment
add 0 1 2.5
+ 1 2
del 2 3
- 3 4
w 4 5 0.5
~ 5 6 1.5
reweight 6 7 2.0
";
        let ms = read_update_stream(text.as_bytes()).unwrap();
        assert_eq!(ms.len(), 7);
        assert_eq!(
            ms[0],
            GraphMutation::AddEdge {
                src: 0,
                dst: 1,
                weight: 2.5
            }
        );
        assert_eq!(
            ms[1],
            GraphMutation::AddEdge {
                src: 1,
                dst: 2,
                weight: 1.0
            }
        );
        assert_eq!(ms[2], GraphMutation::RemoveEdge { src: 2, dst: 3 });
        assert_eq!(
            ms[4],
            GraphMutation::UpdateWeight {
                src: 4,
                dst: 5,
                weight: 0.5
            }
        );
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let err = read_update_stream("add 0 1\nbogus line\n".as_bytes()).unwrap_err();
        match err {
            StreamError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn reweight_requires_weight() {
        assert!(parse_line("w 1 2").is_err());
        assert!(parse_line("w 1 2 3.0").unwrap().is_some());
        assert!(parse_line("   ").unwrap().is_none());
        assert!(parse_line("# x").unwrap().is_none());
    }

    #[test]
    fn batching_splits_evenly() {
        let ms: Vec<GraphMutation> = (0..10)
            .map(|i| GraphMutation::UpdateWeight {
                src: i,
                dst: i + 1,
                weight: 1.0,
            })
            .collect();
        let batches = into_batches(&ms, 4);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches[2].len(), 2);
        assert!(batches.iter().all(|b| b.is_weight_only()));
    }
}
