//! Edge-update stream I/O: a plain-text event format and batching helpers.
//!
//! Format (whitespace separated, `#`/`%` comments ignored):
//!
//! ```text
//! add <src> <dst> [weight]     # or: + <src> <dst> [weight]
//! del <src> <dst>              # or: - <src> <dst>
//! w   <src> <dst> <weight>     # or: ~ <src> <dst> <weight>   (reweight)
//! ```

use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};

use uninet_graph::NodeId;

use crate::mutation::{GraphMutation, UpdateBatch};

/// Why a single event line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseIssue {
    /// A required field was absent.
    MissingField(&'static str),
    /// A field was present but not a valid number.
    InvalidNumber {
        /// Which field failed (`src`, `dst`, `weight`).
        field: &'static str,
        /// The offending token.
        token: String,
    },
    /// The opcode was not one of `add`/`del`/`w` (or their aliases).
    UnknownOp(String),
}

impl std::fmt::Display for ParseIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseIssue::MissingField(field) => write!(f, "missing {field}"),
            ParseIssue::InvalidNumber { field, token } => {
                write!(f, "invalid {field}: {token:?}")
            }
            ParseIssue::UnknownOp(op) => write!(f, "unknown op {op:?}"),
        }
    }
}

impl std::error::Error for ParseIssue {}

/// Errors produced while reading an update stream.
///
/// Both variants carry the source file (when the stream came from one) so
/// `Display` can point at `file:line` like a compiler diagnostic.
#[derive(Debug)]
pub enum StreamError {
    /// A line could not be parsed as an update event.
    Parse {
        /// Source file, if the stream was read from one.
        path: Option<PathBuf>,
        /// 1-based line number.
        line: usize,
        /// The offending line content.
        content: String,
        /// What exactly was wrong with the line.
        issue: ParseIssue,
    },
    /// An I/O error occurred.
    Io {
        /// Source file, if the stream was read from one.
        path: Option<PathBuf>,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl StreamError {
    /// Attaches a source path to an error that was produced without one.
    pub fn with_path<P: AsRef<Path>>(self, p: P) -> Self {
        let p = p.as_ref().to_path_buf();
        match self {
            StreamError::Parse {
                line,
                content,
                issue,
                ..
            } => StreamError::Parse {
                path: Some(p),
                line,
                content,
                issue,
            },
            StreamError::Io { source, .. } => StreamError::Io {
                path: Some(p),
                source,
            },
        }
    }
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Parse {
                path,
                line,
                content,
                issue,
            } => match path {
                Some(p) => write!(
                    f,
                    "cannot parse update at {}:{line}: {content:?} ({issue})",
                    p.display()
                ),
                None => write!(
                    f,
                    "cannot parse update at line {line}: {content:?} ({issue})"
                ),
            },
            StreamError::Io { path, source } => match path {
                Some(p) => write!(f, "cannot read update stream {}: {source}", p.display()),
                None => write!(f, "i/o error: {source}"),
            },
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Parse { issue, .. } => Some(issue),
            StreamError::Io { source, .. } => Some(source),
        }
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io {
            path: None,
            source: e,
        }
    }
}

/// Parses one event line (`None` for blanks and comments).
pub fn parse_line(line: &str) -> Result<Option<GraphMutation>, ParseIssue> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
        return Ok(None);
    }
    let mut it = line.split_whitespace();
    let op = it.next().ok_or(ParseIssue::MissingField("op"))?;
    // Validate the opcode first so a garbage line is diagnosed as an unknown
    // op rather than as a bad operand of an op that was never recognized.
    if !matches!(op, "add" | "+" | "del" | "-" | "w" | "~" | "reweight") {
        return Err(ParseIssue::UnknownOp(op.to_string()));
    }
    let node = |tok: Option<&str>, field: &'static str| -> Result<NodeId, ParseIssue> {
        let tok = tok.ok_or(ParseIssue::MissingField(field))?;
        tok.parse().map_err(|_| ParseIssue::InvalidNumber {
            field,
            token: tok.to_string(),
        })
    };
    let src = node(it.next(), "src")?;
    let dst = node(it.next(), "dst")?;
    let weight =
        |it: &mut dyn Iterator<Item = &str>, default: Option<f32>| -> Result<f32, ParseIssue> {
            match it.next() {
                Some(tok) => tok.parse::<f32>().map_err(|_| ParseIssue::InvalidNumber {
                    field: "weight",
                    token: tok.to_string(),
                }),
                None => default.ok_or(ParseIssue::MissingField("weight")),
            }
        };
    let m = match op {
        "add" | "+" => GraphMutation::AddEdge {
            src,
            dst,
            weight: weight(&mut it, Some(1.0))?,
        },
        "del" | "-" => GraphMutation::RemoveEdge { src, dst },
        "w" | "~" | "reweight" => GraphMutation::UpdateWeight {
            src,
            dst,
            weight: weight(&mut it, None)?,
        },
        _ => unreachable!("opcode validated above"),
    };
    Ok(Some(m))
}

/// Reads a full update stream from any reader.
pub fn read_update_stream<R: Read>(reader: R) -> Result<Vec<GraphMutation>, StreamError> {
    let mut out = Vec::new();
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        match parse_line(&line) {
            Ok(Some(m)) => out.push(m),
            Ok(None) => {}
            Err(issue) => {
                return Err(StreamError::Parse {
                    path: None,
                    line: i + 1,
                    content: line,
                    issue,
                })
            }
        }
    }
    Ok(out)
}

/// Reads an update stream from a file; errors carry the path for context.
pub fn read_update_stream_file<P: AsRef<Path>>(path: P) -> Result<Vec<GraphMutation>, StreamError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| StreamError::Io {
        path: Some(path.to_path_buf()),
        source: e,
    })?;
    read_update_stream(file).map_err(|e| e.with_path(path))
}

/// Splits a mutation list into batches of at most `batch_size` events.
pub fn into_batches(mutations: &[GraphMutation], batch_size: usize) -> Vec<UpdateBatch> {
    let batch_size = batch_size.max(1);
    mutations
        .chunks(batch_size)
        .map(|c| UpdateBatch::from_mutations(c.to_vec()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_ops_and_aliases() {
        let text = "\
# comment
add 0 1 2.5
+ 1 2
del 2 3
- 3 4
w 4 5 0.5
~ 5 6 1.5
reweight 6 7 2.0
";
        let ms = read_update_stream(text.as_bytes()).unwrap();
        assert_eq!(ms.len(), 7);
        assert_eq!(
            ms[0],
            GraphMutation::AddEdge {
                src: 0,
                dst: 1,
                weight: 2.5
            }
        );
        assert_eq!(
            ms[1],
            GraphMutation::AddEdge {
                src: 1,
                dst: 2,
                weight: 1.0
            }
        );
        assert_eq!(ms[2], GraphMutation::RemoveEdge { src: 2, dst: 3 });
        assert_eq!(
            ms[4],
            GraphMutation::UpdateWeight {
                src: 4,
                dst: 5,
                weight: 0.5
            }
        );
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let err = read_update_stream("add 0 1\nbogus line\n".as_bytes()).unwrap_err();
        match &err {
            StreamError::Parse { line, issue, .. } => {
                assert_eq!(*line, 2);
                assert_eq!(*issue, ParseIssue::UnknownOp("bogus".to_string()));
            }
            other => panic!("unexpected: {other}"),
        }
        assert!(format!("{err}").contains("line 2"));
    }

    #[test]
    fn file_errors_carry_path_and_line_in_display() {
        let err = read_update_stream("w 1 nan-ish 2.0\n".as_bytes())
            .unwrap_err()
            .with_path("updates.txt");
        let msg = format!("{err}");
        assert!(msg.contains("updates.txt:1"), "missing file:line in {msg}");
        assert!(msg.contains("invalid dst"), "missing issue in {msg}");

        let missing = read_update_stream_file("/nonexistent/updates.txt").unwrap_err();
        assert!(format!("{missing}").contains("/nonexistent/updates.txt"));
    }

    #[test]
    fn parse_issues_are_typed() {
        assert_eq!(
            parse_line("add").unwrap_err(),
            ParseIssue::MissingField("src")
        );
        assert_eq!(
            parse_line("add 0").unwrap_err(),
            ParseIssue::MissingField("dst")
        );
        assert_eq!(
            parse_line("add x 1").unwrap_err(),
            ParseIssue::InvalidNumber {
                field: "src",
                token: "x".to_string()
            }
        );
        assert_eq!(
            parse_line("w 0 1 heavy").unwrap_err(),
            ParseIssue::InvalidNumber {
                field: "weight",
                token: "heavy".to_string()
            }
        );
        assert_eq!(
            parse_line("frob 0 1").unwrap_err(),
            ParseIssue::UnknownOp("frob".to_string())
        );
    }

    #[test]
    fn reweight_requires_weight() {
        assert!(parse_line("w 1 2").is_err());
        assert!(parse_line("w 1 2 3.0").unwrap().is_some());
        assert!(parse_line("   ").unwrap().is_none());
        assert!(parse_line("# x").unwrap().is_none());
    }

    #[test]
    fn batching_splits_evenly() {
        let ms: Vec<GraphMutation> = (0..10)
            .map(|i| GraphMutation::UpdateWeight {
                src: i,
                dst: i + 1,
                weight: 1.0,
            })
            .collect();
        let batches = into_batches(&ms, 4);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches[2].len(), 2);
        assert!(batches.iter().all(|b| b.is_weight_only()));
    }
}
