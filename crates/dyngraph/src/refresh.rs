//! [`WalkRefresher`]: finds walks whose trajectories pass through mutated
//! vertices and regenerates only those, leaving the rest of the corpus
//! untouched.
//!
//! An inverted index (node → walk ids) makes the affected-walk lookup O(1)
//! per touched node. Refreshed walks append postings for any new nodes they
//! visit; stale postings (walks that no longer visit a node) are tolerated —
//! they can only cause an unnecessary refresh, never a missed one — and the
//! index is rebuilt wholesale once the posting overhead exceeds 2x the corpus
//! size.

use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use uninet_graph::{Graph, NodeId};
use uninet_walker::{walk_once, RandomWalkModel, SamplerManager, WalkCorpus};

/// Outcome of one refresh pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// Touched nodes examined.
    pub nodes_examined: usize,
    /// Walks regenerated.
    pub walks_refreshed: usize,
    /// Total nodes re-sampled across refreshed walks.
    pub tokens_regenerated: usize,
}

impl RefreshStats {
    /// Accumulates another pass into this one.
    pub fn merge(&mut self, other: &RefreshStats) {
        self.nodes_examined += other.nodes_examined;
        self.walks_refreshed += other.walks_refreshed;
        self.tokens_regenerated += other.tokens_regenerated;
    }
}

/// Incrementally maintains a walk corpus against a mutating graph.
#[derive(Debug)]
pub struct WalkRefresher {
    /// node -> indices of walks visiting it (may contain stale postings).
    index: Vec<Vec<u32>>,
    /// Upper bound of live postings (tokens of the current corpus).
    live_tokens: usize,
    /// Total postings currently stored (live + stale).
    stored_postings: usize,
    /// Walk length to regenerate with.
    walk_length: usize,
    /// Base seed for refresh RNGs.
    seed: u64,
    /// Bumped every refresh pass so regenerated walks explore fresh paths.
    generation: u64,
}

impl WalkRefresher {
    /// Builds the node → walks index for `corpus`.
    pub fn new(corpus: &WalkCorpus, num_nodes: usize, walk_length: usize, seed: u64) -> Self {
        let mut r = WalkRefresher {
            index: Vec::new(),
            live_tokens: 0,
            stored_postings: 0,
            walk_length,
            seed,
            generation: 0,
        };
        r.rebuild_index(corpus, num_nodes);
        r
    }

    fn rebuild_index(&mut self, corpus: &WalkCorpus, num_nodes: usize) {
        let mut index = vec![Vec::new(); num_nodes];
        for (i, walk) in corpus.iter().enumerate() {
            let mut seen: Vec<NodeId> = walk.to_vec();
            seen.sort_unstable();
            seen.dedup();
            for v in seen {
                index[v as usize].push(i as u32);
            }
        }
        self.stored_postings = index.iter().map(Vec::len).sum();
        self.live_tokens = corpus.total_tokens();
        self.index = index;
    }

    /// Walk ids currently indexed under `v` (may include stale entries).
    pub fn walks_through(&self, v: NodeId) -> &[u32] {
        &self.index[v as usize]
    }

    /// Regenerates every walk that passes through any node in `touched`.
    ///
    /// Refreshed walks restart from their original start node and are driven
    /// by the live `manager` — so M-H chain state carried across the update
    /// is reused, not re-initialized.
    pub fn refresh<M: RandomWalkModel + ?Sized>(
        &mut self,
        corpus: &mut WalkCorpus,
        graph: &Graph,
        model: &M,
        manager: &SamplerManager,
        touched: &[NodeId],
    ) -> (RefreshStats, Duration) {
        let t = Instant::now();
        self.generation += 1;
        let mut stats = RefreshStats {
            nodes_examined: touched.len(),
            ..Default::default()
        };

        let mut ids: Vec<u32> = Vec::new();
        for &v in touched {
            if (v as usize) < self.index.len() {
                ids.extend_from_slice(&self.index[v as usize]);
            }
        }
        ids.sort_unstable();
        ids.dedup();

        for &id in &ids {
            let start = corpus.walk(id as usize)[0];
            let mut rng = SmallRng::seed_from_u64(
                self.seed
                    ^ (id as u64).wrapping_mul(0x9E3779B97F4A7C15)
                    ^ self.generation.wrapping_mul(0xD1B54A32D192ED03),
            );
            let walk = walk_once(graph, model, manager, start, self.walk_length, &mut rng);
            stats.tokens_regenerated += walk.len();

            // Append postings for newly visited nodes; stale ones are benign.
            let mut seen: Vec<NodeId> = walk.to_vec();
            seen.sort_unstable();
            seen.dedup();
            for v in seen {
                // Postings stay sorted so membership is O(log n) even on hub
                // nodes whose lists approach the corpus size.
                let postings = &mut self.index[v as usize];
                if let Err(pos) = postings.binary_search(&id) {
                    postings.insert(pos, id);
                    self.stored_postings += 1;
                }
            }
            corpus.set_walk(id as usize, walk);
        }
        stats.walks_refreshed = ids.len();
        self.live_tokens = corpus.total_tokens();

        // Garbage-collect the index when stale postings dominate.
        if self.stored_postings > 2 * self.live_tokens.max(1) {
            let n = self.index.len();
            self.rebuild_index(corpus, n);
        }
        (stats, t.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uninet_graph::generators::{rmat, RmatConfig};
    use uninet_sampler::{EdgeSamplerKind, InitStrategy};
    use uninet_walker::models::DeepWalk;
    use uninet_walker::{WalkEngine, WalkEngineConfig};

    fn setup() -> (Graph, WalkCorpus, SamplerManager, WalkEngineConfig) {
        let g = rmat(&RmatConfig {
            num_nodes: 150,
            num_edges: 1200,
            weighted: true,
            seed: 17,
            ..Default::default()
        });
        let model = DeepWalk::new();
        let cfg = WalkEngineConfig::default()
            .with_num_walks(2)
            .with_walk_length(12)
            .with_threads(2)
            .with_sampler(EdgeSamplerKind::MetropolisHastings(InitStrategy::Random));
        let manager = SamplerManager::new(&g, &model, cfg.sampler, 0);
        let engine = WalkEngine::new(cfg);
        let starts: Vec<NodeId> = g.non_isolated_nodes().collect();
        let (corpus, _) = engine.generate_with_manager(&g, &model, &manager, &starts);
        (g, corpus, manager, cfg)
    }

    #[test]
    fn index_covers_every_visit() {
        let (g, corpus, _, cfg) = setup();
        let refresher = WalkRefresher::new(&corpus, g.num_nodes(), cfg.walk_length, 7);
        for (i, walk) in corpus.iter().enumerate() {
            for &v in walk {
                assert!(
                    refresher.walks_through(v).contains(&(i as u32)),
                    "walk {i} through node {v} not indexed"
                );
            }
        }
    }

    #[test]
    fn refresh_touches_only_affected_walks() {
        let (g, mut corpus, manager, cfg) = setup();
        let model = DeepWalk::new();
        let mut refresher = WalkRefresher::new(&corpus, g.num_nodes(), cfg.walk_length, 7);
        let touched = [3u32];
        let affected: Vec<u32> = refresher.walks_through(3).to_vec();
        let before: Vec<Vec<NodeId>> = corpus.walks().to_vec();
        let (stats, _) = refresher.refresh(&mut corpus, &g, &model, &manager, &touched);
        assert_eq!(stats.walks_refreshed, affected.len());
        assert!(stats.tokens_regenerated > 0);
        for (i, walk) in corpus.iter().enumerate() {
            if !affected.contains(&(i as u32)) {
                assert_eq!(walk, before[i].as_slice(), "unaffected walk {i} changed");
            } else {
                assert_eq!(walk[0], before[i][0], "refreshed walk {i} moved its start");
            }
        }
    }

    #[test]
    fn refreshed_walks_are_valid_paths() {
        let (g, mut corpus, manager, cfg) = setup();
        let model = DeepWalk::new();
        let mut refresher = WalkRefresher::new(&corpus, g.num_nodes(), cfg.walk_length, 9);
        let touched: Vec<NodeId> = (0..20).collect();
        let (stats, _) = refresher.refresh(&mut corpus, &g, &model, &manager, &touched);
        assert!(stats.walks_refreshed > 0);
        for walk in corpus.iter() {
            for pair in walk.windows(2) {
                assert!(
                    g.has_edge(pair[0], pair[1]),
                    "non-edge {} -> {}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn repeated_refresh_keeps_index_consistent() {
        let (g, mut corpus, manager, cfg) = setup();
        let model = DeepWalk::new();
        let mut refresher = WalkRefresher::new(&corpus, g.num_nodes(), cfg.walk_length, 13);
        for round in 0..8 {
            let touched = [(round * 7 % 150) as NodeId, (round * 13 % 150) as NodeId];
            refresher.refresh(&mut corpus, &g, &model, &manager, &touched);
        }
        // Every walk must still be findable under every node it visits.
        for (i, walk) in corpus.iter().enumerate() {
            for &v in walk {
                assert!(refresher.walks_through(v).contains(&(i as u32)));
            }
        }
    }
}
