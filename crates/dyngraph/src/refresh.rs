//! [`WalkRefresher`]: finds walks whose trajectories pass through mutated
//! vertices and regenerates only those, leaving the rest of the corpus
//! untouched.
//!
//! An inverted index (node → walk ids) makes the affected-walk lookup O(1)
//! per touched node. The index is maintained *exactly*: after a walk is
//! regenerated, postings for nodes the new trajectory no longer visits are
//! pruned, so the index never accumulates stale entries (a wholesale rebuild
//! remains as a defensive backstop should the bookkeeping ever drift).
//!
//! Refresh comes in two flavors: the serial [`WalkRefresher::refresh`] loop
//! and [`WalkRefresher::refresh_parallel`], which fans walk regeneration out
//! across worker threads (walks are independent given the shared lock-free
//! `SamplerManager`) and applies the corpus/index updates serially. Both use
//! the same per-walk RNG derivation, so they produce identical corpora.

use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use uninet_graph::{Graph, NodeId};
use uninet_walker::{walk_once, RandomWalkModel, SamplerManager, WalkCorpus};

/// Outcome of one refresh pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// Touched nodes examined.
    pub nodes_examined: usize,
    /// Walks regenerated.
    pub walks_refreshed: usize,
    /// Total nodes re-sampled across refreshed walks.
    pub tokens_regenerated: usize,
    /// Stale node→walk postings pruned from the inverted index.
    pub postings_pruned: usize,
}

impl RefreshStats {
    /// Accumulates another pass into this one.
    pub fn merge(&mut self, other: &RefreshStats) {
        self.nodes_examined += other.nodes_examined;
        self.walks_refreshed += other.walks_refreshed;
        self.tokens_regenerated += other.tokens_regenerated;
        self.postings_pruned += other.postings_pruned;
    }
}

/// A refresh pass plus the ids of the walks it regenerated (consumed by
/// incremental embedding training, which re-trains only on these walks).
#[derive(Debug, Clone, Default)]
pub struct RefreshOutcome {
    /// Accounting of the pass.
    pub stats: RefreshStats,
    /// Ids of the regenerated walks, ascending.
    pub refreshed_ids: Vec<u32>,
    /// Wall-clock time of the pass.
    pub elapsed: Duration,
}

/// Incrementally maintains a walk corpus against a mutating graph.
#[derive(Debug)]
pub struct WalkRefresher {
    /// node -> sorted indices of walks visiting it (exact, postings pruned).
    index: Vec<Vec<u32>>,
    /// Upper bound of live postings (tokens of the current corpus).
    live_tokens: usize,
    /// Total postings currently stored.
    stored_postings: usize,
    /// Walk length to regenerate with.
    walk_length: usize,
    /// Base seed for refresh RNGs.
    seed: u64,
    /// Bumped every refresh pass so regenerated walks explore fresh paths.
    generation: u64,
}

impl WalkRefresher {
    /// Builds the node → walks index for `corpus`.
    pub fn new(corpus: &WalkCorpus, num_nodes: usize, walk_length: usize, seed: u64) -> Self {
        let mut r = WalkRefresher {
            index: Vec::new(),
            live_tokens: 0,
            stored_postings: 0,
            walk_length,
            seed,
            generation: 0,
        };
        r.rebuild_index(corpus, num_nodes);
        r
    }

    fn rebuild_index(&mut self, corpus: &WalkCorpus, num_nodes: usize) {
        let mut index = vec![Vec::new(); num_nodes];
        for (i, walk) in corpus.iter().enumerate() {
            let mut seen: Vec<NodeId> = walk.to_vec();
            seen.sort_unstable();
            seen.dedup();
            for v in seen {
                index[v as usize].push(i as u32);
            }
        }
        self.stored_postings = index.iter().map(Vec::len).sum();
        self.live_tokens = corpus.total_tokens();
        self.index = index;
    }

    /// Walk ids currently indexed under `v` (empty for ids past the index,
    /// e.g. nodes that arrived after the last [`WalkRefresher::grow`]).
    pub fn walks_through(&self, v: NodeId) -> &[u32] {
        self.index
            .get(v as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Extends the node → walks index to cover `num_nodes` ids (open-world
    /// arrivals). Existing postings are untouched; shrinking is a no-op.
    pub fn grow(&mut self, num_nodes: usize) {
        if num_nodes > self.index.len() {
            self.index.resize_with(num_nodes, Vec::new);
        }
    }

    /// Evicts retired nodes from the corpus: every walk whose trajectory
    /// visits any id in `retired` is emptied (and fully de-indexed), so no
    /// future training pass or refresh can resurrect a retired id from a
    /// stale trajectory. Returns the evicted walk ids, ascending.
    pub fn evict_walks(&mut self, corpus: &mut WalkCorpus, retired: &[NodeId]) -> Vec<u32> {
        let ids = self.affected_ids(retired);
        for &id in &ids {
            let old = corpus.walk(id as usize).to_vec();
            self.reindex_walk(id, &old, &[]);
            corpus.set_walk(id as usize, Vec::new());
        }
        self.live_tokens = corpus.total_tokens();
        ids
    }

    /// Seeds `walks_per_node` fresh walks for each arrived node in `starts`,
    /// appending them to the corpus and the index. Starts with no out-edges
    /// are skipped (cold nodes are seeded once they gain an edge). Returns
    /// the new walk ids.
    pub fn seed_walks<M: RandomWalkModel + ?Sized>(
        &mut self,
        corpus: &mut WalkCorpus,
        graph: &Graph,
        model: &M,
        manager: &SamplerManager,
        starts: &[NodeId],
        walks_per_node: usize,
    ) -> Vec<u32> {
        self.grow(graph.num_nodes());
        let mut new_ids = Vec::new();
        for &start in starts {
            if (start as usize) >= graph.num_nodes() || graph.degree(start) == 0 {
                continue;
            }
            for _ in 0..walks_per_node.max(1) {
                let id = corpus.num_walks() as u32;
                let mut rng = self.walk_rng(id);
                let walk = walk_once(graph, model, manager, start, self.walk_length, &mut rng);
                corpus.push(Vec::new());
                self.reindex_walk(id, &[], &walk);
                corpus.set_walk(id as usize, walk);
                new_ids.push(id);
            }
        }
        self.live_tokens = corpus.total_tokens();
        new_ids
    }

    /// Total postings currently stored (exact: stale entries are pruned).
    pub fn stored_postings(&self) -> usize {
        self.stored_postings
    }

    /// The ids of every walk passing through any node in `touched`, ascending.
    fn affected_ids(&self, touched: &[NodeId]) -> Vec<u32> {
        let mut ids: Vec<u32> = Vec::new();
        for &v in touched {
            if (v as usize) < self.index.len() {
                ids.extend_from_slice(&self.index[v as usize]);
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The RNG driving the regeneration of walk `id` this generation; shared
    /// by the serial and parallel paths so they produce identical walks.
    fn walk_rng(&self, id: u32) -> SmallRng {
        SmallRng::seed_from_u64(
            self.seed
                ^ (id as u64).wrapping_mul(0x9E3779B97F4A7C15)
                ^ self.generation.wrapping_mul(0xD1B54A32D192ED03),
        )
    }

    /// Re-indexes walk `id` after regeneration: adds postings for newly
    /// visited nodes and prunes postings for nodes the walk no longer visits.
    /// Returns the number of stale postings pruned.
    fn reindex_walk(&mut self, id: u32, old: &[NodeId], new: &[NodeId]) -> usize {
        let mut old_seen: Vec<NodeId> = old.to_vec();
        old_seen.sort_unstable();
        old_seen.dedup();
        let mut new_seen: Vec<NodeId> = new.to_vec();
        new_seen.sort_unstable();
        new_seen.dedup();

        let mut pruned = 0usize;
        for &v in &new_seen {
            if old_seen.binary_search(&v).is_err() {
                // Postings stay sorted so membership stays O(log n).
                let postings = &mut self.index[v as usize];
                if let Err(pos) = postings.binary_search(&id) {
                    postings.insert(pos, id);
                    self.stored_postings += 1;
                }
            }
        }
        for &v in &old_seen {
            if new_seen.binary_search(&v).is_err() {
                let postings = &mut self.index[v as usize];
                if let Ok(pos) = postings.binary_search(&id) {
                    postings.remove(pos);
                    self.stored_postings -= 1;
                    pruned += 1;
                }
            }
        }
        pruned
    }

    /// Installs regenerated walks into the corpus and the index.
    fn install(
        &mut self,
        corpus: &mut WalkCorpus,
        regenerated: Vec<(u32, Vec<NodeId>)>,
        stats: &mut RefreshStats,
    ) {
        for (id, walk) in regenerated {
            stats.tokens_regenerated += walk.len();
            stats.postings_pruned += self.reindex_walk(id, corpus.walk(id as usize), &walk);
            corpus.set_walk(id as usize, walk);
        }
        self.live_tokens = corpus.total_tokens();

        // Defensive backstop: with exact pruning stale postings can no longer
        // accumulate, but rebuild wholesale if the bookkeeping ever drifts.
        if self.stored_postings > 2 * self.live_tokens.max(1) {
            let n = self.index.len();
            self.rebuild_index(corpus, n);
        }
    }

    /// Regenerates every walk that passes through any node in `touched`.
    ///
    /// Refreshed walks restart from their original start node and are driven
    /// by the live `manager` — so M-H chain state carried across the update
    /// is reused, not re-initialized.
    pub fn refresh<M: RandomWalkModel + ?Sized>(
        &mut self,
        corpus: &mut WalkCorpus,
        graph: &Graph,
        model: &M,
        manager: &SamplerManager,
        touched: &[NodeId],
    ) -> (RefreshStats, Duration) {
        let outcome = self.refresh_collect(corpus, graph, model, manager, touched, 1);
        (outcome.stats, outcome.elapsed)
    }

    /// Like [`WalkRefresher::refresh`], but fans walk regeneration out across
    /// `num_threads` worker threads (the walk engine's thread-pool pattern:
    /// chunked ids, one RNG per walk) and returns the refreshed walk ids.
    ///
    /// Each walk's RNG is derived from its id and the pass generation, not
    /// the thread, so with stateless sampler backends (alias / direct /
    /// rejection) the parallel path produces exactly the same corpus as the
    /// serial one. The M-H backend shares live chain state across walkers, so
    /// its walk content is schedule-dependent — just as in the batch engine.
    pub fn refresh_parallel<M: RandomWalkModel + ?Sized>(
        &mut self,
        corpus: &mut WalkCorpus,
        graph: &Graph,
        model: &M,
        manager: &SamplerManager,
        touched: &[NodeId],
        num_threads: usize,
    ) -> RefreshOutcome {
        self.refresh_collect(corpus, graph, model, manager, touched, num_threads)
    }

    fn refresh_collect<M: RandomWalkModel + ?Sized>(
        &mut self,
        corpus: &mut WalkCorpus,
        graph: &Graph,
        model: &M,
        manager: &SamplerManager,
        touched: &[NodeId],
        num_threads: usize,
    ) -> RefreshOutcome {
        let t = Instant::now();
        self.generation += 1;
        let mut stats = RefreshStats {
            nodes_examined: touched.len(),
            ..Default::default()
        };

        let mut ids = self.affected_ids(touched);
        // Evicted walks are empty and have no start to restart from.
        ids.retain(|&id| !corpus.walk(id as usize).is_empty());
        stats.walks_refreshed = ids.len();

        let num_threads = num_threads.max(1).min(ids.len().max(1));
        let regenerated: Vec<(u32, Vec<NodeId>)> = if num_threads <= 1 || ids.len() < 2 {
            ids.iter()
                .map(|&id| {
                    let start = corpus.walk(id as usize)[0];
                    let mut rng = self.walk_rng(id);
                    let walk = walk_once(graph, model, manager, start, self.walk_length, &mut rng);
                    (id, walk)
                })
                .collect()
        } else {
            let chunk_size = ids.len().div_ceil(num_threads).max(1);
            let refresher = &*self;
            let corpus_ref = &*corpus;
            let parts: Vec<Vec<(u32, Vec<NodeId>)>> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = ids
                    .chunks(chunk_size)
                    .map(|chunk| {
                        scope.spawn(move |_| {
                            chunk
                                .iter()
                                .map(|&id| {
                                    let start = corpus_ref.walk(id as usize)[0];
                                    let mut rng = refresher.walk_rng(id);
                                    let walk = walk_once(
                                        graph,
                                        model,
                                        manager,
                                        start,
                                        refresher.walk_length,
                                        &mut rng,
                                    );
                                    (id, walk)
                                })
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("refresh worker panicked"))
                    .collect()
            })
            .expect("refresh scope panicked");
            parts.into_iter().flatten().collect()
        };

        self.install(corpus, regenerated, &mut stats);
        RefreshOutcome {
            stats,
            refreshed_ids: ids,
            elapsed: t.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uninet_graph::generators::{rmat, RmatConfig};
    use uninet_sampler::{EdgeSamplerKind, InitStrategy};
    use uninet_walker::models::DeepWalk;
    use uninet_walker::{WalkEngine, WalkEngineConfig};

    fn setup() -> (Graph, WalkCorpus, SamplerManager, WalkEngineConfig) {
        let g = rmat(&RmatConfig {
            num_nodes: 150,
            num_edges: 1200,
            weighted: true,
            seed: 17,
            ..Default::default()
        });
        let model = DeepWalk::new();
        let cfg = WalkEngineConfig::default()
            .with_num_walks(2)
            .with_walk_length(12)
            .with_threads(2)
            .with_sampler(EdgeSamplerKind::MetropolisHastings(InitStrategy::Random));
        let manager = SamplerManager::new(&g, &model, cfg.sampler, 0);
        let engine = WalkEngine::new(cfg);
        let starts: Vec<NodeId> = g.non_isolated_nodes().collect();
        let (corpus, _) = engine.generate_with_manager(&g, &model, &manager, &starts);
        (g, corpus, manager, cfg)
    }

    #[test]
    fn index_covers_every_visit() {
        let (g, corpus, _, cfg) = setup();
        let refresher = WalkRefresher::new(&corpus, g.num_nodes(), cfg.walk_length, 7);
        for (i, walk) in corpus.iter().enumerate() {
            for &v in walk {
                assert!(
                    refresher.walks_through(v).contains(&(i as u32)),
                    "walk {i} through node {v} not indexed"
                );
            }
        }
    }

    #[test]
    fn refresh_touches_only_affected_walks() {
        let (g, mut corpus, manager, cfg) = setup();
        let model = DeepWalk::new();
        let mut refresher = WalkRefresher::new(&corpus, g.num_nodes(), cfg.walk_length, 7);
        let touched = [3u32];
        let affected: Vec<u32> = refresher.walks_through(3).to_vec();
        let before: Vec<Vec<NodeId>> = corpus.walks().to_vec();
        let (stats, _) = refresher.refresh(&mut corpus, &g, &model, &manager, &touched);
        assert_eq!(stats.walks_refreshed, affected.len());
        assert!(stats.tokens_regenerated > 0);
        for (i, walk) in corpus.iter().enumerate() {
            if !affected.contains(&(i as u32)) {
                assert_eq!(walk, before[i].as_slice(), "unaffected walk {i} changed");
            } else {
                assert_eq!(walk[0], before[i][0], "refreshed walk {i} moved its start");
            }
        }
    }

    #[test]
    fn refreshed_walks_are_valid_paths() {
        let (g, mut corpus, manager, cfg) = setup();
        let model = DeepWalk::new();
        let mut refresher = WalkRefresher::new(&corpus, g.num_nodes(), cfg.walk_length, 9);
        let touched: Vec<NodeId> = (0..20).collect();
        let (stats, _) = refresher.refresh(&mut corpus, &g, &model, &manager, &touched);
        assert!(stats.walks_refreshed > 0);
        for walk in corpus.iter() {
            for pair in walk.windows(2) {
                assert!(
                    g.has_edge(pair[0], pair[1]),
                    "non-edge {} -> {}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    /// The index must stay *exact* under repeated refresh: every posting
    /// corresponds to a live visit, and every visit has a posting.
    fn assert_index_exact(refresher: &WalkRefresher, corpus: &WalkCorpus, num_nodes: usize) {
        let mut expected: Vec<Vec<u32>> = vec![Vec::new(); num_nodes];
        for (i, walk) in corpus.iter().enumerate() {
            let mut seen: Vec<NodeId> = walk.to_vec();
            seen.sort_unstable();
            seen.dedup();
            for v in seen {
                expected[v as usize].push(i as u32);
            }
        }
        let mut total = 0usize;
        for (v, exp) in expected.iter().enumerate() {
            assert_eq!(
                refresher.walks_through(v as NodeId),
                exp.as_slice(),
                "postings of node {v} diverged"
            );
            total += exp.len();
        }
        assert_eq!(refresher.stored_postings(), total);
    }

    #[test]
    fn repeated_refresh_keeps_index_exact_without_stale_growth() {
        let (g, mut corpus, manager, cfg) = setup();
        let model = DeepWalk::new();
        let mut refresher = WalkRefresher::new(&corpus, g.num_nodes(), cfg.walk_length, 13);
        let mut pruned = 0usize;
        for round in 0..8 {
            let touched = [(round * 7 % 150) as NodeId, (round * 13 % 150) as NodeId];
            let (stats, _) = refresher.refresh(&mut corpus, &g, &model, &manager, &touched);
            pruned += stats.postings_pruned;
        }
        assert_index_exact(&refresher, &corpus, g.num_nodes());
        // Regenerated trajectories diverge, so some postings must have been
        // pruned; without pruning they would linger as stale index growth.
        assert!(pruned > 0, "no stale postings pruned over 8 rounds");
    }

    #[test]
    fn evict_then_seed_maintains_exact_index() {
        let (g, mut corpus, manager, cfg) = setup();
        let model = DeepWalk::new();
        let mut refresher = WalkRefresher::new(&corpus, g.num_nodes(), cfg.walk_length, 41);

        let retired = [5u32, 9];
        let evicted = refresher.evict_walks(&mut corpus, &retired);
        assert!(!evicted.is_empty());
        for &id in &evicted {
            assert!(corpus.walk(id as usize).is_empty(), "walk {id} not evicted");
        }
        for &v in &retired {
            assert!(refresher.walks_through(v).is_empty());
        }
        assert_index_exact(&refresher, &corpus, g.num_nodes());

        // A refresh touching the retired ids must not resurrect evicted walks.
        let (stats, _) = refresher.refresh(&mut corpus, &g, &model, &manager, &retired);
        assert_eq!(stats.walks_refreshed, 0);

        // Seed walks for "arrived" ids (reuse live nodes as stand-ins).
        let before = corpus.num_walks();
        let seeded = refresher.seed_walks(&mut corpus, &g, &model, &manager, &[3, 7], 2);
        assert_eq!(seeded.len(), 4);
        assert_eq!(corpus.num_walks(), before + 4);
        for &id in &seeded {
            let w = corpus.walk(id as usize);
            assert!(!w.is_empty());
            assert!(w[0] == 3 || w[0] == 7, "seeded walk starts at {}", w[0]);
        }
        assert_index_exact(&refresher, &corpus, g.num_nodes());
    }

    #[test]
    fn grow_extends_index_without_disturbing_postings() {
        let (g, corpus, _, cfg) = setup();
        let mut refresher = WalkRefresher::new(&corpus, g.num_nodes(), cfg.walk_length, 43);
        let posted = refresher.walks_through(0).to_vec();
        refresher.grow(g.num_nodes() + 10);
        assert_eq!(refresher.walks_through(0), posted.as_slice());
        assert!(refresher.walks_through((g.num_nodes() + 5) as NodeId).is_empty());
        // Out-of-index lookups are safe even before grow.
        let fresh = WalkRefresher::new(&corpus, g.num_nodes(), cfg.walk_length, 44);
        assert!(fresh.walks_through(10_000).is_empty());
    }

    #[test]
    fn parallel_refresh_matches_serial() {
        // Stateless sampler: identical per-walk RNGs must give identical
        // corpora regardless of the thread schedule (M-H chains are shared
        // mutable state, so they are exempt from bit-exactness).
        let (g, _, _, cfg) = setup();
        let cfg = cfg.with_sampler(EdgeSamplerKind::Direct);
        let model = DeepWalk::new();
        let manager = SamplerManager::new(&g, &model, cfg.sampler, 0);
        let engine = WalkEngine::new(cfg);
        let starts: Vec<NodeId> = g.non_isolated_nodes().collect();
        let (corpus, _) = engine.generate_with_manager(&g, &model, &manager, &starts);

        let mut serial_corpus = corpus.clone();
        let mut serial = WalkRefresher::new(&serial_corpus, g.num_nodes(), cfg.walk_length, 29);
        let mut parallel_corpus = corpus;
        let mut parallel = WalkRefresher::new(&parallel_corpus, g.num_nodes(), cfg.walk_length, 29);

        let touched: Vec<NodeId> = (0..30).collect();
        let (serial_stats, _) = serial.refresh(&mut serial_corpus, &g, &model, &manager, &touched);
        let outcome =
            parallel.refresh_parallel(&mut parallel_corpus, &g, &model, &manager, &touched, 4);

        assert_eq!(serial_stats, outcome.stats);
        assert_eq!(serial_corpus.walks(), parallel_corpus.walks());
        assert_eq!(outcome.refreshed_ids.len(), outcome.stats.walks_refreshed);
        assert!(outcome.refreshed_ids.windows(2).all(|w| w[0] < w[1]));
        assert_index_exact(&parallel, &parallel_corpus, g.num_nodes());
    }
}
