//! Property-based tests of the dynamic-graph subsystem:
//!
//! * an arbitrary mutation sequence applied through `DynamicGraph` yields
//!   degrees / weights / neighbor sets identical to a from-scratch rebuild
//!   (a reference edge-map model), both through the merged-view queries and
//!   through the compacted CSR;
//! * M-H chain state survives reweighting while alias tables are rebuilt to
//!   the correct new distribution.

use std::collections::BTreeMap;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use uninet_dyngraph::{DynamicGraph, GraphMutation, IncrementalMaintainer, UpdateBatch};
use uninet_graph::{Graph, GraphBuilder, NodeId};
use uninet_sampler::{EdgeSamplerKind, InitStrategy};
use uninet_walker::models::DeepWalk;
use uninet_walker::{RandomWalkModel, SamplerManager};

const N: u32 = 12;

/// Reference model: a directed edge map with the same semantics as
/// `DynamicGraph::apply` (upsert adds, reject missing removes/reweights,
/// mirror when symmetric).
#[derive(Default)]
struct EdgeMap {
    edges: BTreeMap<(NodeId, NodeId), f32>,
}

impl EdgeMap {
    fn from_graph(g: &Graph) -> Self {
        let mut edges = BTreeMap::new();
        for (src, dst, w) in g.all_edges() {
            edges.insert((src, dst), w);
        }
        EdgeMap { edges }
    }

    fn apply_directed(&mut self, m: GraphMutation) -> bool {
        let (src, dst) = m.endpoints();
        match m {
            GraphMutation::UpdateWeight { weight, .. } => match self.edges.get_mut(&(src, dst)) {
                Some(w) => {
                    *w = weight;
                    true
                }
                None => false,
            },
            GraphMutation::AddEdge { weight, .. } => {
                self.edges.insert((src, dst), weight);
                true
            }
            GraphMutation::RemoveEdge { .. } => self.edges.remove(&(src, dst)).is_some(),
            // This closed-world model never generates node ops; the open-world
            // lifecycle has its own differential suite (proptest_open_world).
            GraphMutation::AddNode { .. } | GraphMutation::RemoveNode { .. } => {
                unreachable!("node ops are not part of the closed-world model")
            }
        }
    }

    fn apply(&mut self, m: GraphMutation, n: NodeId, symmetric: bool) {
        let (src, dst) = m.endpoints();
        if src >= n || dst >= n || src == dst {
            return;
        }
        if self.apply_directed(m) && symmetric {
            let mirrored = match m {
                GraphMutation::AddEdge { src, dst, weight } => GraphMutation::AddEdge {
                    src: dst,
                    dst: src,
                    weight,
                },
                GraphMutation::RemoveEdge { src, dst } => {
                    GraphMutation::RemoveEdge { src: dst, dst: src }
                }
                GraphMutation::UpdateWeight { src, dst, weight } => GraphMutation::UpdateWeight {
                    src: dst,
                    dst: src,
                    weight,
                },
                GraphMutation::AddNode { .. } | GraphMutation::RemoveNode { .. } => {
                    unreachable!("node ops are not part of the closed-world model")
                }
            };
            self.apply_directed(mirrored);
        }
    }

    fn neighbor_weights(&self, v: NodeId) -> Vec<(NodeId, f32)> {
        self.edges
            .range((v, 0)..=(v, NodeId::MAX))
            .map(|(&(_, dst), &w)| (dst, w))
            .collect()
    }
}

fn base_graph(edges: &[(u32, u32, f32)]) -> Graph {
    let mut b = GraphBuilder::new();
    b.set_num_nodes(N as usize);
    b.symmetric(true).dedup(true);
    for &(u, v, w) in edges {
        if u != v {
            b.add_edge(u % N, v % N, w);
        }
    }
    b.build()
}

fn arbitrary_mutation() -> impl Strategy<Value = GraphMutation> {
    (0usize..3, 0u32..N + 2, 0u32..N + 2, 0.1f32..8.0).prop_map(|(op, src, dst, w)| match op {
        0 => GraphMutation::AddEdge {
            src,
            dst,
            weight: w,
        },
        1 => GraphMutation::RemoveEdge { src, dst },
        _ => GraphMutation::UpdateWeight {
            src,
            dst,
            weight: w,
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The tentpole equivalence property: DynamicGraph == from-scratch rebuild.
    #[test]
    fn mutation_sequence_matches_reference_rebuild(
        edges in prop::collection::vec((0u32..N, 0u32..N, 0.5f32..4.0), 1..40),
        mutations in prop::collection::vec(arbitrary_mutation(), 0..60),
        symmetric in any::<bool>(),
    ) {
        let g = base_graph(&edges);
        let mut reference = EdgeMap::from_graph(&g);
        let mut dg = DynamicGraph::new(g, symmetric);

        for &m in &mutations {
            dg.apply(m);
            reference.apply(m, N, symmetric);
        }

        // Merged-view queries against the reference.
        for v in 0..N {
            let expect = reference.neighbor_weights(v);
            prop_assert_eq!(dg.degree(v), expect.len(), "degree of {}", v);
            prop_assert_eq!(&dg.neighbor_weights(v), &expect, "adjacency of {}", v);
            for &(dst, w) in &expect {
                prop_assert!(dg.has_edge(v, dst));
                prop_assert_eq!(dg.weight(v, dst), Some(w));
            }
        }

        // Compacted CSR against the reference (the from-scratch rebuild).
        let csr = dg.materialize();
        csr.validate().unwrap();
        for v in 0..N {
            let expect = reference.neighbor_weights(v);
            let got: Vec<(NodeId, f32)> = csr
                .neighbors(v)
                .iter()
                .copied()
                .zip(csr.weights(v).iter().copied())
                .collect();
            prop_assert_eq!(&got, &expect, "compacted adjacency of {}", v);
        }

        // Compaction must be idempotent: a second materialize is identical.
        let again = dg.materialize();
        prop_assert_eq!(again.num_edges(), csr.num_edges());
    }

    /// M-H chains survive arbitrary reweight batches untouched; alias tables
    /// are rebuilt and encode the *new* distribution.
    #[test]
    fn mh_chains_survive_reweights_alias_rebuilds(
        edges in prop::collection::vec((0u32..N, 0u32..N, 0.5f32..4.0), 8..40),
        reweights in prop::collection::vec((0u32..N, 0u32..N, 0.2f32..9.0), 1..12),
        seed in 0u64..500,
    ) {
        let g = base_graph(&edges);
        let model = DeepWalk::new();
        let maintainer = IncrementalMaintainer::default();

        let mut dg_mh = DynamicGraph::new(g.clone(), true);
        let mut mh = SamplerManager::new(
            dg_mh.base(),
            &model,
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
            0,
        );
        // Initialize every chain by sampling once per non-isolated node.
        let mut rng = SmallRng::seed_from_u64(seed);
        for v in dg_mh.base().non_isolated_nodes().collect::<Vec<_>>() {
            let state = model.initial_state(dg_mh.base(), v);
            mh.sample(dg_mh.base(), &model, state, &mut rng);
        }
        let before: Vec<Option<u32>> = (0..mh.num_states()).map(|i| mh.mh_chain_last(i)).collect();

        // Build the reweight batch over edges that actually exist.
        let mut batch = UpdateBatch::new();
        for &(u, v, w) in &reweights {
            if dg_mh.has_edge(u, v) {
                batch.update_weight(u, v, w);
            }
        }
        let mh_report = maintainer.apply_batch(&mut dg_mh, &mut mh, &model, &batch);

        // Chain state is bit-identical after the reweight.
        let after: Vec<Option<u32>> = (0..mh.num_states()).map(|i| mh.mh_chain_last(i)).collect();
        prop_assert_eq!(before, after, "M-H chain state changed across a reweight");
        prop_assert_eq!(mh_report.maintenance.states_rebuilt, 0);
        prop_assert_eq!(mh_report.maintenance.bytes_rebuilt, 0);

        // Alias manager over the same batch: touched buckets are rebuilt...
        let mut dg_alias = DynamicGraph::new(g, true);
        let mut alias = SamplerManager::new(dg_alias.base(), &model, EdgeSamplerKind::Alias, 0);
        let alias_report = maintainer.apply_batch(&mut dg_alias, &mut alias, &model, &batch);
        if !batch.is_empty() {
            prop_assert!(alias_report.maintenance.states_rebuilt > 0);
            prop_assert!(alias_report.maintenance.bytes_rebuilt > 0);
        }

        // ...and the rebuilt tables sample the *new* weights exactly.
        if let Some(&(u, _, _)) = reweights.iter().find(|&&(u, v, _)| dg_alias.has_edge(u, v)) {
            let deg = dg_alias.base().degree(u);
            prop_assume!(deg >= 1);
            let weights = dg_alias.base().weights(u).to_vec();
            let total: f64 = weights.iter().map(|&w| w as f64).sum();
            let state = model.initial_state(dg_alias.base(), u);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x5555);
            let draws = 30_000;
            let mut counts = vec![0usize; deg];
            for _ in 0..draws {
                let k = alias.sample(dg_alias.base(), &model, state, &mut rng).unwrap();
                counts[k] += 1;
            }
            for (k, &c) in counts.iter().enumerate() {
                let expected = weights[k] as f64 / total;
                let freq = c as f64 / draws as f64;
                prop_assert!(
                    (freq - expected).abs() < 0.04 + 0.1 * expected,
                    "rebuilt alias table off-target at neighbor {}: {} vs {}",
                    k, freq, expected
                );
            }
        }
    }

    /// Topology changes reset exactly the touched buckets' chains; untouched
    /// chains carry over through compaction.
    #[test]
    fn topology_maintenance_resets_only_touched_chains(
        edges in prop::collection::vec((0u32..N, 0u32..N, 0.5f32..4.0), 12..40),
        src in 0u32..N,
        dst in 0u32..N,
        seed in 0u64..500,
    ) {
        let g = base_graph(&edges);
        prop_assume!(src != dst && !g.has_edge(src, dst));
        let model = DeepWalk::new();
        let mut dg = DynamicGraph::new(g, true);
        let mut manager = SamplerManager::new(
            dg.base(),
            &model,
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
            0,
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        for v in dg.base().non_isolated_nodes().collect::<Vec<_>>() {
            let state = model.initial_state(dg.base(), v);
            manager.sample(dg.base(), &model, state, &mut rng);
        }
        let before: Vec<Option<u32>> =
            (0..manager.num_states()).map(|i| manager.mh_chain_last(i)).collect();

        // Compact on every topology batch (threshold 0).
        let maintainer = IncrementalMaintainer::new(
            uninet_dyngraph::MaintainerConfig { compaction_threshold: 0 },
        );
        let mut batch = UpdateBatch::new();
        batch.add_edge(src, dst, 1.0);
        let report = maintainer.apply_batch(&mut dg, &mut manager, &model, &batch);
        prop_assert!(report.compacted);

        // DeepWalk: one state per node; only src and dst buckets may reset.
        for (v, &prior) in before.iter().enumerate().take(N as usize) {
            let last = manager.mh_chain_last(v);
            if v == src as usize || v == dst as usize {
                prop_assert_eq!(last, None, "touched chain {} not reset", v);
            } else {
                prop_assert_eq!(last, prior, "untouched chain {} lost state", v);
            }
        }
    }
}
