//! Initialization strategies for M-H edge samplers (Section III-C).
//!
//! Every walker state owns one M-H chain whose first sample must come from
//! somewhere. The paper studies three choices:
//!
//! * **Burn-in** — run the chain for a number of throw-away iterations; the
//!   classical MCMC approach, accurate but expensive when there are `#state`
//!   chains (42–47% of total walk cost in Figure 6).
//! * **Random** — draw the initial sample uniformly: `O(1)`, but inaccurate
//!   for skewed target distributions.
//! * **High-weight** — start from (an approximation of) the maximum-weight
//!   edge, i.e. a point in the high-probability region. Theorem 3 gives the
//!   condition under which this beats random initialization.

use rand::Rng;

/// How an M-H chain chooses its first sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InitStrategy {
    /// Uniformly random initial sample (`π₀ = 1/n`).
    Random,
    /// Start at the (approximate) maximum-weight neighbor. `probe` limits how
    /// many uniformly-sampled neighbors are inspected; `usize::MAX` (or any
    /// value ≥ degree) means an exact scan.
    HighWeight {
        /// Number of neighbors probed to approximate the maximum.
        probe: usize,
    },
    /// Classical burn-in: run `iterations` M-H steps and discard them.
    BurnIn {
        /// Number of discarded iterations.
        iterations: usize,
    },
}

impl InitStrategy {
    /// The paper's default high-weight strategy with an exact maximum scan.
    pub fn high_weight_exact() -> Self {
        InitStrategy::HighWeight { probe: usize::MAX }
    }

    /// The paper's default burn-in length used in the experiments (100 after
    /// parameter tuning, per Section V-D).
    pub fn burn_in_default() -> Self {
        InitStrategy::BurnIn { iterations: 100 }
    }

    /// Short label used in benchmark tables ("Rand", "Weight", "Burn").
    pub fn label(&self) -> &'static str {
        match self {
            InitStrategy::Random => "Rand",
            InitStrategy::HighWeight { .. } => "Weight",
            InitStrategy::BurnIn { .. } => "Burn",
        }
    }

    /// Chooses the initial sample index for a state with `deg` candidates and
    /// the given unnormalized weight function.
    ///
    /// For `BurnIn` this returns only the *starting point* (uniform); the
    /// discarded iterations themselves are executed by the chain via
    /// [`crate::metropolis_hastings::MhChain::burn_in`].
    pub fn initial_sample<R: Rng, F: Fn(usize) -> f32>(
        &self,
        deg: usize,
        weight: F,
        rng: &mut R,
    ) -> usize {
        assert!(deg > 0, "cannot initialize a sampler over zero candidates");
        match *self {
            InitStrategy::Random | InitStrategy::BurnIn { .. } => rng.gen_range(0..deg),
            InitStrategy::HighWeight { probe } => {
                if probe >= deg {
                    // Exact maximum scan.
                    let mut best = 0usize;
                    let mut best_w = weight(0);
                    for k in 1..deg {
                        let w = weight(k);
                        if w > best_w {
                            best_w = w;
                            best = k;
                        }
                    }
                    best
                } else {
                    // Approximate maximum via uniform probing, justified by the
                    // law of large numbers in the paper.
                    let mut best = rng.gen_range(0..deg);
                    let mut best_w = weight(best);
                    for _ in 1..probe.max(1) {
                        let k = rng.gen_range(0..deg);
                        let w = weight(k);
                        if w > best_w {
                            best_w = w;
                            best = k;
                        }
                    }
                    best
                }
            }
        }
    }

    /// Number of extra M-H iterations to run (and discard) after choosing the
    /// initial sample.
    pub fn burn_in_iterations(&self) -> usize {
        match *self {
            InitStrategy::BurnIn { iterations } => iterations,
            _ => 0,
        }
    }
}

/// Evaluates the condition of Theorem 3: returns `true` when the high-weight
/// initialization strategy is predicted to converge faster than the random
/// one for a target distribution with maximal probability `pi_max`, minimal
/// probability `pi_min`, sample-space size `n` and `t` outcomes at the max.
pub fn high_weight_preferred(pi_max: f64, pi_min: f64, n: usize, t: usize) -> bool {
    let n = n as f64;
    let t = t as f64;
    let cond1 = pi_max < 1.0 / (2.0 * t) && pi_max / pi_min > n / t;
    let cond2 = pi_max >= 1.0 / (2.0 * t) && pi_min < 1.0 / (2.0 * n);
    cond1 || cond2
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn labels() {
        assert_eq!(InitStrategy::Random.label(), "Rand");
        assert_eq!(InitStrategy::high_weight_exact().label(), "Weight");
        assert_eq!(InitStrategy::burn_in_default().label(), "Burn");
        assert_eq!(InitStrategy::burn_in_default().burn_in_iterations(), 100);
        assert_eq!(InitStrategy::Random.burn_in_iterations(), 0);
    }

    #[test]
    fn high_weight_exact_finds_max() {
        let weights = [1.0f32, 5.0, 2.0, 4.9];
        let mut rng = SmallRng::seed_from_u64(3);
        let s = InitStrategy::high_weight_exact();
        for _ in 0..20 {
            assert_eq!(s.initial_sample(4, |k| weights[k], &mut rng), 1);
        }
    }

    #[test]
    fn high_weight_probe_is_usually_good() {
        // 100 candidates, one big outlier; probing 32 should find it often but
        // must at least return a valid index every time.
        let mut weights = vec![1.0f32; 100];
        weights[37] = 100.0;
        let mut rng = SmallRng::seed_from_u64(4);
        let s = InitStrategy::HighWeight { probe: 32 };
        let mut hit = 0;
        for _ in 0..200 {
            let k = s.initial_sample(100, |k| weights[k], &mut rng);
            assert!(k < 100);
            if k == 37 {
                hit += 1;
            }
        }
        assert!(hit > 30, "outlier found only {hit} times");
    }

    #[test]
    fn random_init_covers_space() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(InitStrategy::Random.initial_sample(10, |_| 1.0, &mut rng));
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn theorem3_conditions() {
        // Skewed distribution: n = 1000, t = 1, pi_max = 0.3, pi_min tiny.
        assert!(high_weight_preferred(0.3, 1e-6, 1000, 1));
        // Uniform distribution: random and high-weight equivalent; condition false.
        assert!(!high_weight_preferred(0.001, 0.001, 1000, 1000));
        // Case 1 branch: pi_max < 1/(2t) and ratio > n/t.
        assert!(high_weight_preferred(0.01, 0.0001, 100, 5));
        // Mild skew below the n/t threshold.
        assert!(!high_weight_preferred(0.012, 0.008, 100, 1));
    }

    #[test]
    #[should_panic]
    fn zero_degree_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = InitStrategy::Random.initial_sample(0, |_| 1.0, &mut rng);
    }
}
