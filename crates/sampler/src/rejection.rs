//! Rejection sampling over a simple proposal distribution.
//!
//! This reproduces the rejection edge sampler of Yang et al. (KnightKing,
//! SOSP'19) as described in the paper's introduction: the proposal is the
//! *static*-weight distribution (sampled in O(1) via an alias table), and the
//! dynamic weight enters only through an accept/reject test against an upper
//! bound of the dynamic/static weight ratio. Its efficiency degrades when the
//! acceptance ratio drops (Table II), which is exactly what the M-H sampler
//! avoids.

use rand::Rng;

use crate::alias::AliasTable;

/// Outcome of one rejection-sampled draw, carrying the number of proposal
/// attempts so callers can track the empirical acceptance ratio (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejectionOutcome {
    /// The accepted neighbor index.
    pub index: usize,
    /// How many proposals were made before one was accepted.
    pub attempts: usize,
}

/// A rejection sampler for one node's neighborhood.
///
/// `proposal` is built from the static edge weights; `bound` must satisfy
/// `dynamic_weight(k) <= bound * static_weight(k)` for every neighbor `k`
/// (e.g. `max(1, 1/p, 1/q)` for node2vec).
#[derive(Debug, Clone)]
pub struct RejectionSampler {
    proposal: AliasTable,
    static_weights: Vec<f32>,
    bound: f32,
    max_attempts: usize,
}

impl RejectionSampler {
    /// Creates a rejection sampler from static weights and an upper bound on
    /// the dynamic/static weight ratio.
    pub fn new(static_weights: &[f32], bound: f32) -> Self {
        assert!(bound > 0.0, "bound must be positive");
        RejectionSampler {
            proposal: AliasTable::new(static_weights),
            static_weights: static_weights.to_vec(),
            bound,
            max_attempts: 10_000,
        }
    }

    /// Number of neighbors covered by this sampler.
    pub fn len(&self) -> usize {
        self.static_weights.len()
    }

    /// True when there are no neighbors (never after construction).
    pub fn is_empty(&self) -> bool {
        self.static_weights.is_empty()
    }

    /// Draws one neighbor from the *dynamic* weight distribution.
    ///
    /// `dynamic_weight(k)` is the unnormalized target weight of neighbor `k`.
    /// If the bound is violated the sample is still accepted (clamped), which
    /// mirrors the behaviour of practical implementations; correctness then
    /// degrades gracefully rather than panicking.
    pub fn sample<R: Rng, F: Fn(usize) -> f32>(
        &self,
        dynamic_weight: F,
        rng: &mut R,
    ) -> RejectionOutcome {
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            let candidate = self.proposal.sample(rng);
            let ratio = dynamic_weight(candidate) / (self.bound * self.static_weights[candidate]);
            if attempts >= self.max_attempts || rng.gen::<f32>() < ratio {
                return RejectionOutcome {
                    index: candidate,
                    attempts,
                };
            }
        }
    }

    /// Memory footprint (proposal alias table + static weights copy).
    pub fn memory_bytes(&self) -> usize {
        self.proposal.memory_bytes() + self.static_weights.len() * std::mem::size_of::<f32>()
    }
}

/// Tracks the empirical acceptance ratio across many draws, as reported in
/// Table II of the paper.
#[derive(Debug, Default, Clone, Copy)]
pub struct AcceptanceStats {
    accepted: u64,
    attempts: u64,
}

impl AcceptanceStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one draw's outcome.
    pub fn record(&mut self, outcome: RejectionOutcome) {
        self.accepted += 1;
        self.attempts += outcome.attempts as u64;
    }

    /// The acceptance ratio θ = accepted draws / total proposals.
    pub fn acceptance_ratio(&self) -> f64 {
        if self.attempts == 0 {
            1.0
        } else {
            self.accepted as f64 / self.attempts as f64
        }
    }

    /// Number of completed draws.
    pub fn num_draws(&self) -> u64 {
        self.accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_dynamic_weights_accept_everything() {
        let stat = vec![1.0f32; 6];
        let s = RejectionSampler::new(&stat, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut stats = AcceptanceStats::new();
        for _ in 0..5000 {
            let o = s.sample(|_| 1.0, &mut rng);
            stats.record(o);
        }
        assert!((stats.acceptance_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_dynamic_weights_match_target() {
        // static uniform proposal, dynamic favours neighbor 0 by 4x.
        let stat = vec![1.0f32; 4];
        let dynamic = [4.0f32, 1.0, 1.0, 1.0];
        let s = RejectionSampler::new(&stat, 4.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for _ in 0..100_000 {
            counts[s.sample(|k| dynamic[k], &mut rng).index] += 1;
        }
        let p0 = counts[0] as f64 / 100_000.0;
        assert!((p0 - 4.0 / 7.0).abs() < 0.01, "p0 = {p0}");
    }

    #[test]
    fn low_acceptance_ratio_detected() {
        // node2vec-style: q = 0.25 so bound = 4; most dynamic weights equal 1.
        let stat = vec![1.0f32; 10];
        let s = RejectionSampler::new(&stat, 4.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut stats = AcceptanceStats::new();
        for _ in 0..20_000 {
            stats.record(s.sample(|_| 1.0, &mut rng));
        }
        let theta = stats.acceptance_ratio();
        assert!((theta - 0.25).abs() < 0.02, "theta = {theta}");
    }

    #[test]
    fn attempts_increase_when_bound_is_loose() {
        let stat = vec![1.0f32; 8];
        let tight = RejectionSampler::new(&stat, 1.0);
        let loose = RejectionSampler::new(&stat, 8.0);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut tight_attempts = 0usize;
        let mut loose_attempts = 0usize;
        for _ in 0..5000 {
            tight_attempts += tight.sample(|_| 1.0, &mut rng).attempts;
            loose_attempts += loose.sample(|_| 1.0, &mut rng).attempts;
        }
        assert!(loose_attempts > 4 * tight_attempts);
    }

    #[test]
    fn memory_scales_with_degree() {
        let small = RejectionSampler::new(&[1.0; 4], 1.0);
        let large = RejectionSampler::new(&vec![1.0; 1024], 1.0);
        assert!(large.memory_bytes() > 100 * small.memory_bytes());
    }

    #[test]
    #[should_panic]
    fn non_positive_bound_panics() {
        let _ = RejectionSampler::new(&[1.0, 1.0], 0.0);
    }
}
