//! Kullback–Leibler divergence utilities and the Figure-1 simulation driver.
//!
//! Figure 1 of the paper compares the accuracy of the random and high-weight
//! initialization strategies: for randomly generated target distributions with
//! controlled shape (n, t, πmax/πmin), an M-H chain generates `5n` samples and
//! the KL divergence between the empirical and target distribution is averaged
//! over many repetitions; the plotted quantity is the ratio `KL_r / KL_h`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::distribution::{empirical_distribution_unsmoothed, DiscreteDistribution};
use crate::init::InitStrategy;
use crate::metropolis_hastings::MhChain;

/// KL(p ‖ q) in nats. Zero-probability entries in `p` contribute zero; `q`
/// entries are floored at a tiny epsilon to keep the result finite.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must have the same support");
    let mut kl = 0.0;
    for (&pi, &qi) in p.iter().zip(q.iter()) {
        if pi > 0.0 {
            kl += pi * (pi / qi.max(1e-300)).ln();
        }
    }
    kl.max(0.0)
}

/// Configuration of one cell of the Figure-1 simulation grid.
#[derive(Debug, Clone, Copy)]
pub struct InitSimulationConfig {
    /// Sample-space size `n`.
    pub n: usize,
    /// Number of outcomes at the maximal probability `t`.
    pub t: usize,
    /// Ratio `πmax / πmin`.
    pub max_min_ratio: f64,
    /// Number of random target distributions to average over (paper: 1000).
    pub num_distributions: usize,
    /// Repetitions per distribution (paper: 20).
    pub repeats: usize,
    /// Samples drawn per run as a multiple of n (paper: 5).
    pub samples_per_n: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for InitSimulationConfig {
    fn default() -> Self {
        InitSimulationConfig {
            n: 10,
            t: 1,
            max_min_ratio: 10.0,
            num_distributions: 100,
            repeats: 5,
            samples_per_n: 5,
            seed: 42,
        }
    }
}

/// Result of one simulation cell: the averaged KL divergences for both
/// initialization strategies and their ratio (the y-axis of Figure 1).
#[derive(Debug, Clone, Copy)]
pub struct InitSimulationResult {
    /// Mean KL divergence with random initialization.
    pub kl_random: f64,
    /// Mean KL divergence with high-weight initialization.
    pub kl_high_weight: f64,
}

impl InitSimulationResult {
    /// The ratio `KL_r / KL_h`; values above 1 favour high-weight init.
    pub fn ratio(&self) -> f64 {
        self.kl_random / self.kl_high_weight.max(1e-300)
    }
}

/// Measures the KL divergence between the empirical distribution of
/// `num_samples` M-H draws and the target, for a given initialization.
pub fn measure_kl<R: Rng>(
    target: &DiscreteDistribution,
    init: InitStrategy,
    num_samples: usize,
    rng: &mut R,
) -> f64 {
    let weights = target.weights_f32();
    let wf = |k: usize| weights[k];
    let mut chain = MhChain::new();
    let mut samples = Vec::with_capacity(num_samples);
    for _ in 0..num_samples {
        samples.push(chain.step(target.len(), &wf, init, rng));
    }
    let empirical = empirical_distribution_unsmoothed(&samples, target.len());
    kl_divergence(&empirical, &target.probs())
}

/// Runs one cell of the Figure-1 grid and returns the averaged divergences.
pub fn run_init_simulation(cfg: &InitSimulationConfig) -> InitSimulationResult {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let num_samples = cfg.samples_per_n * cfg.n;
    let mut kl_r_sum = 0.0;
    let mut kl_h_sum = 0.0;
    let mut count = 0usize;
    for _ in 0..cfg.num_distributions {
        let target =
            DiscreteDistribution::random_with_shape(cfg.n, cfg.t, cfg.max_min_ratio, &mut rng);
        for _ in 0..cfg.repeats {
            kl_r_sum += measure_kl(&target, InitStrategy::Random, num_samples, &mut rng);
            kl_h_sum += measure_kl(
                &target,
                InitStrategy::high_weight_exact(),
                num_samples,
                &mut rng,
            );
            count += 1;
        }
    }
    InitSimulationResult {
        kl_random: kl_r_sum / count as f64,
        kl_high_weight: kl_h_sum / count as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_of_identical_distributions_is_zero() {
        let p = [0.25, 0.25, 0.5];
        assert!(kl_divergence(&p, &p) < 1e-12);
    }

    #[test]
    fn kl_is_positive_for_different_distributions() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        let kl = kl_divergence(&p, &q);
        assert!(kl > 0.3 && kl < 0.6, "kl = {kl}");
    }

    #[test]
    fn kl_handles_zero_entries() {
        let p = [1.0, 0.0];
        let q = [0.5, 0.5];
        let kl = kl_divergence(&p, &q);
        assert!((kl - std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn kl_length_mismatch_panics() {
        let _ = kl_divergence(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    fn measure_kl_decreases_with_more_samples() {
        let target = DiscreteDistribution::new(vec![4.0, 2.0, 1.0, 1.0]);
        let mut rng = SmallRng::seed_from_u64(1);
        let few = measure_kl(&target, InitStrategy::Random, 50, &mut rng);
        let many = measure_kl(&target, InitStrategy::Random, 50_000, &mut rng);
        assert!(many < few, "few = {few}, many = {many}");
    }

    #[test]
    fn skewed_targets_favour_high_weight_init() {
        // Strongly skewed target (ratio >> n/t): Theorem 3 predicts the
        // high-weight strategy is more accurate, i.e. ratio > 1.
        let cfg = InitSimulationConfig {
            n: 10,
            t: 1,
            max_min_ratio: 1000.0,
            num_distributions: 60,
            repeats: 5,
            samples_per_n: 5,
            seed: 7,
        };
        let result = run_init_simulation(&cfg);
        assert!(
            result.ratio() > 1.0,
            "expected KL_r/KL_h > 1 for skewed targets, got {}",
            result.ratio()
        );
    }

    #[test]
    fn near_uniform_targets_show_no_high_weight_advantage() {
        // Mild skew (ratio < n/t): the advantage disappears (ratio ≈ 1 or below).
        let cfg = InitSimulationConfig {
            n: 100,
            t: 50,
            max_min_ratio: 1.1,
            num_distributions: 40,
            repeats: 5,
            samples_per_n: 5,
            seed: 8,
        };
        let result = run_init_simulation(&cfg);
        assert!(
            result.ratio() < 1.05,
            "expected no high-weight advantage, got ratio {}",
            result.ratio()
        );
    }
}
