//! Walker's alias method for O(1) sampling from a fixed discrete distribution.
//!
//! The alias table is the sampler used by the reference node2vec
//! implementation: for every walker state it materializes an `O(deg)` table,
//! which is why the paper reports `O(d · #state)` memory — the source of the
//! out-of-memory failures on billion-edge graphs (Table VII).

use rand::Rng;

/// An alias table over `n` outcomes.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Probability of keeping the column's own outcome (scaled to [0,1]).
    prob: Vec<f32>,
    /// The alias outcome used when the coin flip rejects the column's own outcome.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds an alias table from unnormalized non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn new(weights: &[f32]) -> Self {
        let n = weights.len();
        assert!(n > 0, "alias table needs at least one outcome");
        let total: f64 = weights.iter().map(|&w| w as f64).sum();
        assert!(total > 0.0, "weights must not all be zero");

        let mut prob = vec![0f32; n];
        let mut alias = vec![0u32; n];
        // Scaled probabilities (mean 1.0).
        let mut scaled: Vec<f64> = weights
            .iter()
            .map(|&w| w as f64 * n as f64 / total)
            .collect();

        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = *large.last().expect("checked non-empty");
            prob[s] = scaled[s] as f32;
            alias[s] = l as u32;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for i in large {
            prob[i] = 1.0;
            alias[i] = i as u32;
        }
        for i in small {
            prob[i] = 1.0;
            alias[i] = i as u32;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no outcomes (never after construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome in O(1).
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let n = self.prob.len();
        let col = rng.gen_range(0..n);
        if rng.gen::<f32>() < self.prob[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }

    /// Memory footprint in bytes (the quantity that explodes for |E| states).
    pub fn memory_bytes(&self) -> usize {
        self.prob.len() * (std::mem::size_of::<f32>() + std::mem::size_of::<u32>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn empirical(table: &AliasTable, n: usize, draws: usize, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let weights = vec![1.0f32; 8];
        let t = AliasTable::new(&weights);
        assert_eq!(t.len(), 8);
        let freqs = empirical(&t, 8, 80_000, 1);
        for f in freqs {
            assert!((f - 0.125).abs() < 0.01, "freq {f}");
        }
    }

    #[test]
    fn skewed_weights_match_probabilities() {
        let weights = vec![1.0f32, 2.0, 4.0, 8.0, 1.0];
        let total: f32 = weights.iter().sum();
        let t = AliasTable::new(&weights);
        let freqs = empirical(&t, 5, 200_000, 2);
        for (i, f) in freqs.iter().enumerate() {
            let expected = (weights[i] / total) as f64;
            assert!(
                (f - expected).abs() < 0.01,
                "outcome {i}: {f} vs {expected}"
            );
        }
    }

    #[test]
    fn zero_weight_outcome_never_sampled() {
        let weights = vec![1.0f32, 0.0, 3.0];
        let t = AliasTable::new(&weights);
        let freqs = empirical(&t, 3, 50_000, 3);
        assert_eq!(freqs[1], 0.0);
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[5.0]);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn memory_grows_with_size() {
        let small = AliasTable::new(&[1.0; 4]);
        let big = AliasTable::new(&[1.0; 400]);
        assert!(big.memory_bytes() > 50 * small.memory_bytes());
    }

    #[test]
    #[should_panic]
    fn empty_weights_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic]
    fn all_zero_weights_panic() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }
}
