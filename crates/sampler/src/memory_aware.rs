//! Memory-aware hybrid sampler planning (Shao et al., SIGMOD'20),
//! re-implemented from the description in the UniNet paper.
//!
//! The memory-aware framework pre-materializes `O(deg)` alias tables for the
//! states that benefit the most, subject to a global memory budget, and falls
//! back to `O(deg)`-time direct sampling for everything else. The plan is a
//! static assignment computed before the walk starts; the quality of the plan
//! (and therefore the walk time) depends on the budget — which is why the
//! paper reports it as memory-safe but slower than UniNet on billion-edge
//! graphs (Table VII, Figures 6–7).

/// Which sampler a given state uses under a memory-aware plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateSamplerKind {
    /// A materialized alias table (fast, costs `8 * degree` bytes).
    Alias,
    /// Direct inverse-CDF sampling (no memory, `O(degree)` time per draw).
    Direct,
}

/// A static assignment of sampler kinds to states.
#[derive(Debug, Clone)]
pub struct MemoryAwarePlan {
    assignment: Vec<StateSamplerKind>,
    bytes_used: usize,
    budget_bytes: usize,
}

/// Bytes needed by an alias table over `degree` outcomes (prob f32 + alias u32).
pub fn alias_table_bytes(degree: usize) -> usize {
    degree * 8
}

impl MemoryAwarePlan {
    /// Computes a plan for `states`, where `states[i] = (degree, visit_frequency)`.
    ///
    /// States are ranked by expected benefit — `visit_frequency * degree`,
    /// i.e. how much `O(deg)` scan work an alias table would save — and greedy
    /// assignment materializes alias tables until the budget is exhausted.
    pub fn plan(states: &[(usize, f64)], budget_bytes: usize) -> Self {
        let mut order: Vec<usize> = (0..states.len()).collect();
        order.sort_by(|&a, &b| {
            let benefit_a = states[a].1 * states[a].0 as f64;
            let benefit_b = states[b].1 * states[b].0 as f64;
            benefit_b
                .partial_cmp(&benefit_a)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut assignment = vec![StateSamplerKind::Direct; states.len()];
        let mut bytes_used = 0usize;
        for idx in order {
            let cost = alias_table_bytes(states[idx].0);
            if bytes_used + cost <= budget_bytes && states[idx].0 > 1 {
                assignment[idx] = StateSamplerKind::Alias;
                bytes_used += cost;
            }
        }
        MemoryAwarePlan {
            assignment,
            bytes_used,
            budget_bytes,
        }
    }

    /// The sampler kind assigned to state `i`.
    pub fn kind(&self, i: usize) -> StateSamplerKind {
        self.assignment[i]
    }

    /// Number of states covered by the plan.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True when the plan covers no states.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Bytes consumed by materialized alias tables.
    pub fn bytes_used(&self) -> usize {
        self.bytes_used
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Fraction of states that received an alias table.
    pub fn alias_fraction(&self) -> f64 {
        if self.assignment.is_empty() {
            return 0.0;
        }
        let alias = self
            .assignment
            .iter()
            .filter(|k| **k == StateSamplerKind::Alias)
            .count();
        alias as f64 / self.assignment.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_gives_all_alias() {
        let states: Vec<(usize, f64)> = (0..10).map(|i| (i + 2, 1.0)).collect();
        let plan = MemoryAwarePlan::plan(&states, usize::MAX);
        assert!((plan.alias_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(plan.len(), 10);
        assert!(!plan.is_empty());
    }

    #[test]
    fn zero_budget_gives_all_direct() {
        let states: Vec<(usize, f64)> = (0..10).map(|i| (i + 2, 1.0)).collect();
        let plan = MemoryAwarePlan::plan(&states, 0);
        assert_eq!(plan.alias_fraction(), 0.0);
        assert_eq!(plan.bytes_used(), 0);
    }

    #[test]
    fn hot_heavy_states_are_preferred() {
        // State 0: huge degree, hot. State 1: small degree, cold.
        let states = vec![(1000usize, 10.0f64), (4, 0.1), (500, 5.0)];
        let budget = alias_table_bytes(1000) + alias_table_bytes(500);
        let plan = MemoryAwarePlan::plan(&states, budget);
        assert_eq!(plan.kind(0), StateSamplerKind::Alias);
        assert_eq!(plan.kind(2), StateSamplerKind::Alias);
        assert_eq!(plan.kind(1), StateSamplerKind::Direct);
        assert!(plan.bytes_used() <= plan.budget_bytes());
    }

    #[test]
    fn budget_is_respected() {
        let states: Vec<(usize, f64)> = (0..100).map(|_| (64usize, 1.0f64)).collect();
        let budget = 10 * alias_table_bytes(64);
        let plan = MemoryAwarePlan::plan(&states, budget);
        assert!(plan.bytes_used() <= budget);
        let alias_count = (0..plan.len())
            .filter(|&i| plan.kind(i) == StateSamplerKind::Alias)
            .count();
        assert_eq!(alias_count, 10);
    }

    #[test]
    fn degree_one_states_never_get_alias() {
        let states = vec![(1usize, 100.0f64), (8, 1.0)];
        let plan = MemoryAwarePlan::plan(&states, usize::MAX);
        assert_eq!(plan.kind(0), StateSamplerKind::Direct);
        assert_eq!(plan.kind(1), StateSamplerKind::Alias);
    }
}
