//! The Metropolis–Hastings edge sampler (Algorithm 1 of the paper).
//!
//! For a walker state `x` over the `deg(v)` out-edges of the current node `v`,
//! the chain keeps a single value `LAST_x` (the previously accepted neighbor
//! index). One step:
//!
//! 1. draw a candidate neighbor `u` uniformly (the conditional probability
//!    mass function `q(·|·) = 1/deg(v)`),
//! 2. accept with probability `min(1, w'(u) / w'(LAST_x))` where `w'` is the
//!    unnormalized dynamic edge weight,
//! 3. if accepted, `LAST_x ← u`; return `LAST_x`.
//!
//! Because `q` is symmetric it cancels in the acceptance ratio (Eq. 6 → the
//! simplified θ), the chain needs no normalization constant, and both the time
//! and memory cost per state are `O(1)` — the properties Theorems 1–2 rely on.

use std::sync::atomic::{AtomicU32, Ordering};

use rand::Rng;

use crate::init::InitStrategy;

/// A single-threaded M-H chain for one walker state.
///
/// The chain is lazily initialized: the first call to [`MhChain::step`]
/// applies the configured [`InitStrategy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MhChain {
    last: u32,
}

/// Sentinel meaning "not initialized yet".
const UNINIT: u32 = u32::MAX;

impl Default for MhChain {
    fn default() -> Self {
        Self::new()
    }
}

impl MhChain {
    /// Creates an uninitialized chain.
    pub fn new() -> Self {
        MhChain { last: UNINIT }
    }

    /// Creates a chain whose last sample is already known.
    pub fn with_last(last: u32) -> Self {
        MhChain { last }
    }

    /// True if the chain has not produced a sample yet.
    pub fn is_initialized(&self) -> bool {
        self.last != UNINIT
    }

    /// The last accepted sample (neighbor index), if initialized.
    pub fn last(&self) -> Option<u32> {
        if self.is_initialized() {
            Some(self.last)
        } else {
            None
        }
    }

    /// Forces initialization according to `init` without producing a sample.
    pub fn initialize<R: Rng, F: Fn(usize) -> f32>(
        &mut self,
        deg: usize,
        weight: &F,
        init: InitStrategy,
        rng: &mut R,
    ) {
        self.last = init.initial_sample(deg, weight, rng) as u32;
        let burn = init.burn_in_iterations();
        if burn > 0 {
            self.burn_in(deg, weight, burn, rng);
        }
    }

    /// Runs `iterations` M-H transitions, discarding the outputs.
    pub fn burn_in<R: Rng, F: Fn(usize) -> f32>(
        &mut self,
        deg: usize,
        weight: &F,
        iterations: usize,
        rng: &mut R,
    ) {
        for _ in 0..iterations {
            self.transition(deg, weight, rng);
        }
    }

    /// One M-H transition (Algorithm 1, lines 2–9) without returning a sample.
    #[inline]
    fn transition<R: Rng, F: Fn(usize) -> f32>(&mut self, deg: usize, weight: &F, rng: &mut R) {
        let candidate = rng.gen_range(0..deg) as u32;
        let w_cand = weight(candidate as usize);
        let w_last = weight(self.last as usize);
        // Accept with min(1, w_cand / w_last); division avoided.
        if w_cand >= w_last || rng.gen::<f32>() * w_last < w_cand {
            self.last = candidate;
        }
    }

    /// Draws the next sample (Algorithm 1). `deg` is the number of candidate
    /// edges and `weight(k)` their unnormalized dynamic weights.
    ///
    /// # Panics
    ///
    /// Panics if `deg == 0`.
    #[inline]
    pub fn step<R: Rng, F: Fn(usize) -> f32>(
        &mut self,
        deg: usize,
        weight: &F,
        init: InitStrategy,
        rng: &mut R,
    ) -> usize {
        assert!(
            deg > 0,
            "M-H chain cannot sample from an empty neighborhood"
        );
        if !self.is_initialized() || self.last as usize >= deg {
            self.initialize(deg, weight, init, rng);
        }
        self.transition(deg, weight, rng);
        self.last as usize
    }

    /// Memory footprint per chain in bytes — the `O(1)` the paper claims.
    pub const fn memory_bytes() -> usize {
        std::mem::size_of::<u32>()
    }
}

/// A lock-free M-H chain shareable between walker threads.
///
/// The UniNet C++ implementation lets concurrent walkers share the per-state
/// `LAST_x` variable with benign races; this variant reproduces that behaviour
/// soundly with relaxed atomics. Each state costs exactly 4 bytes.
#[derive(Debug)]
pub struct AtomicMhChain {
    last: AtomicU32,
}

impl Default for AtomicMhChain {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicMhChain {
    /// Creates an uninitialized chain.
    pub fn new() -> Self {
        AtomicMhChain {
            last: AtomicU32::new(UNINIT),
        }
    }

    /// Creates a chain carrying over a previous chain's state, if any.
    ///
    /// Used by incremental sampler maintenance: because an M-H chain is just
    /// the last accepted neighbor index, its state can be transplanted across
    /// graph updates in O(1) — a stale index is handled lazily by `step`'s
    /// re-initialization check.
    pub fn from_state(last: Option<u32>) -> Self {
        AtomicMhChain {
            last: AtomicU32::new(last.unwrap_or(UNINIT)),
        }
    }

    /// True if some thread has initialized the chain.
    pub fn is_initialized(&self) -> bool {
        self.last.load(Ordering::Relaxed) != UNINIT
    }

    /// The last accepted sample, if initialized.
    pub fn last(&self) -> Option<u32> {
        let v = self.last.load(Ordering::Relaxed);
        if v == UNINIT {
            None
        } else {
            Some(v)
        }
    }

    /// Draws the next sample, initializing lazily on first use.
    #[inline]
    pub fn step<R: Rng, F: Fn(usize) -> f32>(
        &self,
        deg: usize,
        weight: &F,
        init: InitStrategy,
        rng: &mut R,
    ) -> usize {
        assert!(
            deg > 0,
            "M-H chain cannot sample from an empty neighborhood"
        );
        let mut last = self.last.load(Ordering::Relaxed);
        if last == UNINIT || last as usize >= deg {
            let mut chain = MhChain::new();
            chain.initialize(deg, weight, init, rng);
            last = chain.last;
            // Racing initializations are both valid initial samples; keep one.
            let _ = self
                .last
                .compare_exchange(UNINIT, last, Ordering::Relaxed, Ordering::Relaxed);
            last = self.last.load(Ordering::Relaxed);
            if last == UNINIT || last as usize >= deg {
                last = chain.last;
            }
        }
        let candidate = rng.gen_range(0..deg) as u32;
        let w_cand = weight(candidate as usize);
        let w_last = weight(last as usize);
        let accepted = w_cand >= w_last || rng.gen::<f32>() * w_last < w_cand;
        let result = if accepted { candidate } else { last };
        if accepted {
            self.last.store(candidate, Ordering::Relaxed);
        }
        result as usize
    }

    /// Memory footprint per chain in bytes.
    pub const fn memory_bytes() -> usize {
        std::mem::size_of::<AtomicU32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{empirical_distribution, DiscreteDistribution};
    use crate::kl::kl_divergence;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn chain_marginal(weights: &[f32], draws: usize, init: InitStrategy, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut chain = MhChain::new();
        let wf = |k: usize| weights[k];
        let mut samples = Vec::with_capacity(draws);
        for _ in 0..draws {
            samples.push(chain.step(weights.len(), &wf, init, &mut rng));
        }
        empirical_distribution(&samples, weights.len())
    }

    #[test]
    fn converges_to_uniform_target() {
        let weights = vec![1.0f32; 6];
        let marginal = chain_marginal(&weights, 120_000, InitStrategy::Random, 1);
        for p in &marginal {
            assert!((p - 1.0 / 6.0).abs() < 0.01, "p = {p}");
        }
    }

    #[test]
    fn converges_to_skewed_target() {
        let weights = vec![8.0f32, 4.0, 2.0, 1.0, 1.0];
        let target = DiscreteDistribution::new(weights.iter().map(|&w| w as f64).collect());
        let marginal = chain_marginal(&weights, 400_000, InitStrategy::high_weight_exact(), 2);
        let kl = kl_divergence(&marginal, &target.probs());
        assert!(kl < 5e-4, "kl = {kl}");
        // Spot-check individual probabilities.
        for (k, p) in marginal.iter().enumerate() {
            assert!(
                (p - target.prob(k)).abs() < 0.01,
                "outcome {k}: {p} vs {}",
                target.prob(k)
            );
        }
    }

    #[test]
    fn all_init_strategies_converge() {
        let weights = vec![5.0f32, 1.0, 1.0, 1.0];
        let target = DiscreteDistribution::new(weights.iter().map(|&w| w as f64).collect());
        for (i, init) in [
            InitStrategy::Random,
            InitStrategy::high_weight_exact(),
            InitStrategy::HighWeight { probe: 2 },
            InitStrategy::BurnIn { iterations: 50 },
        ]
        .into_iter()
        .enumerate()
        {
            let marginal = chain_marginal(&weights, 300_000, init, 100 + i as u64);
            let kl = kl_divergence(&marginal, &target.probs());
            assert!(kl < 1e-3, "init {init:?}: kl = {kl}");
        }
    }

    #[test]
    fn lazy_initialization_only_once() {
        let weights = [1.0f32, 9.0];
        let mut chain = MhChain::new();
        assert!(!chain.is_initialized());
        assert_eq!(chain.last(), None);
        let mut rng = SmallRng::seed_from_u64(5);
        let wf = |k: usize| weights[k];
        chain.step(2, &wf, InitStrategy::high_weight_exact(), &mut rng);
        assert!(chain.is_initialized());
        assert!(chain.last().is_some());
    }

    #[test]
    fn with_last_skips_initialization() {
        let chain = MhChain::with_last(3);
        assert!(chain.is_initialized());
        assert_eq!(chain.last(), Some(3));
    }

    #[test]
    fn reinitializes_when_degree_shrinks() {
        // A chain whose last index is out of range for a smaller neighborhood
        // must re-initialize rather than index out of bounds.
        let mut chain = MhChain::with_last(10);
        let weights = [1.0f32, 2.0, 3.0];
        let wf = |k: usize| weights[k];
        let mut rng = SmallRng::seed_from_u64(6);
        let s = chain.step(3, &wf, InitStrategy::Random, &mut rng);
        assert!(s < 3);
    }

    #[test]
    fn atomic_chain_matches_sequential_behaviour() {
        let weights = [4.0f32, 2.0, 1.0, 1.0];
        let target = DiscreteDistribution::new(weights.iter().map(|&w| w as f64).collect());
        let chain = AtomicMhChain::new();
        assert!(!chain.is_initialized());
        let mut rng = SmallRng::seed_from_u64(7);
        let wf = |k: usize| weights[k];
        let mut samples = Vec::new();
        for _ in 0..300_000 {
            samples.push(chain.step(4, &wf, InitStrategy::Random, &mut rng));
        }
        assert!(chain.is_initialized());
        let marginal = empirical_distribution(&samples, 4);
        let kl = kl_divergence(&marginal, &target.probs());
        assert!(kl < 1e-3, "kl = {kl}");
    }

    #[test]
    fn atomic_chain_is_thread_safe() {
        let weights = [3.0f32, 1.0, 1.0, 1.0, 2.0];
        let chain = AtomicMhChain::new();
        let wf = |k: usize| weights[k];
        std::thread::scope(|scope| {
            for t in 0..4 {
                let chain = &chain;
                let wf = &wf;
                scope.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(1000 + t);
                    for _ in 0..10_000 {
                        let s = chain.step(5, wf, InitStrategy::Random, &mut rng);
                        assert!(s < 5);
                    }
                });
            }
        });
        assert!(chain.last().unwrap() < 5);
    }

    #[test]
    fn memory_is_constant() {
        assert_eq!(MhChain::memory_bytes(), 4);
        assert_eq!(AtomicMhChain::memory_bytes(), 4);
    }

    #[test]
    #[should_panic]
    fn empty_neighborhood_panics() {
        let mut chain = MhChain::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = chain.step(0, &|_| 1.0, InitStrategy::Random, &mut rng);
    }
}
