//! # uninet-sampler
//!
//! Edge samplers for random-walk generation, reproducing Section III of the
//! UniNet paper (ICDE 2021) together with every baseline sampler the paper
//! compares against:
//!
//! * [`alias::AliasTable`] — Walker's alias method: `O(deg)` memory per
//!   distribution, `O(1)` sampling (the sampler used by the original node2vec
//!   implementation and by KnightKing's proposal step).
//! * [`direct`] — direct (inverse-CDF / linear scan) sampling: `O(1)` memory,
//!   `O(deg)` time.
//! * [`rejection::RejectionSampler`] — rejection sampling from a simple
//!   proposal distribution with an acceptance ratio, as used by KnightKing.
//! * [`knightking::OutlierFoldingSampler`] — rejection sampling with
//!   pre-acceptance and outlier folding (the KnightKing optimization).
//! * [`memory_aware::MemoryAwarePlan`] — the SIGMOD'20 memory-aware hybrid
//!   that materializes alias tables for the hottest states within a budget.
//! * [`metropolis_hastings::MhChain`] — **the paper's contribution**: a
//!   Metropolis–Hastings edge sampler with a uniform conditional probability
//!   mass function, `O(1)` time and `O(1)` memory per state, able to sample
//!   from *unnormalized* dynamic-weight distributions (Algorithm 1).
//! * [`init::InitStrategy`] — burn-in, random and high-weight initialization
//!   strategies for the M-H chains (Section III-C, Theorem 3).
//! * [`kl`] — Kullback–Leibler divergence utilities used to reproduce Fig. 1.
//!
//! All samplers are deterministic given a seeded [`rand::Rng`]. The crate is
//! the bottom of the workspace stack: `uninet-walker` lays these samplers out
//! per walker state, and the streaming layers above exploit the M-H sampler's
//! zero-rebuild property when edge weights change under live traffic.
//!
//! ```
//! use rand::{rngs::SmallRng, SeedableRng};
//! use uninet_sampler::AliasTable;
//!
//! // O(1) draws from a static weighted distribution.
//! let table = AliasTable::new(&[1.0, 2.0, 7.0]);
//! let mut rng = SmallRng::seed_from_u64(7);
//! let mut counts = [0usize; 3];
//! for _ in 0..3000 {
//!     counts[table.sample(&mut rng)] += 1;
//! }
//! assert!(counts[2] > counts[0]); // weight 7 dominates weight 1
//! ```

pub mod alias;
pub mod direct;
pub mod distribution;
pub mod init;
pub mod kl;
pub mod knightking;
pub mod memory_aware;
pub mod metropolis_hastings;
pub mod rejection;
pub mod traits;

pub use alias::AliasTable;
pub use direct::{cumulative_sample, direct_sample, direct_sample_fn};
pub use distribution::DiscreteDistribution;
pub use init::InitStrategy;
pub use knightking::OutlierFoldingSampler;
pub use memory_aware::{MemoryAwarePlan, StateSamplerKind};
pub use metropolis_hastings::{AtomicMhChain, MhChain};
pub use rejection::{RejectionOutcome, RejectionSampler};
pub use traits::{DynamicWeight, EdgeSamplerKind};
