//! Direct (inverse-CDF) edge sampling: `O(1)` memory, `O(deg)` time.
//!
//! This is the sampler used by the open-sourced implementations of DeepWalk,
//! metapath2vec, edge2vec and fairwalk that the paper benchmarks against in
//! Table VI: at every step the full (dynamic) weight vector is scanned to draw
//! one sample.

use rand::Rng;

/// Samples an index from unnormalized weights by a linear cumulative scan.
///
/// Returns `None` if the weights are empty or sum to zero.
pub fn direct_sample<R: Rng>(weights: &[f32], rng: &mut R) -> Option<usize> {
    direct_sample_fn(weights.len(), |k| weights[k], rng)
}

/// Samples an index from an unnormalized weight *function* of `n` outcomes.
///
/// Two passes are made over the weights (one for the total, one for the scan),
/// which matches how a direct sampler must handle dynamic (state-dependent)
/// weights that cannot be pre-normalized — the cost the paper's Challenge 2
/// highlights.
pub fn direct_sample_fn<R: Rng, F: Fn(usize) -> f32>(
    n: usize,
    weight: F,
    rng: &mut R,
) -> Option<usize> {
    if n == 0 {
        return None;
    }
    let mut total = 0.0f64;
    for k in 0..n {
        let w = weight(k) as f64;
        debug_assert!(w >= 0.0, "negative weight");
        total += w;
    }
    if total <= 0.0 {
        return None;
    }
    let target = rng.gen_range(0.0..total);
    let mut acc = 0.0f64;
    for k in 0..n {
        acc += weight(k) as f64;
        if target < acc {
            return Some(k);
        }
    }
    Some(n - 1)
}

/// Samples an index given a precomputed cumulative-weight array using binary
/// search (`O(log n)` per draw). The cumulative array must be non-decreasing
/// with a positive final entry.
pub fn cumulative_sample<R: Rng>(cumulative: &[f64], rng: &mut R) -> Option<usize> {
    let total = *cumulative.last()?;
    if total <= 0.0 {
        return None;
    }
    let target = rng.gen_range(0.0..total);
    Some(match cumulative.partition_point(|&c| c <= target) {
        i if i >= cumulative.len() => cumulative.len() - 1,
        i => i,
    })
}

/// Builds the cumulative array used by [`cumulative_sample`].
pub fn build_cumulative(weights: &[f32]) -> Vec<f64> {
    let mut acc = 0.0f64;
    weights
        .iter()
        .map(|&w| {
            acc += w as f64;
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn direct_matches_distribution() {
        let weights = [2.0f32, 1.0, 1.0];
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        for _ in 0..60_000 {
            counts[direct_sample(&weights, &mut rng).unwrap()] += 1;
        }
        let p0 = counts[0] as f64 / 60_000.0;
        assert!((p0 - 0.5).abs() < 0.01, "p0 = {p0}");
    }

    #[test]
    fn empty_and_zero_weights_return_none() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(direct_sample(&[], &mut rng), None);
        assert_eq!(direct_sample(&[0.0, 0.0], &mut rng), None);
        assert_eq!(direct_sample_fn(0, |_| 1.0, &mut rng), None);
    }

    #[test]
    fn fn_variant_equals_slice_variant() {
        let weights = [1.0f32, 3.0, 6.0];
        let mut a = SmallRng::seed_from_u64(5);
        let mut b = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert_eq!(
                direct_sample(&weights, &mut a),
                direct_sample_fn(3, |k| weights[k], &mut b)
            );
        }
    }

    #[test]
    fn cumulative_sampling_matches() {
        let weights = [1.0f32, 0.0, 2.0, 1.0];
        let cum = build_cumulative(&weights);
        assert_eq!(cum.len(), 4);
        assert!((cum[3] - 4.0).abs() < 1e-9);
        let mut rng = SmallRng::seed_from_u64(21);
        let mut counts = [0usize; 4];
        for _ in 0..80_000 {
            counts[cumulative_sample(&cum, &mut rng).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let p2 = counts[2] as f64 / 80_000.0;
        assert!((p2 - 0.5).abs() < 0.01);
    }

    #[test]
    fn cumulative_empty_returns_none() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(cumulative_sample(&[], &mut rng), None);
        assert_eq!(cumulative_sample(&[0.0, 0.0], &mut rng), None);
    }
}
