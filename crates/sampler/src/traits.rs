//! Shared trait and enum definitions for the sampler family.

/// An unnormalized dynamic edge weight function over the `deg` out-edges of
/// the current node: `weight(k)` returns `w'_{v,u_k}` for the `k`-th neighbor.
///
/// This is the quantity the paper calls the *dynamic edge weight* (Table IV);
/// it is everything a sampler needs to know about the random-walk model.
pub trait DynamicWeight {
    /// The unnormalized weight of the `k`-th candidate edge.
    fn weight(&self, k: usize) -> f32;
    /// Number of candidate edges (the degree of the current node).
    fn len(&self) -> usize;
    /// True when there are no candidates.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Blanket implementation so closures `(Fn(usize) -> f32, deg)` can be used
/// directly as dynamic-weight providers.
pub struct FnWeight<F: Fn(usize) -> f32> {
    f: F,
    len: usize,
}

impl<F: Fn(usize) -> f32> FnWeight<F> {
    /// Wraps a closure and a length into a [`DynamicWeight`].
    pub fn new(f: F, len: usize) -> Self {
        FnWeight { f, len }
    }
}

impl<F: Fn(usize) -> f32> DynamicWeight for FnWeight<F> {
    #[inline]
    fn weight(&self, k: usize) -> f32 {
        (self.f)(k)
    }
    #[inline]
    fn len(&self) -> usize {
        self.len
    }
}

impl DynamicWeight for [f32] {
    #[inline]
    fn weight(&self, k: usize) -> f32 {
        self[k]
    }
    #[inline]
    fn len(&self) -> usize {
        <[f32]>::len(self)
    }
}

impl DynamicWeight for Vec<f32> {
    #[inline]
    fn weight(&self, k: usize) -> f32 {
        self[k]
    }
    #[inline]
    fn len(&self) -> usize {
        <[f32]>::len(self)
    }
}

/// Which edge-sampling strategy a walk engine should use.
///
/// The variants map one-to-one onto the columns of the paper's Table VII and
/// the legend of Figures 6–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeSamplerKind {
    /// Alias tables materialized per state (O(d·#state) memory, O(1) time).
    Alias,
    /// Direct inverse-CDF sampling, recomputing the distribution each step.
    Direct,
    /// Rejection sampling from the static-weight proposal distribution.
    Rejection,
    /// KnightKing-style rejection sampling with pre-acceptance and outlier folding.
    KnightKing,
    /// Memory-aware hybrid: alias tables for hot states within a budget, direct otherwise.
    MemoryAware,
    /// UniNet's Metropolis-Hastings edge sampler (this paper's contribution).
    MetropolisHastings(crate::init::InitStrategy),
}

impl EdgeSamplerKind {
    /// Short label used in benchmark reports.
    pub fn label(&self) -> String {
        match self {
            EdgeSamplerKind::Alias => "Alias".to_string(),
            EdgeSamplerKind::Direct => "Direct".to_string(),
            EdgeSamplerKind::Rejection => "Rejection".to_string(),
            EdgeSamplerKind::KnightKing => "KnightKing".to_string(),
            EdgeSamplerKind::MemoryAware => "Memory-Aware".to_string(),
            EdgeSamplerKind::MetropolisHastings(init) => format!("UniNet({})", init.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::InitStrategy;

    #[test]
    fn fn_weight_wraps_closure() {
        let w = FnWeight::new(|k| (k + 1) as f32, 4);
        assert_eq!(w.len(), 4);
        assert_eq!(w.weight(2), 3.0);
        assert!(!w.is_empty());
    }

    #[test]
    fn slices_and_vecs_are_dynamic_weights() {
        let v = vec![1.0f32, 2.0, 3.0];
        assert_eq!(DynamicWeight::len(&v), 3);
        assert_eq!(DynamicWeight::weight(&v, 1), 2.0);
        let s: &[f32] = &v;
        assert_eq!(DynamicWeight::weight(s, 2), 3.0);
    }

    #[test]
    fn labels_are_distinct() {
        let kinds = [
            EdgeSamplerKind::Alias,
            EdgeSamplerKind::Direct,
            EdgeSamplerKind::Rejection,
            EdgeSamplerKind::KnightKing,
            EdgeSamplerKind::MemoryAware,
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
            EdgeSamplerKind::MetropolisHastings(InitStrategy::HighWeight { probe: 16 }),
            EdgeSamplerKind::MetropolisHastings(InitStrategy::BurnIn { iterations: 100 }),
        ];
        let labels: Vec<String> = kinds.iter().map(|k| k.label()).collect();
        for (i, a) in labels.iter().enumerate() {
            for b in labels.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
