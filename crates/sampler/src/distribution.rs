//! Discrete probability distributions and the random-distribution generator
//! used in the Figure-1 initialization study.

use rand::Rng;

/// A finite discrete distribution stored as unnormalized weights.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteDistribution {
    weights: Vec<f64>,
    total: f64,
}

impl DiscreteDistribution {
    /// Creates a distribution from unnormalized non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if weights are empty, contain negatives/NaN, or sum to zero.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(
            !weights.is_empty(),
            "distribution must have at least one outcome"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        DiscreteDistribution { weights, total }
    }

    /// Sample-space size `n`.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True if the sample space is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Unnormalized weight of outcome `k`.
    pub fn weight(&self, k: usize) -> f64 {
        self.weights[k]
    }

    /// Normalized probability of outcome `k`.
    pub fn prob(&self, k: usize) -> f64 {
        self.weights[k] / self.total
    }

    /// All normalized probabilities.
    pub fn probs(&self) -> Vec<f64> {
        self.weights.iter().map(|w| w / self.total).collect()
    }

    /// Unnormalized weights as `f32` (what edge samplers consume).
    pub fn weights_f32(&self) -> Vec<f32> {
        self.weights.iter().map(|&w| w as f32).collect()
    }

    /// The maximal probability `π_max`.
    pub fn max_prob(&self) -> f64 {
        self.weights.iter().cloned().fold(0.0, f64::max) / self.total
    }

    /// The minimal probability `π_min` (over outcomes with non-zero weight,
    /// or 0.0 if some outcome has zero weight).
    pub fn min_prob(&self) -> f64 {
        self.weights.iter().cloned().fold(f64::INFINITY, f64::min) / self.total
    }

    /// Number of outcomes attaining the maximal probability (the paper's `t`).
    pub fn num_max(&self) -> usize {
        let max = self.weights.iter().cloned().fold(0.0, f64::max);
        self.weights
            .iter()
            .filter(|&&w| (w - max).abs() <= max * 1e-9)
            .count()
    }

    /// Index of an outcome with maximal weight.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &w) in self.weights.iter().enumerate() {
            if w > self.weights[best] {
                best = i;
            }
        }
        best
    }

    /// Exact inverse-CDF sampling (used as ground truth in tests).
    pub fn sample_exact<R: Rng>(&self, rng: &mut R) -> usize {
        let target: f64 = rng.gen_range(0.0..self.total);
        let mut acc = 0.0;
        for (i, &w) in self.weights.iter().enumerate() {
            acc += w;
            if target < acc {
                return i;
            }
        }
        self.weights.len() - 1
    }

    /// Generates a random target distribution with sample-space size `n`,
    /// exactly `t` outcomes at the maximal probability, and the prescribed
    /// ratio `π_max / π_min` — the knobs of the Figure-1 simulation study.
    pub fn random_with_shape<R: Rng>(n: usize, t: usize, max_min_ratio: f64, rng: &mut R) -> Self {
        assert!(n >= 2 && t >= 1 && t <= n, "invalid shape parameters");
        assert!(max_min_ratio >= 1.0, "ratio must be >= 1");
        let min_w = 1.0;
        let max_w = max_min_ratio;
        let mut weights = vec![0.0f64; n];
        // t outcomes at the maximum.
        for w in weights.iter_mut().take(t) {
            *w = max_w;
        }
        if t < n {
            // one outcome at the exact minimum so the ratio is achieved
            weights[t] = min_w;
            // the rest uniformly between min and max (exclusive of max)
            for w in weights.iter_mut().skip(t + 1) {
                *w = if max_w > min_w {
                    rng.gen_range(min_w..max_w)
                } else {
                    min_w
                };
            }
        }
        // Shuffle so the maxima are not clustered at the front.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            weights.swap(i, j);
        }
        DiscreteDistribution::new(weights)
    }
}

/// Builds the empirical distribution of a sequence of observed outcomes over a
/// sample space of size `n`, with add-one (Laplace) smoothing so the KL
/// divergence is finite even when some outcome was never observed.
pub fn empirical_distribution(samples: &[usize], n: usize) -> Vec<f64> {
    let mut counts = vec![1.0f64; n];
    for &s in samples {
        counts[s] += 1.0;
    }
    let total: f64 = counts.iter().sum();
    counts.iter().map(|c| c / total).collect()
}

/// Unsmoothed empirical distribution (relative frequencies). Outcomes that
/// were never observed get probability 0; this is the estimator used by the
/// Figure-1 initialization study, where the divergence is computed in the
/// direction `KL(empirical ‖ target)` and the target has full support.
pub fn empirical_distribution_unsmoothed(samples: &[usize], n: usize) -> Vec<f64> {
    let mut counts = vec![0.0f64; n];
    for &s in samples {
        counts[s] += 1.0;
    }
    let total: f64 = counts.iter().sum::<f64>().max(1.0);
    counts.iter().map(|c| c / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn basic_properties() {
        let d = DiscreteDistribution::new(vec![1.0, 2.0, 3.0, 2.0]);
        assert_eq!(d.len(), 4);
        assert!((d.prob(2) - 0.375).abs() < 1e-12);
        assert!((d.max_prob() - 0.375).abs() < 1e-12);
        assert!((d.min_prob() - 0.125).abs() < 1e-12);
        assert_eq!(d.num_max(), 1);
        assert_eq!(d.argmax(), 2);
        let probs = d.probs();
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn num_max_counts_ties() {
        let d = DiscreteDistribution::new(vec![3.0, 1.0, 3.0, 3.0]);
        assert_eq!(d.num_max(), 3);
    }

    #[test]
    fn sample_exact_matches_distribution() {
        let d = DiscreteDistribution::new(vec![1.0, 0.0, 3.0]);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[d.sample_exact(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let p0 = counts[0] as f64 / 40_000.0;
        assert!((p0 - 0.25).abs() < 0.02, "p0 = {p0}");
    }

    #[test]
    fn random_with_shape_honours_parameters() {
        let mut rng = SmallRng::seed_from_u64(7);
        for &(n, t, ratio) in &[(10usize, 2usize, 5.0f64), (100, 5, 100.0), (50, 50, 1.0)] {
            let d = DiscreteDistribution::random_with_shape(n, t, ratio, &mut rng);
            assert_eq!(d.len(), n);
            assert_eq!(d.num_max(), if ratio == 1.0 { n } else { t });
            if ratio > 1.0 {
                let measured = d.max_prob() / d.min_prob();
                assert!(
                    (measured - ratio).abs() / ratio < 1e-6,
                    "ratio {measured} vs {ratio}"
                );
            }
        }
    }

    #[test]
    fn empirical_distribution_unsmoothed_matches_frequencies() {
        let probs = empirical_distribution_unsmoothed(&[0, 0, 1, 2], 4);
        assert_eq!(probs, vec![0.5, 0.25, 0.25, 0.0]);
        // Empty sample list yields the all-zero vector rather than NaN.
        let empty = empirical_distribution_unsmoothed(&[], 3);
        assert_eq!(empty, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn empirical_distribution_smooths() {
        let probs = empirical_distribution(&[0, 0, 1], 3);
        assert_eq!(probs.len(), 3);
        assert!(probs[2] > 0.0);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(probs[0] > probs[1] && probs[1] > probs[2]);
    }

    #[test]
    #[should_panic]
    fn zero_total_panics() {
        let _ = DiscreteDistribution::new(vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn negative_weight_panics() {
        let _ = DiscreteDistribution::new(vec![1.0, -0.5]);
    }
}
