//! KnightKing-style rejection sampling with pre-acceptance and outlier
//! folding (Yang et al., SOSP'19), re-implemented single-node from the
//! description in the UniNet paper.
//!
//! Plain rejection sampling must use an upper bound `B` covering the *largest*
//! dynamic/static weight ratio; a single outlier (e.g. node2vec's `1/p` factor
//! that applies to exactly one neighbor — the return edge) forces a loose
//! bound and a poor acceptance ratio. Outlier folding splits the probability
//! mass into a "regular" area, sampled by rejection with a tight bound, plus
//! an explicit list of outliers sampled exactly; pre-acceptance skips the
//! accept test entirely when the bound already equals the true maximum ratio.

use rand::Rng;

use crate::alias::AliasTable;
use crate::rejection::RejectionOutcome;

/// A rejection sampler with an explicit outlier area.
#[derive(Debug, Clone)]
pub struct OutlierFoldingSampler {
    proposal: AliasTable,
    static_weights: Vec<f32>,
    /// Bound on dynamic/static ratio for *non-outlier* neighbors.
    regular_bound: f32,
    /// Neighbors treated as outliers (sampled exactly).
    outliers: Vec<u32>,
    max_attempts: usize,
}

impl OutlierFoldingSampler {
    /// Creates a sampler.
    ///
    /// * `static_weights` — the proposal distribution (static edge weights).
    /// * `regular_bound` — upper bound of `dynamic/static` over non-outliers.
    /// * `outliers` — neighbor indices whose dynamic weight may exceed the
    ///   regular bound (e.g. the return edge in node2vec when `p < 1`).
    pub fn new(static_weights: &[f32], regular_bound: f32, outliers: Vec<u32>) -> Self {
        assert!(regular_bound > 0.0, "bound must be positive");
        assert!(
            outliers
                .iter()
                .all(|&o| (o as usize) < static_weights.len()),
            "outlier index out of range"
        );
        OutlierFoldingSampler {
            proposal: AliasTable::new(static_weights),
            static_weights: static_weights.to_vec(),
            regular_bound,
            outliers,
            max_attempts: 10_000,
        }
    }

    /// Number of neighbors.
    pub fn len(&self) -> usize {
        self.static_weights.len()
    }

    /// True when there are no neighbors (never after construction).
    pub fn is_empty(&self) -> bool {
        self.static_weights.is_empty()
    }

    /// Number of folded outliers.
    pub fn num_outliers(&self) -> usize {
        self.outliers.len()
    }

    /// Draws one neighbor from the dynamic-weight distribution.
    ///
    /// The algorithm follows the two-area formulation: total mass is split
    /// into the regular area `regular_bound * Σ static` and the outlier area
    /// `Σ_outlier max(0, dynamic - regular_bound * static)`; an area is chosen
    /// proportionally, then the regular area is sampled by rejection and the
    /// outlier area exactly.
    pub fn sample<R: Rng, F: Fn(usize) -> f32>(
        &self,
        dynamic_weight: F,
        rng: &mut R,
    ) -> RejectionOutcome {
        let regular_mass: f64 =
            self.regular_bound as f64 * self.static_weights.iter().map(|&w| w as f64).sum::<f64>();
        let mut outlier_excess: Vec<f64> = Vec::with_capacity(self.outliers.len());
        let mut outlier_mass = 0.0f64;
        for &o in &self.outliers {
            let excess = (dynamic_weight(o as usize) as f64
                - self.regular_bound as f64 * self.static_weights[o as usize] as f64)
                .max(0.0);
            outlier_excess.push(excess);
            outlier_mass += excess;
        }

        // On every attempt the *area* is re-drawn: a rejection in the regular
        // area restarts the whole procedure, which is what makes the overall
        // acceptance mass of outcome k equal min(w_k, cap_k) + excess_k = w_k.
        let total = regular_mass + outlier_mass;
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            if outlier_mass > 0.0 && rng.gen_range(0.0..total) >= regular_mass {
                // Outlier area: sample an outlier exactly, proportional to excess.
                let mut target = rng.gen_range(0.0..outlier_mass);
                for (i, &excess) in outlier_excess.iter().enumerate() {
                    if target < excess {
                        return RejectionOutcome {
                            index: self.outliers[i] as usize,
                            attempts,
                        };
                    }
                    target -= excess;
                }
                return RejectionOutcome {
                    index: self.outliers[self.outliers.len() - 1] as usize,
                    attempts,
                };
            }
            // Regular area: one rejection trial against the capped weight.
            let candidate = self.proposal.sample(rng);
            let cap = self.regular_bound * self.static_weights[candidate];
            let w = dynamic_weight(candidate).min(cap);
            let ratio = w / cap;
            if attempts >= self.max_attempts || rng.gen::<f32>() < ratio {
                return RejectionOutcome {
                    index: candidate,
                    attempts,
                };
            }
        }
    }

    /// Memory footprint (alias proposal + static weights + outlier list).
    pub fn memory_bytes(&self) -> usize {
        self.proposal.memory_bytes()
            + self.static_weights.len() * std::mem::size_of::<f32>()
            + self.outliers.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn empirical<F: Fn(usize) -> f32>(
        s: &OutlierFoldingSampler,
        dynamic: F,
        n: usize,
        draws: usize,
        seed: u64,
    ) -> (Vec<f64>, f64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut counts = vec![0usize; n];
        let mut attempts = 0usize;
        for _ in 0..draws {
            let o = s.sample(&dynamic, &mut rng);
            counts[o.index] += 1;
            attempts += o.attempts;
        }
        (
            counts.iter().map(|&c| c as f64 / draws as f64).collect(),
            draws as f64 / attempts as f64,
        )
    }

    #[test]
    fn no_outliers_behaves_like_rejection() {
        let stat = vec![1.0f32; 5];
        let dynamic = [1.0f32, 2.0, 1.0, 1.0, 1.0];
        let s = OutlierFoldingSampler::new(&stat, 2.0, vec![]);
        let total: f32 = dynamic.iter().sum();
        let (freqs, _) = empirical(&s, |k| dynamic[k], 5, 120_000, 1);
        for (k, f) in freqs.iter().enumerate() {
            let expected = (dynamic[k] / total) as f64;
            assert!(
                (f - expected).abs() < 0.01,
                "outcome {k}: {f} vs {expected}"
            );
        }
    }

    #[test]
    fn outlier_folding_matches_target_distribution() {
        // One big outlier (index 0, like node2vec's 1/p return edge with p = 0.1).
        let stat = vec![1.0f32; 6];
        let mut dynamic = vec![1.0f32; 6];
        dynamic[0] = 10.0;
        let dyn_copy = dynamic.clone();
        let s = OutlierFoldingSampler::new(&stat, 1.0, vec![0]);
        let total: f32 = dynamic.iter().sum();
        let (freqs, _) = empirical(&s, move |k| dyn_copy[k], 6, 200_000, 2);
        for (k, f) in freqs.iter().enumerate() {
            let expected = (dynamic[k] / total) as f64;
            assert!(
                (f - expected).abs() < 0.012,
                "outcome {k}: {f} vs {expected}"
            );
        }
    }

    #[test]
    fn folding_improves_acceptance_ratio() {
        // Without folding the bound must be 10, acceptance ~ 0.15;
        // with folding the regular bound is 1 and acceptance stays high.
        let stat = vec![1.0f32; 8];
        let mut dynamic = vec![1.0f32; 8];
        dynamic[3] = 10.0;
        let d1 = dynamic.clone();
        let d2 = dynamic.clone();
        let folded = OutlierFoldingSampler::new(&stat, 1.0, vec![3]);
        let unfolded = OutlierFoldingSampler::new(&stat, 10.0, vec![]);
        let (_, acc_folded) = empirical(&folded, move |k| d1[k], 8, 50_000, 3);
        let (_, acc_unfolded) = empirical(&unfolded, move |k| d2[k], 8, 50_000, 4);
        assert!(
            acc_folded > 2.0 * acc_unfolded,
            "folded {acc_folded} vs unfolded {acc_unfolded}"
        );
    }

    #[test]
    fn pre_acceptance_with_tight_bound() {
        // Dynamic == static: bound 1.0 means every proposal is accepted.
        let stat = vec![2.0f32, 1.0, 1.0];
        let s = OutlierFoldingSampler::new(&stat, 1.0, vec![]);
        let stat2 = stat.clone();
        let (_, acc) = empirical(&s, move |k| stat2[k], 3, 30_000, 5);
        assert!((acc - 1.0).abs() < 1e-9);
    }

    #[test]
    fn num_outliers_and_memory() {
        let s = OutlierFoldingSampler::new(&[1.0; 16], 1.0, vec![0, 5]);
        assert_eq!(s.num_outliers(), 2);
        assert_eq!(s.len(), 16);
        assert!(s.memory_bytes() > 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_outlier_panics() {
        let _ = OutlierFoldingSampler::new(&[1.0, 1.0], 1.0, vec![7]);
    }
}
