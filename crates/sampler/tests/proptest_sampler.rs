//! Property-based tests of the sampler family: every sampler must reproduce
//! arbitrary target distributions, and the M-H chain must converge to the same
//! marginal as exact sampling regardless of the initialization strategy.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use uninet_sampler::distribution::empirical_distribution;
use uninet_sampler::kl::kl_divergence;
use uninet_sampler::{
    direct_sample, AliasTable, DiscreteDistribution, InitStrategy, MhChain, OutlierFoldingSampler,
    RejectionSampler,
};

/// Strategy producing a random unnormalized weight vector.
fn weight_vec() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(0.1f32..10.0, 2..24)
}

fn normalized(weights: &[f32]) -> Vec<f64> {
    let total: f64 = weights.iter().map(|&w| w as f64).sum();
    weights.iter().map(|&w| w as f64 / total).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn alias_matches_target(weights in weight_vec(), seed in 0u64..1000) {
        let table = AliasTable::new(&weights);
        let mut rng = SmallRng::seed_from_u64(seed);
        let draws = 60_000;
        let samples: Vec<usize> = (0..draws).map(|_| table.sample(&mut rng)).collect();
        let empirical = empirical_distribution(&samples, weights.len());
        let kl = kl_divergence(&empirical, &normalized(&weights));
        prop_assert!(kl < 0.01, "alias KL divergence too large: {kl}");
    }

    #[test]
    fn direct_matches_target(weights in weight_vec(), seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let draws = 60_000;
        let samples: Vec<usize> =
            (0..draws).map(|_| direct_sample(&weights, &mut rng).unwrap()).collect();
        let empirical = empirical_distribution(&samples, weights.len());
        let kl = kl_divergence(&empirical, &normalized(&weights));
        prop_assert!(kl < 0.01, "direct KL divergence too large: {kl}");
    }

    #[test]
    fn rejection_matches_target(weights in weight_vec(), seed in 0u64..1000) {
        // Static proposal = uniform, bound = max weight.
        let bound = weights.iter().cloned().fold(0.0f32, f32::max);
        let proposal = vec![1.0f32; weights.len()];
        let sampler = RejectionSampler::new(&proposal, bound);
        let mut rng = SmallRng::seed_from_u64(seed);
        let draws = 60_000;
        let samples: Vec<usize> =
            (0..draws).map(|_| sampler.sample(|k| weights[k], &mut rng).index).collect();
        let empirical = empirical_distribution(&samples, weights.len());
        let kl = kl_divergence(&empirical, &normalized(&weights));
        prop_assert!(kl < 0.01, "rejection KL divergence too large: {kl}");
    }

    #[test]
    fn outlier_folding_matches_target(weights in weight_vec(), outlier in 0usize..24, seed in 0u64..1000) {
        let outlier = outlier % weights.len();
        let mut weights = weights;
        weights[outlier] *= 10.0;
        let proposal = vec![1.0f32; weights.len()];
        // Regular bound covers all non-outlier weights.
        let bound = weights.iter().enumerate()
            .filter(|(i, _)| *i != outlier)
            .map(|(_, &w)| w)
            .fold(0.1f32, f32::max);
        let sampler = OutlierFoldingSampler::new(&proposal, bound, vec![outlier as u32]);
        let mut rng = SmallRng::seed_from_u64(seed);
        let draws = 60_000;
        let w = weights.clone();
        let samples: Vec<usize> =
            (0..draws).map(|_| sampler.sample(|k| w[k], &mut rng).index).collect();
        let empirical = empirical_distribution(&samples, weights.len());
        let kl = kl_divergence(&empirical, &normalized(&weights));
        prop_assert!(kl < 0.01, "folding KL divergence too large: {kl}");
    }

    #[test]
    fn mh_chain_converges_for_all_inits(
        weights in weight_vec(),
        seed in 0u64..1000,
        init_choice in 0usize..3,
    ) {
        let init = match init_choice {
            0 => InitStrategy::Random,
            1 => InitStrategy::high_weight_exact(),
            _ => InitStrategy::BurnIn { iterations: 30 },
        };
        let mut chain = MhChain::new();
        let mut rng = SmallRng::seed_from_u64(seed);
        let wf = |k: usize| weights[k];
        let draws = 200_000;
        let samples: Vec<usize> =
            (0..draws).map(|_| chain.step(weights.len(), &wf, init, &mut rng)).collect();
        let empirical = empirical_distribution(&samples, weights.len());
        let kl = kl_divergence(&empirical, &normalized(&weights));
        prop_assert!(kl < 0.02, "M-H KL divergence too large for {init:?}: {kl}");
    }

    #[test]
    fn random_shape_distributions_expose_requested_shape(
        n in 2usize..200,
        t_frac in 0.01f64..1.0,
        ratio in 1.0f64..500.0,
        seed in 0u64..1000,
    ) {
        let t = ((n as f64 * t_frac) as usize).clamp(1, n);
        let mut rng = SmallRng::seed_from_u64(seed);
        let d = DiscreteDistribution::random_with_shape(n, t, ratio, &mut rng);
        prop_assert_eq!(d.len(), n);
        prop_assert!(d.max_prob() >= d.min_prob());
        let probs = d.probs();
        let sum: f64 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }
}
