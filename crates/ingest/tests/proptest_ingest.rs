//! Property-based tests of the sharded ingestion path.
//!
//! The tentpole property: applying an **arbitrary mutation sequence** through
//! the sharded parallel path (`ShardPlan::partition` + `ShardView` workers +
//! serial residual) yields a graph — merged view *and* compacted CSR — that
//! is identical to the existing sequential `IncrementalMaintainer` path,
//! along with identical report tallies and maintenance accounting.

use proptest::prelude::*;
use uninet_dyngraph::{
    DynamicGraph, GraphMutation, IncrementalMaintainer, MaintainerConfig, UpdateBatch,
};
use uninet_graph::{Graph, GraphBuilder};
use uninet_ingest::{ShardPlan, ShardedMaintainer};
use uninet_sampler::{EdgeSamplerKind, InitStrategy};
use uninet_walker::models::DeepWalk;
use uninet_walker::SamplerManager;

const N: u32 = 16;

fn base_graph(edges: &[(u32, u32, f32)]) -> Graph {
    let mut b = GraphBuilder::new();
    b.set_num_nodes(N as usize);
    b.symmetric(true).dedup(true);
    for &(u, v, w) in edges {
        if u != v {
            b.add_edge(u % N, v % N, w);
        }
    }
    b.build()
}

fn arbitrary_mutation() -> impl Strategy<Value = GraphMutation> {
    (0usize..3, 0u32..N + 2, 0u32..N + 2, 0.1f32..8.0).prop_map(|(op, src, dst, w)| match op {
        0 => GraphMutation::AddEdge {
            src,
            dst,
            weight: w,
        },
        1 => GraphMutation::RemoveEdge { src, dst },
        _ => GraphMutation::UpdateWeight {
            src,
            dst,
            weight: w,
        },
    })
}

fn assert_graphs_identical(a: &Graph, b: &Graph) {
    assert_eq!(a.num_edges(), b.num_edges());
    for v in 0..N {
        assert_eq!(a.neighbors(v), b.neighbors(v), "neighbors of {v}");
        assert_eq!(a.weights(v), b.weights(v), "weights of {v}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Sharded parallel apply_batch == sequential apply_batch, for arbitrary
    /// mutation sequences, shard counts, batch splits and compaction policies.
    #[test]
    fn sharded_apply_is_graph_identical_to_sequential(
        edges in prop::collection::vec((0u32..N, 0u32..N, 0.5f32..4.0), 1..50),
        mutations in prop::collection::vec(arbitrary_mutation(), 0..80),
        shards in 2usize..6,
        batch_size in 1usize..40,
        compaction_threshold in prop_oneof![Just(4usize), Just(64), Just(1_000_000)],
        symmetric in any::<bool>(),
    ) {
        let g = base_graph(&edges);
        let model = DeepWalk::new();
        let kind = EdgeSamplerKind::MetropolisHastings(InitStrategy::Random);
        let cfg = MaintainerConfig { compaction_threshold };

        let mut dg_serial = DynamicGraph::new(g.clone(), symmetric);
        let mut mgr_serial = SamplerManager::new(dg_serial.base(), &model, kind, 0);
        let serial = IncrementalMaintainer::new(cfg);

        let mut dg_sharded = DynamicGraph::new(g, symmetric);
        let mut mgr_sharded = SamplerManager::new(dg_sharded.base(), &model, kind, 0);
        let sharded = ShardedMaintainer::new(cfg, shards);
        let plan = ShardPlan::new(N as usize, shards);

        for chunk in mutations.chunks(batch_size) {
            let batch = UpdateBatch::from_mutations(chunk.to_vec());
            let rs = serial.apply_batch(&mut dg_serial, &mut mgr_serial, &model, &batch);
            let rp = sharded.apply_batch(&mut dg_sharded, &mut mgr_sharded, &model, &batch, &plan);

            prop_assert_eq!(rs.weight_mutations, rp.weight_mutations);
            prop_assert_eq!(rs.topology_mutations, rp.topology_mutations);
            prop_assert_eq!(rs.rejected_mutations, rp.rejected_mutations);
            prop_assert_eq!(rs.weight_touched, rp.weight_touched);
            prop_assert_eq!(rs.compacted, rp.compacted);
            prop_assert_eq!(rs.topology_touched, rp.topology_touched);
            prop_assert_eq!(rs.maintenance, rp.maintenance);

            // Merged views agree batch-by-batch, not just at the end.
            prop_assert_eq!(dg_serial.pending(), dg_sharded.pending());
            prop_assert_eq!(dg_serial.version(), dg_sharded.version());
            prop_assert_eq!(dg_serial.rejected(), dg_sharded.rejected());
            for v in 0..N {
                prop_assert_eq!(dg_serial.neighbor_weights(v), dg_sharded.neighbor_weights(v));
            }
        }

        let fs = serial.flush(&mut dg_serial, &mut mgr_serial, &model);
        let fp = sharded.flush(&mut dg_sharded, &mut mgr_sharded, &model);
        prop_assert_eq!(fs.compacted, fp.compacted);
        prop_assert_eq!(fs.topology_touched, fp.topology_touched);

        assert_graphs_identical(dg_serial.base(), dg_sharded.base());
        prop_assert_eq!(mgr_serial.num_states(), mgr_sharded.num_states());
    }

    /// The full pipeline (reader thread + bounded queue + sharded apply) is
    /// graph-identical to the sequential batch loop.
    #[test]
    fn pipeline_is_graph_identical_to_sequential(
        edges in prop::collection::vec((0u32..N, 0u32..N, 0.5f32..4.0), 4..40),
        mutations in prop::collection::vec(arbitrary_mutation(), 1..60),
        queue_capacity in 1usize..5,
    ) {
        let g = base_graph(&edges);
        let model = DeepWalk::new();
        let kind = EdgeSamplerKind::MetropolisHastings(InitStrategy::Random);
        let cfg = MaintainerConfig { compaction_threshold: 16 };

        let mut dg_serial = DynamicGraph::new(g.clone(), true);
        let mut mgr_serial = SamplerManager::new(dg_serial.base(), &model, kind, 0);
        let serial = IncrementalMaintainer::new(cfg);
        for batch in uninet_dyngraph::into_batches(&mutations, 8) {
            serial.apply_batch(&mut dg_serial, &mut mgr_serial, &model, &batch);
        }
        serial.flush(&mut dg_serial, &mut mgr_serial, &model);

        let mut dg = DynamicGraph::new(g, true);
        let mut mgr = SamplerManager::new(dg.base(), &model, kind, 0);
        let report = uninet_ingest::run_pipeline(
            &uninet_ingest::IngestConfig {
                batch_size: 8,
                queue_capacity,
                num_threads: 3,
                compaction_threshold: 16,
            },
            &mut dg,
            &mut mgr,
            &model,
            &mutations,
            |_, _, _, _| {},
        );
        prop_assert_eq!(report.batches, mutations.len().div_ceil(8));
        prop_assert_eq!(dg.pending(), 0);
        assert_graphs_identical(dg_serial.base(), dg.base());
    }
}
