//! The end-to-end ingestion pipeline: reader thread → bounded queue →
//! sharded application → per-batch maintenance callback.
//!
//! ```text
//!  mutations ──reader thread──▶ [bounded MPSC queue] ──▶ apply (sharded)
//!                                 back-pressure          ├─ maintain samplers
//!                                                        └─ on_batch hook
//!                                                           (walk refresh,
//!                                                            incremental SGD)
//! ```
//!
//! The reader thread chunks the mutation stream into [`UpdateBatch`]es and
//! feeds the queue; a full queue blocks it (back-pressure), so intake never
//! outruns maintenance by more than `queue_capacity` batches. The consumer
//! (the caller's thread) drains the queue, applies each batch through the
//! [`ShardedMaintainer`] and hands the report to `on_batch` — which is where
//! the streaming pipeline hangs walk refresh and incremental training.

use std::time::{Duration, Instant};

use uninet_dyngraph::{BatchReport, DynamicGraph, GraphMutation, MaintainerConfig, UpdateBatch};
use uninet_walker::{MaintenanceStats, RandomWalkModel, SamplerManager};

use crate::apply::ShardedMaintainer;
use crate::metrics::IngestMetrics;
use crate::queue::{instrumented_batch_queue, QueueStats};
use crate::shard::ShardPlan;

/// Configuration of the ingestion pipeline.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Mutations per maintenance batch.
    pub batch_size: usize,
    /// Batches the intake queue holds before back-pressure blocks the reader.
    pub queue_capacity: usize,
    /// Worker threads for shard application and sampler maintenance.
    pub num_threads: usize,
    /// Pending overlay entries that trigger compaction back into CSR.
    pub compaction_threshold: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            batch_size: 256,
            queue_capacity: 8,
            num_threads: 4,
            compaction_threshold: 1024,
        }
    }
}

/// Aggregate accounting of one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct IngestReport {
    /// Batches processed.
    pub batches: usize,
    /// Weight-only mutations applied.
    pub weight_mutations: usize,
    /// Topology mutations applied.
    pub topology_mutations: usize,
    /// Mutations rejected (missing edges, out-of-range nodes, self-loops).
    pub rejected_mutations: usize,
    /// Compactions performed.
    pub compactions: usize,
    /// Sampler maintenance cost across all batches.
    pub maintenance: MaintenanceStats,
    /// Time spent applying mutations to the dynamic graph.
    pub apply_time: Duration,
    /// Time spent repairing sampler state (incl. compactions).
    pub maintain_time: Duration,
    /// Intake queue accounting (back-pressure, depth).
    pub queue: QueueStats,
}

/// Runs the concurrent ingestion pipeline over a pre-collected mutation
/// stream with detached (unobserved) telemetry. `on_batch` fires after every
/// applied batch on the caller's thread — it may freely borrow the graph and
/// manager state it closed over. The final `bool` argument is `true` only for
/// the end-of-stream flush (which fires only when the flush actually
/// compacted leftover overlay entries).
pub fn run_pipeline<M: RandomWalkModel + ?Sized>(
    config: &IngestConfig,
    graph: &mut DynamicGraph,
    manager: &mut SamplerManager,
    model: &M,
    mutations: &[GraphMutation],
    on_batch: impl FnMut(&DynamicGraph, &SamplerManager, &BatchReport, bool),
) -> IngestReport {
    run_instrumented_pipeline(
        config,
        &IngestMetrics::detached(),
        graph,
        manager,
        model,
        mutations,
        on_batch,
    )
}

/// [`run_pipeline`], recording queue/apply/maintenance/compaction telemetry
/// into `metrics` live while the pipeline runs.
#[allow(clippy::too_many_arguments)]
pub fn run_instrumented_pipeline<M: RandomWalkModel + ?Sized>(
    config: &IngestConfig,
    metrics: &IngestMetrics,
    graph: &mut DynamicGraph,
    manager: &mut SamplerManager,
    model: &M,
    mutations: &[GraphMutation],
    on_batch: impl FnMut(&DynamicGraph, &SamplerManager, &BatchReport, bool),
) -> IngestReport {
    run_durable_pipeline(
        config, metrics, graph, manager, model, mutations, None, on_batch,
    )
}

/// [`run_instrumented_pipeline`] with an apply-path write-ahead-log hook.
///
/// When `wal` is given, it fires on the consumer thread for every dequeued
/// batch *before* the batch is applied to the graph — so by the time a
/// batch's effects are observable, the durability plane has already had its
/// chance to log it. The hook must not panic; WAL errors are expected to be
/// absorbed (and reported) by the closure itself so a degraded disk never
/// takes down ingestion.
#[allow(clippy::too_many_arguments)]
pub fn run_durable_pipeline<M: RandomWalkModel + ?Sized>(
    config: &IngestConfig,
    metrics: &IngestMetrics,
    graph: &mut DynamicGraph,
    manager: &mut SamplerManager,
    model: &M,
    mutations: &[GraphMutation],
    mut wal: Option<&mut dyn FnMut(&UpdateBatch)>,
    mut on_batch: impl FnMut(&DynamicGraph, &SamplerManager, &BatchReport, bool),
) -> IngestReport {
    let maintainer = ShardedMaintainer::instrumented(
        MaintainerConfig {
            compaction_threshold: config.compaction_threshold,
        },
        config.num_threads,
        metrics.clone(),
    );
    let mut plan = ShardPlan::new(graph.num_nodes(), config.num_threads);
    let mut report = IngestReport::default();

    let queue_stats = crossbeam::thread::scope(|scope| {
        let (tx, rx) = instrumented_batch_queue(config.queue_capacity, metrics);
        let batch_size = config.batch_size.max(1);
        let reader = scope.spawn(move |_| {
            let mut tx = tx;
            for chunk in mutations.chunks(batch_size) {
                if !tx.send(UpdateBatch::from_mutations(chunk.to_vec())) {
                    break; // consumer hung up
                }
            }
            tx.finish()
        });

        while let Some(batch) = rx.recv() {
            if let Some(hook) = wal.as_deref_mut() {
                hook(&batch);
            }
            // Open-world arrivals grow the id space; the vertex-range plan
            // must cover the current universe before the next sharded apply.
            if plan.num_nodes() != graph.num_nodes() {
                plan = ShardPlan::new(graph.num_nodes(), config.num_threads);
            }
            let r = maintainer.apply_batch(graph, manager, model, &batch, &plan);
            report.batches += 1;
            report.weight_mutations += r.weight_mutations;
            report.topology_mutations += r.topology_mutations;
            report.rejected_mutations += r.rejected_mutations;
            report.compactions += r.compacted as usize;
            report.maintenance.merge(&r.maintenance);
            report.apply_time += r.apply_time;
            report.maintain_time += r.maintain_time;
            on_batch(graph, manager, &r, false);
        }
        reader.join().expect("reader thread panicked")
    })
    .expect("pipeline scope panicked");
    report.queue = queue_stats;

    // Fold any leftover overlay into the CSR and surface what it touched.
    let t = Instant::now();
    let flush = maintainer.flush(graph, manager, model);
    report.maintain_time += t.elapsed();
    if flush.compacted {
        report.compactions += 1;
        report.maintenance.merge(&flush.maintenance);
        on_batch(graph, manager, &flush, true);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use uninet_graph::generators::{rmat, RmatConfig};
    use uninet_graph::NodeId;
    use uninet_sampler::{EdgeSamplerKind, InitStrategy};
    use uninet_walker::models::DeepWalk;

    fn test_graph() -> uninet_graph::Graph {
        rmat(&RmatConfig {
            num_nodes: 150,
            num_edges: 1100,
            weighted: true,
            seed: 41,
            ..Default::default()
        })
    }

    fn mixed_stream(g: &uninet_graph::Graph, count: usize, seed: u64) -> Vec<GraphMutation> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = g.num_nodes() as NodeId;
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let src = rng.gen_range(0..n);
            if g.degree(src) == 0 {
                continue;
            }
            let dst = g.neighbor_at(src, rng.gen_range(0..g.degree(src)));
            out.push(match out.len() % 5 {
                0..=2 => GraphMutation::UpdateWeight {
                    src,
                    dst,
                    weight: rng.gen_range(0.5f32..4.0),
                },
                3 => GraphMutation::AddEdge {
                    src,
                    dst: rng.gen_range(0..n),
                    weight: 1.0,
                },
                _ => GraphMutation::RemoveEdge { src, dst },
            });
        }
        out
    }

    #[test]
    fn pipeline_matches_serial_reference() {
        let g = test_graph();
        let model = DeepWalk::new();
        let stream = mixed_stream(&g, 400, 7);
        let kind = EdgeSamplerKind::MetropolisHastings(InitStrategy::Random);

        // Serial reference: the pre-existing run_streaming application loop.
        let mut dg_ref = DynamicGraph::new(g.clone(), true);
        let mut mgr_ref = SamplerManager::new(dg_ref.base(), &model, kind, 0);
        let serial = uninet_dyngraph::IncrementalMaintainer::new(MaintainerConfig {
            compaction_threshold: 128,
        });
        let mut ref_weight = 0;
        let mut ref_topo = 0;
        for batch in uninet_dyngraph::into_batches(&stream, 64) {
            let r = serial.apply_batch(&mut dg_ref, &mut mgr_ref, &model, &batch);
            ref_weight += r.weight_mutations;
            ref_topo += r.topology_mutations;
        }
        serial.flush(&mut dg_ref, &mut mgr_ref, &model);

        let mut dg = DynamicGraph::new(g.clone(), true);
        let mut mgr = SamplerManager::new(dg.base(), &model, kind, 0);
        let cfg = IngestConfig {
            batch_size: 64,
            queue_capacity: 4,
            num_threads: 4,
            compaction_threshold: 128,
        };
        let mut callbacks = 0usize;
        let report = run_pipeline(&cfg, &mut dg, &mut mgr, &model, &stream, |_, _, r, _| {
            callbacks += 1;
            assert!(
                r.weight_mutations + r.topology_mutations + r.rejected_mutations > 0 || r.compacted
            );
        });

        assert_eq!(report.batches, stream.len().div_ceil(64));
        assert!(callbacks >= report.batches);
        assert_eq!(report.weight_mutations, ref_weight);
        assert_eq!(report.topology_mutations, ref_topo);
        assert_eq!(report.queue.batches_enqueued, report.batches);
        assert_eq!(dg.pending(), 0);

        let a = dg_ref.materialize();
        let b = dg.materialize();
        for v in 0..g.num_nodes() as NodeId {
            assert_eq!(a.neighbors(v), b.neighbors(v), "node {v}");
            assert_eq!(a.weights(v), b.weights(v), "node {v}");
        }
    }

    #[test]
    fn empty_stream_is_a_noop() {
        let g = test_graph();
        let model = DeepWalk::new();
        let mut dg = DynamicGraph::new(g.clone(), true);
        let mut mgr = SamplerManager::new(
            dg.base(),
            &model,
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
            0,
        );
        let report = run_pipeline(
            &IngestConfig::default(),
            &mut dg,
            &mut mgr,
            &model,
            &[],
            |_, _, _, _| panic!("no batches expected"),
        );
        assert_eq!(report.batches, 0);
        assert_eq!(report.queue.batches_enqueued, 0);
    }
}
