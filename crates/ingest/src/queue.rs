//! The bounded intake queue decoupling mutation intake from maintenance.
//!
//! A thin wrapper over `std::sync::mpsc::sync_channel` that adds the
//! accounting the pipeline reports: batches enqueued, back-pressure stalls
//! and the time the producer spent blocked in them, and queue depth — both
//! the final [`QueueStats`] summary and, via [`IngestMetrics`], live gauges
//! that can be observed from other threads while the pipeline runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use uninet_dyngraph::UpdateBatch;

use crate::metrics::IngestMetrics;

/// Accounting of one queue's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Batches pushed through the queue.
    pub batches_enqueued: usize,
    /// Sends that found the queue full and had to block.
    pub stalls: usize,
    /// Total time the producer spent blocked on a full queue.
    pub producer_wait: Duration,
    /// Highest observed number of batches in flight.
    pub peak_depth: usize,
}

impl QueueStats {
    /// Accumulates another queue's accounting into this one.
    pub fn merge(&mut self, other: &QueueStats) {
        self.batches_enqueued += other.batches_enqueued;
        self.stalls += other.stalls;
        self.producer_wait += other.producer_wait;
        self.peak_depth = self.peak_depth.max(other.peak_depth);
    }
}

/// Allows at most one event per interval; the rest are counted, not emitted.
///
/// Used to keep the live stall warning to at most one stderr line per second
/// no matter how saturated the stream is — a stalled producer can otherwise
/// emit thousands of identical lines in a burst.
#[derive(Debug)]
pub struct RateLimiter {
    interval: Duration,
    last: Option<Instant>,
    suppressed: u64,
}

impl RateLimiter {
    /// A limiter that lets one event through per `interval`.
    pub fn new(interval: Duration) -> Self {
        RateLimiter {
            interval,
            last: None,
            suppressed: 0,
        }
    }

    /// True when an event may be emitted now. The first call always passes;
    /// later calls pass once `interval` has elapsed since the last pass.
    pub fn allow(&mut self) -> bool {
        let now = Instant::now();
        match self.last {
            Some(t) if now.duration_since(t) < self.interval => {
                self.suppressed += 1;
                false
            }
            _ => {
                self.last = Some(now);
                self.suppressed = 0;
                true
            }
        }
    }

    /// Events denied since the last allowed one.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }
}

/// Creates a bounded batch queue of the given capacity (clamped to ≥ 1) with
/// detached (unobserved) telemetry.
pub fn batch_queue(capacity: usize) -> (BatchSender, BatchReceiver) {
    instrumented_batch_queue(capacity, &IngestMetrics::detached())
}

/// Creates a bounded batch queue whose depth gauge, enqueue/stall counters
/// and stall-latency histogram record into `metrics` — live, not just in the
/// final [`QueueStats`].
pub fn instrumented_batch_queue(
    capacity: usize,
    metrics: &IngestMetrics,
) -> (BatchSender, BatchReceiver) {
    let (tx, rx) = std::sync::mpsc::sync_channel(capacity.max(1));
    let depth = Arc::new(AtomicUsize::new(0));
    (
        BatchSender {
            tx,
            depth: Arc::clone(&depth),
            stats: QueueStats::default(),
            metrics: metrics.clone(),
            stall_warn: RateLimiter::new(Duration::from_secs(1)),
        },
        BatchReceiver {
            rx,
            depth,
            metrics: metrics.clone(),
        },
    )
}

/// Producer half of the intake queue. Dropping it closes the stream.
pub struct BatchSender {
    tx: SyncSender<UpdateBatch>,
    depth: Arc<AtomicUsize>,
    stats: QueueStats,
    metrics: IngestMetrics,
    stall_warn: RateLimiter,
}

impl BatchSender {
    /// Sends one batch, blocking while the queue is full (back-pressure).
    /// Returns `false` when the consumer hung up.
    pub fn send(&mut self, batch: UpdateBatch) -> bool {
        // Count the batch in flight *before* handing it over: once `send`
        // returns, the consumer may already have received (and un-counted) it.
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.metrics.queue_depth.set(depth as i64);
        // Only time the blocking fallback, so `producer_wait` measures actual
        // back-pressure rather than per-send channel overhead.
        let ok = match self.tx.try_send(batch) {
            Ok(()) => true,
            Err(std::sync::mpsc::TrySendError::Full(batch)) => {
                let t = Instant::now();
                let ok = self.tx.send(batch).is_ok();
                let stall = t.elapsed();
                self.stats.stalls += 1;
                self.stats.producer_wait += stall;
                self.metrics.queue_stalls.inc();
                self.metrics.queue_stall_ns.record_duration(stall);
                let suppressed = self.stall_warn.suppressed();
                if self.stall_warn.allow() {
                    eprintln!(
                        "warning: ingest queue full — producer stalled {:.1} ms ({} stalls so far{})",
                        stall.as_secs_f64() * 1e3,
                        self.stats.stalls,
                        if suppressed > 0 {
                            format!(", {suppressed} warnings suppressed")
                        } else {
                            String::new()
                        }
                    );
                }
                ok
            }
            Err(std::sync::mpsc::TrySendError::Disconnected(_)) => false,
        };
        if ok {
            self.stats.batches_enqueued += 1;
            self.stats.peak_depth = self.stats.peak_depth.max(depth);
            self.metrics.queue_enqueued.inc();
        } else {
            let d = self.depth.fetch_sub(1, Ordering::Relaxed) - 1;
            self.metrics.queue_depth.set(d as i64);
        }
        ok
    }

    /// Batches currently in flight (queued, mid-send, or received but not yet
    /// un-counted by the consumer).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Accounting so far, without consuming the sender.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Consumes the sender, closing the queue and returning its accounting.
    pub fn finish(self) -> QueueStats {
        self.stats
    }
}

/// Consumer half of the intake queue.
pub struct BatchReceiver {
    rx: Receiver<UpdateBatch>,
    depth: Arc<AtomicUsize>,
    metrics: IngestMetrics,
}

impl BatchReceiver {
    /// Blocks for the next batch; `None` once the producer is done.
    pub fn recv(&self) -> Option<UpdateBatch> {
        let batch = self.rx.recv().ok()?;
        let d = self.depth.fetch_sub(1, Ordering::Relaxed) - 1;
        self.metrics.queue_depth.set(d as i64);
        Some(batch)
    }

    /// Batches currently in flight.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uninet_dyngraph::GraphMutation;

    fn batch(n: usize) -> UpdateBatch {
        UpdateBatch::from_mutations(
            (0..n as u32)
                .map(|i| GraphMutation::UpdateWeight {
                    src: i,
                    dst: i + 1,
                    weight: 1.0,
                })
                .collect(),
        )
    }

    #[test]
    fn rate_limiter_allows_once_per_interval() {
        let mut rl = RateLimiter::new(Duration::from_millis(40));
        assert!(rl.allow(), "first event always passes");
        assert!(!rl.allow());
        assert!(!rl.allow());
        assert_eq!(rl.suppressed(), 2);
        std::thread::sleep(Duration::from_millis(50));
        assert!(rl.allow(), "a new interval opens the gate again");
        assert_eq!(rl.suppressed(), 0);
    }

    #[test]
    fn queue_delivers_in_order_and_counts() {
        let (mut tx, rx) = batch_queue(4);
        let producer = std::thread::spawn(move || {
            for i in 1..=6 {
                assert!(tx.send(batch(i)));
            }
            tx.finish()
        });
        let mut sizes = Vec::new();
        while let Some(b) = rx.recv() {
            sizes.push(b.len());
        }
        let stats = producer.join().unwrap();
        assert_eq!(sizes, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(stats.batches_enqueued, 6);
        assert!(stats.peak_depth >= 1);
        assert_eq!(rx.depth(), 0, "fully drained");
    }

    #[test]
    fn bounded_queue_applies_back_pressure() {
        let (mut tx, rx) = batch_queue(1);
        let producer = std::thread::spawn(move || {
            for _ in 0..3 {
                assert!(tx.send(batch(2)));
            }
            tx.finish()
        });
        // Drain slowly so the producer has to block on the full queue.
        let mut got = 0;
        while let Some(_b) = rx.recv() {
            std::thread::sleep(Duration::from_millis(20));
            got += 1;
        }
        let stats = producer.join().unwrap();
        assert_eq!(got, 3);
        assert!(stats.stalls >= 1, "no stall recorded");
        assert!(
            stats.producer_wait >= Duration::from_millis(10),
            "producer never blocked: {:?}",
            stats.producer_wait
        );
        // The depth gauge counts queued batches (≤ capacity) plus at most one
        // mid-send and one received-but-not-yet-decremented batch.
        assert!(stats.peak_depth <= 3, "peak {}", stats.peak_depth);
    }

    #[test]
    fn send_after_consumer_drop_reports_closure() {
        let (mut tx, rx) = batch_queue(1);
        drop(rx);
        assert!(!tx.send(batch(1)));
        assert_eq!(tx.depth(), 0);
        let stats = tx.finish();
        assert_eq!(stats.batches_enqueued, 0);
    }

    #[test]
    fn instrumented_queue_updates_live_metrics() {
        let metrics = IngestMetrics::detached();
        let (mut tx, rx) = instrumented_batch_queue(2, &metrics);
        assert!(tx.send(batch(1)));
        assert!(tx.send(batch(1)));
        assert_eq!(metrics.queue_depth.get(), 2);
        assert_eq!(metrics.queue_enqueued.get(), 2);
        assert!(rx.recv().is_some());
        assert_eq!(metrics.queue_depth.get(), 1);
        drop(tx);
        assert!(rx.recv().is_some());
        assert!(rx.recv().is_none());
        assert_eq!(metrics.queue_depth.get(), 0);
    }
}
