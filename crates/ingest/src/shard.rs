//! [`ShardPlan`]: vertex-range sharding of the update stream.
//!
//! The plan splits the node universe into contiguous, roughly equal ranges.
//! A mutation whose endpoints both fall inside one range is *local* to that
//! shard and can be applied concurrently with every other shard's local
//! mutations (disjoint vertex rows). Everything else — cross-shard edges,
//! out-of-range endpoints, self-loops — goes to the *residual* list and is
//! applied serially.
//!
//! ## Why this partition is sequentially equivalent
//!
//! Mutation semantics are per-edge: each operation's outcome depends only on
//! the state of its own (directed) edge, and the global bookkeeping
//! (version/rejected counters, pending counts, touched sets) is commutative.
//! Two mutations therefore commute unless they reference the same unordered
//! endpoint pair. All mutations on one pair share the same shard
//! classification (it is a function of the two endpoints), so they land in
//! the same local list or all in the residual list — in stream order either
//! way. Any interleaving of the per-shard lists and the residual is then
//! equivalent to the original sequence; the proptests in
//! `tests/proptest_ingest.rs` exercise exactly this claim.

use uninet_dyngraph::{GraphMutation, UpdateBatch};
use uninet_graph::NodeId;

/// A partition of the node universe into contiguous vertex ranges.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// `bounds[i]..bounds[i+1]` is shard `i`'s vertex range.
    bounds: Vec<usize>,
}

/// An [`UpdateBatch`] split into per-shard local mutations plus the serial
/// residual, preserving stream order within every list.
#[derive(Debug, Clone, Default)]
pub struct PartitionedBatch {
    /// Mutations local to each shard (both endpoints inside the range).
    pub local: Vec<Vec<GraphMutation>>,
    /// Cross-shard and invalid mutations, applied serially.
    pub residual: Vec<GraphMutation>,
}

impl PartitionedBatch {
    /// Total mutations that can be applied in parallel.
    pub fn local_len(&self) -> usize {
        self.local.iter().map(Vec::len).sum()
    }
}

impl ShardPlan {
    /// Splits `num_nodes` vertices into `num_shards` contiguous ranges of
    /// near-equal size (at least one shard).
    pub fn new(num_nodes: usize, num_shards: usize) -> Self {
        let k = num_shards.max(1).min(num_nodes.max(1));
        let mut bounds = Vec::with_capacity(k + 1);
        for i in 0..=k {
            bounds.push(i * num_nodes / k);
        }
        ShardPlan { bounds }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Number of nodes covered by the plan.
    pub fn num_nodes(&self) -> usize {
        *self.bounds.last().expect("non-empty")
    }

    /// The range boundaries, as consumed by `DynamicGraph::shard_views`.
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// The shard owning node `v` (`None` when out of range).
    pub fn shard_of(&self, v: NodeId) -> Option<usize> {
        if (v as usize) >= self.num_nodes() {
            return None;
        }
        // partition_point returns the first bound > v, i.e. shard index + 1.
        Some(self.bounds.partition_point(|&b| b <= v as usize) - 1)
    }

    /// Splits a batch into per-shard local lists plus the serial residual,
    /// preserving stream order within each list.
    pub fn partition(&self, batch: &UpdateBatch) -> PartitionedBatch {
        let mut out = PartitionedBatch {
            local: vec![Vec::new(); self.num_shards()],
            residual: Vec::new(),
        };
        for &m in batch.mutations() {
            let (src, dst) = m.endpoints();
            match (self.shard_of(src), self.shard_of(dst)) {
                (Some(a), Some(b)) if a == b && src != dst => out.local[a].push(m),
                _ => out.residual.push(m),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_universe_with_balanced_ranges() {
        let plan = ShardPlan::new(103, 4);
        assert_eq!(plan.num_shards(), 4);
        assert_eq!(plan.bounds().first(), Some(&0));
        assert_eq!(plan.bounds().last(), Some(&103));
        for w in plan.bounds().windows(2) {
            let width = w[1] - w[0];
            assert!((25..=26).contains(&width), "unbalanced shard: {width}");
        }
        for v in 0..103u32 {
            let s = plan.shard_of(v).unwrap();
            let r = plan.bounds()[s]..plan.bounds()[s + 1];
            assert!(r.contains(&(v as usize)), "node {v} outside shard {s}");
        }
        assert_eq!(plan.shard_of(103), None);
    }

    #[test]
    fn degenerate_plans_clamp() {
        assert_eq!(ShardPlan::new(10, 0).num_shards(), 1);
        assert_eq!(ShardPlan::new(3, 16).num_shards(), 3);
        assert_eq!(ShardPlan::new(0, 4).num_shards(), 1);
    }

    #[test]
    fn partition_routes_by_endpoint_pair() {
        let plan = ShardPlan::new(100, 2); // [0,50) and [50,100)
        let mut batch = UpdateBatch::new();
        batch.add_edge(1, 2, 1.0); // shard 0
        batch.add_edge(60, 70, 1.0); // shard 1
        batch.add_edge(10, 90, 1.0); // cross-shard
        batch.update_weight(3, 3, 1.0); // self-loop
        batch.remove_edge(5, 200); // out of range
        let parts = plan.partition(&batch);
        assert_eq!(parts.local[0].len(), 1);
        assert_eq!(parts.local[1].len(), 1);
        assert_eq!(parts.residual.len(), 3);
        assert_eq!(parts.local_len(), 2);
    }
}
