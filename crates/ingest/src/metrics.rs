//! The ingest plane's telemetry handles.
//!
//! [`IngestMetrics`] bundles every instrument the ingestion pipeline records
//! into — queue depth/stalls, sharded apply, sampler maintenance, walk
//! refresh, compaction — as pre-resolved `Arc` handles, so hot paths record
//! with a single relaxed atomic op and never consult a registry. Construct it
//! either [`registered`](IngestMetrics::registered) in a
//! [`MetricsRegistry`] (the instruments show up in snapshots under
//! `ingest.*`) or [`detached`](IngestMetrics::detached) (recording works the
//! same but nothing observes it — the no-telemetry default, which keeps every
//! call site branch-free).

use std::sync::Arc;

use uninet_metrics::{Counter, Gauge, Histogram, MetricsRegistry};

/// Pre-resolved instrument handles for the ingestion pipeline.
#[derive(Debug, Clone)]
pub struct IngestMetrics {
    /// Live number of batches in the intake queue (`ingest.queue.depth`).
    pub queue_depth: Arc<Gauge>,
    /// Batches pushed through the queue (`ingest.queue.enqueued`).
    pub queue_enqueued: Arc<Counter>,
    /// Producer sends that hit a full queue (`ingest.queue.stalls`).
    pub queue_stalls: Arc<Counter>,
    /// Time the producer spent blocked per stall (`ingest.queue.stall_ns`).
    pub queue_stall_ns: Arc<Histogram>,
    /// End-to-end overlay application per batch (`ingest.apply.batch_ns`).
    pub apply_batch_ns: Arc<Histogram>,
    /// Per-shard worker apply time (`ingest.apply.shard_ns`).
    pub apply_shard_ns: Arc<Histogram>,
    /// Sampler-maintenance time per batch (`ingest.maintain.sampler_ns`).
    pub maintain_sampler_ns: Arc<Histogram>,
    /// Walk-refresh time per batch (`ingest.refresh.round_ns`).
    pub refresh_round_ns: Arc<Histogram>,
    /// Walks invalidated and regenerated (`ingest.refresh.dirty_walks`).
    pub refresh_dirty_walks: Arc<Counter>,
    /// Compaction wall-clock time (`ingest.compaction.duration_ns`).
    pub compaction_ns: Arc<Histogram>,
    /// Compactions performed (`ingest.compaction.count`).
    pub compactions: Arc<Counter>,
    /// Nodes that arrived (incl. rejoins) via churn (`ingest.churn.arrivals`).
    pub node_arrivals: Arc<Counter>,
    /// Nodes retired from the universe (`ingest.churn.retirements`).
    pub node_retirements: Arc<Counter>,
}

impl IngestMetrics {
    /// Handles not registered anywhere: recording is identical (and equally
    /// cheap) but no snapshot will ever include them.
    pub fn detached() -> Self {
        IngestMetrics {
            queue_depth: Arc::new(Gauge::new()),
            queue_enqueued: Arc::new(Counter::new()),
            queue_stalls: Arc::new(Counter::new()),
            queue_stall_ns: Arc::new(Histogram::new()),
            apply_batch_ns: Arc::new(Histogram::new()),
            apply_shard_ns: Arc::new(Histogram::new()),
            maintain_sampler_ns: Arc::new(Histogram::new()),
            refresh_round_ns: Arc::new(Histogram::new()),
            refresh_dirty_walks: Arc::new(Counter::new()),
            compaction_ns: Arc::new(Histogram::new()),
            compactions: Arc::new(Counter::new()),
            node_arrivals: Arc::new(Counter::new()),
            node_retirements: Arc::new(Counter::new()),
        }
    }

    /// Handles registered under `ingest.*` in `registry`, so they appear in
    /// its [`MetricsSnapshot`](uninet_metrics::MetricsSnapshot)s.
    pub fn registered(registry: &MetricsRegistry) -> Self {
        IngestMetrics {
            queue_depth: registry.gauge("ingest.queue.depth"),
            queue_enqueued: registry.counter("ingest.queue.enqueued"),
            queue_stalls: registry.counter("ingest.queue.stalls"),
            queue_stall_ns: registry.histogram("ingest.queue.stall_ns"),
            apply_batch_ns: registry.histogram("ingest.apply.batch_ns"),
            apply_shard_ns: registry.histogram("ingest.apply.shard_ns"),
            maintain_sampler_ns: registry.histogram("ingest.maintain.sampler_ns"),
            refresh_round_ns: registry.histogram("ingest.refresh.round_ns"),
            refresh_dirty_walks: registry.counter("ingest.refresh.dirty_walks"),
            compaction_ns: registry.histogram("ingest.compaction.duration_ns"),
            compactions: registry.counter("ingest.compaction.count"),
            node_arrivals: registry.counter("ingest.churn.arrivals"),
            node_retirements: registry.counter("ingest.churn.retirements"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_handles_show_up_in_snapshots() {
        let registry = MetricsRegistry::new();
        let m = IngestMetrics::registered(&registry);
        m.queue_depth.set(3);
        m.queue_enqueued.add(5);
        m.apply_batch_ns.record(1_000);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("ingest.queue.depth"), Some(3));
        assert_eq!(snap.counter("ingest.queue.enqueued"), Some(5));
        assert_eq!(snap.histogram("ingest.apply.batch_ns").unwrap().count(), 1);
        assert_eq!(snap.section("ingest").len(), snap.len());
    }

    #[test]
    fn registered_twice_shares_instruments() {
        let registry = MetricsRegistry::new();
        let a = IngestMetrics::registered(&registry);
        let b = IngestMetrics::registered(&registry);
        a.compactions.inc();
        b.compactions.inc();
        assert_eq!(
            registry.snapshot().counter("ingest.compaction.count"),
            Some(2)
        );
    }

    #[test]
    fn detached_records_without_a_registry() {
        let m = IngestMetrics::detached();
        m.queue_stalls.inc();
        m.queue_stall_ns.record(42);
        assert_eq!(m.queue_stalls.get(), 1);
        assert_eq!(m.queue_stall_ns.count(), 1);
    }
}
