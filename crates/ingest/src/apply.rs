//! [`ShardedMaintainer`]: the parallel counterpart of
//! `uninet_dyngraph::IncrementalMaintainer`.
//!
//! One batch flows through three stages:
//!
//! 1. **Sharded overlay application** — the batch is partitioned by the
//!    [`crate::ShardPlan`]; each shard's local mutations are applied by a
//!    worker thread against that shard's `ShardView` (disjoint vertex rows),
//!    and the deferred side effects are committed afterwards. Cross-shard
//!    mutations are applied serially. The result is identical to the
//!    sequential path (see the module docs of [`crate::shard`]).
//! 2. **Parallel weight maintenance** — alias/proposal rebuilds over touched
//!    nodes fan out via `SamplerManager::maintain_weights_parallel` (a no-op
//!    beyond counters for the M-H backend, the paper's point).
//! 3. **Compaction** — unchanged threshold policy, delegated to the serial
//!    maintainer (compaction is a full CSR rebuild; its cost is amortized).

use std::time::Instant;

use uninet_dyngraph::{
    BatchReport, DynamicGraph, IncrementalMaintainer, MaintainerConfig, ShardOutcome, UpdateBatch,
};
use uninet_walker::{RandomWalkModel, SamplerManager};

use crate::metrics::IngestMetrics;
use crate::shard::ShardPlan;

/// Applies update batches with vertex-range parallelism.
#[derive(Debug, Clone)]
pub struct ShardedMaintainer {
    config: MaintainerConfig,
    threads: usize,
    metrics: IngestMetrics,
}

impl ShardedMaintainer {
    /// Creates a maintainer applying batches with up to `threads` workers and
    /// detached (unobserved) telemetry.
    pub fn new(config: MaintainerConfig, threads: usize) -> Self {
        Self::instrumented(config, threads, IngestMetrics::detached())
    }

    /// Creates a maintainer recording apply/maintenance/compaction timings
    /// into `metrics`.
    pub fn instrumented(config: MaintainerConfig, threads: usize, metrics: IngestMetrics) -> Self {
        ShardedMaintainer {
            config,
            threads: threads.max(1),
            metrics,
        }
    }

    /// The compaction policy in use.
    pub fn config(&self) -> &MaintainerConfig {
        &self.config
    }

    /// Worker threads used for shard application and weight maintenance.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies one batch — sharded overlay application, parallel sampler
    /// maintenance, threshold compaction — producing a [`BatchReport`]
    /// identical to the serial `IncrementalMaintainer::apply_batch`.
    pub fn apply_batch<M: RandomWalkModel + ?Sized>(
        &self,
        graph: &mut DynamicGraph,
        manager: &mut SamplerManager,
        model: &M,
        batch: &UpdateBatch,
        plan: &ShardPlan,
    ) -> BatchReport {
        // Node arrivals/retirements change the universe the shard plan was
        // computed over and must interleave in stream order with the edge ops
        // around them, so churn batches take the serial path wholesale.
        if self.threads <= 1 || plan.num_shards() <= 1 || batch.has_node_ops() {
            let r =
                IncrementalMaintainer::new(self.config).apply_batch(graph, manager, model, batch);
            self.metrics.apply_batch_ns.record_duration(r.apply_time);
            self.metrics
                .maintain_sampler_ns
                .record_duration(r.maintain_time);
            if r.compacted {
                self.metrics.compactions.inc();
            }
            self.metrics.node_arrivals.add(r.arrivals.len() as u64);
            self.metrics
                .node_retirements
                .add(r.retirements.len() as u64);
            return r;
        }

        let mut report = BatchReport::default();
        let t0 = Instant::now();
        let parts = plan.partition(batch);

        if parts.local_len() > 0 {
            let views = graph.shard_views(plan.bounds());
            // Each worker tallies into its own BatchReport via the shared
            // `record_effects` bookkeeping, so sharded and serial reports
            // cannot drift.
            let applied: Vec<(BatchReport, ShardOutcome)> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = views
                    .into_iter()
                    .zip(parts.local.iter())
                    .filter(|(_, ops)| !ops.is_empty())
                    .map(|(view, ops)| {
                        let shard_ns = std::sync::Arc::clone(&self.metrics.apply_shard_ns);
                        scope.spawn(move |_| {
                            let t = Instant::now();
                            let mut view = view;
                            let mut tallies = BatchReport::default();
                            for &m in ops {
                                let effects = view.apply_with_effects(m);
                                tallies.record_effects(m, effects);
                            }
                            let out = (tallies, view.finish());
                            shard_ns.record_duration(t.elapsed());
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            })
            .expect("shard scope panicked");

            let mut outcomes = Vec::with_capacity(applied.len());
            for (mut tallies, outcome) in applied {
                report.weight_mutations += tallies.weight_mutations;
                report.topology_mutations += tallies.topology_mutations;
                report.rejected_mutations += tallies.rejected_mutations;
                report.weight_touched.append(&mut tallies.weight_touched);
                outcomes.push(outcome);
            }
            graph.commit_shards(outcomes);
        }

        // Serial residual: cross-shard pairs and malformed events.
        for &m in &parts.residual {
            let effects = graph.apply_with_effects(m);
            report.record_effects(m, effects);
        }
        report.weight_touched.sort_unstable();
        report.weight_touched.dedup();
        report.apply_time = t0.elapsed();
        self.metrics
            .apply_batch_ns
            .record_duration(report.apply_time);

        let t1 = Instant::now();
        if !report.weight_touched.is_empty() {
            let touched = std::mem::take(&mut report.weight_touched);
            report.maintenance.merge(&manager.maintain_weights_parallel(
                graph.base(),
                model,
                &touched,
                self.threads,
            ));
            report.weight_touched = touched;
        }
        self.metrics
            .maintain_sampler_ns
            .record_duration(t1.elapsed());

        if report.topology_mutations > 0 && graph.pending() >= self.config.compaction_threshold {
            let tc = Instant::now();
            let flush = IncrementalMaintainer::new(self.config).flush(graph, manager, model);
            report.compacted = flush.compacted;
            report.topology_touched = flush.topology_touched;
            report.maintenance.merge(&flush.maintenance);
            if flush.compacted {
                self.metrics.compaction_ns.record_duration(tc.elapsed());
                self.metrics.compactions.inc();
            }
        }
        report.maintain_time = t1.elapsed();
        report
    }

    /// Forces compaction and sampler re-alignment (end-of-stream), identical
    /// to the serial maintainer's flush.
    pub fn flush<M: RandomWalkModel + ?Sized>(
        &self,
        graph: &mut DynamicGraph,
        manager: &mut SamplerManager,
        model: &M,
    ) -> BatchReport {
        let t = Instant::now();
        let r = IncrementalMaintainer::new(self.config).flush(graph, manager, model);
        if r.compacted {
            self.metrics.compaction_ns.record_duration(t.elapsed());
            self.metrics.compactions.inc();
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use uninet_graph::generators::{rmat, RmatConfig};
    use uninet_graph::NodeId;
    use uninet_sampler::{EdgeSamplerKind, InitStrategy};
    use uninet_walker::models::DeepWalk;

    fn test_graph() -> uninet_graph::Graph {
        rmat(&RmatConfig {
            num_nodes: 120,
            num_edges: 900,
            weighted: true,
            seed: 5,
            ..Default::default()
        })
    }

    fn mixed_batch(g: &uninet_graph::Graph, count: usize, seed: u64) -> UpdateBatch {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = g.num_nodes() as NodeId;
        let mut batch = UpdateBatch::new();
        for i in 0..count {
            let src = rng.gen_range(0..n);
            if g.degree(src) == 0 {
                continue;
            }
            let dst = g.neighbor_at(src, rng.gen_range(0..g.degree(src)));
            match i % 4 {
                0 | 1 => batch.update_weight(src, dst, rng.gen_range(0.5f32..4.0)),
                2 => batch.add_edge(src, (dst + 1) % n, rng.gen_range(0.5f32..2.0)),
                _ => batch.remove_edge(src, dst),
            };
        }
        batch
    }

    #[test]
    fn sharded_apply_matches_serial_for_every_sampler() {
        let g = test_graph();
        let model = DeepWalk::new();
        let batch = mixed_batch(&g, 120, 3);
        let plan = ShardPlan::new(g.num_nodes(), 4);
        for kind in [
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
            EdgeSamplerKind::Alias,
            EdgeSamplerKind::Rejection,
        ] {
            let mut dg_serial = DynamicGraph::new(g.clone(), true);
            let mut m_serial = SamplerManager::new(dg_serial.base(), &model, kind, 0);
            let serial = IncrementalMaintainer::new(MaintainerConfig {
                compaction_threshold: 64,
            })
            .apply_batch(&mut dg_serial, &mut m_serial, &model, &batch);

            let mut dg_sharded = DynamicGraph::new(g.clone(), true);
            let mut m_sharded = SamplerManager::new(dg_sharded.base(), &model, kind, 0);
            let sharded = ShardedMaintainer::new(
                MaintainerConfig {
                    compaction_threshold: 64,
                },
                4,
            )
            .apply_batch(&mut dg_sharded, &mut m_sharded, &model, &batch, &plan);

            assert_eq!(serial.weight_mutations, sharded.weight_mutations);
            assert_eq!(serial.topology_mutations, sharded.topology_mutations);
            assert_eq!(serial.rejected_mutations, sharded.rejected_mutations);
            assert_eq!(serial.weight_touched, sharded.weight_touched);
            assert_eq!(serial.compacted, sharded.compacted);
            assert_eq!(serial.topology_touched, sharded.topology_touched);
            assert_eq!(serial.maintenance, sharded.maintenance);
            assert_eq!(dg_serial.pending(), dg_sharded.pending());

            let a = dg_serial.materialize();
            let b = dg_sharded.materialize();
            for v in 0..g.num_nodes() as NodeId {
                assert_eq!(a.neighbors(v), b.neighbors(v), "{kind:?} node {v}");
                assert_eq!(a.weights(v), b.weights(v), "{kind:?} node {v}");
            }
        }
    }

    #[test]
    fn churn_batches_take_the_serial_path_and_match_it() {
        let g = test_graph();
        let n = g.num_nodes() as NodeId;
        let model = DeepWalk::new();
        // Arrival, edge naming the arrival, retirement, edge naming the
        // retiree — stream order between node and edge ops must hold.
        let mut batch = mixed_batch(&g, 40, 11);
        batch.add_node(n);
        batch.add_edge(n, 3, 1.5);
        batch.remove_node(7);
        batch.add_edge(7, 8, 1.0); // must be rejected: endpoint retired
        let plan = ShardPlan::new(g.num_nodes(), 4);

        let mut dg_serial = DynamicGraph::new(g.clone(), true);
        let mut m_serial = SamplerManager::new(
            dg_serial.base(),
            &model,
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
            0,
        );
        let serial = IncrementalMaintainer::new(MaintainerConfig::default()).apply_batch(
            &mut dg_serial,
            &mut m_serial,
            &model,
            &batch,
        );

        let mut dg_sharded = DynamicGraph::new(g.clone(), true);
        let mut m_sharded = SamplerManager::new(
            dg_sharded.base(),
            &model,
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
            0,
        );
        let metrics = IngestMetrics::detached();
        let sharded = ShardedMaintainer::instrumented(MaintainerConfig::default(), 4, metrics.clone())
            .apply_batch(&mut dg_sharded, &mut m_sharded, &model, &batch, &plan);

        assert_eq!(serial.arrivals, sharded.arrivals);
        assert_eq!(serial.retirements, sharded.retirements);
        assert_eq!(serial.rejected_mutations, sharded.rejected_mutations);
        assert_eq!(metrics.node_arrivals.get(), serial.arrivals.len() as u64);
        assert_eq!(
            metrics.node_retirements.get(),
            serial.retirements.len() as u64
        );
        assert_eq!(dg_serial.live_mask(), dg_sharded.live_mask());
        let a = dg_serial.materialize();
        let b = dg_sharded.materialize();
        assert_eq!(a.num_nodes(), b.num_nodes());
        for v in 0..a.num_nodes() as NodeId {
            assert_eq!(a.neighbors(v), b.neighbors(v), "node {v}");
        }
        assert!(a.has_edge(n, 3), "arrival's edge applied");
        assert!(!a.has_edge(7, 8), "retired endpoint's edge rejected");
    }

    #[test]
    fn single_thread_falls_back_to_serial_maintainer() {
        let g = test_graph();
        let model = DeepWalk::new();
        let batch = mixed_batch(&g, 40, 9);
        let plan = ShardPlan::new(g.num_nodes(), 1);
        let mut dg = DynamicGraph::new(g.clone(), true);
        let mut manager = SamplerManager::new(
            dg.base(),
            &model,
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
            0,
        );
        let r = ShardedMaintainer::new(MaintainerConfig::default(), 1).apply_batch(
            &mut dg,
            &mut manager,
            &model,
            &batch,
            &plan,
        );
        assert!(r.weight_mutations + r.topology_mutations > 0);
    }
}
