//! [`ShardedMaintainer`]: the parallel counterpart of
//! `uninet_dyngraph::IncrementalMaintainer`.
//!
//! One batch flows through three stages:
//!
//! 1. **Sharded overlay application** — the batch is partitioned by the
//!    [`crate::ShardPlan`]; each shard's local mutations are applied by a
//!    worker thread against that shard's `ShardView` (disjoint vertex rows),
//!    and the deferred side effects are committed afterwards. Cross-shard
//!    mutations are applied serially. The result is identical to the
//!    sequential path (see the module docs of [`crate::shard`]).
//! 2. **Parallel weight maintenance** — alias/proposal rebuilds over touched
//!    nodes fan out via `SamplerManager::maintain_weights_parallel` (a no-op
//!    beyond counters for the M-H backend, the paper's point).
//! 3. **Compaction** — unchanged threshold policy, delegated to the serial
//!    maintainer (compaction is a full CSR rebuild; its cost is amortized).

use std::time::Instant;

use uninet_dyngraph::{
    BatchReport, DynamicGraph, IncrementalMaintainer, MaintainerConfig, ShardOutcome, UpdateBatch,
};
use uninet_walker::{RandomWalkModel, SamplerManager};

use crate::shard::ShardPlan;

/// Applies update batches with vertex-range parallelism.
#[derive(Debug, Clone, Copy)]
pub struct ShardedMaintainer {
    config: MaintainerConfig,
    threads: usize,
}

impl ShardedMaintainer {
    /// Creates a maintainer applying batches with up to `threads` workers.
    pub fn new(config: MaintainerConfig, threads: usize) -> Self {
        ShardedMaintainer {
            config,
            threads: threads.max(1),
        }
    }

    /// The compaction policy in use.
    pub fn config(&self) -> &MaintainerConfig {
        &self.config
    }

    /// Worker threads used for shard application and weight maintenance.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies one batch — sharded overlay application, parallel sampler
    /// maintenance, threshold compaction — producing a [`BatchReport`]
    /// identical to the serial `IncrementalMaintainer::apply_batch`.
    pub fn apply_batch<M: RandomWalkModel + ?Sized>(
        &self,
        graph: &mut DynamicGraph,
        manager: &mut SamplerManager,
        model: &M,
        batch: &UpdateBatch,
        plan: &ShardPlan,
    ) -> BatchReport {
        if self.threads <= 1 || plan.num_shards() <= 1 {
            return IncrementalMaintainer::new(self.config)
                .apply_batch(graph, manager, model, batch);
        }

        let mut report = BatchReport::default();
        let t0 = Instant::now();
        let parts = plan.partition(batch);

        if parts.local_len() > 0 {
            let views = graph.shard_views(plan.bounds());
            // Each worker tallies into its own BatchReport via the shared
            // `record_effects` bookkeeping, so sharded and serial reports
            // cannot drift.
            let applied: Vec<(BatchReport, ShardOutcome)> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = views
                    .into_iter()
                    .zip(parts.local.iter())
                    .filter(|(_, ops)| !ops.is_empty())
                    .map(|(view, ops)| {
                        scope.spawn(move |_| {
                            let mut view = view;
                            let mut tallies = BatchReport::default();
                            for &m in ops {
                                let effects = view.apply_with_effects(m);
                                tallies.record_effects(m, effects);
                            }
                            (tallies, view.finish())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            })
            .expect("shard scope panicked");

            let mut outcomes = Vec::with_capacity(applied.len());
            for (mut tallies, outcome) in applied {
                report.weight_mutations += tallies.weight_mutations;
                report.topology_mutations += tallies.topology_mutations;
                report.rejected_mutations += tallies.rejected_mutations;
                report.weight_touched.append(&mut tallies.weight_touched);
                outcomes.push(outcome);
            }
            graph.commit_shards(outcomes);
        }

        // Serial residual: cross-shard pairs and malformed events.
        for &m in &parts.residual {
            let effects = graph.apply_with_effects(m);
            report.record_effects(m, effects);
        }
        report.weight_touched.sort_unstable();
        report.weight_touched.dedup();
        report.apply_time = t0.elapsed();

        let t1 = Instant::now();
        if !report.weight_touched.is_empty() {
            let touched = std::mem::take(&mut report.weight_touched);
            report.maintenance.merge(&manager.maintain_weights_parallel(
                graph.base(),
                model,
                &touched,
                self.threads,
            ));
            report.weight_touched = touched;
        }

        if report.topology_mutations > 0 && graph.pending() >= self.config.compaction_threshold {
            let flush = IncrementalMaintainer::new(self.config).flush(graph, manager, model);
            report.compacted = flush.compacted;
            report.topology_touched = flush.topology_touched;
            report.maintenance.merge(&flush.maintenance);
        }
        report.maintain_time = t1.elapsed();
        report
    }

    /// Forces compaction and sampler re-alignment (end-of-stream), identical
    /// to the serial maintainer's flush.
    pub fn flush<M: RandomWalkModel + ?Sized>(
        &self,
        graph: &mut DynamicGraph,
        manager: &mut SamplerManager,
        model: &M,
    ) -> BatchReport {
        IncrementalMaintainer::new(self.config).flush(graph, manager, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use uninet_graph::generators::{rmat, RmatConfig};
    use uninet_graph::NodeId;
    use uninet_sampler::{EdgeSamplerKind, InitStrategy};
    use uninet_walker::models::DeepWalk;

    fn test_graph() -> uninet_graph::Graph {
        rmat(&RmatConfig {
            num_nodes: 120,
            num_edges: 900,
            weighted: true,
            seed: 5,
            ..Default::default()
        })
    }

    fn mixed_batch(g: &uninet_graph::Graph, count: usize, seed: u64) -> UpdateBatch {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = g.num_nodes() as NodeId;
        let mut batch = UpdateBatch::new();
        for i in 0..count {
            let src = rng.gen_range(0..n);
            if g.degree(src) == 0 {
                continue;
            }
            let dst = g.neighbor_at(src, rng.gen_range(0..g.degree(src)));
            match i % 4 {
                0 | 1 => batch.update_weight(src, dst, rng.gen_range(0.5f32..4.0)),
                2 => batch.add_edge(src, (dst + 1) % n, rng.gen_range(0.5f32..2.0)),
                _ => batch.remove_edge(src, dst),
            };
        }
        batch
    }

    #[test]
    fn sharded_apply_matches_serial_for_every_sampler() {
        let g = test_graph();
        let model = DeepWalk::new();
        let batch = mixed_batch(&g, 120, 3);
        let plan = ShardPlan::new(g.num_nodes(), 4);
        for kind in [
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
            EdgeSamplerKind::Alias,
            EdgeSamplerKind::Rejection,
        ] {
            let mut dg_serial = DynamicGraph::new(g.clone(), true);
            let mut m_serial = SamplerManager::new(dg_serial.base(), &model, kind, 0);
            let serial = IncrementalMaintainer::new(MaintainerConfig {
                compaction_threshold: 64,
            })
            .apply_batch(&mut dg_serial, &mut m_serial, &model, &batch);

            let mut dg_sharded = DynamicGraph::new(g.clone(), true);
            let mut m_sharded = SamplerManager::new(dg_sharded.base(), &model, kind, 0);
            let sharded = ShardedMaintainer::new(
                MaintainerConfig {
                    compaction_threshold: 64,
                },
                4,
            )
            .apply_batch(&mut dg_sharded, &mut m_sharded, &model, &batch, &plan);

            assert_eq!(serial.weight_mutations, sharded.weight_mutations);
            assert_eq!(serial.topology_mutations, sharded.topology_mutations);
            assert_eq!(serial.rejected_mutations, sharded.rejected_mutations);
            assert_eq!(serial.weight_touched, sharded.weight_touched);
            assert_eq!(serial.compacted, sharded.compacted);
            assert_eq!(serial.topology_touched, sharded.topology_touched);
            assert_eq!(serial.maintenance, sharded.maintenance);
            assert_eq!(dg_serial.pending(), dg_sharded.pending());

            let a = dg_serial.materialize();
            let b = dg_sharded.materialize();
            for v in 0..g.num_nodes() as NodeId {
                assert_eq!(a.neighbors(v), b.neighbors(v), "{kind:?} node {v}");
                assert_eq!(a.weights(v), b.weights(v), "{kind:?} node {v}");
            }
        }
    }

    #[test]
    fn single_thread_falls_back_to_serial_maintainer() {
        let g = test_graph();
        let model = DeepWalk::new();
        let batch = mixed_batch(&g, 40, 9);
        let plan = ShardPlan::new(g.num_nodes(), 1);
        let mut dg = DynamicGraph::new(g.clone(), true);
        let mut manager = SamplerManager::new(
            dg.base(),
            &model,
            EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
            0,
        );
        let r = ShardedMaintainer::new(MaintainerConfig::default(), 1).apply_batch(
            &mut dg,
            &mut manager,
            &model,
            &batch,
            &plan,
        );
        assert!(r.weight_mutations + r.topology_mutations > 0);
    }
}
