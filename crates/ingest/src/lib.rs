//! # uninet-ingest
//!
//! Concurrent ingestion subsystem for dynamic graphs: turns the serial
//! streaming-update path (`apply → maintain → refresh → retrain`, one
//! mutation batch at a time on one thread) into a pipeline that keeps
//! mutation intake, sampler maintenance and embedding refresh off each
//! other's critical paths:
//!
//! 1. **Bounded intake** ([`queue`]) — a reader thread chunks the update
//!    stream into batches and feeds a bounded MPSC queue; a full queue blocks
//!    the reader (back-pressure), so memory stays bounded under load spikes.
//! 2. **Vertex-range sharding** ([`shard`], [`apply`]) — each batch is
//!    partitioned by endpoint pair; shards own disjoint vertex ranges of the
//!    `DynamicGraph` overlay and apply their local mutations in parallel,
//!    with cross-shard events applied serially. The partition preserves
//!    per-edge mutation order, which makes the merged result *identical* to
//!    sequential application (property-tested in `tests/proptest_ingest.rs`).
//! 3. **Parallel maintenance** — alias/proposal rebuilds over touched
//!    sampler buckets fan out across the same worker pool
//!    (`SamplerManager::maintain_weights_parallel`); the M-H backend needs no
//!    rebuild at all, which is the paper's dynamic-workload claim.
//! 4. **Downstream hooks** ([`pipeline`]) — after every batch the pipeline
//!    hands the report to a callback where `uninet-core` fans walk refresh
//!    out over the walk-engine thread pool and applies incremental
//!    (regenerated-walks-only) embedding updates.
//!
//! ```
//! use uninet_ingest::ShardPlan;
//!
//! // 100 vertices split across 4 disjoint contiguous ranges: every vertex
//! // belongs to exactly one shard, so shards apply mutations in parallel
//! // without ever touching the same adjacency row.
//! let plan = ShardPlan::new(100, 4);
//! assert_eq!(plan.num_shards(), 4);
//! assert_eq!(plan.shard_of(0), plan.shard_of(24));
//! assert_ne!(plan.shard_of(0), plan.shard_of(99));
//! ```

pub mod apply;
pub mod metrics;
pub mod pipeline;
pub mod queue;
pub mod shard;

pub use apply::ShardedMaintainer;
pub use metrics::IngestMetrics;
pub use pipeline::{
    run_durable_pipeline, run_instrumented_pipeline, run_pipeline, IngestConfig, IngestReport,
};
pub use queue::{
    batch_queue, instrumented_batch_queue, BatchReceiver, BatchSender, QueueStats, RateLimiter,
};
pub use shard::{PartitionedBatch, ShardPlan};
