//! Property-based tests of the embedding layer: matrix algebra invariants,
//! vocabulary bookkeeping, and sigmoid-table accuracy over arbitrary inputs.

use proptest::prelude::*;

use uninet_embedding::{EmbeddingMatrix, Embeddings, SigmoidTable, UnigramTable, Vocabulary};

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn vocabulary_totals_match_corpus(walks in prop::collection::vec(
        prop::collection::vec(0u32..30, 1..40), 1..30)) {
        let refs: Vec<&[u32]> = walks.iter().map(|w| w.as_slice()).collect();
        let vocab = Vocabulary::from_walks(30, refs.iter().copied());
        let expected_total: u64 = walks.iter().map(|w| w.len() as u64).sum();
        prop_assert_eq!(vocab.total_tokens(), expected_total);
        let count_sum: u64 = (0..30u32).map(|v| vocab.count(v)).sum();
        prop_assert_eq!(count_sum, expected_total);
        for v in 0..30u32 {
            let f = vocab.frequency(v);
            prop_assert!((0.0..=1.0).contains(&f));
            let keep = vocab.keep_probability(v, 1e-3);
            prop_assert!(keep > 0.0 && keep <= 1.0);
        }
    }

    #[test]
    fn unigram_table_only_emits_positive_count_nodes(counts in prop::collection::vec(0u64..50, 2..20), seed in 0u64..100) {
        prop_assume!(counts.iter().any(|&c| c > 0));
        let vocab = Vocabulary::from_counts(counts.clone());
        let table = UnigramTable::with_params(&vocab, 10_000, 0.75);
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..2000 {
            let s = table.sample(&mut rng) as usize;
            prop_assert!(s < counts.len());
            prop_assert!(counts[s] > 0, "sampled node {s} with zero count");
        }
    }

    #[test]
    fn sigmoid_table_is_accurate_and_bounded(x in -20.0f32..20.0) {
        let table = SigmoidTable::default();
        let s = table.sigmoid(x);
        prop_assert!((0.0..=1.0).contains(&s));
        let exact = 1.0 / (1.0 + (-x).exp());
        prop_assert!((s - exact).abs() < 0.02, "x={x}: {s} vs {exact}");
    }

    #[test]
    fn matrix_row_ops_are_consistent(
        rows in 1usize..10,
        dim in 1usize..32,
        row_values in prop::collection::vec(-2.0f32..2.0, 1..32),
        seed in 0u64..100,
    ) {
        let dim = dim.min(row_values.len());
        let values = &row_values[..dim];
        let m = EmbeddingMatrix::uniform(rows, dim, seed);
        let target = rows - 1;
        let mut before = vec![0.0f32; dim];
        m.read_row(target, &mut before);
        m.add_row(target, values);
        let mut after = vec![0.0f32; dim];
        m.read_row(target, &mut after);
        for j in 0..dim {
            prop_assert!((after[j] - before[j] - values[j]).abs() < 1e-5);
        }
        // dot_row equals the manual dot product.
        let manual: f32 = after.iter().zip(values).map(|(a, b)| a * b).sum();
        prop_assert!((m.dot_row(target, values) - manual).abs() < 1e-4);
    }

    #[test]
    fn ann_top_k_recall_beats_point_nine(
        n in 64usize..280,
        dim in 4usize..24,
        seed in 0u64..1000,
    ) {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        use uninet_embedding::{AnnConfig, HnswIndex};

        // Random unit vectors — the adversarial (structure-free) case for a
        // proximity-graph index.
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut flat = Vec::with_capacity(n * dim);
        for _ in 0..n {
            let row: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            flat.extend(row.iter().map(|x| x / norm));
        }
        let emb = Embeddings::from_flat(dim, flat);
        let index = HnswIndex::build(&emb, &AnnConfig { seed, ..Default::default() });

        let k = 10usize;
        let mut hits = 0usize;
        let mut total = 0usize;
        for node in (0..n as u32).step_by((n / 16).max(1)) {
            let approx = index.search_node(node, k);
            let exact = emb.most_similar(node, k);
            prop_assert_eq!(approx.len(), exact.len(), "node {}", node);
            let exact_ids: Vec<u32> = exact.iter().map(|&(u, _)| u).collect();
            hits += approx.iter().filter(|&&(u, _)| exact_ids.contains(&u)).count();
            total += exact.len();
        }
        let recall = hits as f64 / total.max(1) as f64;
        prop_assert!(recall >= 0.9, "recall@10 = {} (n={}, dim={})", recall, n, dim);
    }

    #[test]
    fn cosine_similarity_is_symmetric_and_bounded(
        vectors in prop::collection::vec(-3.0f32..3.0, 8..64),
    ) {
        let dim = 4;
        let n = vectors.len() / dim;
        prop_assume!(n >= 2);
        let emb = Embeddings::from_flat(dim, vectors[..n * dim].to_vec());
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                let s_ab = emb.cosine_similarity(a, b);
                let s_ba = emb.cosine_similarity(b, a);
                prop_assert!((s_ab - s_ba).abs() < 1e-5);
                prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&s_ab));
            }
        }
    }
}
