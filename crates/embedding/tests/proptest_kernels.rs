//! Property-based equivalence layer for the query-plane kernels.
//!
//! Fast-but-wrong kernels would silently corrupt every recall number the
//! benches report, so this suite pins the dispatched implementations to the
//! portable scalar reference across arbitrary dimensions, alignments and
//! remainder lanes. Run it under both feature sets — the default build
//! exercises whatever SIMD the host dispatches to, and
//! `--features force-scalar` exercises the reference path itself:
//!
//! ```text
//! cargo test -p uninet-embedding --test proptest_kernels
//! cargo test -p uninet-embedding --test proptest_kernels --features force-scalar
//! ```
//!
//! Three layers of property: (1) the f32/int8 kernels against the scalar
//! reference with a forward-error summation bound, (2) the int8 quantized
//! `top_k` against the f32 exact scan (recall@10 ≥ 0.95), and (3) the
//! incremental HNSW graft against a from-scratch rebuild (recall parity
//! within 0.02) across ≥ 5 epochs of drift and node churn.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use uninet_embedding::{kernels, AnnConfig, EmbeddingStore, Embeddings, HnswIndex};

/// Forward-error bound for a length-`n` f32 sum of products: any two
/// summation orders (scalar, 4-lane, 8-lane + FMA) agree to within
/// `n · eps · Σ|aᵢ·bᵢ|`.
fn sum_tolerance(products_abs: f32, n: usize) -> f32 {
    (n as f32) * f32::EPSILON * products_abs + f32::MIN_POSITIVE
}

fn random_unit_flat(n: usize, dim: usize, rng: &mut SmallRng) -> Vec<f32> {
    let mut flat = Vec::with_capacity(n * dim);
    for _ in 0..n {
        let row: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
        flat.extend(row.iter().map(|x| x / norm));
    }
    flat
}

/// recall@k of `got` against the brute-force `most_similar` ground truth,
/// averaged over a sample of query nodes.
fn recall_at_k(emb: &Embeddings, k: usize, query: impl Fn(u32) -> Vec<(u32, f32)>) -> f64 {
    let n = emb.num_nodes();
    let mut hits = 0usize;
    let mut total = 0usize;
    for node in (0..n as u32).step_by((n / 24).max(1)) {
        let exact_ids: Vec<u32> = emb.most_similar(node, k).iter().map(|&(u, _)| u).collect();
        hits += query(node)
            .iter()
            .filter(|&&(u, _)| exact_ids.contains(&u))
            .count();
        total += k.min(n.saturating_sub(1));
    }
    hits as f64 / total.max(1) as f64
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Property 1a: the dispatched f32 kernels agree with the scalar
    /// reference on arbitrary dims, values, and slice alignments — covering
    /// every remainder-lane count of the 8-wide and 4-wide paths.
    #[test]
    fn dispatched_f32_kernels_match_scalar_reference(
        dim in 0usize..300,
        offset_a in 0usize..8,
        offset_b in 0usize..8,
        scale in 0.01f32..100.0,
        seed in 0u64..10_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a_buf: Vec<f32> = (0..dim + offset_a).map(|_| rng.gen_range(-1.0f32..1.0) * scale).collect();
        let b_buf: Vec<f32> = (0..dim + offset_b).map(|_| rng.gen_range(-1.0f32..1.0) * scale).collect();
        // Slicing at an arbitrary offset exercises unaligned loads.
        let a = &a_buf[offset_a..];
        let b = &b_buf[offset_b..];

        let got_dot = kernels::dot(a, b);
        let want_dot = kernels::reference::dot(a, b);
        let abs_sum: f32 = a.iter().zip(b).map(|(x, y)| (x * y).abs()).sum();
        let tol = sum_tolerance(abs_sum, dim);
        prop_assert!(
            (got_dot - want_dot).abs() <= tol,
            "dot dim={dim}: {got_dot} vs {want_dot} (tol {tol})"
        );

        let got_norm = kernels::squared_norm(a);
        let want_norm = kernels::reference::squared_norm(a);
        let tol = sum_tolerance(want_norm, dim);
        prop_assert!(
            (got_norm - want_norm).abs() <= tol,
            "squared_norm dim={dim}: {got_norm} vs {want_norm} (tol {tol})"
        );
    }

    /// Property 1b: the int8 dot kernel is *exact* — integer accumulation has
    /// no rounding, so every backend must produce bit-identical i32 sums,
    /// including at the saturating corners of the i8 range.
    #[test]
    fn dispatched_i8_dot_is_exact(
        dim in 0usize..300,
        offset in 0usize..4,
        seed in 0u64..10_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a_buf: Vec<i8> = (0..dim + offset).map(|_| rng.gen_range(-128i32..128) as i8).collect();
        let b_buf: Vec<i8> = (0..dim + offset).map(|_| rng.gen_range(-128i32..128) as i8).collect();
        let a = &a_buf[offset..];
        let b = &b_buf[offset..];
        prop_assert_eq!(kernels::dot_i8(a, b), kernels::reference::dot_i8(a, b));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Property 2: the int8 quantized exact scan keeps recall@10 ≥ 0.95
    /// against the f32 exact scan on random unit vectors (the structure-free
    /// adversarial case), while still reporting exact f32 scores.
    #[test]
    fn quantized_top_k_recall_beats_point_nine_five(
        n in 120usize..350,
        dim in 16usize..48,
        seed in 0u64..1000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let emb = Embeddings::from_flat(dim, random_unit_flat(n, dim, &mut rng));

        let store = EmbeddingStore::with_ann(AnnConfig {
            seed,
            quantize: true,
            ..Default::default()
        });
        store.publish(emb.clone());
        let snap = store.snapshot();
        prop_assert!(snap.is_quantized());

        let recall = recall_at_k(&emb, 10, |node| snap.top_k(node, 10));
        prop_assert!(recall >= 0.95, "quantized recall@10 {recall} < 0.95 (n={n}, dim={dim})");

        // Spot-check that surviving scores are exact cosines, not
        // dequantized approximations.
        for (u, s) in snap.top_k(0, 5) {
            let want = emb.cosine_similarity(0, u);
            prop_assert!((s - want).abs() < 1e-5, "hit {u}: {s} vs {want}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Property 3: across ≥ 5 epochs of vector drift plus node churn, a chain
    /// of incremental HNSW grafts keeps recall@10 within 0.02 of a
    /// from-scratch rebuild of the same epoch.
    #[test]
    fn incremental_hnsw_recall_tracks_full_rebuild(
        n0 in 100usize..180,
        dim in 8usize..24,
        seed in 0u64..1000,
    ) {
        let cfg = AnnConfig { seed, ..Default::default() };
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
        let mut flat = random_unit_flat(n0, dim, &mut rng);

        let mut incremental = HnswIndex::build(&Embeddings::from_flat(dim, flat.clone()), &cfg);
        for epoch in 0..5 {
            // Drift: ~15% of nodes get fully resampled vectors, the rest
            // jitter slightly (mostly below the default drift threshold).
            let n = flat.len() / dim;
            for v in 0..n {
                if rng.gen_range(0.0f32..1.0) < 0.15 {
                    for j in 0..dim {
                        flat[v * dim + j] = rng.gen_range(-1.0f32..1.0);
                    }
                } else {
                    for j in 0..dim {
                        flat[v * dim + j] += rng.gen_range(-0.005f32..0.005);
                    }
                }
            }
            // Churn: alternate between retiring and adding a block of nodes.
            if epoch % 2 == 0 {
                flat.truncate((n - n / 10) * dim);
            } else {
                for _ in 0..(n / 8) * dim {
                    flat.push(rng.gen_range(-1.0f32..1.0));
                }
            }

            let emb = Embeddings::from_flat(dim, flat.clone());
            incremental = HnswIndex::build_incremental(&emb, &cfg, &incremental);
            prop_assert!(
                incremental.incremental_stats().is_some(),
                "epoch {epoch}: expected the graft path"
            );
            let full = HnswIndex::build(&emb, &cfg);

            let recall_inc = recall_at_k(&emb, 10, |node| incremental.search_node(node, 10));
            let recall_full = recall_at_k(&emb, 10, |node| full.search_node(node, 10));
            prop_assert!(
                recall_inc >= recall_full - 0.02,
                "epoch {epoch}: incremental recall {recall_inc} vs full {recall_full}"
            );
        }
    }
}
