//! Telemetry overhead budget: the instrumented query-service path must stay
//! within a few percent of the raw snapshot query.
//!
//! The store path adds, on top of the query itself: one `RwLock` read to
//! acquire the snapshot, two monotonic clock reads, and one histogram record
//! (five relaxed atomic RMWs). Against an exact top-k scan over thousands of
//! nodes that is noise — this test pins the budget so a future accidental
//! lock or allocation on the hot path fails loudly.

use std::time::Instant;

use uninet_embedding::telemetry::StoreTelemetry;
use uninet_embedding::{EmbeddingStore, Embeddings, QueryMode};
use uninet_metrics::MetricsRegistry;

const NODES: usize = 2_000;
const DIM: usize = 64;
const QUERIES: usize = 400;
const ROUNDS: usize = 3;

/// Deterministic non-degenerate vectors so top-k orders are stable.
fn test_embeddings() -> Embeddings {
    let flat: Vec<f32> = (0..NODES * DIM)
        .map(|i| {
            let (node, d) = (i / DIM, i % DIM);
            ((node * 31 + d * 7) % 97) as f32 / 97.0 - 0.5
        })
        .collect();
    Embeddings::from_flat(DIM, flat)
}

/// Median latency in nanoseconds of `QUERIES` exact top-k calls.
fn median_query_ns(mut query: impl FnMut(u32)) -> u64 {
    let mut laps: Vec<u64> = (0..QUERIES)
        .map(|i| {
            let node = ((i * 17) % NODES) as u32;
            let t = Instant::now();
            query(node);
            t.elapsed().as_nanos() as u64
        })
        .collect();
    laps.sort_unstable();
    laps[laps.len() / 2]
}

#[test]
fn instrumented_store_query_overhead_is_within_budget() {
    let registry = MetricsRegistry::new();
    let store = EmbeddingStore::new().instrumented(StoreTelemetry::registered(&registry));
    store.publish(test_embeddings());
    let snapshot = store.snapshot();

    // Best-of-N medians: each round measures both variants back to back, so a
    // scheduler hiccup hurts whichever variant it lands on and the minimum
    // across rounds converges to the true cost of each path.
    let mut raw_best = u64::MAX;
    let mut instrumented_best = u64::MAX;
    for _ in 0..ROUNDS {
        raw_best = raw_best.min(median_query_ns(|node| {
            let hits = snapshot.top_k(node, 10);
            assert_eq!(hits.len(), 10);
        }));
        instrumented_best = instrumented_best.min(median_query_ns(|node| {
            let hits = store.top_k_mode(node, 10, QueryMode::Exact);
            assert_eq!(hits.len(), 10);
        }));
    }

    // The recording really happened — this is not comparing two raw paths.
    let recorded = registry
        .snapshot()
        .histogram("query.top_k.exact_ns")
        .expect("exact-path histogram is registered")
        .count();
    assert_eq!(recorded as usize, QUERIES * ROUNDS);

    // 5% budget per the telemetry-plane contract, with a small absolute floor
    // so sub-microsecond jitter cannot fail the test on a tiny workload.
    let budget = raw_best + (raw_best / 20).max(2_000);
    assert!(
        instrumented_best <= budget,
        "instrumented median {instrumented_best} ns exceeds budget {budget} ns \
         (raw median {raw_best} ns)"
    );
}
