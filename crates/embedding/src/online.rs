//! Incremental (online) word2vec training for streaming-graph pipelines.
//!
//! After a graph update, only the walks whose trajectories crossed mutated
//! vertices are regenerated — and negative-sampling SGD is already an online
//! algorithm, so there is no need to retrain over the whole corpus: a
//! corrective pass over just the regenerated walks adapts the affected
//! embeddings while the rest of the parameter matrices stay warm.
//!
//! [`OnlineWord2Vec`] owns the persistent training state (input/output
//! matrices, vocabulary, negative-sampling table); it is created by a full
//! training pass over the initial corpus
//! ([`Word2VecTrainer::train_online`]) and advanced by
//! [`Word2VecTrainer::train_incremental`] calls on refreshed walks. The
//! vocabulary and unigram table are kept from the initial corpus: node
//! frequencies drift slowly under incremental refresh (walk starts never
//! move), and the `f^0.75` flattening makes the negative distribution
//! insensitive to small shifts.

use crate::matrix::EmbeddingMatrix;
use crate::negative::UnigramTable;
use crate::sigmoid::SigmoidTable;
use crate::trainer::{run_sgd_pass, AlphaSchedule, TrainStats, Word2VecTrainer};
use crate::vocab::Vocabulary;
use crate::Embeddings;

/// Learning-rate factor of incremental passes relative to `initial_alpha`.
///
/// Incremental updates fine-tune a converged model, so they use a reduced but
/// still substantial rate: large enough to track topology changes, small
/// enough not to wreck the unaffected structure (the final rates of the
/// decayed full pass are near zero and would learn nothing).
const INCREMENTAL_ALPHA_FACTOR: f32 = 0.5;

/// Persistent state of an online word2vec training session.
pub struct OnlineWord2Vec {
    num_nodes: usize,
    vocab: Vocabulary,
    table: UnigramTable,
    sigmoid: SigmoidTable,
    input: EmbeddingMatrix,
    output: EmbeddingMatrix,
    incremental_passes: usize,
}

impl OnlineWord2Vec {
    /// Number of nodes the session was built for.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of incremental passes applied since the initial full train.
    pub fn incremental_passes(&self) -> usize {
        self.incremental_passes
    }

    /// A snapshot of the current input embeddings.
    pub fn embeddings(&self) -> Embeddings {
        Embeddings::from_flat(self.input.dim(), self.input.to_flat())
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.input.dim()
    }

    /// Grows the session to cover `new_num_nodes` ids (open-world arrival).
    ///
    /// New input rows get the standard uniform word2vec init (callers
    /// typically overwrite them with a neighbour-average cold start via
    /// [`OnlineWord2Vec::set_input_row`]), output rows start at zero, and the
    /// negative-sampling table is rebuilt with a count floor of 1 for the new
    /// ids so burn-in gradients can reach their output rows. Shrinking is a
    /// no-op: retired ids keep their rows, which simply stop being trained or
    /// served.
    pub fn grow(&mut self, new_num_nodes: usize, seed: u64) {
        if new_num_nodes <= self.num_nodes {
            return;
        }
        let old = self.num_nodes;
        self.vocab.grow(new_num_nodes);
        for v in old..new_num_nodes {
            self.vocab.ensure_min_count(v as u32, 1);
        }
        self.table = UnigramTable::with_params(
            &self.vocab,
            (new_num_nodes * 64).clamp(1 << 12, 1 << 22),
            0.75,
        );
        self.input.grow_uniform(new_num_nodes, seed);
        self.output.grow_zeros(new_num_nodes);
        self.num_nodes = new_num_nodes;
    }

    /// Reads node `v`'s input embedding into a fresh vector.
    pub fn input_row(&self, v: u32) -> Vec<f32> {
        let mut buf = vec![0.0; self.input.dim()];
        self.input.read_row(v as usize, &mut buf);
        buf
    }

    /// Overwrites node `v`'s input embedding (cold-start initialization).
    pub fn set_input_row(&self, v: u32, values: &[f32]) {
        self.input.write_row(v as usize, values);
    }
}

impl Word2VecTrainer {
    /// Runs a full training pass over `walks` and returns the reusable online
    /// session alongside the usual stats — the entry point of streaming
    /// pipelines that follow up with [`Word2VecTrainer::train_incremental`].
    pub fn train_online(
        &self,
        walks: &[Vec<u32>],
        num_nodes: usize,
    ) -> (OnlineWord2Vec, TrainStats) {
        let cfg = self.config();
        let vocab = Vocabulary::from_walks(num_nodes, walks.iter().map(|w| w.as_slice()));
        let table =
            UnigramTable::with_params(&vocab, (num_nodes * 64).clamp(1 << 12, 1 << 22), 0.75);
        let sigmoid = SigmoidTable::default();
        let input = EmbeddingMatrix::uniform(num_nodes, cfg.dim, cfg.seed);
        let output = EmbeddingMatrix::zeros(num_nodes, cfg.dim);

        let stats = run_sgd_pass(
            cfg,
            walks,
            &vocab,
            &table,
            &sigmoid,
            &input,
            &output,
            cfg.epochs,
            AlphaSchedule::LinearDecay,
        );
        (
            OnlineWord2Vec {
                num_nodes,
                vocab,
                table,
                sigmoid,
                input,
                output,
                incremental_passes: 0,
            },
            stats,
        )
    }

    /// Runs one negative-sampling SGD pass over only `walks` (the regenerated
    /// walks of a refresh round), updating the session's matrices in place.
    ///
    /// This replaces the full-corpus retrain of the streaming pipeline: cost
    /// is proportional to the refreshed tokens, not the corpus size.
    pub fn train_incremental(
        &self,
        session: &mut OnlineWord2Vec,
        walks: &[Vec<u32>],
    ) -> TrainStats {
        if walks.is_empty() {
            return TrainStats::default();
        }
        let cfg = self.config();
        let alpha = cfg.initial_alpha * INCREMENTAL_ALPHA_FACTOR;
        let stats = run_sgd_pass(
            cfg,
            walks,
            &session.vocab,
            &session.table,
            &session.sigmoid,
            &session.input,
            &session.output,
            1,
            AlphaSchedule::Constant(alpha),
        );
        session.incremental_passes += 1;
        stats
    }

    /// Runs one boosted constant-alpha SGD pass over `walks` — the cold-start
    /// burn-in for freshly arrived nodes.
    ///
    /// A new node's neighbour-average init places it roughly right, but its
    /// output row is zero and its context hasn't co-trained; `boost > 1`
    /// multiplies the incremental learning rate so the first few passes over
    /// walks touching the arrival converge it quickly without a full retrain.
    pub fn train_burn_in(
        &self,
        session: &mut OnlineWord2Vec,
        walks: &[Vec<u32>],
        boost: f32,
    ) -> TrainStats {
        if walks.is_empty() {
            return TrainStats::default();
        }
        let cfg = self.config();
        let alpha = cfg.initial_alpha * INCREMENTAL_ALPHA_FACTOR * boost.max(0.0);
        let stats = run_sgd_pass(
            cfg,
            walks,
            &session.vocab,
            &session.table,
            &session.sigmoid,
            &session.input,
            &session.output,
            1,
            AlphaSchedule::Constant(alpha),
        );
        session.incremental_passes += 1;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::Word2VecConfig;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Walks over two disjoint cliques: {0..4} and {5..9}.
    fn cluster_walks(seed: u64, count: usize) -> Vec<Vec<u32>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut walks = Vec::new();
        for _ in 0..count {
            for cluster in 0..2u32 {
                let base = cluster * 5;
                let walk: Vec<u32> = (0..20).map(|_| base + rng.gen_range(0u32..5)).collect();
                walks.push(walk);
            }
        }
        walks
    }

    fn intra_vs_inter(emb: &Embeddings) -> (f32, f32) {
        let mut intra = (0.0, 0);
        let mut inter = (0.0, 0);
        for a in 0..10u32 {
            for b in (a + 1)..10u32 {
                let s = emb.cosine_similarity(a, b);
                if (a < 5) == (b < 5) {
                    intra = (intra.0 + s, intra.1 + 1);
                } else {
                    inter = (inter.0 + s, inter.1 + 1);
                }
            }
        }
        (intra.0 / intra.1 as f32, inter.0 / inter.1 as f32)
    }

    fn test_config() -> Word2VecConfig {
        Word2VecConfig {
            dim: 16,
            window: 4,
            negative: 4,
            epochs: 3,
            num_threads: 2,
            ..Default::default()
        }
    }

    #[test]
    fn online_session_matches_batch_training_quality() {
        let walks = cluster_walks(5, 120);
        let trainer = Word2VecTrainer::new(test_config());
        let (session, stats) = trainer.train_online(&walks, 10);
        assert!(stats.pairs_processed > 0);
        assert_eq!(session.num_nodes(), 10);
        let (intra, inter) = intra_vs_inter(&session.embeddings());
        assert!(intra > inter + 0.2, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn incremental_pass_adapts_to_changed_walks() {
        // Initial corpus: node 4 walks with cluster {0..4}. After the "graph
        // update", its regenerated walks tie it to cluster {5..9}; one
        // incremental pass must pull it across without a full retrain.
        let walks = cluster_walks(7, 150);
        let trainer = Word2VecTrainer::new(test_config());
        let (mut session, _) = trainer.train_online(&walks, 10);
        let before = session.embeddings();
        let sim_before: f32 = (5..10).map(|v| before.cosine_similarity(4, v)).sum();

        let mut rng = SmallRng::seed_from_u64(23);
        let moved: Vec<Vec<u32>> = (0..80)
            .map(|_| {
                (0..20)
                    .map(|_| {
                        if rng.gen_bool(0.5) {
                            4u32
                        } else {
                            5 + rng.gen_range(0u32..5)
                        }
                    })
                    .collect()
            })
            .collect();
        for _ in 0..3 {
            let stats = trainer.train_incremental(&mut session, &moved);
            assert!(stats.pairs_processed > 0);
        }
        assert_eq!(session.incremental_passes(), 3);

        let after = session.embeddings();
        let sim_after: f32 = (5..10).map(|v| after.cosine_similarity(4, v)).sum();
        assert!(
            sim_after > sim_before + 0.5,
            "node 4 did not move toward its new cluster: {sim_before} -> {sim_after}"
        );
        // Untouched structure survives: cluster {0..3} stays coherent.
        let mut intact = 0.0;
        for a in 0..4u32 {
            for b in (a + 1)..4u32 {
                intact += after.cosine_similarity(a, b);
            }
        }
        assert!(
            intact / 6.0 > 0.3,
            "unaffected cluster washed out: {intact}"
        );
    }

    #[test]
    fn grow_then_burn_in_integrates_an_arrival() {
        // Train on 10 nodes, then node 10 arrives attached to cluster {5..9}.
        let walks = cluster_walks(9, 120);
        let trainer = Word2VecTrainer::new(test_config());
        let (mut session, _) = trainer.train_online(&walks, 10);
        let frozen: Vec<f32> = session.input_row(3);

        session.grow(11, 77);
        assert_eq!(session.num_nodes(), 11);
        // Cold start: neighbour average of its cluster.
        let dim = session.dim();
        let mut avg = vec![0.0f32; dim];
        for v in 5..10u32 {
            for (j, x) in session.input_row(v).into_iter().enumerate() {
                avg[j] += x / 5.0;
            }
        }
        session.set_input_row(10, &avg);

        let mut rng = SmallRng::seed_from_u64(31);
        let arrival_walks: Vec<Vec<u32>> = (0..60)
            .map(|_| {
                (0..20)
                    .map(|_| {
                        if rng.gen_bool(0.4) {
                            10u32
                        } else {
                            5 + rng.gen_range(0u32..5)
                        }
                    })
                    .collect()
            })
            .collect();
        let stats = trainer.train_burn_in(&mut session, &arrival_walks, 2.0);
        assert!(stats.pairs_processed > 0);
        assert_eq!(session.incremental_passes(), 1);

        let emb = session.embeddings();
        let toward: f32 = (5..10).map(|v| emb.cosine_similarity(10, v)).sum::<f32>() / 5.0;
        let away: f32 = (0..5).map(|v| emb.cosine_similarity(10, v)).sum::<f32>() / 5.0;
        assert!(
            toward > away + 0.2,
            "arrival did not join its cluster: toward {toward} vs away {away}"
        );
        // A node in the untouched cluster kept its exact parameters.
        assert_eq!(session.input_row(3), frozen);
    }

    #[test]
    fn incremental_on_empty_walks_is_a_noop() {
        let walks = cluster_walks(3, 40);
        let trainer = Word2VecTrainer::new(test_config());
        let (mut session, _) = trainer.train_online(&walks, 10);
        let before = session.embeddings().as_flat().to_vec();
        let stats = trainer.train_incremental(&mut session, &[]);
        assert_eq!(stats.pairs_processed, 0);
        assert_eq!(session.incremental_passes(), 0);
        assert_eq!(session.embeddings().as_flat(), before.as_slice());
    }
}
