//! Saving and loading embeddings in the word2vec text format
//! (`<num_nodes> <dim>` header followed by one `node v1 v2 …` line per node),
//! the format produced by the reference DeepWalk/node2vec implementations and
//! consumed by their evaluation scripts.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::Embeddings;

/// Errors produced when reading or writing an embedding file.
///
/// Both variants carry the file path (when the embeddings came from or went
/// to one) so `Display` names the offending file.
#[derive(Debug)]
pub enum EmbeddingIoError {
    /// Underlying I/O failure.
    Io {
        /// The file involved, if any.
        path: Option<PathBuf>,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The input is not valid word2vec text format.
    Parse {
        /// The file involved, if any.
        path: Option<PathBuf>,
        /// What was malformed.
        msg: String,
    },
}

impl EmbeddingIoError {
    fn parse(msg: impl Into<String>) -> Self {
        EmbeddingIoError::Parse {
            path: None,
            msg: msg.into(),
        }
    }

    /// Attaches a file path to an error that was produced without one.
    pub fn with_path<P: AsRef<Path>>(self, p: P) -> Self {
        let p = p.as_ref().to_path_buf();
        match self {
            EmbeddingIoError::Io { source, .. } => EmbeddingIoError::Io {
                path: Some(p),
                source,
            },
            EmbeddingIoError::Parse { msg, .. } => EmbeddingIoError::Parse { path: Some(p), msg },
        }
    }
}

impl std::fmt::Display for EmbeddingIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmbeddingIoError::Io { path, source } => match path {
                Some(p) => write!(f, "cannot access embeddings file {}: {source}", p.display()),
                None => write!(f, "i/o error: {source}"),
            },
            EmbeddingIoError::Parse { path, msg } => match path {
                Some(p) => write!(f, "cannot parse embeddings file {}: {msg}", p.display()),
                None => write!(f, "parse error: {msg}"),
            },
        }
    }
}

impl std::error::Error for EmbeddingIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EmbeddingIoError::Io { source, .. } => Some(source),
            EmbeddingIoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for EmbeddingIoError {
    fn from(e: std::io::Error) -> Self {
        EmbeddingIoError::Io {
            path: None,
            source: e,
        }
    }
}

/// Writes embeddings in word2vec text format.
pub fn write_word2vec_text<W: Write>(emb: &Embeddings, writer: W) -> Result<(), EmbeddingIoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "{} {}", emb.num_nodes(), emb.dim())?;
    for v in 0..emb.num_nodes() as u32 {
        write!(w, "{v}")?;
        for x in emb.vector(v) {
            write!(w, " {x}")?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads embeddings from word2vec text format. Node ids must be integers in
/// `0..num_nodes`; missing nodes keep zero vectors.
pub fn read_word2vec_text<R: Read>(reader: R) -> Result<Embeddings, EmbeddingIoError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| EmbeddingIoError::parse("empty file"))??;
    let mut parts = header.split_whitespace();
    let num_nodes: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| EmbeddingIoError::parse("bad node count in header"))?;
    let dim: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| EmbeddingIoError::parse("bad dimension in header"))?;
    if dim == 0 {
        return Err(EmbeddingIoError::parse("dimension must be positive"));
    }
    let mut flat = vec![0.0f32; num_nodes * dim];
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        let node: usize = toks.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
            EmbeddingIoError::parse(format!("bad node id at line {}", lineno + 2))
        })?;
        if node >= num_nodes {
            return Err(EmbeddingIoError::parse(format!(
                "node id {node} out of range (header says {num_nodes})"
            )));
        }
        for j in 0..dim {
            let val: f32 = toks.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                EmbeddingIoError::parse(format!("missing component {j} at line {}", lineno + 2))
            })?;
            flat[node * dim + j] = val;
        }
    }
    Ok(Embeddings::from_flat(dim, flat))
}

/// Writes embeddings to a file in word2vec text format; errors carry the
/// path for context.
pub fn save_embeddings<P: AsRef<Path>>(emb: &Embeddings, path: P) -> Result<(), EmbeddingIoError> {
    let path = path.as_ref();
    let file = std::fs::File::create(path)
        .map_err(EmbeddingIoError::from)
        .map_err(|e| e.with_path(path))?;
    write_word2vec_text(emb, file).map_err(|e| e.with_path(path))
}

/// Reads embeddings from a file in word2vec text format; errors carry the
/// path for context.
pub fn load_embeddings<P: AsRef<Path>>(path: P) -> Result<Embeddings, EmbeddingIoError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)
        .map_err(EmbeddingIoError::from)
        .map_err(|e| e.with_path(path))?;
    read_word2vec_text(file).map_err(|e| e.with_path(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Embeddings {
        Embeddings::from_flat(3, vec![1.0, 2.0, 3.0, -0.5, 0.25, 0.0, 9.0, 8.0, 7.0])
    }

    #[test]
    fn text_roundtrip_preserves_vectors() {
        let emb = sample();
        let mut buf = Vec::new();
        write_word2vec_text(&emb, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("3 3\n"));
        let back = read_word2vec_text(buf.as_slice()).unwrap();
        assert_eq!(back.num_nodes(), 3);
        assert_eq!(back.dim(), 3);
        for v in 0..3u32 {
            for (a, b) in emb.vector(v).iter().zip(back.vector(v)) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let emb = sample();
        let dir = std::env::temp_dir().join("uninet_embedding_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("emb.txt");
        save_embeddings(&emb, &path).unwrap();
        let back = load_embeddings(&path).unwrap();
        assert_eq!(back.num_nodes(), emb.num_nodes());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_nodes_default_to_zero() {
        let text = "4 2\n0 1.0 2.0\n3 5.0 6.0\n";
        let emb = read_word2vec_text(text.as_bytes()).unwrap();
        assert_eq!(emb.vector(0), &[1.0, 2.0]);
        assert_eq!(emb.vector(1), &[0.0, 0.0]);
        assert_eq!(emb.vector(3), &[5.0, 6.0]);
    }

    #[test]
    fn file_errors_name_the_path() {
        let err = load_embeddings("/nonexistent/emb.txt").unwrap_err();
        assert!(matches!(err, EmbeddingIoError::Io { path: Some(_), .. }));
        assert!(format!("{err}").contains("/nonexistent/emb.txt"));

        let dir = std::env::temp_dir().join("uninet_embedding_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.txt");
        std::fs::write(&path, "not a header\n").unwrap();
        let err = load_embeddings(&path).unwrap_err();
        assert!(matches!(err, EmbeddingIoError::Parse { path: Some(_), .. }));
        assert!(format!("{err}").contains("broken.txt"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(read_word2vec_text("".as_bytes()).is_err());
        assert!(read_word2vec_text("abc def\n".as_bytes()).is_err());
        assert!(read_word2vec_text("2 0\n".as_bytes()).is_err());
        assert!(read_word2vec_text("2 2\n5 1.0 2.0\n".as_bytes()).is_err());
        assert!(read_word2vec_text("2 2\n0 1.0\n".as_bytes()).is_err());
        assert!(read_word2vec_text("2 2\n0 1.0 x\n".as_bytes()).is_err());
    }
}
