//! Continuous bag-of-words (CBOW) with negative sampling — the second
//! word2vec objective mentioned in the paper's pipeline description.

use rand::Rng;

use crate::matrix::EmbeddingMatrix;
use crate::negative::UnigramTable;
use crate::sigmoid::SigmoidTable;

/// One CBOW update: the averaged context window predicts the center node.
///
/// Returns the negative log-likelihood contribution of the update.
#[allow(clippy::too_many_arguments)]
pub fn train_window<R: Rng>(
    input: &EmbeddingMatrix,
    output: &EmbeddingMatrix,
    center: u32,
    context: &[u32],
    negative: usize,
    alpha: f32,
    sigmoid: &SigmoidTable,
    table: &UnigramTable,
    rng: &mut R,
) -> f32 {
    if context.is_empty() {
        return 0.0;
    }
    let dim = input.dim();
    // Average of the context vectors.
    let mut hidden = vec![0.0f32; dim];
    let mut row = vec![0.0f32; dim];
    for &c in context {
        input.read_row(c as usize, &mut row);
        for j in 0..dim {
            hidden[j] += row[j];
        }
    }
    let inv = 1.0 / context.len() as f32;
    for h in hidden.iter_mut() {
        *h *= inv;
    }

    let mut grad_hidden = vec![0.0f32; dim];
    let mut loss = 0.0f32;
    for i in 0..=negative {
        let (target, label) = if i == 0 {
            (center, 1.0f32)
        } else {
            (table.sample_excluding(center, rng), 0.0f32)
        };
        let score = output.dot_row(target as usize, &hidden);
        let pred = sigmoid.sigmoid(score);
        let g = (label - pred) * alpha;
        loss += if label > 0.5 {
            -(pred.max(1e-7)).ln()
        } else {
            -((1.0 - pred).max(1e-7)).ln()
        };
        let mut out_row = vec![0.0f32; dim];
        output.read_row(target as usize, &mut out_row);
        for j in 0..dim {
            grad_hidden[j] += g * out_row[j];
            out_row[j] = g * hidden[j];
        }
        output.add_row(target as usize, &out_row);
    }
    // Propagate the averaged gradient back to every context vector.
    for &c in context {
        input.add_row(c as usize, &grad_hidden);
    }
    loss
}

/// Trains CBOW over one walk with a dynamic window, mirroring
/// [`crate::skipgram::train_walk`].
#[allow(clippy::too_many_arguments)]
pub fn train_walk<R: Rng>(
    input: &EmbeddingMatrix,
    output: &EmbeddingMatrix,
    walk: &[u32],
    window: usize,
    negative: usize,
    alpha: f32,
    sigmoid: &SigmoidTable,
    table: &UnigramTable,
    rng: &mut R,
) -> f32 {
    let mut loss = 0.0f32;
    let mut context = Vec::with_capacity(2 * window);
    for (pos, &center) in walk.iter().enumerate() {
        let b = rng.gen_range(0..window.max(1));
        let lo = pos.saturating_sub(window - b);
        let hi = (pos + window - b + 1).min(walk.len());
        context.clear();
        for (ctx_pos, &ctx) in walk.iter().enumerate().take(hi).skip(lo) {
            if ctx_pos != pos {
                context.push(ctx);
            }
        }
        loss += train_window(
            input, output, center, &context, negative, alpha, sigmoid, table, rng,
        );
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocabulary;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup(
        n: usize,
        dim: usize,
    ) -> (EmbeddingMatrix, EmbeddingMatrix, SigmoidTable, UnigramTable) {
        let input = EmbeddingMatrix::uniform(n, dim, 11);
        let output = EmbeddingMatrix::zeros(n, dim);
        let vocab = Vocabulary::from_counts(vec![5; n]);
        let table = UnigramTable::with_params(&vocab, 10_000, 0.75);
        (input, output, SigmoidTable::default(), table)
    }

    #[test]
    fn empty_context_is_a_noop() {
        let (input, output, sigmoid, table) = setup(5, 4);
        let mut rng = SmallRng::seed_from_u64(1);
        let loss = train_window(&input, &output, 0, &[], 3, 0.05, &sigmoid, &table, &mut rng);
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn repeated_training_raises_positive_score() {
        let (input, output, sigmoid, table) = setup(10, 8);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..300 {
            train_window(
                &input,
                &output,
                3,
                &[1, 2],
                4,
                0.05,
                &sigmoid,
                &table,
                &mut rng,
            );
        }
        let mut hidden = vec![0.0; 8];
        let mut row = vec![0.0; 8];
        for &c in &[1u32, 2] {
            input.read_row(c as usize, &mut row);
            for j in 0..8 {
                hidden[j] += row[j] / 2.0;
            }
        }
        assert!(output.dot_row(3, &hidden) > 1.0);
    }

    #[test]
    fn walk_loss_decreases() {
        let (input, output, sigmoid, table) = setup(12, 8);
        let mut rng = SmallRng::seed_from_u64(3);
        let walk: Vec<u32> = vec![0, 1, 2, 3, 0, 1, 2, 3];
        let mut first = 0.0;
        let mut last = 0.0;
        for epoch in 0..30 {
            let loss = train_walk(
                &input, &output, &walk, 2, 4, 0.05, &sigmoid, &table, &mut rng,
            );
            if epoch == 0 {
                first = loss;
            }
            last = loss;
        }
        assert!(last < first, "{first} -> {last}");
    }
}
