//! Unigram table for negative sampling.
//!
//! Negative examples are drawn from the unigram distribution raised to the
//! 3/4 power, exactly as in the original word2vec and in the DeepWalk /
//! node2vec reference trainers.

use rand::Rng;

use crate::vocab::Vocabulary;

/// Default number of slots in the table (the original uses 1e8; scaled down
/// here because our vocabularies are node sets, not natural-language corpora).
pub const DEFAULT_TABLE_SIZE: usize = 1 << 20;

/// A sampling table over node ids following `count(v)^0.75`.
#[derive(Debug, Clone)]
pub struct UnigramTable {
    table: Vec<u32>,
}

impl UnigramTable {
    /// Builds the table from a vocabulary with the default size and 0.75 power.
    pub fn new(vocab: &Vocabulary) -> Self {
        Self::with_params(vocab, DEFAULT_TABLE_SIZE, 0.75)
    }

    /// Builds the table with explicit size and distortion power.
    pub fn with_params(vocab: &Vocabulary, table_size: usize, power: f64) -> Self {
        assert!(table_size > 0, "table size must be positive");
        let n = vocab.len();
        assert!(n > 0, "vocabulary must not be empty");
        let mut weights: Vec<f64> = (0..n as u32)
            .map(|v| (vocab.count(v) as f64).powf(power))
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            // Degenerate corpus: fall back to the uniform distribution.
            weights = vec![1.0; n];
        }
        let total: f64 = weights.iter().sum();
        let mut table = Vec::with_capacity(table_size);
        // Only outcomes with positive weight may receive slots: start at the
        // first positive weight and never advance past the last one.
        let first_positive = weights.iter().position(|&w| w > 0.0).unwrap_or(0);
        let last_positive = weights.iter().rposition(|&w| w > 0.0).unwrap_or(n - 1);
        let mut v = first_positive;
        let mut threshold = weights[v] / total;
        for i in 0..table_size {
            table.push(v as u32);
            let cumulative = (i + 1) as f64 / table_size as f64;
            while cumulative > threshold && v < last_positive {
                v += 1;
                threshold += weights[v] / total;
            }
        }
        UnigramTable { table }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when the table has no slots (never after construction).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Draws one negative sample.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        self.table[rng.gen_range(0..self.table.len())]
    }

    /// Draws a negative sample different from `positive` (retries a few times,
    /// then returns whatever came up — matching word2vec.c's behaviour).
    #[inline]
    pub fn sample_excluding<R: Rng>(&self, positive: u32, rng: &mut R) -> u32 {
        for _ in 0..32 {
            let s = self.sample(rng);
            if s != positive {
                return s;
            }
        }
        self.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn frequent_nodes_are_sampled_more() {
        let vocab = Vocabulary::from_counts(vec![100, 10, 1, 0]);
        let table = UnigramTable::with_params(&vocab, 100_000, 0.75);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..100_000 {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        assert_eq!(counts[3], 0);
        // power < 1 compresses the ratio: count0/count1 should be < 10.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!(ratio < 10.0 && ratio > 2.0, "ratio = {ratio}");
    }

    #[test]
    fn all_zero_counts_fall_back_to_uniform() {
        let vocab = Vocabulary::from_counts(vec![0, 0, 0]);
        let table = UnigramTable::with_params(&vocab, 30_000, 0.75);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.1);
        }
    }

    #[test]
    fn sample_excluding_avoids_positive() {
        let vocab = Vocabulary::from_counts(vec![5, 5]);
        let table = UnigramTable::with_params(&vocab, 1000, 1.0);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            assert_ne!(table.sample_excluding(0, &mut rng), 0);
        }
    }

    #[test]
    fn default_table_size() {
        let vocab = Vocabulary::from_counts(vec![1, 2, 3]);
        let table = UnigramTable::new(&vocab);
        assert_eq!(table.len(), DEFAULT_TABLE_SIZE);
        assert!(!table.is_empty());
    }

    #[test]
    #[should_panic]
    fn empty_vocab_panics() {
        let vocab = Vocabulary::from_counts(vec![]);
        let _ = UnigramTable::new(&vocab);
    }
}
