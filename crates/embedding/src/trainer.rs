//! The multi-threaded word2vec training driver.
//!
//! Walks are sharded across threads; every thread runs skip-gram or CBOW
//! updates against the shared [`EmbeddingMatrix`] (Hogwild). The learning rate
//! decays linearly with training progress, as in word2vec.c.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::matrix::EmbeddingMatrix;
use crate::negative::UnigramTable;
use crate::sigmoid::SigmoidTable;
use crate::vocab::Vocabulary;
use crate::{cbow, skipgram, Embeddings};

/// Which word2vec objective to optimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainingMode {
    /// Skip-gram with negative sampling (the default for all five NRL models).
    SkipGram,
    /// Continuous bag-of-words with negative sampling.
    Cbow,
}

/// Word2vec hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct Word2VecConfig {
    /// Embedding dimensionality (paper experiments use 128).
    pub dim: usize,
    /// Context window size (default 10, as in DeepWalk/node2vec).
    pub window: usize,
    /// Number of negative samples per positive pair.
    pub negative: usize,
    /// Number of passes over the corpus.
    pub epochs: usize,
    /// Initial learning rate (decays linearly to 1e-4 of itself).
    pub initial_alpha: f32,
    /// Sub-sampling threshold for frequent nodes (0 disables sub-sampling).
    pub subsample: f64,
    /// Number of training threads.
    pub num_threads: usize,
    /// Training objective.
    pub mode: TrainingMode,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Word2VecConfig {
    fn default() -> Self {
        Word2VecConfig {
            dim: 128,
            window: 10,
            negative: 5,
            epochs: 1,
            initial_alpha: 0.025,
            subsample: 0.0,
            num_threads: 16,
            mode: TrainingMode::SkipGram,
            seed: 42,
        }
    }
}

/// Summary statistics of a training run.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrainStats {
    /// Total (center, context) pairs processed.
    pub pairs_processed: u64,
    /// Mean negative log-likelihood per pair in the final epoch.
    pub final_loss: f64,
}

/// The training driver.
#[derive(Debug, Clone, Copy)]
pub struct Word2VecTrainer {
    config: Word2VecConfig,
}

impl Word2VecTrainer {
    /// Creates a trainer.
    pub fn new(config: Word2VecConfig) -> Self {
        assert!(config.dim > 0 && config.window > 0 && config.epochs > 0);
        Word2VecTrainer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &Word2VecConfig {
        &self.config
    }

    /// Trains embeddings for `num_nodes` nodes from the walk corpus.
    ///
    /// `walks` is any slice of node sequences (the output of the walk engine).
    /// One-shot form of [`Word2VecTrainer::train_online`]: identical setup and
    /// SGD schedule, with the session state discarded.
    pub fn train(&self, walks: &[Vec<u32>], num_nodes: usize) -> (Embeddings, TrainStats) {
        let (session, stats) = self.train_online(walks, num_nodes);
        (session.embeddings(), stats)
    }
}

/// Learning-rate schedule of one [`run_sgd_pass`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum AlphaSchedule {
    /// word2vec.c behaviour: linear decay with global token progress.
    LinearDecay,
    /// A fixed learning rate (incremental fine-tuning passes).
    Constant(f32),
}

/// The multi-threaded Hogwild SGD loop shared by the batch trainer and the
/// incremental/online trainer: `epochs` passes of `cfg.mode` updates over
/// `walks` against the shared `input`/`output` matrices.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sgd_pass(
    cfg: &Word2VecConfig,
    walks: &[Vec<u32>],
    vocab: &Vocabulary,
    table: &UnigramTable,
    sigmoid: &SigmoidTable,
    input: &EmbeddingMatrix,
    output: &EmbeddingMatrix,
    epochs: usize,
    schedule: AlphaSchedule,
) -> TrainStats {
    let total_tokens = vocab.total_tokens().max(1) * epochs.max(1) as u64;
    let progress = AtomicU64::new(0);
    let pairs = AtomicU64::new(0);
    let loss_bits = AtomicU64::new(0f64.to_bits());

    let num_threads = cfg.num_threads.max(1).min(walks.len().max(1));
    let chunk = walks.len().div_ceil(num_threads.max(1)).max(1);

    crossbeam::thread::scope(|scope| {
        for (tid, shard) in walks.chunks(chunk).enumerate() {
            let progress = &progress;
            let pairs = &pairs;
            let loss_bits = &loss_bits;
            scope.spawn(move |_| {
                let mut rng = SmallRng::seed_from_u64(
                    cfg.seed ^ (tid as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15),
                );
                let mut sentence: Vec<u32> = Vec::new();
                let mut local_loss = 0.0f64;
                let mut local_pairs = 0u64;
                for epoch in 0..epochs {
                    for walk in shard {
                        // Sub-sample frequent nodes.
                        sentence.clear();
                        for &v in walk {
                            if cfg.subsample > 0.0 {
                                let keep = vocab.keep_probability(v, cfg.subsample);
                                if rng.gen::<f64>() > keep {
                                    continue;
                                }
                            }
                            sentence.push(v);
                        }
                        if sentence.len() < 2 {
                            progress.fetch_add(walk.len() as u64, Ordering::Relaxed);
                            continue;
                        }
                        let alpha = match schedule {
                            AlphaSchedule::Constant(a) => a,
                            AlphaSchedule::LinearDecay => {
                                // Linear decay based on global progress.
                                let done = progress.load(Ordering::Relaxed) as f64;
                                let frac = (done / total_tokens as f64).min(1.0);
                                (cfg.initial_alpha as f64 * (1.0 - frac))
                                    .max(cfg.initial_alpha as f64 * 1e-4)
                                    as f32
                            }
                        };
                        let loss = match cfg.mode {
                            TrainingMode::SkipGram => skipgram::train_walk(
                                input,
                                output,
                                &sentence,
                                cfg.window,
                                cfg.negative,
                                alpha,
                                sigmoid,
                                table,
                                &mut rng,
                            ),
                            TrainingMode::Cbow => cbow::train_walk(
                                input,
                                output,
                                &sentence,
                                cfg.window,
                                cfg.negative,
                                alpha,
                                sigmoid,
                                table,
                                &mut rng,
                            ),
                        };
                        if epoch + 1 == epochs {
                            local_loss += loss as f64;
                            local_pairs += sentence.len() as u64;
                        }
                        progress.fetch_add(walk.len() as u64, Ordering::Relaxed);
                    }
                }
                pairs.fetch_add(local_pairs, Ordering::Relaxed);
                // Accumulate the loss with a CAS loop over f64 bits.
                let mut current = loss_bits.load(Ordering::Relaxed);
                loop {
                    let new = (f64::from_bits(current) + local_loss).to_bits();
                    match loss_bits.compare_exchange(
                        current,
                        new,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(actual) => current = actual,
                    }
                }
            });
        }
    })
    .expect("training thread panicked");

    let total_pairs = pairs.load(Ordering::Relaxed);
    TrainStats {
        pairs_processed: total_pairs,
        final_loss: if total_pairs == 0 {
            0.0
        } else {
            f64::from_bits(loss_bits.load(Ordering::Relaxed)) / total_pairs as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walks over two disjoint cliques: {0..4} and {5..9}.
    fn two_cluster_walks() -> Vec<Vec<u32>> {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut walks = Vec::new();
        for _ in 0..120 {
            for cluster in 0..2u32 {
                let base = cluster * 5;
                let walk: Vec<u32> = (0..20).map(|_| base + rng.gen_range(0u32..5)).collect();
                walks.push(walk);
            }
        }
        walks
    }

    fn intra_vs_inter(emb: &Embeddings) -> (f32, f32) {
        let mut intra = 0.0;
        let mut intra_n = 0;
        let mut inter = 0.0;
        let mut inter_n = 0;
        for a in 0..10u32 {
            for b in (a + 1)..10u32 {
                let s = emb.cosine_similarity(a, b);
                if (a < 5) == (b < 5) {
                    intra += s;
                    intra_n += 1;
                } else {
                    inter += s;
                    inter_n += 1;
                }
            }
        }
        (intra / intra_n as f32, inter / inter_n as f32)
    }

    #[test]
    fn skipgram_separates_clusters() {
        let cfg = Word2VecConfig {
            dim: 16,
            window: 4,
            negative: 4,
            epochs: 3,
            num_threads: 2,
            ..Default::default()
        };
        let (emb, stats) = Word2VecTrainer::new(cfg).train(&two_cluster_walks(), 10);
        assert_eq!(emb.num_nodes(), 10);
        assert_eq!(emb.dim(), 16);
        assert!(stats.pairs_processed > 0);
        let (intra, inter) = intra_vs_inter(&emb);
        assert!(intra > inter + 0.2, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn cbow_separates_clusters() {
        let cfg = Word2VecConfig {
            dim: 16,
            window: 4,
            negative: 4,
            epochs: 3,
            num_threads: 2,
            mode: TrainingMode::Cbow,
            ..Default::default()
        };
        let (emb, _) = Word2VecTrainer::new(cfg).train(&two_cluster_walks(), 10);
        let (intra, inter) = intra_vs_inter(&emb);
        assert!(intra > inter + 0.15, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn subsampling_and_single_thread_work() {
        let cfg = Word2VecConfig {
            dim: 8,
            window: 2,
            negative: 2,
            epochs: 1,
            num_threads: 1,
            subsample: 1e-2,
            ..Default::default()
        };
        let (emb, stats) = Word2VecTrainer::new(cfg).train(&two_cluster_walks(), 10);
        assert_eq!(emb.num_nodes(), 10);
        assert!(stats.final_loss >= 0.0);
    }

    #[test]
    fn empty_corpus_yields_initial_embeddings() {
        let cfg = Word2VecConfig {
            dim: 4,
            num_threads: 2,
            ..Default::default()
        };
        let (emb, stats) = Word2VecTrainer::new(cfg).train(&[], 5);
        assert_eq!(emb.num_nodes(), 5);
        assert_eq!(stats.pairs_processed, 0);
    }

    #[test]
    #[should_panic]
    fn invalid_config_panics() {
        let cfg = Word2VecConfig {
            dim: 0,
            ..Default::default()
        };
        let _ = Word2VecTrainer::new(cfg);
    }
}
