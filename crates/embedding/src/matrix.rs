//! Shared embedding matrices for Hogwild-style parallel SGD.
//!
//! The original word2vec (and UniNet's trainer) lets all threads update the
//! same parameter matrix without locks; conflicting updates are rare and
//! benign. Rust forbids plain data races, so the matrix stores `f32` bits in
//! relaxed `AtomicU32` cells: updates remain lock-free and wait-free while the
//! program stays free of undefined behaviour.

use std::sync::atomic::{AtomicU32, Ordering};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A `rows x dim` matrix of `f32` parameters with lock-free concurrent access.
pub struct EmbeddingMatrix {
    rows: usize,
    dim: usize,
    data: Vec<AtomicU32>,
}

impl EmbeddingMatrix {
    /// Creates a zero-initialized matrix.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        let data = (0..rows * dim)
            .map(|_| AtomicU32::new(0f32.to_bits()))
            .collect();
        EmbeddingMatrix { rows, dim, data }
    }

    /// Creates a matrix initialized uniformly in `(-0.5/dim, 0.5/dim)`, the
    /// word2vec input-matrix initialization.
    pub fn uniform(rows: usize, dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        let mut rng = SmallRng::seed_from_u64(seed);
        let scale = 0.5 / dim as f32;
        let data = (0..rows * dim)
            .map(|_| AtomicU32::new(rng.gen_range(-scale..scale).to_bits()))
            .collect();
        EmbeddingMatrix { rows, dim, data }
    }

    /// Number of rows (nodes).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Dimensionality of each row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Reads one cell.
    #[inline]
    pub fn get(&self, row: usize, j: usize) -> f32 {
        debug_assert!(row < self.rows && j < self.dim);
        f32::from_bits(self.data[row * self.dim + j].load(Ordering::Relaxed))
    }

    /// Writes one cell.
    #[inline]
    pub fn set(&self, row: usize, j: usize, value: f32) {
        debug_assert!(row < self.rows && j < self.dim);
        self.data[row * self.dim + j].store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` to one cell (read-modify-write, last writer wins —
    /// the Hogwild contract).
    #[inline]
    pub fn add(&self, row: usize, j: usize, delta: f32) {
        let idx = row * self.dim + j;
        let cell = &self.data[idx];
        let current = f32::from_bits(cell.load(Ordering::Relaxed));
        cell.store((current + delta).to_bits(), Ordering::Relaxed);
    }

    /// Copies row `row` into `buf` (length `dim`).
    #[inline]
    pub fn read_row(&self, row: usize, buf: &mut [f32]) {
        debug_assert_eq!(buf.len(), self.dim);
        let base = row * self.dim;
        for (j, b) in buf.iter_mut().enumerate() {
            *b = f32::from_bits(self.data[base + j].load(Ordering::Relaxed));
        }
    }

    /// Adds the vector `delta` (length `dim`) onto row `row`.
    #[inline]
    pub fn add_row(&self, row: usize, delta: &[f32]) {
        debug_assert_eq!(delta.len(), self.dim);
        let base = row * self.dim;
        for (j, &d) in delta.iter().enumerate() {
            let cell = &self.data[base + j];
            let current = f32::from_bits(cell.load(Ordering::Relaxed));
            cell.store((current + d).to_bits(), Ordering::Relaxed);
        }
    }

    /// Dot product between row `row` and `other` (length `dim`).
    ///
    /// Hogwild rows live in relaxed atomics, so the row is first snapshotted
    /// lane-by-lane into a per-thread buffer (cheap, cache-resident) and then
    /// scored through the SIMD-dispatched [`kernels::dot`](crate::kernels::dot)
    /// — the same kernel every query-plane distance goes through. Racing
    /// writers can still tear *across* lanes, exactly as the scalar loop
    /// could; Hogwild tolerates that by design.
    #[inline]
    pub fn dot_row(&self, row: usize, other: &[f32]) -> f32 {
        debug_assert_eq!(other.len(), self.dim);
        thread_local! {
            static ROW_BUF: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        ROW_BUF.with(|buf| {
            let mut buf = buf.borrow_mut();
            buf.clear();
            let base = row * self.dim;
            buf.extend(
                self.data[base..base + self.dim]
                    .iter()
                    .map(|cell| f32::from_bits(cell.load(Ordering::Relaxed))),
            );
            crate::kernels::dot(&buf, other)
        })
    }

    /// Grows the matrix to `new_rows`, zero-initializing the added rows.
    ///
    /// Shrinking is a no-op: rows are never dropped so retired ids keep their
    /// (unreachable) parameters until a full rebuild. Requires `&mut self`, so
    /// growth cannot race concurrent Hogwild writers by construction.
    pub fn grow_zeros(&mut self, new_rows: usize) {
        if new_rows <= self.rows {
            return;
        }
        self.data.extend(
            (self.rows * self.dim..new_rows * self.dim).map(|_| AtomicU32::new(0f32.to_bits())),
        );
        self.rows = new_rows;
    }

    /// Grows the matrix to `new_rows`, initializing the added rows uniformly
    /// in `(-0.5/dim, 0.5/dim)` — the word2vec input-matrix initialization.
    ///
    /// The fill is seeded per call so arrivals are deterministic given the
    /// stream; shrinking is a no-op as in [`EmbeddingMatrix::grow_zeros`].
    pub fn grow_uniform(&mut self, new_rows: usize, seed: u64) {
        if new_rows <= self.rows {
            return;
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let scale = 0.5 / self.dim as f32;
        self.data.extend(
            (self.rows * self.dim..new_rows * self.dim)
                .map(|_| AtomicU32::new(rng.gen_range(-scale..scale).to_bits())),
        );
        self.rows = new_rows;
    }

    /// Overwrites row `row` with `values` (length `dim`).
    #[inline]
    pub fn write_row(&self, row: usize, values: &[f32]) {
        debug_assert_eq!(values.len(), self.dim);
        let base = row * self.dim;
        for (j, &v) in values.iter().enumerate() {
            self.data[base + j].store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Extracts the whole matrix as a flat row-major `Vec<f32>`.
    pub fn to_flat(&self) -> Vec<f32> {
        self.data
            .iter()
            .map(|c| f32::from_bits(c.load(Ordering::Relaxed)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let m = EmbeddingMatrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.dim(), 4);
        assert_eq!(m.get(2, 3), 0.0);
        m.set(1, 2, 1.5);
        assert_eq!(m.get(1, 2), 1.5);
        m.add(1, 2, 0.5);
        assert_eq!(m.get(1, 2), 2.0);
    }

    #[test]
    fn uniform_init_is_bounded_and_nonzero() {
        let m = EmbeddingMatrix::uniform(10, 16, 7);
        let flat = m.to_flat();
        let bound = 0.5 / 16.0;
        assert!(flat.iter().all(|&x| x.abs() <= bound));
        assert!(flat.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn row_operations() {
        let m = EmbeddingMatrix::zeros(2, 3);
        m.add_row(1, &[1.0, 2.0, 3.0]);
        let mut buf = vec![0.0; 3];
        m.read_row(1, &mut buf);
        assert_eq!(buf, vec![1.0, 2.0, 3.0]);
        assert_eq!(m.dot_row(1, &[1.0, 1.0, 1.0]), 6.0);
        // row 0 untouched
        m.read_row(0, &mut buf);
        assert_eq!(buf, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn concurrent_updates_accumulate_roughly() {
        let m = EmbeddingMatrix::zeros(1, 8);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = &m;
                scope.spawn(move || {
                    for _ in 0..1000 {
                        m.add_row(0, &[1.0; 8]);
                    }
                });
            }
        });
        // Hogwild loses some updates under contention but most must land.
        // On a single hardware thread, preemption can park a thread holding a
        // stale read for arbitrarily long and wipe nearly everything it did
        // not observe, so the lower bound only holds under real parallelism.
        let parallel = std::thread::available_parallelism()
            .map(|p| p.get() > 1)
            .unwrap_or(false);
        let mut buf = vec![0.0; 8];
        m.read_row(0, &mut buf);
        for &x in &buf {
            if parallel {
                assert!(x > 1000.0, "too many lost updates: {x}");
            } else {
                assert!(x > 0.0, "all updates lost: {x}");
            }
            assert!(x <= 4000.0);
        }
    }

    #[test]
    fn deterministic_uniform_seed() {
        let a = EmbeddingMatrix::uniform(4, 4, 3).to_flat();
        let b = EmbeddingMatrix::uniform(4, 4, 3).to_flat();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn zero_dim_panics() {
        let _ = EmbeddingMatrix::zeros(2, 0);
    }

    #[test]
    fn grow_preserves_existing_rows() {
        let mut m = EmbeddingMatrix::uniform(3, 4, 11);
        let before = m.to_flat();
        m.grow_zeros(5);
        assert_eq!(m.rows(), 5);
        assert_eq!(&m.to_flat()[..12], before.as_slice());
        assert!(m.to_flat()[12..].iter().all(|&x| x == 0.0));

        m.grow_uniform(7, 42);
        assert_eq!(m.rows(), 7);
        let flat = m.to_flat();
        assert_eq!(&flat[..12], before.as_slice());
        let bound = 0.5 / 4.0;
        assert!(flat[20..].iter().all(|&x| x.abs() <= bound));
        assert!(flat[20..].iter().any(|&x| x != 0.0));

        // Shrinking is a no-op.
        m.grow_zeros(2);
        assert_eq!(m.rows(), 7);
    }

    #[test]
    fn write_row_overwrites() {
        let m = EmbeddingMatrix::uniform(2, 3, 1);
        m.write_row(1, &[9.0, 8.0, 7.0]);
        let mut buf = vec![0.0; 3];
        m.read_row(1, &mut buf);
        assert_eq!(buf, vec![9.0, 8.0, 7.0]);
    }
}
