//! Int8 scalar quantization of embedding matrices for memory-bandwidth-bound
//! scans.
//!
//! An exact `top_k` over `n` vectors of dimension `d` streams `4·n·d` bytes of
//! f32 through the core; at serving scale the scan is memory-bound, not
//! compute-bound. Quantizing each row to `i8` with one per-row scale cuts the
//! streamed bytes by 4x and lets the kernel layer score candidates with
//! widening integer SIMD ([`crate::kernels::dot_i8`]), at the cost of a small,
//! bounded rounding error. The serving paths use the quantized scores only to
//! *rank* candidates; the top slice is always re-scored in f32 before results
//! leave the query plane, so reported similarities stay exact.
//!
//! # Format
//!
//! Row `v` of the source matrix is stored as `d` bytes `q[v][j] = round(x[v][j]
//! / scale[v])` with `scale[v] = max_j |x[v][j]| / 127` (zero rows get scale 0
//! and all-zero codes). The approximate dot product of rows `a` and `b` is
//! then `dot_i8(q[a], q[b]) · scale[a] · scale[b]`, exact up to the per-lane
//! rounding of ±`scale/2`.
//!
//! ```
//! use uninet_embedding::quant::QuantizedMatrix;
//!
//! let q = QuantizedMatrix::quantize(2, &[3.0, -1.5, 0.0, 0.5]);
//! assert_eq!(q.num_rows(), 2);
//! let approx = q.dot_rows(0, 1);
//! let exact = 3.0 * 0.0 + (-1.5) * 0.5;
//! assert!((approx - exact).abs() < 0.05);
//! ```

use crate::kernels;

/// A row-major `i8` matrix with one dequantization scale per row.
///
/// Immutable after construction; built once per published snapshot (and per
/// HNSW index when quantized traversal is on) and shared by readers.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    dim: usize,
    codes: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes a flat row-major f32 matrix (`flat.len()` must be a multiple
    /// of `dim`).
    pub fn quantize(dim: usize, flat: &[f32]) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(
            flat.len() % dim,
            0,
            "flat vector length must be a multiple of dim"
        );
        let rows = flat.len() / dim;
        let mut codes = Vec::with_capacity(flat.len());
        let mut scales = Vec::with_capacity(rows);
        for row in flat.chunks_exact(dim) {
            let max_abs = row.iter().fold(0.0f32, |m, x| m.max(x.abs()));
            if max_abs == 0.0 || !max_abs.is_finite() {
                // Zero (or degenerate) rows carry no direction; code them as
                // all-zero so every quantized score against them is 0.
                codes.resize(codes.len() + dim, 0);
                scales.push(0.0);
                continue;
            }
            let scale = max_abs / 127.0;
            let inv = 127.0 / max_abs;
            codes.extend(row.iter().map(|&x| (x * inv).round() as i8));
            scales.push(scale);
        }
        QuantizedMatrix { dim, codes, scales }
    }

    /// Row dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of quantized rows.
    pub fn num_rows(&self) -> usize {
        self.scales.len()
    }

    /// The `i8` codes of row `v`.
    #[inline]
    pub fn row(&self, v: u32) -> &[i8] {
        let start = v as usize * self.dim;
        &self.codes[start..start + self.dim]
    }

    /// The dequantization scale of row `v` (0 for zero rows).
    #[inline]
    pub fn scale(&self, v: u32) -> f32 {
        self.scales[v as usize]
    }

    /// Approximate dot product of rows `a` and `b` in the original f32 space.
    #[inline]
    pub fn dot_rows(&self, a: u32, b: u32) -> f32 {
        kernels::dot_i8(self.row(a), self.row(b)) as f32 * self.scale(a) * self.scale(b)
    }

    /// Approximate dot product of row `v` against an externally quantized
    /// query (see [`quantize_query`](Self::quantize_query)).
    #[inline]
    pub fn dot_query(&self, query: &[i8], query_scale: f32, v: u32) -> f32 {
        kernels::dot_i8(query, self.row(v)) as f32 * query_scale * self.scale(v)
    }

    /// Quantizes one query vector with the same per-row scheme, returning its
    /// codes and scale for use with [`dot_query`](Self::dot_query).
    pub fn quantize_query(query: &[f32]) -> (Vec<i8>, f32) {
        let max_abs = query.iter().fold(0.0f32, |m, x| m.max(x.abs()));
        if max_abs == 0.0 || !max_abs.is_finite() {
            return (vec![0; query.len()], 0.0);
        }
        let inv = 127.0 / max_abs;
        (
            query.iter().map(|&x| (x * inv).round() as i8).collect(),
            max_abs / 127.0,
        )
    }

    /// Bytes held by the code matrix (the bandwidth the scan actually
    /// streams), excluding the per-row scale table.
    pub fn code_bytes(&self) -> usize {
        self.codes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random value in [-1, 1) — keeps these tests free
    /// of the RNG crate so they run under miri alongside the kernel suite.
    fn lcg(state: &mut u64) -> f32 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
    }

    #[test]
    fn round_trips_within_half_scale_per_lane() {
        let mut s = 7u64;
        let dim = 17;
        let flat: Vec<f32> = (0..dim * 5).map(|_| lcg(&mut s) * 3.0).collect();
        let q = QuantizedMatrix::quantize(dim, &flat);
        for v in 0..5u32 {
            let row = &flat[v as usize * dim..(v as usize + 1) * dim];
            let scale = q.scale(v);
            for (x, &c) in row.iter().zip(q.row(v)) {
                let err = (x - c as f32 * scale).abs();
                assert!(
                    err <= scale * 0.5 + 1e-6,
                    "lane error {err} vs scale {scale}"
                );
            }
        }
    }

    #[test]
    fn dot_rows_tracks_exact_dot() {
        let mut s = 21u64;
        let dim = 64;
        let flat: Vec<f32> = (0..dim * 8).map(|_| lcg(&mut s)).collect();
        let q = QuantizedMatrix::quantize(dim, &flat);
        for a in 0..8u32 {
            for b in 0..8u32 {
                let exact = kernels::dot(
                    &flat[a as usize * dim..(a as usize + 1) * dim],
                    &flat[b as usize * dim..(b as usize + 1) * dim],
                );
                let approx = q.dot_rows(a, b);
                // Worst-case error is O(d · scale_a · scale_b); these unit
                // vectors give scales ~1/127, so the bound is loose.
                assert!(
                    (exact - approx).abs() < 0.05,
                    "({a},{b}): {exact} vs {approx}"
                );
            }
        }
    }

    #[test]
    fn zero_rows_and_queries_are_safe() {
        let q = QuantizedMatrix::quantize(3, &[0.0, 0.0, 0.0, 1.0, -2.0, 0.5]);
        assert_eq!(q.scale(0), 0.0);
        assert_eq!(q.row(0), &[0, 0, 0]);
        assert_eq!(q.dot_rows(0, 1), 0.0);
        let (codes, scale) = QuantizedMatrix::quantize_query(&[0.0, 0.0, 0.0]);
        assert_eq!((codes.as_slice(), scale), (&[0i8, 0, 0][..], 0.0));
        assert_eq!(q.dot_query(&codes, scale, 1), 0.0);
    }

    #[test]
    fn query_quantization_matches_row_quantization() {
        let row = [0.25f32, -1.5, 0.75, 2.0];
        let q = QuantizedMatrix::quantize(4, &row);
        let (codes, scale) = QuantizedMatrix::quantize_query(&row);
        assert_eq!(codes.as_slice(), q.row(0));
        assert!((scale - q.scale(0)).abs() < 1e-9);
    }
}
