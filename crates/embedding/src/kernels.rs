//! Unified SIMD distance kernels — the single dot/cosine/norm implementation
//! for the whole query plane.
//!
//! Every similarity computed while serving queries (the exact scan in
//! `store.rs`, HNSW traversal and neighbour selection in `ann.rs`,
//! [`Embeddings::cosine_similarity`](crate::Embeddings::cosine_similarity),
//! and the training-side [`EmbeddingMatrix::dot_row`](crate::EmbeddingMatrix))
//! routes through this module, so:
//!
//! * the hot loops are vectorized once, not four times, and
//! * **every path produces bit-identical scores**, which keeps top-k
//!   tie-breaking consistent between the exact scan and the ANN index.
//!
//! # Dispatch
//!
//! On `x86_64` the backend is picked once per process with
//! `is_x86_feature_detected!` and cached in an atomic function-pointer-style
//! selector:
//!
//! | backend  | selected when                  | f32 kernels      | i8 kernel |
//! |----------|--------------------------------|------------------|-----------|
//! | `avx2`   | AVX2 + FMA available           | 8 lanes, FMA     | 32 lanes  |
//! | `sse2`   | x86_64 baseline                | 4 lanes          | 16 lanes  |
//! | `scalar` | other arches / `force-scalar`  | portable loop    | portable  |
//!
//! The `force-scalar` cargo feature pins the portable implementation at
//! compile time; CI runs the embedding test-suite under both builds and the
//! differential proptest suite (`tests/proptest_kernels.rs`) pins the SIMD
//! kernels to the scalar reference within a summation-error ULP bound.
//!
//! # Safety
//!
//! The `unsafe` here is confined to thin wrappers around `core::arch`
//! intrinsics. Each wrapper is only reachable after the matching CPUID
//! feature check, takes plain `&[f32]`/`&[i8]` slices, uses exclusively
//! *unaligned* loads, and processes the tail with the scalar loop — no
//! pointer arithmetic escapes the slice bounds. The wrappers are exercised
//! under miri in CI.
//!
//! ```
//! use uninet_embedding::kernels;
//!
//! let a = [1.0f32, 2.0, 3.0];
//! let b = [4.0f32, 5.0, 6.0];
//! assert_eq!(kernels::dot(&a, &b), 32.0);
//! assert_eq!(kernels::squared_norm(&a), 14.0);
//! assert!(kernels::backend_name() == "avx2"
//!     || kernels::backend_name() == "sse2"
//!     || kernels::backend_name() == "scalar");
//! ```

/// Portable reference implementations.
///
/// These are the semantics every SIMD backend is differential-tested
/// against; they are public so benchmarks and tests can measure/compare the
/// scalar baseline explicitly even in a SIMD build.
pub mod reference {
    /// Scalar dot product.
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0.0f32;
        for (x, y) in a.iter().zip(b) {
            acc += x * y;
        }
        acc
    }

    /// Scalar sum of squares.
    #[inline]
    pub fn squared_norm(a: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for x in a {
            acc += x * x;
        }
        acc
    }

    /// Scalar i8·i8 → i32 dot product (exact; no overflow for dims < 2^16).
    #[inline]
    pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0i32;
        for (&x, &y) in a.iter().zip(b) {
            acc += x as i32 * y as i32;
        }
        acc
    }
}

/// Which SIMD backend the process dispatched to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum KernelBackend {
    /// Portable scalar loops (non-x86_64, or the `force-scalar` feature).
    Scalar = 0,
    /// SSE2: 4 f32 lanes / 16 i8 lanes (the x86_64 baseline).
    Sse2 = 1,
    /// AVX2 + FMA: 8 f32 lanes / 32 i8 lanes.
    Avx2 = 2,
}

impl KernelBackend {
    /// Stable lowercase name (`"scalar"`, `"sse2"`, `"avx2"`), for logs,
    /// benchmarks and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Sse2 => "sse2",
            KernelBackend::Avx2 => "avx2",
        }
    }
}

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
mod dispatch {
    use super::KernelBackend;
    use std::sync::atomic::{AtomicU8, Ordering};

    /// 0xFF = not yet detected; otherwise a `KernelBackend` discriminant.
    static BACKEND: AtomicU8 = AtomicU8::new(0xFF);

    #[inline]
    pub fn backend() -> KernelBackend {
        match BACKEND.load(Ordering::Relaxed) {
            0 => KernelBackend::Scalar,
            1 => KernelBackend::Sse2,
            2 => KernelBackend::Avx2,
            _ => detect(),
        }
    }

    #[cold]
    fn detect() -> KernelBackend {
        let picked = if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            KernelBackend::Avx2
        } else if is_x86_feature_detected!("sse2") {
            KernelBackend::Sse2
        } else {
            KernelBackend::Scalar
        };
        BACKEND.store(picked as u8, Ordering::Relaxed);
        picked
    }
}

#[cfg(not(all(target_arch = "x86_64", not(feature = "force-scalar"))))]
mod dispatch {
    use super::KernelBackend;

    #[inline]
    pub fn backend() -> KernelBackend {
        KernelBackend::Scalar
    }
}

/// The backend runtime dispatch selected for this process.
#[inline]
pub fn backend() -> KernelBackend {
    dispatch::backend()
}

/// The selected backend's stable name (`"avx2"` / `"sse2"` / `"scalar"`).
#[inline]
pub fn backend_name() -> &'static str {
    backend().name()
}

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
mod x86 {
    //! `core::arch` intrinsic wrappers. Safety contract for every function:
    //! the caller must have verified the matching CPU feature at runtime
    //! (`dispatch::backend()` does); slices of any length are accepted, the
    //! vector body covers the largest lane-multiple prefix and the scalar
    //! tail handles the remainder.
    use std::arch::x86_64::*;

    /// AVX2+FMA dot product: 8-lane FMA accumulation, horizontal sum once.
    ///
    /// # Safety
    /// Requires AVX2 and FMA (checked by the dispatcher).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let chunks = n / 8;
        let mut acc = _mm256_setzero_ps();
        for i in 0..chunks {
            let va = _mm256_loadu_ps(a.as_ptr().add(i * 8));
            let vb = _mm256_loadu_ps(b.as_ptr().add(i * 8));
            acc = _mm256_fmadd_ps(va, vb, acc);
        }
        let mut out = hsum256(acc);
        for i in chunks * 8..n {
            out += a.get_unchecked(i) * b.get_unchecked(i);
        }
        out
    }

    /// AVX2+FMA sum of squares.
    ///
    /// # Safety
    /// Requires AVX2 and FMA (checked by the dispatcher).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn squared_norm_avx2(a: &[f32]) -> f32 {
        let n = a.len();
        let chunks = n / 8;
        let mut acc = _mm256_setzero_ps();
        for i in 0..chunks {
            let va = _mm256_loadu_ps(a.as_ptr().add(i * 8));
            acc = _mm256_fmadd_ps(va, va, acc);
        }
        let mut out = hsum256(acc);
        for i in chunks * 8..n {
            let x = *a.get_unchecked(i);
            out += x * x;
        }
        out
    }

    /// AVX2 i8 dot product: sign-extend 16 lanes at a time to i16, multiply
    /// into i32 pairs with `madd`, accumulate in i32 lanes. Exact.
    ///
    /// # Safety
    /// Requires AVX2 (checked by the dispatcher).
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let chunks = n / 16;
        let mut acc = _mm256_setzero_si256();
        for i in 0..chunks {
            let va = _mm_loadu_si128(a.as_ptr().add(i * 16) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(i * 16) as *const __m128i);
            let wa = _mm256_cvtepi8_epi16(va);
            let wb = _mm256_cvtepi8_epi16(vb);
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(wa, wb));
        }
        let mut out = hsum256_epi32(acc);
        for i in chunks * 16..n {
            out += *a.get_unchecked(i) as i32 * *b.get_unchecked(i) as i32;
        }
        out
    }

    /// SSE2 dot product: 4-lane multiply-add.
    ///
    /// # Safety
    /// Requires SSE2 (always true on x86_64; checked by the dispatcher).
    #[target_feature(enable = "sse2")]
    pub unsafe fn dot_sse2(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let chunks = n / 4;
        let mut acc = _mm_setzero_ps();
        for i in 0..chunks {
            let va = _mm_loadu_ps(a.as_ptr().add(i * 4));
            let vb = _mm_loadu_ps(b.as_ptr().add(i * 4));
            acc = _mm_add_ps(acc, _mm_mul_ps(va, vb));
        }
        let mut out = hsum128(acc);
        for i in chunks * 4..n {
            out += a.get_unchecked(i) * b.get_unchecked(i);
        }
        out
    }

    /// SSE2 sum of squares.
    ///
    /// # Safety
    /// Requires SSE2 (checked by the dispatcher).
    #[target_feature(enable = "sse2")]
    pub unsafe fn squared_norm_sse2(a: &[f32]) -> f32 {
        let n = a.len();
        let chunks = n / 4;
        let mut acc = _mm_setzero_ps();
        for i in 0..chunks {
            let va = _mm_loadu_ps(a.as_ptr().add(i * 4));
            acc = _mm_add_ps(acc, _mm_mul_ps(va, va));
        }
        let mut out = hsum128(acc);
        for i in chunks * 4..n {
            let x = *a.get_unchecked(i);
            out += x * x;
        }
        out
    }

    /// SSE2 i8 dot product via i16 widening + `madd`. Exact.
    ///
    /// # Safety
    /// Requires SSE2 (checked by the dispatcher).
    #[target_feature(enable = "sse2")]
    pub unsafe fn dot_i8_sse2(a: &[i8], b: &[i8]) -> i32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let chunks = n / 8;
        let mut acc = _mm_setzero_si128();
        for i in 0..chunks {
            // Load 8 bytes, sign-extend to 8 i16 lanes (SSE2 has no cvtepi8,
            // so shift a doubled copy down arithmetically).
            let va = _mm_loadl_epi64(a.as_ptr().add(i * 8) as *const __m128i);
            let vb = _mm_loadl_epi64(b.as_ptr().add(i * 8) as *const __m128i);
            let wa = _mm_srai_epi16(_mm_unpacklo_epi8(va, va), 8);
            let wb = _mm_srai_epi16(_mm_unpacklo_epi8(vb, vb), 8);
            acc = _mm_add_epi32(acc, _mm_madd_epi16(wa, wb));
        }
        let mut out = hsum128_epi32(acc);
        for i in chunks * 8..n {
            out += *a.get_unchecked(i) as i32 * *b.get_unchecked(i) as i32;
        }
        out
    }

    /// Horizontal sum of 8 f32 lanes.
    ///
    /// # Safety
    /// Requires AVX (subset of the callers' AVX2 requirement).
    #[target_feature(enable = "avx")]
    unsafe fn hsum256(v: __m256) -> f32 {
        let hi = _mm256_extractf128_ps(v, 1);
        let lo = _mm256_castps256_ps128(v);
        hsum128(_mm_add_ps(lo, hi))
    }

    /// Horizontal sum of 4 f32 lanes.
    ///
    /// # Safety
    /// Requires SSE2.
    #[target_feature(enable = "sse2")]
    unsafe fn hsum128(v: __m128) -> f32 {
        let shuf = _mm_shuffle_ps(v, v, 0b10_11_00_01); // [1,0,3,2]
        let sums = _mm_add_ps(v, shuf);
        let hi = _mm_movehl_ps(shuf, sums);
        _mm_cvtss_f32(_mm_add_ss(sums, hi))
    }

    /// Horizontal sum of 8 i32 lanes.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn hsum256_epi32(v: __m256i) -> i32 {
        let hi = _mm256_extracti128_si256(v, 1);
        let lo = _mm256_castsi256_si128(v);
        hsum128_epi32(_mm_add_epi32(lo, hi))
    }

    /// Horizontal sum of 4 i32 lanes.
    ///
    /// # Safety
    /// Requires SSE2.
    #[target_feature(enable = "sse2")]
    unsafe fn hsum128_epi32(v: __m128i) -> i32 {
        let hi = _mm_shuffle_epi32(v, 0b01_00_11_10);
        let sum = _mm_add_epi32(v, hi);
        let hi2 = _mm_shuffle_epi32(sum, 0b00_00_00_01);
        _mm_cvtsi128_si32(_mm_add_epi32(sum, hi2))
    }
}

/// Dot product of two equal-length vectors, SIMD-dispatched.
///
/// # Panics
///
/// Panics (in debug builds) when the lengths differ.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        match dispatch::backend() {
            // SAFETY: feature presence verified by the dispatcher.
            KernelBackend::Avx2 => return unsafe { x86::dot_avx2(a, b) },
            KernelBackend::Sse2 => return unsafe { x86::dot_sse2(a, b) },
            KernelBackend::Scalar => {}
        }
    }
    reference::dot(a, b)
}

/// Sum of squares (`‖a‖²`), SIMD-dispatched.
#[inline]
pub fn squared_norm(a: &[f32]) -> f32 {
    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    {
        match dispatch::backend() {
            // SAFETY: feature presence verified by the dispatcher.
            KernelBackend::Avx2 => return unsafe { x86::squared_norm_avx2(a) },
            KernelBackend::Sse2 => return unsafe { x86::squared_norm_sse2(a) },
            KernelBackend::Scalar => {}
        }
    }
    reference::squared_norm(a)
}

/// L2 norm (`‖a‖`), SIMD-dispatched.
#[inline]
pub fn l2_norm(a: &[f32]) -> f32 {
    squared_norm(a).sqrt()
}

/// i8·i8 → i32 dot product, SIMD-dispatched. Exact (integer arithmetic, no
/// rounding), so the quantized scan ranks identically on every backend.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        match dispatch::backend() {
            // SAFETY: feature presence verified by the dispatcher.
            KernelBackend::Avx2 => return unsafe { x86::dot_i8_avx2(a, b) },
            KernelBackend::Sse2 => return unsafe { x86::dot_i8_sse2(a, b) },
            KernelBackend::Scalar => {}
        }
    }
    reference::dot_i8(a, b)
}

/// Cosine similarity from a precomputed pair of L2 norms: one kernel dot,
/// zero norm recomputation. Zero-norm inputs answer `0.0` (the query plane's
/// convention for zero vectors).
#[inline]
pub fn cosine_with_norms(a: &[f32], b: &[f32], norm_a: f32, norm_b: f32) -> f32 {
    if norm_a == 0.0 || norm_b == 0.0 {
        return 0.0;
    }
    dot(a, b) / (norm_a * norm_b)
}

/// Cosine similarity computing both norms on the fly (still one pass per
/// vector through the SIMD kernels). Prefer [`cosine_with_norms`] in scans
/// where the query norm is loop-invariant.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    cosine_with_norms(a, b, l2_norm(a), l2_norm(b))
}

/// Writes `a / ‖a‖` into `out` (copies `a` unscaled when `‖a‖ == 0`).
#[inline]
pub fn normalize_into(a: &[f32], out: &mut Vec<f32>) {
    let norm = l2_norm(a);
    if norm == 0.0 {
        out.extend_from_slice(a);
    } else {
        let inv = 1.0 / norm;
        out.extend(a.iter().map(|x| x * inv));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_vec(len: usize, seed: u32) -> Vec<f32> {
        // Deterministic, sign-mixed values without pulling in an RNG — keeps
        // these tests runnable under miri with no foreign code.
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 8) as f32 / (1 << 23) as f32) - 1.0
            })
            .collect()
    }

    /// Absolute tolerance for an n-term f32 summation re-association: the
    /// classic `n · eps · Σ|aᵢbᵢ|` forward-error bound.
    fn sum_tolerance(terms: impl Iterator<Item = f32>, n: usize) -> f32 {
        let magnitude: f32 = terms.map(|t| t.abs()).sum();
        (n as f32) * f32::EPSILON * magnitude + f32::MIN_POSITIVE
    }

    #[test]
    fn dot_matches_reference_across_dims_and_remainders() {
        // Cover every remainder class of the 8/4-lane kernels plus odd dims.
        for dim in (0usize..40).chain([63, 64, 65, 127, 128, 129, 200, 300]) {
            let a = pseudo_vec(dim, 7 + dim as u32);
            let b = pseudo_vec(dim, 1000 + dim as u32);
            let got = dot(&a, &b);
            let want = reference::dot(&a, &b);
            let tol = sum_tolerance(a.iter().zip(&b).map(|(x, y)| x * y), dim);
            assert!(
                (got - want).abs() <= tol,
                "dim {dim}: {got} vs {want} (tol {tol})"
            );
        }
    }

    #[test]
    fn squared_norm_matches_reference() {
        for dim in (0usize..20).chain([33, 100, 128, 255]) {
            let a = pseudo_vec(dim, 31 + dim as u32);
            let got = squared_norm(&a);
            let want = reference::squared_norm(&a);
            let tol = sum_tolerance(a.iter().map(|x| x * x), dim);
            assert!(
                (got - want).abs() <= tol,
                "dim {dim}: {got} vs {want} (tol {tol})"
            );
        }
    }

    #[test]
    fn dot_i8_is_exact_on_every_backend() {
        for dim in (0usize..36).chain([64, 100, 127, 128, 129, 256]) {
            let a: Vec<i8> = pseudo_vec(dim, 3 + dim as u32)
                .iter()
                .map(|x| (x * 127.0) as i8)
                .collect();
            let b: Vec<i8> = pseudo_vec(dim, 77 + dim as u32)
                .iter()
                .map(|x| (x * 127.0) as i8)
                .collect();
            assert_eq!(dot_i8(&a, &b), reference::dot_i8(&a, &b), "dim {dim}");
        }
    }

    #[test]
    fn dot_i8_saturating_inputs_do_not_overflow_lanes() {
        // ±127 everywhere is the worst case for the i16 madd pairs:
        // 2 · 127·127 = 32258 < i16::MAX would be the trap if the kernel
        // accumulated in i16 — it must widen to i32 per pair.
        for dim in [8usize, 16, 32, 64, 129] {
            let a = vec![127i8; dim];
            let b = vec![-128i8; dim];
            assert_eq!(dot_i8(&a, &b), reference::dot_i8(&a, &b), "dim {dim}");
            assert_eq!(dot_i8(&a, &a), dim as i32 * 127 * 127);
        }
    }

    #[test]
    fn cosine_handles_zero_vectors() {
        let z = vec![0.0f32; 16];
        let a = pseudo_vec(16, 5);
        assert_eq!(cosine(&z, &a), 0.0);
        assert_eq!(cosine(&a, &z), 0.0);
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn normalize_into_produces_unit_vectors() {
        let a = pseudo_vec(37, 11);
        let mut out = Vec::new();
        normalize_into(&a, &mut out);
        assert_eq!(out.len(), 37);
        assert!((squared_norm(&out) - 1.0).abs() < 1e-4);
        let z = vec![0.0f32; 4];
        let mut out = Vec::new();
        normalize_into(&z, &mut out);
        assert_eq!(out, z);
    }

    #[test]
    fn backend_is_stable_and_named() {
        let b = backend();
        assert_eq!(backend(), b, "detection must be cached");
        assert!(["scalar", "sse2", "avx2"].contains(&backend_name()));
        #[cfg(feature = "force-scalar")]
        assert_eq!(backend(), KernelBackend::Scalar);
    }
}
