//! A concurrent serving layer over learned embeddings.
//!
//! # Snapshot / epoch semantics
//!
//! The store holds an immutable [`EmbeddingSnapshot`] behind an
//! `RwLock<Arc<..>>`: readers take the read lock only long enough to clone the
//! `Arc`, then answer queries entirely lock-free against the frozen snapshot,
//! while a training writer publishes a replacement snapshot with a short write
//! lock that swaps one pointer. Readers therefore never observe a
//! half-written matrix and never block an incremental training pass.
//!
//! An **epoch** is the version number of one published embedding state. The
//! store starts at epoch 0 (an empty placeholder snapshot); every
//! [`EmbeddingStore::publish`] allocates the next epoch, so epochs observed
//! through [`EmbeddingStore::snapshot`] are monotonically non-decreasing and
//! a reader can detect staleness by comparing the epoch it served against the
//! store's current one. In-flight readers keep the `Arc` they cloned — an old
//! snapshot stays fully queryable (at its old epoch) until its last reader
//! drops it.
//!
//! **When do snapshots publish?** Batch training publishes once at the end of
//! the run. Incremental streaming publishes the initial online model and then
//! one snapshot per walk-refresh round, throttled by the engine's
//! `snapshot_interval_ms` (publishing copies the matrix, recomputes norms and
//! — when ANN serving is enabled — rebuilds the HNSW index, all `O(n·d)` or
//! worse, so on large graphs an unthrottled per-round publish would dominate
//! the ingestion path). The final post-stream state is always published.
//!
//! **ANN serving.** A store created with [`EmbeddingStore::with_ann`] builds
//! an [`HnswIndex`] into every published snapshot. The rebuild happens on the
//! publishing thread *before* the write lock is taken, so however expensive
//! the index construction, readers still only ever block on the pointer swap;
//! the cost is borne once per epoch instead of `O(n·d)` per query. Queries
//! pick their path per call via [`QueryMode`] ([`QueryMode::Ann`] falls back
//! to the exact scan when a snapshot has no index).
//!
//! ```
//! use uninet_embedding::{Embeddings, EmbeddingStore, QueryMode};
//!
//! let store = EmbeddingStore::new();
//! assert!(store.is_empty());
//! store.publish(Embeddings::from_flat(2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]));
//! assert_eq!(store.epoch(), 1);
//! assert_eq!(store.vector(0), Some(vec![1.0, 0.0]));
//! let neighbours = store.top_k_mode(0, 1, QueryMode::Ann); // no index: exact fallback
//! assert_eq!(neighbours.len(), 1);
//! ```

use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use crate::ann::{AnnConfig, HnswIndex, QueryMode};
use crate::kernels;
use crate::quant::QuantizedMatrix;
use crate::telemetry::StoreTelemetry;
use crate::Embeddings;

/// One immutable published version of the embeddings.
#[derive(Debug)]
pub struct EmbeddingSnapshot {
    epoch: u64,
    embeddings: Embeddings,
    /// Precomputed L2 norm per node, so cosine queries cost one dot product.
    norms: Vec<f32>,
    /// Int8 codes of the raw vectors when the store's [`AnnConfig`] enables
    /// quantization: the exact scan ranks candidates through these and
    /// re-scores only the top slice in f32.
    quant: Option<QuantizedMatrix>,
    /// f32 re-rank budget multiplier for the quantized exact scan.
    rerank: usize,
    /// HNSW index over the vectors, when the publishing store enables ANN.
    ann: Option<HnswIndex>,
    /// Live mask over the rows under open-world churn: retired ids keep their
    /// rows (id == row forever) but are excluded from every query answer.
    /// `None` means the whole universe is live.
    live: Option<Vec<bool>>,
}

impl EmbeddingSnapshot {
    fn new(
        epoch: u64,
        embeddings: Embeddings,
        ann_config: Option<&AnnConfig>,
        live: Option<Vec<bool>>,
    ) -> Self {
        Self::new_timed(epoch, embeddings, ann_config, None, live).0
    }

    /// Builds a snapshot and reports how long its two expensive stages took:
    /// the `O(n·d)` norms pass and the (optional) HNSW construction. When
    /// `prev` carries an index of the same dimensionality and the config
    /// allows it, the HNSW build is incremental — it grafts the previous
    /// epoch's graph and re-inserts only drifted/new nodes.
    fn new_timed(
        epoch: u64,
        embeddings: Embeddings,
        ann_config: Option<&AnnConfig>,
        prev: Option<&EmbeddingSnapshot>,
        live: Option<Vec<bool>>,
    ) -> (Self, Duration, Duration) {
        if let Some(mask) = &live {
            assert_eq!(
                mask.len(),
                embeddings.num_nodes(),
                "live mask length must equal the embedding row count"
            );
        }
        let t_norms = Instant::now();
        let norms = (0..embeddings.num_nodes() as u32)
            .map(|v| kernels::l2_norm(embeddings.vector(v)))
            .collect();
        let quant = ann_config
            .filter(|cfg| cfg.quantize && embeddings.num_nodes() > 0)
            .map(|_| QuantizedMatrix::quantize(embeddings.dim(), embeddings.as_flat()));
        let norms_time = t_norms.elapsed();
        let t_ann = Instant::now();
        let ann = ann_config
            .filter(|_| embeddings.num_nodes() > 0)
            .map(|cfg| {
                match prev
                    .and_then(|p| p.ann.as_ref())
                    .filter(|_| cfg.incremental)
                {
                    Some(prev_index) => HnswIndex::build_incremental_masked(
                        &embeddings,
                        cfg,
                        prev_index,
                        live.as_deref(),
                    ),
                    None => HnswIndex::build_masked(&embeddings, cfg, live.as_deref()),
                }
            });
        let ann_time = t_ann.elapsed();
        (
            EmbeddingSnapshot {
                epoch,
                embeddings,
                norms,
                quant,
                rerank: ann_config.map(|cfg| cfg.rerank.max(1)).unwrap_or(1),
                ann,
                live,
            },
            norms_time,
            ann_time,
        )
    }

    /// The snapshot's publication epoch (0 = the initial empty snapshot).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen embeddings.
    pub fn embeddings(&self) -> &Embeddings {
        &self.embeddings
    }

    /// Number of embedded nodes.
    pub fn num_nodes(&self) -> usize {
        self.embeddings.num_nodes()
    }

    /// Whether `node` addresses a row of this snapshot at all (live or
    /// retired). The query plane uses the in-range/live split to return
    /// distinct typed errors for unknown versus retired ids.
    pub fn in_range(&self, node: u32) -> bool {
        (node as usize) < self.embeddings.num_nodes()
    }

    /// Whether `node` is a live member of the snapshot's universe.
    pub fn is_live(&self, node: u32) -> bool {
        self.in_range(node)
            && self
                .live
                .as_ref()
                .map_or(true, |mask| mask[node as usize])
    }

    /// Number of live nodes (== [`num_nodes`](Self::num_nodes) when no churn
    /// has retired anyone).
    pub fn live_count(&self) -> usize {
        match &self.live {
            Some(mask) => mask.iter().filter(|&&l| l).count(),
            None => self.embeddings.num_nodes(),
        }
    }

    /// The live mask, when this snapshot was published with one.
    pub fn live_mask(&self) -> Option<&[bool]> {
        self.live.as_deref()
    }

    fn contains(&self, node: u32) -> bool {
        self.is_live(node)
    }

    /// Cosine similarity against the precomputed norms; `None` out of range.
    pub fn cosine(&self, a: u32, b: u32) -> Option<f32> {
        if !self.contains(a) || !self.contains(b) {
            return None;
        }
        Some(kernels::cosine_with_norms(
            self.embeddings.vector(a),
            self.embeddings.vector(b),
            self.norms[a as usize],
            self.norms[b as usize],
        ))
    }

    /// The `k` nodes most cosine-similar to `node` (excluding `node` itself),
    /// best first. Empty when `node` is out of range.
    ///
    /// On a quantized snapshot the scan ranks candidates through the int8
    /// codes (4x less bandwidth) and re-scores the best `k · rerank` of them
    /// in f32, so reported scores are always exact cosines.
    pub fn top_k(&self, node: u32, k: usize) -> Vec<(u32, f32)> {
        if !self.contains(node) || k == 0 {
            return Vec::new();
        }
        match &self.quant {
            Some(quant) => self.top_k_quantized(node, k, quant),
            None => self.scan_top_k(node, k),
        }
    }

    /// The f32 exact scan: bounded selection keeping the k best seen so far
    /// in a min-heap, so a query over n nodes costs O(n · dim + n log k)
    /// instead of a full sort. `Sim` is the same ordered-score type the ANN
    /// path uses, so both paths break score ties identically.
    fn scan_top_k(&self, node: u32, k: usize) -> Vec<(u32, f32)> {
        use crate::ann::Sim;
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        // The query vector and its norm are loop-invariant — fetch them once.
        let va = self.embeddings.vector(node);
        let na = self.norms[node as usize];
        let mut heap: BinaryHeap<Reverse<Sim>> = BinaryHeap::with_capacity(k + 1);
        for u in 0..self.embeddings.num_nodes() as u32 {
            if u == node || !self.is_live(u) {
                continue;
            }
            let s = kernels::cosine_with_norms(
                va,
                self.embeddings.vector(u),
                na,
                self.norms[u as usize],
            );
            heap.push(Reverse(Sim(s, u)));
            if heap.len() > k {
                heap.pop();
            }
        }
        // Ascending order of `Reverse` is descending score — best first.
        heap.into_sorted_vec()
            .into_iter()
            .map(|Reverse(Sim(s, u))| (u, s))
            .collect()
    }

    /// The int8 scan: rank all candidates by dequantized approximate cosine,
    /// keep the best `k · rerank`, then re-score that slice with exact f32
    /// cosines and return the top k.
    fn top_k_quantized(&self, node: u32, k: usize, quant: &QuantizedMatrix) -> Vec<(u32, f32)> {
        use crate::ann::Sim;
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let budget = k.saturating_mul(self.rerank);
        let qrow = quant.row(node);
        let qscale = quant.scale(node);
        let na = self.norms[node as usize];
        let mut heap: BinaryHeap<Reverse<Sim>> = BinaryHeap::with_capacity(budget + 1);
        for u in 0..self.embeddings.num_nodes() as u32 {
            if u == node || !self.is_live(u) {
                continue;
            }
            let nb = self.norms[u as usize];
            let s = if na == 0.0 || nb == 0.0 {
                0.0
            } else {
                quant.dot_query(qrow, qscale, u) / (na * nb)
            };
            heap.push(Reverse(Sim(s, u)));
            if heap.len() > budget {
                heap.pop();
            }
        }
        let va = self.embeddings.vector(node);
        let mut rescored: Vec<Sim> = heap
            .into_iter()
            .map(|Reverse(Sim(_, u))| {
                Sim(
                    kernels::cosine_with_norms(
                        va,
                        self.embeddings.vector(u),
                        na,
                        self.norms[u as usize],
                    ),
                    u,
                )
            })
            .collect();
        rescored.sort_by(|a, b| b.cmp(a));
        rescored.truncate(k);
        rescored.into_iter().map(|Sim(s, u)| (u, s)).collect()
    }

    /// Whether this snapshot scans through int8 codes.
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// The snapshot's ANN index, when the publishing store enabled one.
    pub fn ann(&self) -> Option<&HnswIndex> {
        self.ann.as_ref()
    }

    /// Like [`top_k`](EmbeddingSnapshot::top_k), but with an explicit
    /// [`QueryMode`]. [`QueryMode::Ann`] routes through the HNSW index and
    /// falls back to the exact scan when the snapshot carries no index or the
    /// graph search comes back short (possible on degenerate inputs).
    pub fn top_k_mode(&self, node: u32, k: usize, mode: QueryMode) -> Vec<(u32, f32)> {
        self.top_k_mode_traced(node, k, mode).0
    }

    /// [`top_k_mode`](Self::top_k_mode), also reporting whether an ANN query
    /// had to fall back to the exact scan (no index, or a short graph
    /// search). Exact queries never count as fallbacks.
    fn top_k_mode_traced(&self, node: u32, k: usize, mode: QueryMode) -> (Vec<(u32, f32)>, bool) {
        match (mode, &self.ann) {
            (QueryMode::Ann, Some(index)) if self.contains(node) && k > 0 => {
                let hits = index.search_node(node, k);
                if hits.len() < k.min(self.live_count().saturating_sub(1)) {
                    (self.top_k(node, k), true)
                } else {
                    (hits, false)
                }
            }
            (QueryMode::Ann, _) => (self.top_k(node, k), self.contains(node) && k > 0),
            _ => (self.top_k(node, k), false),
        }
    }

    /// Answers a slab of top-k queries against this one frozen version.
    ///
    /// Results line up with `nodes`; out-of-range nodes yield empty rows.
    pub fn top_k_batch(&self, nodes: &[u32], k: usize, mode: QueryMode) -> Vec<Vec<(u32, f32)>> {
        nodes
            .iter()
            .map(|&node| self.top_k_mode(node, k, mode))
            .collect()
    }

    /// Answers a slab of cosine queries against this one frozen version.
    ///
    /// Results line up with `pairs`; out-of-range pairs yield `None`.
    pub fn cosine_batch(&self, pairs: &[(u32, u32)]) -> Vec<Option<f32>> {
        pairs.iter().map(|&(a, b)| self.cosine(a, b)).collect()
    }
}

/// Concurrent embedding query service: epoch-versioned snapshots behind a
/// pointer-swap `RwLock` (see the module docs for the locking discipline).
#[derive(Debug)]
pub struct EmbeddingStore {
    /// Epoch allocator, advanced outside the lock so snapshot construction
    /// (the O(n·dim) norms pass) never blocks readers.
    next_epoch: std::sync::atomic::AtomicU64,
    slot: RwLock<Arc<EmbeddingSnapshot>>,
    /// When set, every published snapshot gets an HNSW index built into it.
    ann: Option<AnnConfig>,
    /// Instrument handles; detached by default, shared with a registry via
    /// [`EmbeddingStore::instrumented`]. Recording is always on and always
    /// lock-free, so queries pay the same cost either way.
    telemetry: StoreTelemetry,
}

impl Default for EmbeddingStore {
    fn default() -> Self {
        Self::new()
    }
}

impl EmbeddingStore {
    /// Creates an empty store (epoch 0, no vectors, exact-scan serving only).
    pub fn new() -> Self {
        Self::with_ann_config(None)
    }

    /// Creates an empty store that builds an [`HnswIndex`] into every
    /// published snapshot, so [`QueryMode::Ann`] queries leave the full-scan
    /// regime. The rebuild cost is paid per publish, outside the write lock.
    pub fn with_ann(config: AnnConfig) -> Self {
        Self::with_ann_config(Some(config))
    }

    fn with_ann_config(ann: Option<AnnConfig>) -> Self {
        EmbeddingStore {
            next_epoch: std::sync::atomic::AtomicU64::new(0),
            slot: RwLock::new(Arc::new(EmbeddingSnapshot::new(
                0,
                Embeddings::from_flat(1, Vec::new()),
                None,
                None,
            ))),
            ann,
            telemetry: StoreTelemetry::detached(),
        }
    }

    /// Replaces the store's telemetry handles — typically with
    /// [`StoreTelemetry::registered`] so publishes and queries show up in a
    /// registry snapshot under `engine.*` / `query.*`.
    pub fn instrumented(mut self, telemetry: StoreTelemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The store's telemetry handles.
    pub fn telemetry(&self) -> &StoreTelemetry {
        &self.telemetry
    }

    /// The ANN configuration snapshots are indexed with, if any.
    pub fn ann_config(&self) -> Option<&AnnConfig> {
        self.ann.as_ref()
    }

    /// Publishes a new embedding version and returns its epoch.
    ///
    /// The snapshot (its norms table, and its HNSW index when the store was
    /// created via [`EmbeddingStore::with_ann`]) is built *before* the write
    /// lock is taken, so readers are only ever blocked for a pointer swap.
    /// In-flight readers keep the snapshot they already cloned; new readers
    /// see the published version. If two publishers race, the higher epoch
    /// wins regardless of install order.
    pub fn publish(&self, embeddings: Embeddings) -> u64 {
        self.publish_with_universe(embeddings, None)
    }

    /// [`publish`](EmbeddingStore::publish) with an explicit live universe:
    /// ids with `live[v] == false` keep their rows but become unreachable
    /// from every query (`vector`/`cosine`/`top_k`/ANN) as of this epoch.
    /// `live == None` publishes a fully-live universe.
    pub fn publish_with_universe(&self, embeddings: Embeddings, live: Option<Vec<bool>>) -> u64 {
        use std::sync::atomic::Ordering;
        let t_total = Instant::now();
        let epoch = self.next_epoch.fetch_add(1, Ordering::Relaxed) + 1;
        // The previous snapshot seeds the incremental HNSW build (when
        // enabled); cloning the Arc here keeps it alive without holding the
        // read lock through the expensive construction.
        let prev = self.snapshot();
        let (snapshot, norms_time, ann_time) =
            EmbeddingSnapshot::new_timed(epoch, embeddings, self.ann.as_ref(), Some(&prev), live);
        self.telemetry.live_nodes.set(snapshot.live_count() as i64);
        if let Some(stats) = snapshot.ann().and_then(|index| index.incremental_stats()) {
            self.telemetry.publish_ann_incremental.inc();
            self.telemetry
                .publish_ann_reinserted
                .record((stats.reinserted + stats.added) as u64);
            self.telemetry
                .publish_ann_reused
                .record(stats.reused as u64);
        }
        let snapshot = Arc::new(snapshot);
        {
            let mut slot = self.slot.write().expect("embedding store lock poisoned");
            if snapshot.epoch() > slot.epoch() {
                *slot = snapshot;
            }
        }
        self.telemetry.publish_norms_ns.record_duration(norms_time);
        self.telemetry
            .publish_ann_build_ns
            .record_duration(ann_time);
        self.telemetry
            .publish_total_ns
            .record_duration(t_total.elapsed());
        self.telemetry.note_publish(epoch);
        epoch
    }

    /// Restores a recovered embedding state at an exact epoch.
    ///
    /// Unlike [`publish`](EmbeddingStore::publish), which allocates the next
    /// epoch, `restore` installs the snapshot at precisely `epoch` and moves
    /// the allocator to `max(current, epoch)` — so a process that recovers
    /// from disk resumes the epoch sequence where the crashed process left
    /// off instead of restarting from 1. Intended for crash recovery on an
    /// otherwise idle store; a concurrent publisher with a higher epoch wins,
    /// preserving monotonicity.
    pub fn restore(&self, embeddings: Embeddings, epoch: u64) -> u64 {
        self.restore_with_universe(embeddings, epoch, None)
    }

    /// [`restore`](EmbeddingStore::restore) with an explicit live universe —
    /// crash recovery of an open-world session reinstates the retired-id mask
    /// alongside the vectors.
    pub fn restore_with_universe(
        &self,
        embeddings: Embeddings,
        epoch: u64,
        live: Option<Vec<bool>>,
    ) -> u64 {
        use std::sync::atomic::Ordering;
        self.next_epoch.fetch_max(epoch, Ordering::Relaxed);
        let snapshot = Arc::new(EmbeddingSnapshot::new(
            epoch,
            embeddings,
            self.ann.as_ref(),
            live,
        ));
        self.telemetry.live_nodes.set(snapshot.live_count() as i64);
        {
            let mut slot = self.slot.write().expect("embedding store lock poisoned");
            if snapshot.epoch() > slot.epoch() {
                *slot = snapshot;
            }
        }
        self.telemetry.note_publish(epoch);
        epoch
    }

    /// The current snapshot; queries against it are lock-free and see one
    /// consistent version even while new epochs are published.
    pub fn snapshot(&self) -> Arc<EmbeddingSnapshot> {
        Arc::clone(&self.slot.read().expect("embedding store lock poisoned"))
    }

    /// The epoch of the current snapshot (0 until the first [`publish`]).
    ///
    /// [`publish`]: EmbeddingStore::publish
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// Whether nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.snapshot().num_nodes() == 0
    }

    /// Number of nodes in the current snapshot.
    pub fn num_nodes(&self) -> usize {
        self.snapshot().num_nodes()
    }

    /// The embedding vector of `node`, or `None` when out of range.
    pub fn vector(&self, node: u32) -> Option<Vec<f32>> {
        let snap = self.snapshot();
        snap.contains(node)
            .then(|| snap.embeddings().vector(node).to_vec())
    }

    /// Cosine similarity of `a` and `b`, or `None` when out of range.
    pub fn cosine(&self, a: u32, b: u32) -> Option<f32> {
        self.snapshot().cosine(a, b)
    }

    /// The `k` nodes most similar to `node` in the current snapshot
    /// (exact scan; see [`top_k_mode`](EmbeddingStore::top_k_mode)).
    pub fn top_k(&self, node: u32, k: usize) -> Vec<(u32, f32)> {
        self.top_k_mode(node, k, QueryMode::Exact)
    }

    /// The `k` nodes most similar to `node`, selected via `mode`. Latency is
    /// recorded into the per-mode query histograms; an ANN query that had to
    /// fall back to the exact scan bumps `query.ann_fallbacks`.
    pub fn top_k_mode(&self, node: u32, k: usize, mode: QueryMode) -> Vec<(u32, f32)> {
        let t = Instant::now();
        let (hits, fell_back) = self.snapshot().top_k_mode_traced(node, k, mode);
        match mode {
            QueryMode::Exact => &self.telemetry.query_exact_ns,
            QueryMode::Ann => &self.telemetry.query_ann_ns,
        }
        .record_duration(t.elapsed());
        if fell_back {
            self.telemetry.ann_fallbacks.inc();
        }
        hits
    }

    /// Answers a slab of top-k queries with one snapshot acquisition, so the
    /// per-query read-lock cost is amortized across the batch and every row
    /// is answered from the same epoch.
    pub fn top_k_batch(&self, nodes: &[u32], k: usize, mode: QueryMode) -> Vec<Vec<(u32, f32)>> {
        let t = Instant::now();
        let snap = self.snapshot();
        let mut fallbacks = 0u64;
        let rows = nodes
            .iter()
            .map(|&node| {
                let (row, fell_back) = snap.top_k_mode_traced(node, k, mode);
                fallbacks += fell_back as u64;
                row
            })
            .collect();
        self.telemetry.batch_size.record(nodes.len() as u64);
        self.telemetry.batch_total_ns.record_duration(t.elapsed());
        if fallbacks > 0 {
            self.telemetry.ann_fallbacks.add(fallbacks);
        }
        rows
    }

    /// Answers a slab of cosine queries with one snapshot acquisition (one
    /// consistent epoch, one read lock for the whole batch).
    pub fn cosine_batch(&self, pairs: &[(u32, u32)]) -> Vec<Option<f32>> {
        self.snapshot().cosine_batch(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Embeddings {
        // 5 nodes in 3 dimensions with distinct directions.
        Embeddings::from_flat(
            3,
            vec![
                1.0, 0.0, 0.0, // 0
                0.9, 0.1, 0.0, // 1: close to 0
                0.0, 1.0, 0.0, // 2
                0.0, 0.0, 1.0, // 3
                0.0, 0.0, 0.0, // 4: zero vector
            ],
        )
    }

    #[test]
    fn empty_store_answers_safely() {
        let store = EmbeddingStore::new();
        assert_eq!(store.epoch(), 0);
        assert!(store.is_empty());
        assert_eq!(store.vector(0), None);
        assert_eq!(store.cosine(0, 1), None);
        assert!(store.top_k(0, 5).is_empty());
    }

    #[test]
    fn publish_bumps_epoch_and_serves_vectors() {
        let store = EmbeddingStore::new();
        assert_eq!(store.publish(sample()), 1);
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.num_nodes(), 5);
        assert_eq!(store.vector(2), Some(vec![0.0, 1.0, 0.0]));
        assert_eq!(store.vector(5), None);
        assert_eq!(store.publish(sample()), 2);
    }

    #[test]
    fn cosine_matches_embeddings_impl() {
        let store = EmbeddingStore::new();
        store.publish(sample());
        let emb = sample();
        for a in 0..5u32 {
            for b in 0..5u32 {
                let got = store.cosine(a, b).unwrap();
                let want = emb.cosine_similarity(a, b);
                assert!((got - want).abs() < 1e-6, "({a},{b}): {got} vs {want}");
            }
        }
        assert_eq!(store.cosine(0, 9), None);
    }

    #[test]
    fn top_k_agrees_with_brute_force_scan() {
        let store = EmbeddingStore::new();
        store.publish(sample());
        let emb = sample();
        for node in 0..5u32 {
            for k in [1usize, 2, 3, 10] {
                let fast = store.top_k(node, k);
                let brute = emb.most_similar(node, k);
                assert_eq!(fast.len(), brute.len(), "node {node} k {k}");
                for (f, b) in fast.iter().zip(&brute) {
                    // Scores must match exactly in order; node ids may differ
                    // only between equal scores.
                    assert!((f.1 - b.1).abs() < 1e-6, "node {node} k {k}");
                }
            }
        }
    }

    #[test]
    fn old_snapshots_survive_publication() {
        let store = EmbeddingStore::new();
        store.publish(sample());
        let old = store.snapshot();
        store.publish(Embeddings::from_flat(2, vec![1.0, 1.0]));
        assert_eq!(old.epoch(), 1);
        assert_eq!(old.num_nodes(), 5);
        assert_eq!(store.num_nodes(), 1);
        assert_eq!(store.epoch(), 2);
    }

    #[test]
    fn ann_stores_index_snapshots_and_answer_queries() {
        let store = EmbeddingStore::with_ann(AnnConfig::default());
        assert!(store.ann_config().is_some());
        // The empty epoch-0 snapshot carries no index and answers safely.
        assert!(store.snapshot().ann().is_none());
        assert!(store.top_k_mode(0, 3, QueryMode::Ann).is_empty());

        store.publish(sample());
        let snap = store.snapshot();
        assert!(snap.ann().is_some(), "publish should build the index");
        for node in 0..5u32 {
            let ann = snap.top_k_mode(node, 2, QueryMode::Ann);
            let exact = snap.top_k(node, 2);
            assert_eq!(ann.len(), exact.len(), "node {node}");
            for (a, e) in ann.iter().zip(&exact) {
                assert!(
                    (a.1 - e.1).abs() < 1e-6,
                    "node {node}: {ann:?} vs {exact:?}"
                );
            }
        }
        // A store without ANN serves QueryMode::Ann via the exact fallback.
        let plain = EmbeddingStore::new();
        plain.publish(sample());
        assert!(plain.snapshot().ann().is_none());
        assert_eq!(
            plain.top_k_mode(0, 2, QueryMode::Ann),
            plain.top_k_mode(0, 2, QueryMode::Exact)
        );
    }

    #[test]
    fn batch_queries_match_single_queries() {
        let store = EmbeddingStore::with_ann(AnnConfig::default());
        store.publish(sample());
        let nodes = [0u32, 3, 1, 99];
        for mode in [QueryMode::Exact, QueryMode::Ann] {
            let batch = store.top_k_batch(&nodes, 2, mode);
            assert_eq!(batch.len(), nodes.len());
            for (&node, row) in nodes.iter().zip(&batch) {
                assert_eq!(row, &store.top_k_mode(node, 2, mode), "node {node}");
            }
            assert!(batch[3].is_empty(), "out-of-range row should be empty");
        }
        let pairs = [(0u32, 1u32), (2, 3), (0, 99)];
        let cosines = store.cosine_batch(&pairs);
        assert_eq!(cosines.len(), pairs.len());
        for (&(a, b), &got) in pairs.iter().zip(&cosines) {
            assert_eq!(got, store.cosine(a, b));
        }
        assert_eq!(cosines[2], None);
    }

    #[test]
    fn quantized_snapshots_serve_exact_scores() {
        let store = EmbeddingStore::with_ann(AnnConfig {
            quantize: true,
            ..AnnConfig::default()
        });
        store.publish(sample());
        let snap = store.snapshot();
        assert!(snap.is_quantized());
        // The re-rank budget (k·rerank) covers all 5 nodes here, so the
        // quantized scan must agree with the plain f32 scan exactly.
        let plain = EmbeddingStore::new();
        plain.publish(sample());
        for node in 0..5u32 {
            let quantized = snap.top_k(node, 3);
            let exact = plain.snapshot().top_k(node, 3);
            assert_eq!(quantized.len(), exact.len(), "node {node}");
            for (q, e) in quantized.iter().zip(&exact) {
                assert!(
                    (q.1 - e.1).abs() < 1e-6,
                    "node {node}: {quantized:?} vs {exact:?}"
                );
            }
        }
        // The ANN path over the quantized index also reports f32 scores.
        for node in 0..5u32 {
            for (u, s) in snap.top_k_mode(node, 2, QueryMode::Ann) {
                let want = snap.cosine(node, u).unwrap();
                assert!(
                    (s - want).abs() < 1e-5,
                    "node {node} hit {u}: {s} vs {want}"
                );
            }
        }
    }

    #[test]
    fn publishes_reuse_the_previous_index_incrementally() {
        let store = EmbeddingStore::with_ann(AnnConfig::default());
        store.publish(sample());
        // First publish starts from the empty epoch-0 snapshot: full build.
        assert!(store
            .snapshot()
            .ann()
            .and_then(|i| i.incremental_stats())
            .is_none());
        store.publish(sample());
        let stats = store
            .snapshot()
            .ann()
            .and_then(|i| i.incremental_stats())
            .expect("second publish should graft the first index");
        assert_eq!(stats.reused, 5, "identical vectors should all be reused");
        assert_eq!(store.telemetry().publish_ann_incremental.get(), 1);
        // Opting out returns every publish to the full-rebuild path.
        let full = EmbeddingStore::with_ann(AnnConfig {
            incremental: false,
            ..AnnConfig::default()
        });
        full.publish(sample());
        full.publish(sample());
        assert!(full
            .snapshot()
            .ann()
            .and_then(|i| i.incremental_stats())
            .is_none());
        assert_eq!(full.telemetry().publish_ann_incremental.get(), 0);
    }

    #[test]
    fn retired_ids_are_unreachable_from_every_query_path() {
        for ann in [false, true] {
            let store = if ann {
                EmbeddingStore::with_ann(AnnConfig::default())
            } else {
                EmbeddingStore::new()
            };
            // Node 1 (node 0's closest neighbour) retires.
            let live = vec![true, false, true, true, true];
            store.publish_with_universe(sample(), Some(live));
            let snap = store.snapshot();
            assert_eq!(snap.live_count(), 4);
            assert!(snap.in_range(1) && !snap.is_live(1));
            assert!(!snap.in_range(5));

            // Direct lookups: retired behaves like absent.
            assert_eq!(store.vector(1), None);
            assert_eq!(store.cosine(0, 1), None);
            assert!(store.top_k(1, 3).is_empty());

            // Ranked queries never surface the retired id.
            for mode in [QueryMode::Exact, QueryMode::Ann] {
                let hits = store.top_k_mode(0, 4, mode);
                assert!(!hits.is_empty());
                assert!(
                    hits.iter().all(|&(u, _)| u != 1),
                    "retired id served (ann={ann}, {mode:?}): {hits:?}"
                );
                for row in store.top_k_batch(&[0, 2, 1], 4, mode) {
                    assert!(row.iter().all(|&(u, _)| u != 1));
                }
            }
            assert_eq!(store.telemetry().live_nodes.get(), 4);

            // A later fully-live publish serves node 1 again (rejoin).
            store.publish(sample());
            assert!(store.top_k(0, 1).iter().any(|&(u, _)| u == 1));
            assert_eq!(store.telemetry().live_nodes.get(), 5);
        }
    }

    #[test]
    fn restore_resumes_epoch_sequence() {
        let store = EmbeddingStore::new();
        assert_eq!(store.restore(sample(), 7), 7);
        assert_eq!(store.epoch(), 7);
        assert_eq!(store.num_nodes(), 5);
        // The next publish continues after the restored epoch.
        assert_eq!(store.publish(sample()), 8);
        // Restoring an older epoch never rolls the store back.
        store.restore(Embeddings::from_flat(2, vec![1.0, 1.0]), 3);
        assert_eq!(store.epoch(), 8);
        assert_eq!(store.num_nodes(), 5);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let store = Arc::new(EmbeddingStore::new());
        store.publish(sample());
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last_epoch = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = store.snapshot();
                        assert!(snap.epoch() >= last_epoch, "epoch went backwards");
                        last_epoch = snap.epoch();
                        let _ = snap.top_k(0, 3);
                    }
                    last_epoch
                })
            })
            .collect();
        for _ in 0..50 {
            store.publish(sample());
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() <= store.epoch());
        }
        assert_eq!(store.epoch(), 51);
    }
}
