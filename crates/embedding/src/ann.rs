//! Approximate nearest-neighbour search over embedding snapshots.
//!
//! The serving path's exact `top_k` is a full scan: every query touches all
//! `n` vectors (`O(n·d)` per query), which caps the query service far below
//! the millions-of-users traffic the engine targets. This module provides an
//! [`HnswIndex`] — a Hierarchical Navigable Small World graph (Malkov &
//! Yashunin, 2016) built once per published snapshot — that answers the same
//! cosine top-k queries in roughly `O(log n · d)` by greedy descent through a
//! layered proximity graph.
//!
//! Design points:
//!
//! * **Immutable after build.** The index is constructed alongside a
//!   snapshot's norms (outside the store's write lock) and never mutated
//!   afterwards, so concurrent readers share it without synchronization.
//! * **Deterministic.** A node's layer is a pure hash of
//!   `(AnnConfig::seed, node id)` — not a draw from a sequential RNG — so a
//!   node keeps its layer across rebuilds and [`HnswIndex::build_incremental`]
//!   can graft an old graph onto a new epoch without reshuffling levels. Two
//!   builds over the same vectors produce the same graph.
//! * **Cosine via normalization.** Vectors are L2-normalized at build time,
//!   so similarity is one [`kernels::dot`] — the same SIMD-dispatched kernel
//!   the exact scan uses — and results carry the same cosine scores.
//! * **Optional int8 traversal.** With [`AnnConfig::quantize`] the index also
//!   carries a [`QuantizedMatrix`] of the normalized vectors; queries walk the
//!   graph scoring candidates in int8 and re-score only the top
//!   `k · rerank` candidates in f32, so reported similarities stay exact.
//!
//! ```
//! use uninet_embedding::{AnnConfig, Embeddings, HnswIndex};
//!
//! let emb = Embeddings::from_flat(2, vec![1.0, 0.0, 0.9, 0.1, 0.0, 1.0]);
//! let index = HnswIndex::build(&emb, &AnnConfig::default());
//! let hits = index.search_node(0, 1);
//! assert_eq!(hits[0].0, 1); // node 1 points almost the same way as node 0
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use crate::kernels;
use crate::quant::QuantizedMatrix;
use crate::Embeddings;

/// Hard cap on HNSW layer count; with `m >= 2` the level sampler reaches
/// this only with astronomically small probability.
const MAX_LEVEL: usize = 16;

/// How an embedding query selects its top-k candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// Brute-force scan over every vector: exact results, `O(n·d)` per query.
    Exact,
    /// HNSW graph search: approximate results in `O(log n · d)`-ish time,
    /// falling back to the exact scan when the snapshot carries no index.
    #[default]
    Ann,
}

/// HNSW construction and search parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnConfig {
    /// Maximum neighbours kept per node on the upper layers (layer 0 keeps
    /// `2·m`). Higher values trade memory and build time for recall.
    pub m: usize,
    /// Beam width of the candidate search during construction; must be at
    /// least `m`.
    pub ef_construction: usize,
    /// Default beam width during queries (raised to `k` when `k` is larger);
    /// the recall/latency knob.
    pub ef_search: usize,
    /// Seed of the deterministic per-node layer hash.
    pub seed: u64,
    /// Score candidates in int8 during traversal and exact scans, re-scoring
    /// only the top slice in f32. Cuts scan bandwidth 4x; reported scores
    /// stay exact f32.
    pub quantize: bool,
    /// With [`quantize`](Self::quantize): how many candidates per requested
    /// result are re-scored in f32 (`k · rerank`, clamped to the beam).
    pub rerank: usize,
    /// Reuse the previous epoch's graph on publish, re-inserting only nodes
    /// whose vectors drifted (plus new/retired nodes), instead of rebuilding
    /// from scratch.
    pub incremental: bool,
    /// L2 distance between a node's old and new *normalized* vectors above
    /// which an incremental build re-inserts it. 0 re-inserts on any change.
    pub drift_threshold: f32,
}

impl Default for AnnConfig {
    fn default() -> Self {
        AnnConfig {
            m: 16,
            ef_construction: 100,
            ef_search: 64,
            seed: 42,
            quantize: false,
            rerank: 4,
            incremental: true,
            drift_threshold: 0.05,
        }
    }
}

/// What one [`HnswIndex::build_incremental`] reused versus rebuilt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Nodes whose graph links were carried over unchanged.
    pub reused: usize,
    /// Existing nodes re-inserted because their vector drifted past the
    /// threshold.
    pub reinserted: usize,
    /// Nodes beyond the previous epoch's range, inserted fresh.
    pub added: usize,
    /// Previous-epoch nodes no longer present; their ids were filtered out of
    /// every surviving adjacency list.
    pub retired: usize,
}

/// An `(f32 score, node id)` pair ordered as "bigger score is better" with
/// NaN collapsed to equality and ids as the tie-break, so it can live in
/// heaps. Shared by the ANN search here and the exact scan in `store.rs` —
/// both paths must break ties identically.
#[derive(PartialEq, Clone, Copy)]
pub(crate) struct Sim(pub(crate) f32, pub(crate) u32);

impl Eq for Sim {}
impl PartialOrd for Sim {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Sim {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.1.cmp(&other.1))
    }
}

/// A generation-stamped visited set: `clear` is O(1), so one allocation
/// serves every layer of a search (and every insertion of a build).
struct Visited {
    stamp: Vec<u32>,
    gen: u32,
}

impl Visited {
    fn new(n: usize) -> Self {
        Visited {
            stamp: vec![0; n],
            gen: 0,
        }
    }

    /// Grows the set to cover `n` nodes; existing stamps stay valid because
    /// `clear` always moves to a generation no old stamp can carry.
    fn ensure(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
    }

    fn clear(&mut self) {
        if self.gen == u32::MAX {
            self.stamp.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
    }

    /// Marks `v` visited; returns `true` when it was already marked.
    fn test_and_set(&mut self, v: u32) -> bool {
        let slot = &mut self.stamp[v as usize];
        let seen = *slot == self.gen;
        *slot = self.gen;
        seen
    }
}

/// A query the beam search can score nodes against: the f32 normalized vector
/// (construction, unquantized search) or its int8 codes (quantized search).
enum QueryRef<'a> {
    F32(&'a [f32]),
    I8 { codes: &'a [i8], scale: f32 },
}

/// The layer of `node` under `seed`: a splitmix64 hash mapped through the
/// standard HNSW exponential (`P(level >= l) = m^-l` via `ml = 1/ln m`).
/// Being a pure per-node function — not a sequential RNG draw — is what lets
/// incremental builds keep every surviving node on its original layer.
fn level_for(seed: u64, node: u32, ml: f64) -> usize {
    let mut x = seed ^ (node as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    // 53 uniform mantissa bits -> u in [0, 1).
    let u = (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    ((-(1.0 - u).ln() * ml) as usize).min(MAX_LEVEL)
}

/// L2-normalizes every row of `embeddings` into one flat buffer (zero rows
/// stay zero), using the kernel layer for the norm pass.
fn normalize_rows(embeddings: &Embeddings) -> Vec<f32> {
    let dim = embeddings.dim();
    let n = embeddings.num_nodes();
    let mut normalized = Vec::with_capacity(n * dim);
    for v in 0..n as u32 {
        let row = embeddings.vector(v);
        let norm = kernels::l2_norm(row);
        if norm == 0.0 {
            normalized.extend_from_slice(row);
        } else {
            normalized.extend(row.iter().map(|x| x / norm));
        }
    }
    normalized
}

/// A Hierarchical Navigable Small World index over one embedding version.
///
/// Built by [`HnswIndex::build`] (or grafted from a previous epoch by
/// [`HnswIndex::build_incremental`]); queried concurrently by any number of
/// readers through [`HnswIndex::search`] / [`HnswIndex::search_node`].
#[derive(Debug)]
pub struct HnswIndex {
    dim: usize,
    num_nodes: usize,
    ef_search: usize,
    /// f32 re-rank budget multiplier for the quantized path.
    rerank: usize,
    /// L2-normalized copies of the indexed vectors (zero vectors stay zero),
    /// so similarity is one dot product.
    normalized: Vec<f32>,
    /// Int8 codes of `normalized` when the config enables quantized traversal.
    quant: Option<QuantizedMatrix>,
    /// `neighbors[node][level]` — adjacency per layer, `0..=node_level`.
    neighbors: Vec<Vec<Vec<u32>>>,
    entry: u32,
    top_level: usize,
    /// Whether any node has been inserted yet (the first one seeds `entry`).
    seeded: bool,
    build_time: Duration,
    incremental: Option<IncrementalStats>,
}

impl HnswIndex {
    /// Builds the index over every vector in `embeddings`.
    ///
    /// Deterministic for a given `(embeddings, config)` pair. Cost is
    /// `O(n · ef_construction · d)`-ish — this is the per-epoch rebuild the
    /// serving layer pays so queries get out of the full-scan regime (see
    /// [`build_incremental`](Self::build_incremental) for the streaming-epoch
    /// shortcut).
    pub fn build(embeddings: &Embeddings, config: &AnnConfig) -> Self {
        Self::build_masked(embeddings, config, None)
    }

    /// [`build`](Self::build) restricted to a live universe: ids with
    /// `live[v] == false` are never inserted, so they are unreachable from any
    /// search — the query plane's guarantee that retired nodes cannot appear
    /// in `top_k` results. `live == None` means every id is live.
    pub fn build_masked(
        embeddings: &Embeddings,
        config: &AnnConfig,
        live: Option<&[bool]>,
    ) -> Self {
        assert!(config.m >= 2, "HNSW needs m >= 2");
        if let Some(mask) = live {
            assert_eq!(
                mask.len(),
                embeddings.num_nodes(),
                "live mask length must equal the embedding row count"
            );
        }
        let start = Instant::now();
        let n = embeddings.num_nodes();
        let mut index = Self::empty_shell(embeddings, config);
        let ml = 1.0 / (config.m as f64).ln();
        let mut visited = Visited::new(n);
        for v in 0..n as u32 {
            if let Some(mask) = live {
                if !mask[v as usize] {
                    continue;
                }
            }
            let level = level_for(config.seed, v, ml);
            index.insert(v, level, config, &mut visited);
        }
        index.finish_build(config, start);
        index
    }

    /// Builds the index for a new epoch by reusing `prev`'s graph structure.
    ///
    /// Nodes whose normalized vector moved no further than
    /// [`AnnConfig::drift_threshold`] (L2) keep their adjacency lists
    /// verbatim; drifted nodes and nodes beyond `prev`'s range are re-inserted
    /// with the standard insertion algorithm, and retired ids (past the new
    /// node count) are filtered out of every surviving list. Because layer
    /// assignment is a pure per-node hash, surviving nodes keep their layers,
    /// so the grafted graph obeys the same invariants as a full build.
    ///
    /// Stale links are tolerated by construction: a kept node may still point
    /// at a drifted neighbour, but scores are always computed from the *new*
    /// vectors, so such links only ever add candidates to the beam. Falls
    /// back to a full [`build`](Self::build) when dimensions changed or
    /// `prev` is empty. Per-build reuse counts are reported via
    /// [`incremental_stats`](Self::incremental_stats).
    pub fn build_incremental(embeddings: &Embeddings, config: &AnnConfig, prev: &Self) -> Self {
        Self::build_incremental_masked(embeddings, config, prev, None)
    }

    /// [`build_incremental`](Self::build_incremental) restricted to a live
    /// universe. Dead ids are dropped from every surviving adjacency list and
    /// never re-inserted; ids that were absent from `prev` (retired in an
    /// earlier epoch, or newly arrived) but are live now are inserted fresh.
    pub fn build_incremental_masked(
        embeddings: &Embeddings,
        config: &AnnConfig,
        prev: &Self,
        live: Option<&[bool]>,
    ) -> Self {
        assert!(config.m >= 2, "HNSW needs m >= 2");
        if prev.dim != embeddings.dim() || prev.num_nodes == 0 {
            return Self::build_masked(embeddings, config, live);
        }
        if let Some(mask) = live {
            assert_eq!(
                mask.len(),
                embeddings.num_nodes(),
                "live mask length must equal the embedding row count"
            );
        }
        let is_live = |v: usize| live.map_or(true, |m| m[v]);
        let start = Instant::now();
        let n = embeddings.num_nodes();
        let n_old = prev.num_nodes;
        let mut index = Self::empty_shell(embeddings, config);
        let dim = index.dim;

        // Classify every node: kept (graph links survive) or fresh
        // (re-inserted). Drift is measured between old and new *normalized*
        // vectors via ||a - b||^2 = ||a||^2 + ||b||^2 - 2·a·b (the norms are
        // 1 for regular rows and 0 for zero rows, so stable zero vectors
        // correctly count as undrifted).
        let threshold_sq = (config.drift_threshold.max(0.0) as f64).powi(2);
        let mut fresh = vec![false; n];
        let mut stats = IncrementalStats {
            retired: n_old.saturating_sub(n),
            ..Default::default()
        };
        for (v, is_fresh) in fresh.iter_mut().enumerate() {
            if !is_live(v) {
                // Dead id: neither kept nor inserted. It only counts as
                // retired when the previous epoch actually carried it.
                if v < n_old && !prev.neighbors[v].is_empty() {
                    stats.retired += 1;
                }
                continue;
            }
            if v >= n_old || prev.neighbors[v].is_empty() {
                // Beyond the old range, or absent from the old graph (dead
                // last epoch, rejoining now): insert fresh.
                *is_fresh = true;
                stats.added += 1;
                continue;
            }
            let new_row = &index.normalized[v * dim..(v + 1) * dim];
            let old_row = prev.vec_of(v as u32);
            let dot = kernels::dot(new_row, old_row) as f64;
            let norms_sq = (kernels::squared_norm(new_row) + kernels::squared_norm(old_row)) as f64;
            if (norms_sq - 2.0 * dot).max(0.0) > threshold_sq {
                *is_fresh = true;
                stats.reinserted += 1;
            } else {
                stats.reused += 1;
            }
        }

        // Graft the surviving structure, dropping links to retired ids and
        // tracking the highest surviving layer as the new entry point.
        for (v, _) in fresh
            .iter()
            .enumerate()
            .take(n.min(n_old))
            .filter(|&(v, &f)| !f && is_live(v) && !prev.neighbors[v].is_empty())
        {
            let mut adj = prev.neighbors[v].clone();
            for level in adj.iter_mut() {
                level.retain(|&u| (u as usize) < n && is_live(u as usize));
            }
            let node_top = adj.len().saturating_sub(1);
            if !index.seeded || node_top > index.top_level {
                index.entry = v as u32;
                index.top_level = node_top;
            }
            index.seeded = true;
            index.neighbors[v] = adj;
        }

        let ml = 1.0 / (config.m as f64).ln();
        // Pre-size every fresh node's layer lists before any insertion: kept
        // nodes may still link to a drifted node, so the beam can reach (and
        // link back into) a fresh node before its own insertion runs.
        for (v, _) in fresh.iter().enumerate().filter(|&(_, &f)| f) {
            let level = level_for(config.seed, v as u32, ml);
            index.neighbors[v] = vec![Vec::new(); level + 1];
        }
        let mut visited = Visited::new(n);
        for (v, _) in fresh.iter().enumerate().filter(|&(_, &f)| f) {
            let level = level_for(config.seed, v as u32, ml);
            index.insert(v as u32, level, config, &mut visited);
        }
        index.incremental = Some(stats);
        index.finish_build(config, start);
        index
    }

    /// An index shell with normalized vectors but no graph yet.
    fn empty_shell(embeddings: &Embeddings, config: &AnnConfig) -> Self {
        let n = embeddings.num_nodes();
        HnswIndex {
            dim: embeddings.dim(),
            num_nodes: n,
            ef_search: config.ef_search.max(1),
            rerank: config.rerank.max(1),
            normalized: normalize_rows(embeddings),
            quant: None,
            neighbors: vec![Vec::new(); n],
            entry: 0,
            top_level: 0,
            seeded: false,
            build_time: Duration::ZERO,
            incremental: None,
        }
    }

    /// Post-build pass: quantize the normalized matrix when configured, stamp
    /// the build time.
    fn finish_build(&mut self, config: &AnnConfig, start: Instant) {
        if config.quantize && self.num_nodes > 0 {
            self.quant = Some(QuantizedMatrix::quantize(self.dim, &self.normalized));
        }
        self.build_time = start.elapsed();
    }

    /// Number of indexed vectors.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The index's top layer (0 for tiny graphs).
    pub fn top_level(&self) -> usize {
        self.top_level
    }

    /// Whether queries traverse the graph scoring candidates in int8.
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// Reuse statistics when this index came from
    /// [`build_incremental`](Self::build_incremental) (and did not fall back
    /// to a full build); `None` for full builds.
    pub fn incremental_stats(&self) -> Option<IncrementalStats> {
        self.incremental
    }

    /// Wall-clock time the build took — the per-epoch (re)build cost a
    /// publishing writer pays outside the store's write lock.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    #[inline]
    fn vec_of(&self, v: u32) -> &[f32] {
        let start = v as usize * self.dim;
        &self.normalized[start..start + self.dim]
    }

    #[inline]
    fn dot(&self, query: &[f32], v: u32) -> f32 {
        kernels::dot(query, self.vec_of(v))
    }

    /// Scores one candidate against the query in whichever precision the
    /// query was prepared in.
    #[inline]
    fn score(&self, query: &QueryRef<'_>, v: u32) -> f32 {
        match *query {
            QueryRef::F32(q) => self.dot(q, v),
            QueryRef::I8 { codes, scale } => self
                .quant
                .as_ref()
                .expect("int8 query against unquantized index")
                .dot_query(codes, scale, v),
        }
    }

    /// Beam search on one layer: expands from `entries` keeping the `ef`
    /// most similar nodes seen; returns them best first.
    fn search_layer(
        &self,
        query: &QueryRef<'_>,
        entries: &[Sim],
        ef: usize,
        level: usize,
        visited: &mut Visited,
    ) -> Vec<Sim> {
        visited.clear();
        // `candidates` is a max-heap of the frontier, `results` a min-heap of
        // the best `ef` found so far.
        let mut candidates: BinaryHeap<Sim> = BinaryHeap::new();
        let mut results: BinaryHeap<Reverse<Sim>> = BinaryHeap::with_capacity(ef + 1);
        for &e in entries {
            if !visited.test_and_set(e.1) {
                candidates.push(e);
                results.push(Reverse(e));
                if results.len() > ef {
                    results.pop();
                }
            }
        }
        while let Some(c) = candidates.pop() {
            let worst = results.peek().map(|r| r.0 .0).unwrap_or(f32::NEG_INFINITY);
            if results.len() >= ef && c.0 < worst {
                break;
            }
            let adj = &self.neighbors[c.1 as usize];
            if level >= adj.len() {
                continue;
            }
            for &u in &adj[level] {
                if visited.test_and_set(u) {
                    continue;
                }
                let s = Sim(self.score(query, u), u);
                let worst = results.peek().map(|r| r.0 .0).unwrap_or(f32::NEG_INFINITY);
                if results.len() < ef || s.0 > worst {
                    candidates.push(s);
                    results.push(Reverse(s));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<Sim> = results.into_iter().map(|r| r.0).collect();
        out.sort_by(|a, b| b.cmp(a));
        out
    }

    /// The select-neighbours heuristic (Algorithm 4 of the HNSW paper): a
    /// candidate is kept only when it is closer to the query than to every
    /// neighbour already selected, which preserves links across clusters;
    /// pruned candidates backfill remaining slots.
    fn select_neighbors(&self, candidates: &[Sim], m: usize) -> Vec<Sim> {
        let mut selected: Vec<Sim> = Vec::with_capacity(m);
        let mut skipped: Vec<Sim> = Vec::new();
        for &c in candidates {
            if selected.len() >= m {
                break;
            }
            let cv = self.vec_of(c.1);
            let diverse = selected.iter().all(|s| {
                let to_selected = kernels::dot(cv, self.vec_of(s.1));
                to_selected < c.0
            });
            if diverse {
                selected.push(c);
            } else {
                skipped.push(c);
            }
        }
        for c in skipped {
            if selected.len() >= m {
                break;
            }
            selected.push(c);
        }
        selected
    }

    /// Adds `b` to `a`'s adjacency on `level`, pruning back to `cap` with the
    /// diversity heuristic when the list overflows.
    fn link(&mut self, a: u32, b: u32, level: usize, cap: usize) {
        let list = &mut self.neighbors[a as usize][level];
        if list.contains(&b) {
            return;
        }
        list.push(b);
        if list.len() <= cap {
            return;
        }
        let av = a as usize * self.dim;
        let query: Vec<f32> = self.normalized[av..av + self.dim].to_vec();
        let mut scored: Vec<Sim> = self.neighbors[a as usize][level]
            .iter()
            .map(|&u| Sim(self.dot(&query, u), u))
            .collect();
        scored.sort_by(|x, y| y.cmp(x));
        let kept = self.select_neighbors(&scored, cap);
        self.neighbors[a as usize][level] = kept.into_iter().map(|s| s.1).collect();
    }

    /// Inserts `q` at `level`. Construction always scores in f32: graph
    /// quality decides recall for every later query, so the build never
    /// trades it for quantized bandwidth.
    fn insert(&mut self, q: u32, level: usize, config: &AnnConfig, visited: &mut Visited) {
        // Keep a correctly pre-sized shell (incremental builds allocate them
        // up front, and earlier insertions may already have linked into it).
        if self.neighbors[q as usize].len() != level + 1 {
            self.neighbors[q as usize] = vec![Vec::new(); level + 1];
        }
        if !self.seeded {
            self.seeded = true;
            self.entry = q;
            self.top_level = level;
            return;
        }
        let query: Vec<f32> = self.vec_of(q).to_vec();
        let qref = QueryRef::F32(&query);
        let mut ep = vec![Sim(self.dot(&query, self.entry), self.entry)];
        // Greedy descent through the layers above the new node's level.
        for l in ((level + 1)..=self.top_level).rev() {
            ep = self.search_layer(&qref, &ep, 1, l, visited);
        }
        // Beam search and bidirectional linking on the layers the node joins.
        for l in (0..=level.min(self.top_level)).rev() {
            let found = self.search_layer(&qref, &ep, config.ef_construction.max(1), l, visited);
            let cap = if l == 0 { config.m * 2 } else { config.m };
            let chosen = self.select_neighbors(&found, config.m);
            for s in &chosen {
                self.link(q, s.1, l, cap);
                self.link(s.1, q, l, cap);
            }
            ep = found;
        }
        if level > self.top_level {
            self.top_level = level;
            self.entry = q;
        }
    }

    /// The `k` indexed vectors most cosine-similar to `query`, best first.
    ///
    /// `query` need not be an indexed vector — external embeddings of the
    /// right dimensionality work too (it is normalized internally). On a
    /// quantized index the graph is walked with int8 scores and the top
    /// `k · rerank` candidates are re-scored in f32, so the returned scores
    /// are always exact cosines.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<(u32, f32)> {
        assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
        if self.num_nodes == 0 || k == 0 || !self.seeded {
            // `!seeded` covers a masked build whose universe is entirely
            // retired: `entry` is a dangling default there, not a real node.
            return Vec::new();
        }
        let norm = kernels::l2_norm(query);
        let normalized: Vec<f32> = if norm == 0.0 {
            query.to_vec()
        } else {
            query.iter().map(|x| x / norm).collect()
        };
        // Reuse a per-thread visited set: allocating (and zeroing) one per
        // query would put an O(n) memset on the sub-linear serving path.
        thread_local! {
            static SCRATCH: std::cell::RefCell<Visited> =
                std::cell::RefCell::new(Visited::new(0));
        }
        SCRATCH.with(|scratch| {
            let mut visited = scratch.borrow_mut();
            visited.ensure(self.num_nodes);
            match &self.quant {
                None => {
                    let qref = QueryRef::F32(&normalized);
                    let ef = self.ef_search.max(k);
                    let mut found = self.descend(&qref, ef, &mut visited);
                    found.truncate(k);
                    found.into_iter().map(|s| (s.1, s.0)).collect()
                }
                Some(_) => {
                    let (codes, scale) = QuantizedMatrix::quantize_query(&normalized);
                    let qref = QueryRef::I8 {
                        codes: &codes,
                        scale,
                    };
                    // Widen the beam to the re-rank budget so the f32 pass
                    // has k·rerank candidates to choose from.
                    let budget = k.saturating_mul(self.rerank);
                    let ef = self.ef_search.max(budget);
                    let mut found = self.descend(&qref, ef, &mut visited);
                    found.truncate(budget);
                    let mut rescored: Vec<Sim> = found
                        .iter()
                        .map(|s| Sim(self.dot(&normalized, s.1), s.1))
                        .collect();
                    rescored.sort_by(|a, b| b.cmp(a));
                    rescored.truncate(k);
                    rescored.into_iter().map(|s| (s.1, s.0)).collect()
                }
            }
        })
    }

    /// Greedy upper-layer descent followed by the layer-0 beam search.
    fn descend(&self, qref: &QueryRef<'_>, ef: usize, visited: &mut Visited) -> Vec<Sim> {
        let mut ep = vec![Sim(self.score(qref, self.entry), self.entry)];
        for l in (1..=self.top_level).rev() {
            ep = self.search_layer(qref, &ep, 1, l, visited);
        }
        self.search_layer(qref, &ep, ef, 0, visited)
    }

    /// The `k` nodes most similar to the indexed `node` (excluding `node`
    /// itself), best first. Empty when `node` is out of range.
    pub fn search_node(&self, node: u32, k: usize) -> Vec<(u32, f32)> {
        if (node as usize) >= self.num_nodes || k == 0 {
            return Vec::new();
        }
        let query: Vec<f32> = self.vec_of(node).to_vec();
        // Over-fetch by one so the query node's own hit can be dropped.
        let mut hits = self.search(&query, k + 1);
        hits.retain(|&(u, _)| u != node);
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_unit_embeddings(n: usize, dim: usize, seed: u64) -> Embeddings {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut flat = Vec::with_capacity(n * dim);
        for _ in 0..n {
            let row: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            flat.extend(row.iter().map(|x| x / norm));
        }
        Embeddings::from_flat(dim, flat)
    }

    fn recall_vs_exact(index: &HnswIndex, emb: &Embeddings, k: usize, step: usize) -> f64 {
        let mut hits = 0usize;
        let mut total = 0usize;
        for node in (0..emb.num_nodes() as u32).step_by(step) {
            let approx = index.search_node(node, k);
            let exact = emb.most_similar(node, k);
            let exact_ids: Vec<u32> = exact.iter().map(|&(u, _)| u).collect();
            hits += approx
                .iter()
                .filter(|&&(u, _)| exact_ids.contains(&u))
                .count();
            total += k;
        }
        hits as f64 / total as f64
    }

    #[test]
    fn empty_and_tiny_inputs_answer_safely() {
        let empty = Embeddings::from_flat(4, Vec::new());
        let index = HnswIndex::build(&empty, &AnnConfig::default());
        assert!(index.search(&[0.0; 4], 3).is_empty());
        assert!(index.search_node(0, 3).is_empty());

        let one = Embeddings::from_flat(2, vec![1.0, 0.0]);
        let index = HnswIndex::build(&one, &AnnConfig::default());
        assert!(index.search_node(0, 3).is_empty());
        assert_eq!(index.search(&[1.0, 0.0], 3), vec![(0, 1.0)]);
    }

    #[test]
    fn search_node_never_returns_the_query_node() {
        let emb = random_unit_embeddings(200, 8, 3);
        let index = HnswIndex::build(&emb, &AnnConfig::default());
        for node in [0u32, 17, 99, 199] {
            let hits = index.search_node(node, 10);
            assert_eq!(hits.len(), 10);
            assert!(hits.iter().all(|&(u, _)| u != node));
            for pair in hits.windows(2) {
                assert!(pair[0].1 >= pair[1].1, "results not sorted best-first");
            }
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let emb = random_unit_embeddings(300, 16, 9);
        let cfg = AnnConfig {
            seed: 7,
            ..Default::default()
        };
        let a = HnswIndex::build(&emb, &cfg);
        let b = HnswIndex::build(&emb, &cfg);
        assert_eq!(a.top_level(), b.top_level());
        for node in 0..300u32 {
            assert_eq!(a.search_node(node, 5), b.search_node(node, 5));
        }
    }

    #[test]
    fn recall_against_brute_force_is_high() {
        let emb = random_unit_embeddings(500, 16, 21);
        let index = HnswIndex::build(&emb, &AnnConfig::default());
        let recall = recall_vs_exact(&index, &emb, 10, 7);
        assert!(recall >= 0.9, "recall@10 too low: {recall}");
    }

    #[test]
    fn scores_match_exact_cosine() {
        let emb = random_unit_embeddings(100, 8, 5);
        let index = HnswIndex::build(&emb, &AnnConfig::default());
        for (u, s) in index.search_node(0, 5) {
            let want = emb.cosine_similarity(0, u);
            assert!((s - want).abs() < 1e-5, "node {u}: {s} vs {want}");
        }
    }

    #[test]
    fn zero_vectors_are_indexed_without_panicking() {
        let emb = Embeddings::from_flat(2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
        let index = HnswIndex::build(&emb, &AnnConfig::default());
        let hits = index.search_node(1, 3);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn quantized_index_keeps_recall_and_exact_scores() {
        let emb = random_unit_embeddings(400, 24, 11);
        let cfg = AnnConfig {
            quantize: true,
            ..Default::default()
        };
        let index = HnswIndex::build(&emb, &cfg);
        assert!(index.is_quantized());
        let recall = recall_vs_exact(&index, &emb, 10, 7);
        assert!(recall >= 0.9, "quantized recall@10 too low: {recall}");
        // Re-ranked scores are exact f32 cosines, not dequantized estimates.
        for (u, s) in index.search_node(3, 5) {
            let want = emb.cosine_similarity(3, u);
            assert!((s - want).abs() < 1e-5, "node {u}: {s} vs {want}");
        }
    }

    #[test]
    fn incremental_build_without_drift_reuses_everything() {
        let emb = random_unit_embeddings(300, 16, 13);
        let cfg = AnnConfig::default();
        let full = HnswIndex::build(&emb, &cfg);
        let inc = HnswIndex::build_incremental(&emb, &cfg, &full);
        let stats = inc.incremental_stats().expect("incremental path taken");
        assert_eq!(
            stats,
            IncrementalStats {
                reused: 300,
                reinserted: 0,
                added: 0,
                retired: 0,
            }
        );
        // Nothing was re-inserted, so the grafted graph answers identically.
        for node in (0..300u32).step_by(11) {
            assert_eq!(full.search_node(node, 5), inc.search_node(node, 5));
        }
    }

    #[test]
    fn incremental_build_tracks_churn_and_stays_searchable() {
        let cfg = AnnConfig::default();
        let base = random_unit_embeddings(250, 16, 17);
        let prev = HnswIndex::build(&base, &cfg);

        // Next epoch: 30 nodes drift hard and the last 20 retire.
        let dim = base.dim();
        let mut flat = base.as_flat().to_vec();
        let mut rng = SmallRng::seed_from_u64(99);
        for v in 0..30 {
            for j in 0..dim {
                flat[v * dim + j] = rng.gen_range(-1.0f32..1.0);
            }
        }
        flat.truncate((250 - 20) * dim);
        let next = Embeddings::from_flat(dim, flat.clone());
        let inc = HnswIndex::build_incremental(&next, &cfg, &prev);
        let stats = inc.incremental_stats().expect("incremental path taken");
        assert_eq!(stats.added, 0);
        assert_eq!(stats.retired, 20);
        assert!(
            stats.reinserted >= 30,
            "drifted nodes not detected: {stats:?}"
        );
        assert_eq!(
            stats.reused + stats.reinserted + stats.added,
            inc.num_nodes()
        );
        // No retired id may survive anywhere in the graph.
        let n = inc.num_nodes() as u32;
        for adj in &inc.neighbors {
            for level in adj {
                assert!(level.iter().all(|&u| u < n));
            }
        }
        let recall = recall_vs_exact(&inc, &next, 10, 7);
        assert!(recall >= 0.85, "post-churn recall@10 too low: {recall}");

        // The epoch after that grows by 20 brand-new nodes.
        for _ in 0..20 * dim {
            flat.push(rng.gen_range(-1.0f32..1.0));
        }
        let grown = Embeddings::from_flat(dim, flat);
        let inc2 = HnswIndex::build_incremental(&grown, &cfg, &inc);
        let stats2 = inc2.incremental_stats().expect("incremental path taken");
        assert_eq!(stats2.added, 20);
        assert_eq!(stats2.retired, 0);
        let recall2 = recall_vs_exact(&inc2, &grown, 10, 7);
        assert!(recall2 >= 0.85, "post-growth recall@10 too low: {recall2}");
    }

    #[test]
    fn masked_builds_make_retired_ids_unreachable() {
        let emb = random_unit_embeddings(200, 16, 29);
        let cfg = AnnConfig::default();
        let mut live = vec![true; 200];
        for v in (0..200).step_by(5) {
            live[v] = false;
        }

        // Full masked build: no dead id in any result or adjacency list.
        let masked = HnswIndex::build_masked(&emb, &cfg, Some(&live));
        for node in (1..200u32).step_by(7) {
            for (u, _) in masked.search_node(node, 10) {
                assert!(live[u as usize], "retired id {u} surfaced");
            }
        }
        for adj in &masked.neighbors {
            for level in adj {
                assert!(level.iter().all(|&u| live[u as usize]));
            }
        }

        // Incremental masked build over a fully-live prev epoch: same
        // guarantee, and the newly-dead ids are reported as retired.
        let prev = HnswIndex::build(&emb, &cfg);
        let inc = HnswIndex::build_incremental_masked(&emb, &cfg, &prev, Some(&live));
        let stats = inc.incremental_stats().expect("incremental path taken");
        assert_eq!(stats.retired, 40);
        assert_eq!(stats.reused + stats.reinserted + stats.added, 160);
        for adj in &inc.neighbors {
            for level in adj {
                assert!(level.iter().all(|&u| live[u as usize]));
            }
        }
        for node in (1..200u32).step_by(7) {
            for (u, _) in inc.search_node(node, 10) {
                assert!(live[u as usize], "retired id {u} surfaced incrementally");
            }
        }

        // A dead id rejoining next epoch is inserted fresh.
        let mut rejoin = live.clone();
        rejoin[0] = true;
        let re = HnswIndex::build_incremental_masked(&emb, &cfg, &inc, Some(&rejoin));
        let stats = re.incremental_stats().expect("incremental path taken");
        assert_eq!(stats.added, 1);
        assert!(re.search_node(1, 161).iter().any(|&(u, _)| u == 0));

        // An all-dead universe still answers (with nothing).
        let none = HnswIndex::build_masked(&emb, &cfg, Some(&vec![false; 200]));
        assert!(none.search(&vec![1.0; 16], 5).is_empty());
    }

    #[test]
    fn incremental_build_falls_back_on_dim_change() {
        let a = random_unit_embeddings(50, 8, 1);
        let b = random_unit_embeddings(50, 16, 1);
        let prev = HnswIndex::build(&a, &AnnConfig::default());
        let inc = HnswIndex::build_incremental(&b, &AnnConfig::default(), &prev);
        assert!(inc.incremental_stats().is_none(), "should be a full build");
        assert_eq!(inc.search_node(0, 3).len(), 3);
    }
}
