//! Approximate nearest-neighbour search over embedding snapshots.
//!
//! The serving path's exact `top_k` is a full scan: every query touches all
//! `n` vectors (`O(n·d)` per query), which caps the query service far below
//! the millions-of-users traffic the engine targets. This module provides an
//! [`HnswIndex`] — a Hierarchical Navigable Small World graph (Malkov &
//! Yashunin, 2016) built once per published snapshot — that answers the same
//! cosine top-k queries in roughly `O(log n · d)` by greedy descent through a
//! layered proximity graph.
//!
//! Design points:
//!
//! * **Immutable after build.** The index is constructed alongside a
//!   snapshot's norms (outside the store's write lock) and never mutated
//!   afterwards, so concurrent readers share it without synchronization.
//! * **Deterministic.** Layer assignment draws from a [`SmallRng`] seeded by
//!   [`AnnConfig::seed`] (the engine seed), and insertion order is node
//!   order — two builds over the same vectors produce the same graph.
//! * **Cosine via normalization.** Vectors are L2-normalized at build time,
//!   so similarity is a plain dot product and results carry the same cosine
//!   scores the exact scan reports.
//!
//! ```
//! use uninet_embedding::{AnnConfig, Embeddings, HnswIndex};
//!
//! let emb = Embeddings::from_flat(2, vec![1.0, 0.0, 0.9, 0.1, 0.0, 1.0]);
//! let index = HnswIndex::build(&emb, &AnnConfig::default());
//! let hits = index.search_node(0, 1);
//! assert_eq!(hits[0].0, 1); // node 1 points almost the same way as node 0
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::Embeddings;

/// Hard cap on HNSW layer count; with `m >= 2` the level sampler reaches
/// this only with astronomically small probability.
const MAX_LEVEL: usize = 16;

/// How an embedding query selects its top-k candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// Brute-force scan over every vector: exact results, `O(n·d)` per query.
    Exact,
    /// HNSW graph search: approximate results in `O(log n · d)`-ish time,
    /// falling back to the exact scan when the snapshot carries no index.
    #[default]
    Ann,
}

/// HNSW construction and search parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnConfig {
    /// Maximum neighbours kept per node on the upper layers (layer 0 keeps
    /// `2·m`). Higher values trade memory and build time for recall.
    pub m: usize,
    /// Beam width of the candidate search during construction; must be at
    /// least `m`.
    pub ef_construction: usize,
    /// Default beam width during queries (raised to `k` when `k` is larger);
    /// the recall/latency knob.
    pub ef_search: usize,
    /// Seed of the deterministic layer-assignment RNG.
    pub seed: u64,
}

impl Default for AnnConfig {
    fn default() -> Self {
        AnnConfig {
            m: 16,
            ef_construction: 100,
            ef_search: 64,
            seed: 42,
        }
    }
}

/// An `(f32 score, node id)` pair ordered as "bigger score is better" with
/// NaN collapsed to equality and ids as the tie-break, so it can live in
/// heaps. Shared by the ANN search here and the exact scan in `store.rs` —
/// both paths must break ties identically.
#[derive(PartialEq, Clone, Copy)]
pub(crate) struct Sim(pub(crate) f32, pub(crate) u32);

impl Eq for Sim {}
impl PartialOrd for Sim {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Sim {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.1.cmp(&other.1))
    }
}

/// A generation-stamped visited set: `clear` is O(1), so one allocation
/// serves every layer of a search (and every insertion of a build).
struct Visited {
    stamp: Vec<u32>,
    gen: u32,
}

impl Visited {
    fn new(n: usize) -> Self {
        Visited {
            stamp: vec![0; n],
            gen: 0,
        }
    }

    /// Grows the set to cover `n` nodes; existing stamps stay valid because
    /// `clear` always moves to a generation no old stamp can carry.
    fn ensure(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
    }

    fn clear(&mut self) {
        if self.gen == u32::MAX {
            self.stamp.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
    }

    /// Marks `v` visited; returns `true` when it was already marked.
    fn test_and_set(&mut self, v: u32) -> bool {
        let slot = &mut self.stamp[v as usize];
        let seen = *slot == self.gen;
        *slot = self.gen;
        seen
    }
}

/// A Hierarchical Navigable Small World index over one embedding version.
///
/// Built by [`HnswIndex::build`]; queried concurrently by any number of
/// readers through [`HnswIndex::search`] / [`HnswIndex::search_node`].
#[derive(Debug)]
pub struct HnswIndex {
    dim: usize,
    num_nodes: usize,
    ef_search: usize,
    /// L2-normalized copies of the indexed vectors (zero vectors stay zero),
    /// so similarity is one dot product.
    normalized: Vec<f32>,
    /// `neighbors[node][level]` — adjacency per layer, `0..=node_level`.
    neighbors: Vec<Vec<Vec<u32>>>,
    entry: u32,
    top_level: usize,
    build_time: Duration,
}

impl HnswIndex {
    /// Builds the index over every vector in `embeddings`.
    ///
    /// Deterministic for a given `(embeddings, config)` pair. Cost is
    /// `O(n · ef_construction · d)`-ish — this is the per-epoch rebuild the
    /// serving layer pays so queries get out of the full-scan regime.
    pub fn build(embeddings: &Embeddings, config: &AnnConfig) -> Self {
        assert!(config.m >= 2, "HNSW needs m >= 2");
        let start = Instant::now();
        let dim = embeddings.dim();
        let n = embeddings.num_nodes();
        let mut normalized = Vec::with_capacity(n * dim);
        for v in 0..n as u32 {
            let row = embeddings.vector(v);
            let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm == 0.0 {
                normalized.extend_from_slice(row);
            } else {
                normalized.extend(row.iter().map(|x| x / norm));
            }
        }
        let mut index = HnswIndex {
            dim,
            num_nodes: n,
            ef_search: config.ef_search.max(1),
            normalized,
            neighbors: vec![Vec::new(); n],
            entry: 0,
            top_level: 0,
            build_time: Duration::ZERO,
        };
        let ml = 1.0 / (config.m as f64).ln();
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut visited = Visited::new(n);
        for v in 0..n as u32 {
            // Exponentially distributed layer assignment: P(level >= l) = m^-l.
            let u: f64 = rng.gen();
            let level = ((-(1.0 - u).ln() * ml) as usize).min(MAX_LEVEL);
            index.insert(v, level, config, &mut visited);
        }
        index.build_time = start.elapsed();
        index
    }

    /// Number of indexed vectors.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The index's top layer (0 for tiny graphs).
    pub fn top_level(&self) -> usize {
        self.top_level
    }

    /// Wall-clock time the build took — the per-epoch rebuild cost a
    /// publishing writer pays outside the store's write lock.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    #[inline]
    fn vec_of(&self, v: u32) -> &[f32] {
        let start = v as usize * self.dim;
        &self.normalized[start..start + self.dim]
    }

    #[inline]
    fn dot(&self, query: &[f32], v: u32) -> f32 {
        query.iter().zip(self.vec_of(v)).map(|(x, y)| x * y).sum()
    }

    /// Beam search on one layer: expands from `entries` keeping the `ef`
    /// most similar nodes seen; returns them best first.
    fn search_layer(
        &self,
        query: &[f32],
        entries: &[Sim],
        ef: usize,
        level: usize,
        visited: &mut Visited,
    ) -> Vec<Sim> {
        visited.clear();
        // `candidates` is a max-heap of the frontier, `results` a min-heap of
        // the best `ef` found so far.
        let mut candidates: BinaryHeap<Sim> = BinaryHeap::new();
        let mut results: BinaryHeap<Reverse<Sim>> = BinaryHeap::with_capacity(ef + 1);
        for &e in entries {
            if !visited.test_and_set(e.1) {
                candidates.push(e);
                results.push(Reverse(e));
                if results.len() > ef {
                    results.pop();
                }
            }
        }
        while let Some(c) = candidates.pop() {
            let worst = results.peek().map(|r| r.0 .0).unwrap_or(f32::NEG_INFINITY);
            if results.len() >= ef && c.0 < worst {
                break;
            }
            let adj = &self.neighbors[c.1 as usize];
            if level >= adj.len() {
                continue;
            }
            for &u in &adj[level] {
                if visited.test_and_set(u) {
                    continue;
                }
                let s = Sim(self.dot(query, u), u);
                let worst = results.peek().map(|r| r.0 .0).unwrap_or(f32::NEG_INFINITY);
                if results.len() < ef || s.0 > worst {
                    candidates.push(s);
                    results.push(Reverse(s));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<Sim> = results.into_iter().map(|r| r.0).collect();
        out.sort_by(|a, b| b.cmp(a));
        out
    }

    /// The select-neighbours heuristic (Algorithm 4 of the HNSW paper): a
    /// candidate is kept only when it is closer to the query than to every
    /// neighbour already selected, which preserves links across clusters;
    /// pruned candidates backfill remaining slots.
    fn select_neighbors(&self, candidates: &[Sim], m: usize) -> Vec<Sim> {
        let mut selected: Vec<Sim> = Vec::with_capacity(m);
        let mut skipped: Vec<Sim> = Vec::new();
        for &c in candidates {
            if selected.len() >= m {
                break;
            }
            let cv = self.vec_of(c.1);
            let diverse = selected.iter().all(|s| {
                let to_selected: f32 = cv.iter().zip(self.vec_of(s.1)).map(|(x, y)| x * y).sum();
                to_selected < c.0
            });
            if diverse {
                selected.push(c);
            } else {
                skipped.push(c);
            }
        }
        for c in skipped {
            if selected.len() >= m {
                break;
            }
            selected.push(c);
        }
        selected
    }

    /// Adds `b` to `a`'s adjacency on `level`, pruning back to `cap` with the
    /// diversity heuristic when the list overflows.
    fn link(&mut self, a: u32, b: u32, level: usize, cap: usize) {
        let list = &mut self.neighbors[a as usize][level];
        if list.contains(&b) {
            return;
        }
        list.push(b);
        if list.len() <= cap {
            return;
        }
        let av = a as usize * self.dim;
        let query: Vec<f32> = self.normalized[av..av + self.dim].to_vec();
        let mut scored: Vec<Sim> = self.neighbors[a as usize][level]
            .iter()
            .map(|&u| Sim(self.dot(&query, u), u))
            .collect();
        scored.sort_by(|x, y| y.cmp(x));
        let kept = self.select_neighbors(&scored, cap);
        self.neighbors[a as usize][level] = kept.into_iter().map(|s| s.1).collect();
    }

    fn insert(&mut self, q: u32, level: usize, config: &AnnConfig, visited: &mut Visited) {
        self.neighbors[q as usize] = vec![Vec::new(); level + 1];
        if q == 0 {
            self.entry = q;
            self.top_level = level;
            return;
        }
        let query: Vec<f32> = self.vec_of(q).to_vec();
        let mut ep = vec![Sim(self.dot(&query, self.entry), self.entry)];
        // Greedy descent through the layers above the new node's level.
        for l in ((level + 1)..=self.top_level).rev() {
            ep = self.search_layer(&query, &ep, 1, l, visited);
        }
        // Beam search and bidirectional linking on the layers the node joins.
        for l in (0..=level.min(self.top_level)).rev() {
            let found = self.search_layer(&query, &ep, config.ef_construction.max(1), l, visited);
            let cap = if l == 0 { config.m * 2 } else { config.m };
            let chosen = self.select_neighbors(&found, config.m);
            for s in &chosen {
                self.link(q, s.1, l, cap);
                self.link(s.1, q, l, cap);
            }
            ep = found;
        }
        if level > self.top_level {
            self.top_level = level;
            self.entry = q;
        }
    }

    /// The `k` indexed vectors most cosine-similar to `query`, best first.
    ///
    /// `query` need not be an indexed vector — external embeddings of the
    /// right dimensionality work too (it is normalized internally).
    pub fn search(&self, query: &[f32], k: usize) -> Vec<(u32, f32)> {
        assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
        if self.num_nodes == 0 || k == 0 {
            return Vec::new();
        }
        let norm = query.iter().map(|x| x * x).sum::<f32>().sqrt();
        let normalized: Vec<f32> = if norm == 0.0 {
            query.to_vec()
        } else {
            query.iter().map(|x| x / norm).collect()
        };
        // Reuse a per-thread visited set: allocating (and zeroing) one per
        // query would put an O(n) memset on the sub-linear serving path.
        thread_local! {
            static SCRATCH: std::cell::RefCell<Visited> =
                std::cell::RefCell::new(Visited::new(0));
        }
        SCRATCH.with(|scratch| {
            let mut visited = scratch.borrow_mut();
            visited.ensure(self.num_nodes);
            let mut ep = vec![Sim(self.dot(&normalized, self.entry), self.entry)];
            for l in (1..=self.top_level).rev() {
                ep = self.search_layer(&normalized, &ep, 1, l, &mut visited);
            }
            let ef = self.ef_search.max(k);
            let mut found = self.search_layer(&normalized, &ep, ef, 0, &mut visited);
            found.truncate(k);
            found.into_iter().map(|s| (s.1, s.0)).collect()
        })
    }

    /// The `k` nodes most similar to the indexed `node` (excluding `node`
    /// itself), best first. Empty when `node` is out of range.
    pub fn search_node(&self, node: u32, k: usize) -> Vec<(u32, f32)> {
        if (node as usize) >= self.num_nodes || k == 0 {
            return Vec::new();
        }
        let query: Vec<f32> = self.vec_of(node).to_vec();
        // Over-fetch by one so the query node's own hit can be dropped.
        let mut hits = self.search(&query, k + 1);
        hits.retain(|&(u, _)| u != node);
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_unit_embeddings(n: usize, dim: usize, seed: u64) -> Embeddings {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut flat = Vec::with_capacity(n * dim);
        for _ in 0..n {
            let row: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            flat.extend(row.iter().map(|x| x / norm));
        }
        Embeddings::from_flat(dim, flat)
    }

    #[test]
    fn empty_and_tiny_inputs_answer_safely() {
        let empty = Embeddings::from_flat(4, Vec::new());
        let index = HnswIndex::build(&empty, &AnnConfig::default());
        assert!(index.search(&[0.0; 4], 3).is_empty());
        assert!(index.search_node(0, 3).is_empty());

        let one = Embeddings::from_flat(2, vec![1.0, 0.0]);
        let index = HnswIndex::build(&one, &AnnConfig::default());
        assert!(index.search_node(0, 3).is_empty());
        assert_eq!(index.search(&[1.0, 0.0], 3), vec![(0, 1.0)]);
    }

    #[test]
    fn search_node_never_returns_the_query_node() {
        let emb = random_unit_embeddings(200, 8, 3);
        let index = HnswIndex::build(&emb, &AnnConfig::default());
        for node in [0u32, 17, 99, 199] {
            let hits = index.search_node(node, 10);
            assert_eq!(hits.len(), 10);
            assert!(hits.iter().all(|&(u, _)| u != node));
            for pair in hits.windows(2) {
                assert!(pair[0].1 >= pair[1].1, "results not sorted best-first");
            }
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let emb = random_unit_embeddings(300, 16, 9);
        let cfg = AnnConfig {
            seed: 7,
            ..Default::default()
        };
        let a = HnswIndex::build(&emb, &cfg);
        let b = HnswIndex::build(&emb, &cfg);
        assert_eq!(a.top_level(), b.top_level());
        for node in 0..300u32 {
            assert_eq!(a.search_node(node, 5), b.search_node(node, 5));
        }
    }

    #[test]
    fn recall_against_brute_force_is_high() {
        let emb = random_unit_embeddings(500, 16, 21);
        let index = HnswIndex::build(&emb, &AnnConfig::default());
        let k = 10;
        let mut hits = 0usize;
        let mut total = 0usize;
        for node in (0..500u32).step_by(7) {
            let approx = index.search_node(node, k);
            let exact = emb.most_similar(node, k);
            let exact_ids: Vec<u32> = exact.iter().map(|&(u, _)| u).collect();
            hits += approx
                .iter()
                .filter(|&&(u, _)| exact_ids.contains(&u))
                .count();
            total += k;
        }
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.9, "recall@10 too low: {recall}");
    }

    #[test]
    fn scores_match_exact_cosine() {
        let emb = random_unit_embeddings(100, 8, 5);
        let index = HnswIndex::build(&emb, &AnnConfig::default());
        for (u, s) in index.search_node(0, 5) {
            let want = emb.cosine_similarity(0, u);
            assert!((s - want).abs() < 1e-5, "node {u}: {s} vs {want}");
        }
    }

    #[test]
    fn zero_vectors_are_indexed_without_panicking() {
        let emb = Embeddings::from_flat(2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
        let index = HnswIndex::build(&emb, &AnnConfig::default());
        let hits = index.search_node(1, 3);
        assert_eq!(hits.len(), 3);
    }
}
