//! Precomputed sigmoid table, following the original word2vec implementation:
//! the logistic function is looked up from a table over `[-MAX_EXP, MAX_EXP]`
//! and clamped to 0 / 1 outside that range.

/// Default table resolution.
pub const DEFAULT_TABLE_SIZE: usize = 1000;
/// Default clamp range.
pub const DEFAULT_MAX_EXP: f32 = 6.0;

/// A lookup table for `σ(x) = 1 / (1 + e^(-x))`.
#[derive(Debug, Clone)]
pub struct SigmoidTable {
    table: Vec<f32>,
    max_exp: f32,
}

impl Default for SigmoidTable {
    fn default() -> Self {
        Self::new(DEFAULT_TABLE_SIZE, DEFAULT_MAX_EXP)
    }
}

impl SigmoidTable {
    /// Builds a table with `size` entries covering `[-max_exp, max_exp]`.
    pub fn new(size: usize, max_exp: f32) -> Self {
        assert!(size >= 2 && max_exp > 0.0);
        let table = (0..size)
            .map(|i| {
                let x = (i as f32 / size as f32 * 2.0 - 1.0) * max_exp;
                let e = x.exp();
                e / (e + 1.0)
            })
            .collect();
        SigmoidTable { table, max_exp }
    }

    /// Looks up `σ(x)`, clamping to 0/1 outside the table range.
    #[inline]
    pub fn sigmoid(&self, x: f32) -> f32 {
        if x >= self.max_exp {
            1.0
        } else if x <= -self.max_exp {
            0.0
        } else {
            let idx =
                ((x + self.max_exp) / (2.0 * self.max_exp) * self.table.len() as f32) as usize;
            self.table[idx.min(self.table.len() - 1)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_exact_sigmoid() {
        let t = SigmoidTable::default();
        for &x in &[-5.5f32, -2.0, -0.5, 0.0, 0.5, 2.0, 5.5] {
            let exact = 1.0 / (1.0 + (-x).exp());
            assert!((t.sigmoid(x) - exact).abs() < 0.01, "x = {x}");
        }
    }

    #[test]
    fn clamps_outside_range() {
        let t = SigmoidTable::default();
        assert_eq!(t.sigmoid(100.0), 1.0);
        assert_eq!(t.sigmoid(-100.0), 0.0);
        assert_eq!(t.sigmoid(6.0), 1.0);
        assert_eq!(t.sigmoid(-6.0), 0.0);
    }

    #[test]
    fn monotone_non_decreasing() {
        let t = SigmoidTable::new(500, 4.0);
        let mut prev = -1.0f32;
        let mut x = -5.0f32;
        while x < 5.0 {
            let s = t.sigmoid(x);
            assert!(s >= prev - 1e-6);
            prev = s;
            x += 0.05;
        }
    }

    #[test]
    #[should_panic]
    fn invalid_size_panics() {
        let _ = SigmoidTable::new(1, 6.0);
    }
}
