//! Telemetry handles for the serving layer: publish/epoch instruments on the
//! engine plane and per-[`QueryMode`](crate::QueryMode) latency instruments
//! on the query plane.
//!
//! [`StoreTelemetry`] follows the same detached/registered pattern as the
//! ingest plane: handles are always present so the store records
//! unconditionally (a relaxed atomic op per event), and only the registered
//! variant makes the numbers observable in a [`MetricsRegistry`] snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use uninet_metrics::{Counter, Gauge, Histogram, MetricsRegistry};

/// Pre-resolved instrument handles for an [`EmbeddingStore`](crate::EmbeddingStore).
#[derive(Debug, Clone)]
pub struct StoreTelemetry {
    /// End-to-end publish latency, snapshot build through pointer swap
    /// (`engine.publish.total_ns`).
    pub publish_total_ns: Arc<Histogram>,
    /// The `O(n·d)` norms precomputation pass (`engine.publish.norms_ns`).
    pub publish_norms_ns: Arc<Histogram>,
    /// HNSW index construction, zero-cost when ANN is off
    /// (`engine.publish.ann_build_ns`).
    pub publish_ann_build_ns: Arc<Histogram>,
    /// Publishes whose HNSW build grafted the previous epoch's graph instead
    /// of rebuilding from scratch (`engine.publish.ann_incremental`).
    pub publish_ann_incremental: Arc<Counter>,
    /// Nodes re-inserted per incremental build — drifted plus newly added
    /// (`engine.publish.ann_reinserted`).
    pub publish_ann_reinserted: Arc<Histogram>,
    /// Nodes whose graph links were reused verbatim per incremental build
    /// (`engine.publish.ann_reused`).
    pub publish_ann_reused: Arc<Histogram>,
    /// Which distance-kernel backend the query plane dispatched to, as
    /// [`kernels::KernelBackend`](crate::kernels::KernelBackend) `as i64`
    /// (`query.kernel_backend`). Set once at construction — dispatch is
    /// process-wide and never changes after first use.
    pub kernel_backend: Arc<Gauge>,
    /// Epoch of the most recently published snapshot (`engine.epoch`).
    pub epoch: Arc<Gauge>,
    /// Live (non-retired) nodes in the current snapshot's universe
    /// (`engine.live_nodes`) — diverges from the row count under open-world
    /// churn, where retired ids keep their rows but stop being served.
    pub live_nodes: Arc<Gauge>,
    /// Milliseconds since the last publish, refreshed by
    /// [`refresh_epoch_age`](Self::refresh_epoch_age) (`engine.epoch_age_ms`).
    pub epoch_age_ms: Arc<Gauge>,
    /// Exact top-k latency through the store (`query.top_k.exact_ns`).
    pub query_exact_ns: Arc<Histogram>,
    /// ANN top-k latency through the store (`query.top_k.ann_ns`).
    pub query_ann_ns: Arc<Histogram>,
    /// Rows per batch query (`query.batch.size`).
    pub batch_size: Arc<Histogram>,
    /// Whole-batch latency (`query.batch.total_ns`).
    pub batch_total_ns: Arc<Histogram>,
    /// ANN queries that fell back to the exact scan (`query.ann_fallbacks`).
    pub ann_fallbacks: Arc<Counter>,
    /// Publish timestamps as milliseconds since `origin`; gauges cannot
    /// observe the clock on their own, so the age is derived on refresh.
    last_publish_ms: Arc<AtomicU64>,
    origin: Instant,
}

impl StoreTelemetry {
    fn build(registry: Option<&MetricsRegistry>) -> Self {
        let counter = |name: &str| match registry {
            Some(r) => r.counter(name),
            None => Arc::new(Counter::new()),
        };
        let gauge = |name: &str| match registry {
            Some(r) => r.gauge(name),
            None => Arc::new(Gauge::new()),
        };
        let histogram = |name: &str| match registry {
            Some(r) => r.histogram(name),
            None => Arc::new(Histogram::new()),
        };
        let kernel_backend = gauge("query.kernel_backend");
        kernel_backend.set(crate::kernels::backend() as i64);
        StoreTelemetry {
            publish_total_ns: histogram("engine.publish.total_ns"),
            publish_norms_ns: histogram("engine.publish.norms_ns"),
            publish_ann_build_ns: histogram("engine.publish.ann_build_ns"),
            publish_ann_incremental: counter("engine.publish.ann_incremental"),
            publish_ann_reinserted: histogram("engine.publish.ann_reinserted"),
            publish_ann_reused: histogram("engine.publish.ann_reused"),
            kernel_backend,
            epoch: gauge("engine.epoch"),
            live_nodes: gauge("engine.live_nodes"),
            epoch_age_ms: gauge("engine.epoch_age_ms"),
            query_exact_ns: histogram("query.top_k.exact_ns"),
            query_ann_ns: histogram("query.top_k.ann_ns"),
            batch_size: histogram("query.batch.size"),
            batch_total_ns: histogram("query.batch.total_ns"),
            ann_fallbacks: counter("query.ann_fallbacks"),
            last_publish_ms: Arc::new(AtomicU64::new(0)),
            origin: Instant::now(),
        }
    }

    /// Handles not registered anywhere (the no-telemetry default).
    pub fn detached() -> Self {
        Self::build(None)
    }

    /// Handles registered under `engine.*` / `query.*` in `registry`.
    pub fn registered(registry: &MetricsRegistry) -> Self {
        Self::build(Some(registry))
    }

    /// Records a publish at epoch `epoch`, resetting the epoch-age clock.
    pub(crate) fn note_publish(&self, epoch: u64) {
        self.epoch.set(epoch as i64);
        self.last_publish_ms
            .store(self.origin.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    /// Recomputes `engine.epoch_age_ms` from the wall clock. Call right
    /// before snapshotting the registry; gauges are passive between calls.
    pub fn refresh_epoch_age(&self) {
        let now = self.origin.elapsed().as_millis() as u64;
        let last = self.last_publish_ms.load(Ordering::Relaxed);
        self.epoch_age_ms.set(now.saturating_sub(last) as i64);
    }
}

impl Default for StoreTelemetry {
    fn default() -> Self {
        Self::detached()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_handles_appear_under_engine_and_query() {
        let registry = MetricsRegistry::new();
        let t = StoreTelemetry::registered(&registry);
        t.note_publish(3);
        t.refresh_epoch_age();
        t.query_exact_ns.record(500);
        t.ann_fallbacks.inc();
        t.publish_ann_incremental.inc();
        t.publish_ann_reinserted.record(12);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("engine.epoch"), Some(3));
        assert!(snap.gauge("engine.epoch_age_ms").is_some());
        assert_eq!(snap.counter("engine.publish.ann_incremental"), Some(1));
        assert_eq!(
            snap.histogram("engine.publish.ann_reinserted")
                .unwrap()
                .count(),
            1
        );
        // The kernel-backend gauge is stamped at construction.
        assert!(snap.gauge("query.kernel_backend").is_some());
        assert_eq!(snap.histogram("query.top_k.exact_ns").unwrap().count(), 1);
        assert_eq!(snap.counter("query.ann_fallbacks"), Some(1));
        assert!(!snap.section("engine").is_empty());
        assert!(!snap.section("query").is_empty());
    }

    #[test]
    fn epoch_age_resets_on_publish() {
        let t = StoreTelemetry::detached();
        t.note_publish(1);
        std::thread::sleep(std::time::Duration::from_millis(5));
        t.refresh_epoch_age();
        let aged = t.epoch_age_ms.get();
        assert!(aged >= 4, "age {aged}ms after 5ms sleep");
        t.note_publish(2);
        t.refresh_epoch_age();
        assert!(t.epoch_age_ms.get() <= aged);
    }
}
