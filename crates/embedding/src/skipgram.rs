//! Skip-gram with negative sampling (SGNS): the objective used by DeepWalk,
//! node2vec, metapath2vec, edge2vec and fairwalk.

use rand::Rng;

use crate::matrix::EmbeddingMatrix;
use crate::negative::UnigramTable;
use crate::sigmoid::SigmoidTable;

/// One SGNS update for a (center, context) pair.
///
/// `input` is the embedding matrix (syn0), `output` the context matrix (syn1neg).
/// Returns the (approximate) negative log-likelihood contribution, useful for
/// monitoring convergence in tests.
#[allow(clippy::too_many_arguments)]
pub fn train_pair<R: Rng>(
    input: &EmbeddingMatrix,
    output: &EmbeddingMatrix,
    center: u32,
    context: u32,
    negative: usize,
    alpha: f32,
    sigmoid: &SigmoidTable,
    table: &UnigramTable,
    rng: &mut R,
) -> f32 {
    let dim = input.dim();
    let mut center_vec = vec![0.0f32; dim];
    input.read_row(center as usize, &mut center_vec);
    let mut grad_center = vec![0.0f32; dim];
    let mut loss = 0.0f32;

    // Positive example plus `negative` negative examples.
    for i in 0..=negative {
        let (target, label) = if i == 0 {
            (context, 1.0f32)
        } else {
            (table.sample_excluding(context, rng), 0.0f32)
        };
        let score = output.dot_row(target as usize, &center_vec);
        let pred = sigmoid.sigmoid(score);
        let g = (label - pred) * alpha;
        loss += if label > 0.5 {
            -ln_safe(pred)
        } else {
            -ln_safe(1.0 - pred)
        };

        // Accumulate gradient wrt the center vector, update the output row.
        let mut out_row = vec![0.0f32; dim];
        output.read_row(target as usize, &mut out_row);
        for j in 0..dim {
            grad_center[j] += g * out_row[j];
            out_row[j] = g * center_vec[j];
        }
        output.add_row(target as usize, &out_row);
    }
    input.add_row(center as usize, &grad_center);
    loss
}

/// Trains skip-gram over one walk (sentence): every node is a center whose
/// context is a random-sized window around it, as in word2vec.c.
#[allow(clippy::too_many_arguments)]
pub fn train_walk<R: Rng>(
    input: &EmbeddingMatrix,
    output: &EmbeddingMatrix,
    walk: &[u32],
    window: usize,
    negative: usize,
    alpha: f32,
    sigmoid: &SigmoidTable,
    table: &UnigramTable,
    rng: &mut R,
) -> f32 {
    let mut loss = 0.0f32;
    for (pos, &center) in walk.iter().enumerate() {
        // Dynamic window shrinkage: uniform in [1, window].
        let b = rng.gen_range(0..window.max(1));
        let lo = pos.saturating_sub(window - b);
        let hi = (pos + window - b + 1).min(walk.len());
        for (ctx_pos, &ctx) in walk.iter().enumerate().take(hi).skip(lo) {
            if ctx_pos == pos {
                continue;
            }
            loss += train_pair(
                input, output, center, ctx, negative, alpha, sigmoid, table, rng,
            );
        }
    }
    loss
}

#[inline]
fn ln_safe(x: f32) -> f32 {
    x.max(1e-7).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocabulary;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup(
        num_nodes: usize,
        dim: usize,
    ) -> (EmbeddingMatrix, EmbeddingMatrix, SigmoidTable, UnigramTable) {
        let input = EmbeddingMatrix::uniform(num_nodes, dim, 1);
        let output = EmbeddingMatrix::zeros(num_nodes, dim);
        let sigmoid = SigmoidTable::default();
        let vocab = Vocabulary::from_counts(vec![10; num_nodes]);
        let table = UnigramTable::with_params(&vocab, 10_000, 0.75);
        (input, output, sigmoid, table)
    }

    #[test]
    fn train_pair_moves_embeddings_closer() {
        let (input, output, sigmoid, table) = setup(10, 8);
        let mut rng = SmallRng::seed_from_u64(2);
        let score_before = {
            let mut c = vec![0.0; 8];
            input.read_row(0, &mut c);
            output.dot_row(1, &c)
        };
        for _ in 0..200 {
            train_pair(&input, &output, 0, 1, 3, 0.05, &sigmoid, &table, &mut rng);
        }
        let score_after = {
            let mut c = vec![0.0; 8];
            input.read_row(0, &mut c);
            output.dot_row(1, &c)
        };
        assert!(
            score_after > score_before,
            "{score_after} <= {score_before}"
        );
        assert!(
            score_after > 1.0,
            "positive pair score should grow, got {score_after}"
        );
    }

    #[test]
    fn loss_decreases_over_repeated_training() {
        let (input, output, sigmoid, table) = setup(20, 16);
        let mut rng = SmallRng::seed_from_u64(3);
        let walk: Vec<u32> = vec![0, 1, 2, 3, 4, 0, 1, 2, 3, 4];
        let mut first = 0.0;
        let mut last = 0.0;
        for epoch in 0..30 {
            let loss = train_walk(
                &input, &output, &walk, 3, 5, 0.05, &sigmoid, &table, &mut rng,
            );
            if epoch == 0 {
                first = loss;
            }
            last = loss;
        }
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn train_walk_handles_short_walks() {
        let (input, output, sigmoid, table) = setup(5, 4);
        let mut rng = SmallRng::seed_from_u64(4);
        // Length-1 walk has no context pairs: loss 0, no panic.
        let loss = train_walk(
            &input,
            &output,
            &[2],
            5,
            2,
            0.05,
            &sigmoid,
            &table,
            &mut rng,
        );
        assert_eq!(loss, 0.0);
        let loss2 = train_walk(
            &input,
            &output,
            &[2, 3],
            5,
            2,
            0.05,
            &sigmoid,
            &table,
            &mut rng,
        );
        assert!(loss2 > 0.0);
    }
}
