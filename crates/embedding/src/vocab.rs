//! Vocabulary: node frequencies over a walk corpus.
//!
//! Because the "words" of a walk corpus are node ids in `0..num_nodes`, the
//! vocabulary is a dense count array rather than a hash map; indices are the
//! node ids themselves.

/// Token frequencies over the corpus.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    counts: Vec<u64>,
    total: u64,
}

impl Vocabulary {
    /// Builds a vocabulary from an iterator over walks.
    pub fn from_walks<'a, I>(num_nodes: usize, walks: I) -> Self
    where
        I: IntoIterator<Item = &'a [u32]>,
    {
        let mut counts = vec![0u64; num_nodes];
        for walk in walks {
            for &v in walk {
                counts[v as usize] += 1;
            }
        }
        let total = counts.iter().sum();
        Vocabulary { counts, total }
    }

    /// Builds a vocabulary directly from per-node counts.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        let total = counts.iter().sum();
        Vocabulary { counts, total }
    }

    /// Number of distinct tokens (== number of nodes, including unseen ones).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when the vocabulary covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Occurrences of node `v` in the corpus.
    pub fn count(&self, v: u32) -> u64 {
        self.counts[v as usize]
    }

    /// Total number of tokens in the corpus.
    pub fn total_tokens(&self) -> u64 {
        self.total
    }

    /// Relative frequency of node `v`.
    pub fn frequency(&self, v: u32) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[v as usize] as f64 / self.total as f64
        }
    }

    /// Number of nodes that occur at least once.
    pub fn num_seen(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// The word2vec sub-sampling keep-probability for node `v` with threshold
    /// `t` (`1e-3` typically): frequent tokens are randomly dropped to speed up
    /// training and improve rare-token representations.
    pub fn keep_probability(&self, v: u32, t: f64) -> f64 {
        let f = self.frequency(v);
        if f <= 0.0 || t <= 0.0 {
            return 1.0;
        }
        ((t / f).sqrt() + t / f).min(1.0)
    }

    /// The raw count array.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Grows the vocabulary to cover `num_nodes` ids, new ids with count 0.
    /// Shrinking is a no-op (retired ids keep their historical counts).
    pub fn grow(&mut self, num_nodes: usize) {
        if num_nodes > self.counts.len() {
            self.counts.resize(num_nodes, 0);
        }
    }

    /// Raises node `v`'s count to at least `min`.
    ///
    /// Streaming arrivals enter the vocabulary with no corpus history; giving
    /// them a count floor ensures the rebuilt negative-sampling table can draw
    /// them, so their output rows receive gradient signal during burn-in.
    pub fn ensure_min_count(&mut self, v: u32, min: u64) {
        let c = &mut self.counts[v as usize];
        if *c < min {
            self.total += min - *c;
            *c = min;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_vocab() -> Vocabulary {
        let walks: Vec<Vec<u32>> = vec![vec![0, 1, 2, 1], vec![1, 3]];
        Vocabulary::from_walks(5, walks.iter().map(|w| w.as_slice()))
    }

    #[test]
    fn counts_and_totals() {
        let v = sample_vocab();
        assert_eq!(v.len(), 5);
        assert_eq!(v.count(1), 3);
        assert_eq!(v.count(4), 0);
        assert_eq!(v.total_tokens(), 6);
        assert_eq!(v.num_seen(), 4);
        assert!((v.frequency(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_counts_matches() {
        let v = Vocabulary::from_counts(vec![1, 3, 1, 1, 0]);
        assert_eq!(v.total_tokens(), 6);
        assert_eq!(v.count(1), 3);
    }

    #[test]
    fn keep_probability_penalizes_frequent_tokens() {
        let v = sample_vocab();
        let frequent = v.keep_probability(1, 1e-3);
        let rare = v.keep_probability(3, 1e-3);
        assert!(frequent < rare);
        assert!(frequent > 0.0 && rare <= 1.0);
        // Unseen tokens and degenerate thresholds keep probability 1.
        assert_eq!(v.keep_probability(4, 1e-3), 1.0);
        assert_eq!(v.keep_probability(1, 0.0), 1.0);
    }

    #[test]
    fn grow_and_count_floor() {
        let mut v = sample_vocab();
        v.grow(8);
        assert_eq!(v.len(), 8);
        assert_eq!(v.count(7), 0);
        assert_eq!(v.total_tokens(), 6);
        v.ensure_min_count(7, 1);
        assert_eq!(v.count(7), 1);
        assert_eq!(v.total_tokens(), 7);
        // Already above the floor: untouched.
        v.ensure_min_count(1, 1);
        assert_eq!(v.count(1), 3);
        assert_eq!(v.total_tokens(), 7);
        // Shrinking is a no-op.
        v.grow(2);
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn empty_vocab() {
        let v = Vocabulary::from_counts(vec![]);
        assert!(v.is_empty());
        assert_eq!(v.total_tokens(), 0);
    }
}
