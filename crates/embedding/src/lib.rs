//! # uninet-embedding
//!
//! The embedding-learning half of the random-walk NRL pipeline:
//! `Embeddings = Word2Vec(Walks)`.
//!
//! This crate implements word2vec from scratch in the style of the original
//! `word2vec.c` used by DeepWalk/node2vec (and by UniNet's trainer module):
//!
//! * [`vocab::Vocabulary`] — token (node) frequencies over a walk corpus,
//! * [`sigmoid::SigmoidTable`] — the precomputed exp table,
//! * [`negative::UnigramTable`] — the `f^0.75` negative-sampling table,
//! * [`matrix::EmbeddingMatrix`] — lock-free shared parameter matrices
//!   (Hogwild-style SGD with relaxed atomics),
//! * [`skipgram`] / [`cbow`] — the two training objectives with negative
//!   sampling,
//! * [`trainer::Word2VecTrainer`] — the multi-threaded training driver with a
//!   linearly decaying learning rate.
//!
//! The output type [`Embeddings`] is consumed by `uninet-eval` for the node
//! classification experiments (Figure 5 of the paper).
//!
//! On top of training, the crate carries the **serving layer**: the
//! epoch-versioned [`store::EmbeddingStore`] (pointer-swap snapshots queried
//! lock-free by concurrent readers) and the [`ann`] module's HNSW index that
//! takes top-k queries out of the full-scan regime.
//!
//! ```
//! use uninet_embedding::{Embeddings, EmbeddingStore, QueryMode};
//!
//! // Train-side output: one dim-sized vector per node...
//! let emb = Embeddings::from_flat(2, vec![1.0, 0.0, 0.9, 0.1, 0.0, 1.0]);
//! assert_eq!(emb.num_nodes(), 3);
//!
//! // ...published into the serving store and queried concurrently.
//! let store = EmbeddingStore::new();
//! store.publish(emb);
//! let top = store.top_k_mode(0, 1, QueryMode::Exact);
//! assert_eq!(top[0].0, 1);
//! ```

pub mod ann;
pub mod cbow;
pub mod io;
pub mod kernels;
pub mod matrix;
pub mod negative;
pub mod online;
pub mod quant;
pub mod sigmoid;
pub mod skipgram;
pub mod store;
pub mod telemetry;
pub mod trainer;
pub mod vocab;

pub use ann::{AnnConfig, HnswIndex, IncrementalStats, QueryMode};
pub use kernels::KernelBackend;
pub use matrix::EmbeddingMatrix;
pub use negative::UnigramTable;
pub use online::OnlineWord2Vec;
pub use quant::QuantizedMatrix;
pub use sigmoid::SigmoidTable;
pub use store::{EmbeddingSnapshot, EmbeddingStore};
pub use telemetry::StoreTelemetry;
pub use trainer::{TrainStats, TrainingMode, Word2VecConfig, Word2VecTrainer};
pub use vocab::Vocabulary;

/// Learned node embeddings: one `dim`-dimensional vector per node.
#[derive(Debug, Clone)]
pub struct Embeddings {
    dim: usize,
    vectors: Vec<f32>,
}

impl Embeddings {
    /// Creates embeddings from a flat row-major vector (`num_nodes * dim`).
    ///
    /// # Panics
    ///
    /// Panics if the vector length is not a multiple of `dim`.
    pub fn from_flat(dim: usize, vectors: Vec<f32>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(
            vectors.len() % dim,
            0,
            "flat vector length must be a multiple of dim"
        );
        Embeddings { dim, vectors }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of embedded nodes.
    pub fn num_nodes(&self) -> usize {
        self.vectors.len() / self.dim
    }

    /// The embedding vector of node `v`.
    pub fn vector(&self, v: u32) -> &[f32] {
        let start = v as usize * self.dim;
        &self.vectors[start..start + self.dim]
    }

    /// Cosine similarity between the embeddings of `a` and `b`.
    pub fn cosine_similarity(&self, a: u32, b: u32) -> f32 {
        kernels::cosine(self.vector(a), self.vector(b))
    }

    /// The `k` nodes most similar to `v` by cosine similarity (excluding `v`).
    pub fn most_similar(&self, v: u32, k: usize) -> Vec<(u32, f32)> {
        // The query vector and its norm are loop-invariant — compute them
        // once instead of once per candidate.
        let va = self.vector(v);
        let na = kernels::l2_norm(va);
        let mut scored: Vec<(u32, f32)> = (0..self.num_nodes() as u32)
            .filter(|&u| u != v)
            .map(|u| {
                let vb = self.vector(u);
                (
                    u,
                    kernels::cosine_with_norms(va, vb, na, kernels::l2_norm(vb)),
                )
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }

    /// The raw flat parameter vector.
    pub fn as_flat(&self) -> &[f32] {
        &self.vectors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_flat_and_accessors() {
        let e = Embeddings::from_flat(2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        assert_eq!(e.dim(), 2);
        assert_eq!(e.num_nodes(), 3);
        assert_eq!(e.vector(1), &[0.0, 1.0]);
        assert_eq!(e.as_flat().len(), 6);
    }

    #[test]
    fn cosine_similarity_basics() {
        let e = Embeddings::from_flat(2, vec![1.0, 0.0, 0.0, 1.0, 2.0, 0.0]);
        assert!((e.cosine_similarity(0, 2) - 1.0).abs() < 1e-6);
        assert!(e.cosine_similarity(0, 1).abs() < 1e-6);
    }

    #[test]
    fn zero_vector_similarity_is_zero() {
        let e = Embeddings::from_flat(2, vec![0.0, 0.0, 1.0, 1.0]);
        assert_eq!(e.cosine_similarity(0, 1), 0.0);
    }

    #[test]
    fn most_similar_orders_by_similarity() {
        let e = Embeddings::from_flat(2, vec![1.0, 0.0, 0.9, 0.1, 0.0, 1.0]);
        let sims = e.most_similar(0, 2);
        assert_eq!(sims.len(), 2);
        assert_eq!(sims[0].0, 1);
        assert!(sims[0].1 > sims[1].1);
    }

    #[test]
    #[should_panic]
    fn bad_flat_length_panics() {
        let _ = Embeddings::from_flat(3, vec![1.0; 4]);
    }
}
