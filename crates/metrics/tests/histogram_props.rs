//! Property and concurrency tests for the log-bucketed histogram: merge is
//! associative and commutative, quantile error is bounded by the bucket
//! width, and recording is exact under multi-threaded contention.

use proptest::prelude::*;
use uninet_metrics::{Histogram, HistogramSnapshot, SUB_BUCKETS};

/// Values spanning the exact low range, mid-range latencies, and huge
/// outliers, so buckets of every width get exercised.
fn value_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..16,
        16u64..10_000,
        10_000u64..100_000_000,
        100_000_000u64..u64::MAX,
    ]
}

/// The true `q`-quantile of `values` (the order statistic the histogram's
/// estimate must bracket).
fn exact_quantile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(value_strategy(), 0..40),
        b in prop::collection::vec(value_strategy(), 0..40),
    ) {
        let (sa, sb) = (
            HistogramSnapshot::from_values(&a),
            HistogramSnapshot::from_values(&b),
        );
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(value_strategy(), 0..30),
        b in prop::collection::vec(value_strategy(), 0..30),
        c in prop::collection::vec(value_strategy(), 0..30),
    ) {
        let (sa, sb, sc) = (
            HistogramSnapshot::from_values(&a),
            HistogramSnapshot::from_values(&b),
            HistogramSnapshot::from_values(&c),
        );
        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // Merging equals building from the concatenation.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(left, HistogramSnapshot::from_values(&all));
    }

    #[test]
    fn quantile_error_is_bounded_by_bucket_width(
        values in prop::collection::vec(value_strategy(), 1..80),
        q in 0.0f64..1.0,
    ) {
        let snap = HistogramSnapshot::from_values(&values);
        let truth = exact_quantile(&values, q);
        let (low, high) = snap.quantile_bounds(q).expect("non-empty");
        prop_assert!(
            low <= truth && truth <= high,
            "true quantile {} outside bucket [{}, {}]", truth, low, high
        );
        // Bucket relative width is at most 1/SUB_BUCKETS (plus the integer
        // rounding unit), which bounds the point estimate's error too.
        let width = high - low;
        prop_assert!(
            width <= low / SUB_BUCKETS + 1,
            "bucket [{}, {}] wider than the {}-sub-bucket bound", low, high, SUB_BUCKETS
        );
        let estimate = snap.quantile(q);
        prop_assert!(
            estimate.abs_diff(truth) <= width,
            "estimate {} vs true {} differs by more than bucket width {}",
            estimate, truth, width
        );
    }

    #[test]
    fn summary_stats_are_exact(values in prop::collection::vec(value_strategy(), 1..60)) {
        // Sum can overflow u64 for adversarial inputs; the histogram targets
        // real measurements, so keep the property in-range.
        prop_assume!(values.iter().try_fold(0u64, |s, &v| s.checked_add(v)).is_some());
        let snap = HistogramSnapshot::from_values(&values);
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(snap.min(), *values.iter().min().unwrap());
        prop_assert_eq!(snap.max(), *values.iter().max().unwrap());
    }
}

#[test]
fn histogram_is_exact_under_contention() {
    use std::sync::Arc;

    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 25_000;

    let hist = Arc::new(Histogram::new());
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Spread across buckets; deterministic per thread.
                    hist.record(t * 1_000_000 + i * 37 % 500_000);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let snap = hist.snapshot();
    assert_eq!(snap.count(), THREADS * PER_THREAD);
    // Every recording also landed in exactly one bucket: quantile walks see
    // the same total.
    let (low, high) = snap.quantile_bounds(1.0).unwrap();
    assert!(low <= snap.max() && snap.max() <= high);
}
