//! Phase timing of the end-to-end pipeline, matching the `Ti`/`Tw`/`Tl`/`Tt`
//! columns of Table VI in the paper.
//!
//! [`PhaseTiming`] keeps its original semantics and public fields (it moved
//! here from `uninet-core`, which still re-exports it); [`PhaseRecorder`]
//! is the measurement side, a thin [`Stopwatch`]-based builder that yields a
//! `PhaseTiming` from the three sequential pipeline stages.

use std::time::Duration;

use crate::timer::Stopwatch;

/// Wall-clock breakdown of one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTiming {
    /// Sampler initialization cost (`Ti`).
    pub init: Duration,
    /// Random-walk generation cost (`Tw`).
    pub walk: Duration,
    /// Embedding learning cost (`Tl`).
    pub learn: Duration,
}

impl PhaseTiming {
    /// Total cost (`Tt = Ti + Tw + Tl`).
    pub fn total(&self) -> Duration {
        self.init + self.walk + self.learn
    }

    /// Speed-up of this run's total time relative to `other` (e.g. how much
    /// faster UniNet (M-H) is than UniNet (Orig)).
    pub fn speedup_over(&self, other: &PhaseTiming) -> f64 {
        let own = self.total().as_secs_f64();
        if own <= 0.0 {
            return f64::INFINITY;
        }
        other.total().as_secs_f64() / own
    }

    /// Fraction of the total time spent in initialization (the quantity the
    /// paper uses to argue against burn-in initialization in Figure 6).
    pub fn init_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total <= 0.0 {
            0.0
        } else {
            self.init.as_secs_f64() / total
        }
    }
}

impl std::fmt::Display for PhaseTiming {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Ti={:.3}s Tw={:.3}s Tl={:.3}s Tt={:.3}s",
            self.init.as_secs_f64(),
            self.walk.as_secs_f64(),
            self.learn.as_secs_f64(),
            self.total().as_secs_f64()
        )
    }
}

/// Measures the `Ti`/`Tw`/`Tl` stages in order and produces a
/// [`PhaseTiming`]. Stages not reached stay at zero duration.
///
/// ```
/// use uninet_metrics::PhaseRecorder;
///
/// let mut rec = PhaseRecorder::begin();
/// // ... sampler initialization ...
/// rec.init_done();
/// // ... walk generation ...
/// rec.walk_done();
/// // ... embedding learning ...
/// rec.learn_done();
/// let timing = rec.finish();
/// assert_eq!(timing.total(), timing.init + timing.walk + timing.learn);
/// ```
#[derive(Debug)]
pub struct PhaseRecorder {
    watch: Stopwatch,
    timing: PhaseTiming,
}

impl PhaseRecorder {
    /// Starts the clock at the beginning of the `Ti` stage.
    pub fn begin() -> Self {
        PhaseRecorder {
            watch: Stopwatch::start(),
            timing: PhaseTiming::default(),
        }
    }

    /// Marks the end of sampler initialization (`Ti`).
    pub fn init_done(&mut self) {
        self.timing.init += self.watch.lap();
    }

    /// Marks the end of walk generation (`Tw`).
    pub fn walk_done(&mut self) {
        self.timing.walk += self.watch.lap();
    }

    /// Marks the end of embedding learning (`Tl`).
    pub fn learn_done(&mut self) {
        self.timing.learn += self.watch.lap();
    }

    /// The breakdown accumulated so far.
    pub fn finish(self) -> PhaseTiming {
        self.timing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(init_ms: u64, walk_ms: u64, learn_ms: u64) -> PhaseTiming {
        PhaseTiming {
            init: Duration::from_millis(init_ms),
            walk: Duration::from_millis(walk_ms),
            learn: Duration::from_millis(learn_ms),
        }
    }

    #[test]
    fn total_sums_phases() {
        assert_eq!(t(10, 20, 30).total(), Duration::from_millis(60));
    }

    #[test]
    fn speedup_is_ratio_of_totals() {
        let fast = t(5, 10, 15);
        let slow = t(20, 40, 60);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-9);
        assert!((slow.speedup_over(&fast) - 0.25).abs() < 1e-9);
        assert_eq!(t(0, 0, 0).speedup_over(&slow), f64::INFINITY);
    }

    #[test]
    fn init_fraction() {
        assert!((t(25, 50, 25).init_fraction() - 0.25).abs() < 1e-9);
        assert_eq!(t(0, 0, 0).init_fraction(), 0.0);
    }

    #[test]
    fn display_contains_all_phases() {
        let s = format!("{}", t(1000, 2000, 3000));
        assert!(s.contains("Ti=1.000s"));
        assert!(s.contains("Tt=6.000s"));
    }

    #[test]
    fn recorder_fills_stages_in_order() {
        let mut rec = PhaseRecorder::begin();
        std::thread::sleep(Duration::from_millis(2));
        rec.init_done();
        rec.walk_done();
        std::thread::sleep(Duration::from_millis(2));
        rec.learn_done();
        let timing = rec.finish();
        assert!(timing.init >= Duration::from_millis(1));
        assert!(timing.learn >= Duration::from_millis(1));
        assert!(timing.walk <= timing.init);
        assert_eq!(timing.total(), timing.init + timing.walk + timing.learn);
    }

    #[test]
    fn unreached_stages_stay_zero() {
        let mut rec = PhaseRecorder::begin();
        rec.init_done();
        let timing = rec.finish();
        assert_eq!(timing.walk, Duration::ZERO);
        assert_eq!(timing.learn, Duration::ZERO);
    }
}
