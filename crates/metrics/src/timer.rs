//! Stage timers: a resettable stopwatch for sequential phase breakdowns and
//! an RAII guard that records elapsed time into a [`Histogram`] on drop.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::histogram::Histogram;

/// A stopwatch that measures sequential stages: each [`lap`](Self::lap)
/// returns the time since the previous lap (or since construction).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
    last_lap: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

impl Stopwatch {
    /// Starts a stopwatch now.
    pub fn start() -> Self {
        let now = Instant::now();
        Stopwatch {
            started: now,
            last_lap: now,
        }
    }

    /// Time since the previous lap (or since start); resets the lap marker.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now - self.last_lap;
        self.last_lap = now;
        d
    }

    /// Total time since the stopwatch started (laps do not reset this).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

/// An RAII stage timer: created via [`StageTimer::new`] (or the
/// [`time_into`](crate::time_into) closure helper), it records the elapsed
/// wall-clock time (in nanoseconds) into its histogram when dropped.
///
/// ```
/// use uninet_metrics::{Histogram, StageTimer};
/// use std::sync::Arc;
///
/// let hist = Arc::new(Histogram::new());
/// {
///     let _t = StageTimer::new(Arc::clone(&hist));
///     // ... timed work ...
/// } // records here
/// assert_eq!(hist.count(), 1);
/// ```
#[derive(Debug)]
pub struct StageTimer {
    target: Arc<Histogram>,
    started: Instant,
    armed: bool,
}

impl StageTimer {
    /// Starts timing; the elapsed time is recorded into `target` on drop.
    pub fn new(target: Arc<Histogram>) -> Self {
        StageTimer {
            target,
            started: Instant::now(),
            armed: true,
        }
    }

    /// Elapsed time so far, without stopping the timer.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Stops and records now, returning the elapsed time.
    pub fn stop(mut self) -> Duration {
        let d = self.started.elapsed();
        self.target.record_duration(d);
        self.armed = false;
        d
    }

    /// Abandons the measurement: nothing is recorded on drop.
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        if self.armed {
            self.target.record_duration(self.started.elapsed());
        }
    }
}

/// Times a closure and records its wall-clock duration into `hist`,
/// returning the closure's result. The non-RAII convenience for straight-line
/// code.
#[inline]
pub fn time_into<T>(hist: &Histogram, f: impl FnOnce() -> T) -> T {
    let t = Instant::now();
    let out = f();
    hist.record_duration(t.elapsed());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_laps_are_sequential() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        let a = sw.lap();
        let b = sw.lap();
        assert!(a >= Duration::from_millis(1));
        assert!(b <= a, "second lap starts after the first ends");
        assert!(sw.elapsed() >= a);
    }

    #[test]
    fn stage_timer_records_on_drop() {
        let h = Arc::new(Histogram::new());
        {
            let _t = StageTimer::new(Arc::clone(&h));
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn stage_timer_stop_records_once() {
        let h = Arc::new(Histogram::new());
        let t = StageTimer::new(Arc::clone(&h));
        let d = t.stop();
        assert_eq!(h.count(), 1);
        assert!(h.snapshot().max() <= d.as_nanos() as u64);
    }

    #[test]
    fn stage_timer_cancel_records_nothing() {
        let h = Arc::new(Histogram::new());
        StageTimer::new(Arc::clone(&h)).cancel();
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn time_into_returns_and_records() {
        let h = Histogram::new();
        let out = time_into(&h, || 7 * 6);
        assert_eq!(out, 42);
        assert_eq!(h.count(), 1);
    }
}
