//! Lock-free scalar instruments: monotone counters and up/down gauges.
//!
//! Both are thin wrappers over relaxed atomics — a single `fetch_add` per
//! update, no locks, no allocation — so they are safe to hit from any hot
//! path. Relaxed ordering is deliberate: metrics never synchronize program
//! state, they only need each individual update to land exactly once.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed instantaneous value (queue depth, epoch age, …) that can
/// move in both directions.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` and returns the new value.
    #[inline]
    pub fn add(&self, delta: i64) -> i64 {
        self.value.fetch_add(delta, Ordering::Relaxed) + delta
    }

    /// Subtracts `delta` and returns the new value.
    #[inline]
    pub fn sub(&self, delta: i64) -> i64 {
        self.add(-delta)
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        assert_eq!(g.add(5), 5);
        assert_eq!(g.sub(7), -2);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn counter_is_exact_under_contention() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }
}
