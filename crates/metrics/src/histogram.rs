//! Log-bucketed latency/value histograms: constant memory, lock-free
//! recording, mergeable snapshots, bounded-error quantiles.
//!
//! # Bucket layout
//!
//! Values are `u64` (nanoseconds for latencies, plain counts for sizes).
//! Each power-of-two octave is split into [`SUB_BUCKETS`] linear sub-buckets,
//! so the relative width of any bucket is at most `1 / SUB_BUCKETS` = 12.5% —
//! the bound every quantile estimate inherits. Values below [`SUB_BUCKETS`]
//! get exact single-value buckets. The whole table is [`NUM_BUCKETS`] (= 496)
//! buckets covering all of `u64`, ~4 KiB of atomics per histogram, allocated
//! once.
//!
//! # Concurrency
//!
//! [`Histogram::record`] is a handful of relaxed `fetch_add`/`fetch_max`
//! operations — no locks, no allocation — so any number of threads can hammer
//! one histogram concurrently and the total count is exact (see the crate's
//! tests). A [`HistogramSnapshot`] taken while writers are active may observe
//! a value's bucket increment without its `count` increment (or vice versa);
//! each individual update still lands exactly once, so settled snapshots are
//! exact and in-flight ones are off by at most the number of races in flight.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// log2 of the number of linear sub-buckets per power-of-two octave.
const SUB_BITS: u32 = 3;
/// Linear sub-buckets per octave; also the bound of the exact low range.
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Total buckets needed to cover every `u64` value.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// Bucket index of a value.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // v in [2^octave, 2^{octave+1})
    let shift = octave - SUB_BITS;
    let sub = (v >> shift) & (SUB_BUCKETS - 1);
    ((octave - SUB_BITS + 1) as usize) * SUB_BUCKETS as usize + sub as usize
}

/// Inclusive `[low, high]` value range of a bucket.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_BUCKETS as usize {
        return (index as u64, index as u64);
    }
    let group = (index as u64) >> SUB_BITS; // ≥ 1
    let shift = (group - 1) as u32;
    let low = (SUB_BUCKETS + (index as u64 & (SUB_BUCKETS - 1))) << shift;
    let high = low + ((1u64 << shift) - 1); // grouping avoids u64 overflow at the top octave
    (low, high)
}

/// A lock-free, constant-memory, log-bucketed histogram of `u64` values.
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// Creates an empty histogram (one ~4 KiB allocation, ever).
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> = buckets
            .into_boxed_slice()
            .try_into()
            .expect("NUM_BUCKETS-sized allocation");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Lock-free: five relaxed atomic RMWs.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration as whole nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A frozen copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable, mergeable copy of a [`Histogram`]'s state.
///
/// Merging is element-wise addition, so it is associative and commutative:
/// per-thread or per-shard histograms can be folded together in any order and
/// produce the same aggregate (property-tested in this crate's test-suite).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (the identity element of [`merge`](Self::merge)).
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Builds a snapshot from raw values (test/offline convenience).
    pub fn from_values(values: &[u64]) -> Self {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    /// Accumulates `other` into `self` (element-wise bucket addition). Sums
    /// wrap on overflow, matching the atomic accumulation in [`Histogram`],
    /// so merging stays associative and commutative even for adversarial
    /// totals.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value — exact, not bucketed.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The inclusive bucket range `[low, high]` containing the `q`-quantile
    /// (`q` clamped to `[0, 1]`), or `None` when empty. The true quantile
    /// value is guaranteed to lie inside the returned range, whose relative
    /// width is at most `1 / SUB_BUCKETS` (12.5%).
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target order statistic, 1-based.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Some(bucket_bounds(i));
            }
        }
        // Unreachable when count equals the bucket totals; be safe anyway.
        Some((self.min(), self.max))
    }

    /// Point estimate of the `q`-quantile: the containing bucket's upper
    /// bound, clamped to the exact observed `[min, max]`. The estimate is
    /// within one bucket width of the true order statistic.
    pub fn quantile(&self, q: f64) -> u64 {
        match self.quantile_bounds(q) {
            None => 0,
            Some((low, high)) => high.clamp(low, self.max).max(self.min()),
        }
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_consistent() {
        // Every value maps into a bucket whose bounds contain it, indices are
        // monotone, and bucket relative width respects the 1/8 bound.
        let probes = [
            0u64,
            1,
            7,
            8,
            9,
            15,
            16,
            17,
            100,
            1_000,
            123_456,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut last = None;
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} for {v}");
            let (low, high) = bucket_bounds(i);
            assert!(low <= v && v <= high, "{v} not in [{low}, {high}]");
            if v >= SUB_BUCKETS {
                let width = high - low + 1;
                assert!(width <= low / SUB_BUCKETS + 1, "width {width} at {low}");
            }
            if let Some((pv, pi)) = last {
                if v > pv {
                    assert!(i >= pi, "index not monotone at {v}");
                }
            }
            last = Some((v, i));
        }
        // The full range of indices round-trips through bounds.
        for i in 0..NUM_BUCKETS {
            let (low, high) = bucket_bounds(i);
            assert_eq!(bucket_index(low), i);
            assert_eq!(bucket_index(high), i);
        }
    }

    #[test]
    fn records_and_summarizes() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum(), 110);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 100);
        assert!((s.mean() - 22.0).abs() < 1e-9);
        // Small values land in exact buckets.
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.p50(), 3);
        // The top quantile is clamped to the exact max.
        assert_eq!(s.quantile(1.0), 100);
    }

    #[test]
    fn empty_snapshot_answers_safely() {
        let s = HistogramSnapshot::empty();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile_bounds(0.5), None);
        assert_eq!(s.p50(), 0);
    }

    #[test]
    fn merge_is_addition() {
        let mut a = HistogramSnapshot::from_values(&[1, 10, 100]);
        let b = HistogramSnapshot::from_values(&[5, 1_000_000]);
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 1_000_116);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 1_000_000);
        // Merging the identity changes nothing.
        let before = a.clone();
        a.merge(&HistogramSnapshot::empty());
        assert_eq!(a, before);
    }

    #[test]
    fn record_duration_uses_nanos() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(3));
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        let (low, high) = s.quantile_bounds(0.5).unwrap();
        assert!(low <= 3_000 && 3_000 <= high);
    }
}
