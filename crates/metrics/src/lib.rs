//! Lock-free telemetry core for the UniNet workspace.
//!
//! This crate is deliberately dependency-light (std only) and cheap to record
//! into from any hot path:
//!
//! - [`Counter`] / [`Gauge`] — single relaxed atomic RMW per update.
//! - [`Histogram`] — log-bucketed latency/value histogram: constant ~4 KiB
//!   memory, lock-free recording, mergeable [`HistogramSnapshot`]s with
//!   p50/p95/p99 whose error is bounded by the 12.5% bucket width.
//! - [`Stopwatch`] / [`StageTimer`] / [`time_into`] — stage timing, either
//!   sequential-lap style or RAII record-on-drop.
//! - [`MetricsRegistry`] — a named catalogue of instruments that freezes into
//!   a [`MetricsSnapshot`] and renders as a nested JSON tree. Registration is
//!   cold-path (mutex); recording through the returned `Arc` handles never
//!   locks.
//! - [`PhaseTiming`] / [`PhaseRecorder`] — the paper's Table VI `Ti`/`Tw`/`Tl`
//!   breakdown (moved here from `uninet-core`, which re-exports it).
//!
//! The convention across the workspace is three top-level metric sections:
//! `ingest.*` (queue, shard apply, sampler maintenance, walk refresh,
//! compaction), `engine.*` (training rounds, snapshot publishes, epoch age)
//! and `query.*` (per-mode latency, batch sizes, ANN fallbacks).

mod counter;
mod histogram;
mod phase;
mod registry;
mod timer;

pub use counter::{Counter, Gauge};
pub use histogram::{Histogram, HistogramSnapshot, NUM_BUCKETS, SUB_BUCKETS};
pub use phase::{PhaseRecorder, PhaseTiming};
pub use registry::{MetricValue, MetricsRegistry, MetricsSnapshot};
pub use timer::{time_into, StageTimer, Stopwatch};
