//! The metrics registry: a named catalogue of instruments that snapshots
//! into a serializable tree.
//!
//! Registration (`counter` / `gauge` / `histogram`) takes a mutex and is
//! strictly cold-path: callers register once at construction time and keep
//! the returned `Arc` handle. Recording through a handle never touches the
//! registry again, so hot paths stay lock-free. Names are dot-separated
//! (`"ingest.queue.depth"`); the dots become nesting levels in the JSON
//! emitted by [`MetricsSnapshot::to_json`].

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::counter::{Counter, Gauge};
use crate::histogram::{Histogram, HistogramSnapshot};

/// A registered instrument.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A shared, clonable catalogue of named instruments.
///
/// Cloning the registry clones the handle, not the instruments: all clones
/// register into and snapshot the same underlying map.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns the counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Returns the histogram registered under `name`, creating it on first
    /// use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("metrics registry poisoned").len()
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freezes the current value of every registered instrument.
    ///
    /// Cost model: one mutex acquisition plus, per instrument, a relaxed load
    /// (counters/gauges) or a 496-bucket copy (histograms, ~4 KiB each). No
    /// recording thread is ever blocked by a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            entries: map
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// A frozen value of one instrument.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's current total.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram's full frozen state.
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of every instrument in a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// The frozen value registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.get(name)
    }

    /// Counter total under `name` (`None` if absent or not a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.entries.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value under `name` (`None` if absent or not a gauge).
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.entries.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram under `name` (`None` if absent or not a histogram).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.entries.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of instruments captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All instruments whose name starts with `prefix` followed by a dot
    /// (or equals `prefix`), as a sub-snapshot.
    pub fn section(&self, prefix: &str) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self
                .entries
                .iter()
                .filter(|(name, _)| {
                    name.as_str() == prefix
                        || (name.starts_with(prefix)
                            && name.as_bytes().get(prefix.len()) == Some(&b'.'))
                })
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Renders the snapshot as a JSON object, nesting dot-separated name
    /// segments into sub-objects. Histograms render their summary statistics
    /// (`count`, `sum`, `mean`, `min`, `max`, `p50`, `p95`, `p99`), not the
    /// raw buckets.
    pub fn to_json(&self) -> String {
        let mut root = Tree::default();
        for (name, value) in &self.entries {
            root.insert(name.split('.'), value);
        }
        let mut out = String::new();
        root.render(&mut out, 0);
        out
    }
}

/// Intermediate nesting structure for JSON rendering.
#[derive(Default)]
struct Tree<'a> {
    children: BTreeMap<&'a str, Tree<'a>>,
    value: Option<&'a MetricValue>,
}

impl<'a> Tree<'a> {
    fn insert(&mut self, mut path: std::str::Split<'a, char>, value: &'a MetricValue) {
        match path.next() {
            None => self.value = Some(value),
            Some(seg) => self.children.entry(seg).or_default().insert(path, value),
        }
    }

    fn render(&self, out: &mut String, depth: usize) {
        // A name that is both a leaf and a prefix ("a" and "a.b") keeps the
        // leaf value under the reserved key "value" inside the object.
        if let (Some(v), true) = (self.value, self.children.is_empty()) {
            render_value(out, v, depth);
            return;
        }
        out.push_str("{\n");
        let indent = "  ".repeat(depth + 1);
        let mut first = true;
        if let Some(v) = self.value {
            out.push_str(&indent);
            out.push_str("\"value\": ");
            render_value(out, v, depth + 1);
            first = false;
        }
        for (seg, child) in &self.children {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&indent);
            out.push('"');
            escape_into(out, seg);
            out.push_str("\": ");
            child.render(out, depth + 1);
        }
        out.push('\n');
        out.push_str(&"  ".repeat(depth));
        out.push('}');
    }
}

fn render_value(out: &mut String, value: &MetricValue, depth: usize) {
    match value {
        MetricValue::Counter(v) => out.push_str(&v.to_string()),
        MetricValue::Gauge(v) => out.push_str(&v.to_string()),
        MetricValue::Histogram(h) => {
            let indent = "  ".repeat(depth + 1);
            let fields = [
                ("count", h.count() as f64),
                ("sum", h.sum() as f64),
                ("mean", h.mean()),
                ("min", h.min() as f64),
                ("max", h.max() as f64),
                ("p50", h.p50() as f64),
                ("p95", h.p95() as f64),
                ("p99", h.p99() as f64),
            ];
            out.push_str("{\n");
            for (i, (key, v)) in fields.iter().enumerate() {
                out.push_str(&indent);
                if v.fract() == 0.0 && v.abs() < 9.0e15 {
                    out.push_str(&format!("\"{key}\": {}", *v as i64));
                } else {
                    out.push_str(&format!("\"{key}\": {v}"));
                }
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(depth));
            out.push('}');
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_instrument() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x.hits");
        let b = reg.counter("x.hits");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn clones_share_state() {
        let reg = MetricsRegistry::new();
        let clone = reg.clone();
        reg.gauge("depth").set(7);
        assert_eq!(clone.snapshot().gauge("depth"), Some(7));
    }

    #[test]
    fn snapshot_freezes_values() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("events");
        c.add(3);
        reg.histogram("lat_ns").record(1_000);
        let snap = reg.snapshot();
        c.add(10);
        assert_eq!(snap.counter("events"), Some(3));
        assert_eq!(snap.histogram("lat_ns").unwrap().count(), 1);
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("events"), None, "kind-checked accessor");
    }

    #[test]
    fn section_filters_by_dotted_prefix() {
        let reg = MetricsRegistry::new();
        reg.counter("ingest.queue.enqueued");
        reg.gauge("ingest.queue.depth");
        reg.counter("ingestion"); // shares the prefix string, not the path
        reg.counter("query.batches");
        let snap = reg.snapshot();
        let ingest = snap.section("ingest");
        assert_eq!(ingest.len(), 2);
        assert!(ingest.counter("ingest.queue.enqueued").is_some());
        assert!(ingest.counter("ingestion").is_none());
    }

    #[test]
    fn json_nests_dotted_names() {
        let reg = MetricsRegistry::new();
        reg.counter("a.b.hits").add(2);
        reg.gauge("a.depth").set(-1);
        reg.histogram("lat").record(5);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"a\": {"), "{json}");
        assert!(json.contains("\"b\": {"), "{json}");
        assert!(json.contains("\"hits\": 2"), "{json}");
        assert!(json.contains("\"depth\": -1"), "{json}");
        assert!(json.contains("\"p95\": 5"), "{json}");
        // Balanced braces — a cheap structural sanity check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn json_handles_leaf_and_branch_collision() {
        let reg = MetricsRegistry::new();
        reg.counter("epoch").add(4);
        reg.gauge("epoch.age_ms").set(12);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"value\": 4"), "{json}");
        assert!(json.contains("\"age_ms\": 12"), "{json}");
    }
}
