//! The open-world equivalence layer: for arbitrary churn streams (edge ops
//! interleaved with node arrivals and retirements), the concurrent streaming
//! path must land on exactly the state a from-scratch rebuild of the
//! surviving universe would produce:
//!
//! * the node universe (capacity + live mask) and every row's adjacency
//!   match an independent reference model of the id lifecycle;
//! * retired rows are empty in the compacted CSR and never rejoin with
//!   recycled state (an id that rejoins does so with an empty adjacency);
//! * incrementally maintained alias sampler tables draw the same sequences
//!   as tables built fresh over the final graph (sampler-weight equivalence);
//! * a snapshot published with the final universe mask never surfaces a
//!   retired id from `top_k` — exact scan or ANN index.

use std::collections::BTreeMap;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use uninet_core::{
    AnnConfig, DynamicGraph, EdgeSamplerKind, EmbeddingStore, Embeddings, GraphMutation,
    QueryMode,
};
use uninet_graph::{Graph, GraphBuilder, NodeId};
use uninet_ingest::{run_pipeline, IngestConfig};
use uninet_walker::models::DeepWalk;
use uninet_walker::{RandomWalkModel, SamplerManager};

const N: u32 = 12;

/// Independent reference model of the open-world id lifecycle, mirroring the
/// documented `DynamicGraph::apply` semantics: ids `0..N` start live,
/// `AddNode` grows the universe (duplicate arrivals rejected, retired ids
/// rejoin empty), `RemoveNode` drops every incident edge and marks the id
/// dead, and edge ops are rejected unless both endpoints are live.
struct OpenWorldModel {
    live: Vec<bool>,
    edges: BTreeMap<(NodeId, NodeId), f32>,
    symmetric: bool,
}

impl OpenWorldModel {
    fn from_graph(g: &Graph, symmetric: bool) -> Self {
        let mut edges = BTreeMap::new();
        for (src, dst, w) in g.all_edges() {
            edges.insert((src, dst), w);
        }
        OpenWorldModel {
            live: vec![true; g.num_nodes()],
            edges,
            symmetric,
        }
    }

    fn capacity(&self) -> usize {
        self.live.len()
    }

    /// Applies one directed edge op; returns whether it took effect.
    fn apply_directed(&mut self, m: GraphMutation) -> bool {
        let (src, dst) = m.endpoints();
        match m {
            GraphMutation::AddEdge { weight, .. } => {
                self.edges.insert((src, dst), weight);
                true
            }
            GraphMutation::RemoveEdge { .. } => self.edges.remove(&(src, dst)).is_some(),
            GraphMutation::UpdateWeight { weight, .. } => {
                match self.edges.get_mut(&(src, dst)) {
                    Some(w) => {
                        *w = weight;
                        true
                    }
                    None => false,
                }
            }
            GraphMutation::AddNode { .. } | GraphMutation::RemoveNode { .. } => {
                unreachable!("node ops never reach the directed edge path")
            }
        }
    }

    fn apply(&mut self, m: GraphMutation) {
        match m {
            GraphMutation::AddNode { node } => {
                let idx = node as usize;
                if self.live.get(idx).copied().unwrap_or(false) {
                    return; // duplicate arrival: rejected
                }
                if idx >= self.live.len() {
                    self.live.resize(idx + 1, false);
                }
                self.live[idx] = true; // vacant arrives, retired rejoins empty
            }
            GraphMutation::RemoveNode { node } => {
                let idx = node as usize;
                if !self.live.get(idx).copied().unwrap_or(false) {
                    return; // unknown or already retired: rejected
                }
                self.edges
                    .retain(|&(src, dst), _| src != node && dst != node);
                self.live[idx] = false;
            }
            edge_op => {
                let (src, dst) = edge_op.endpoints();
                let n = self.capacity() as NodeId;
                if src >= n
                    || dst >= n
                    || src == dst
                    || !self.live[src as usize]
                    || !self.live[dst as usize]
                {
                    return;
                }
                if self.apply_directed(edge_op) && self.symmetric {
                    let mirrored = match edge_op {
                        GraphMutation::AddEdge { src, dst, weight } => GraphMutation::AddEdge {
                            src: dst,
                            dst: src,
                            weight,
                        },
                        GraphMutation::RemoveEdge { src, dst } => {
                            GraphMutation::RemoveEdge { src: dst, dst: src }
                        }
                        GraphMutation::UpdateWeight { src, dst, weight } => {
                            GraphMutation::UpdateWeight {
                                src: dst,
                                dst: src,
                                weight,
                            }
                        }
                        _ => unreachable!("edge_op is an edge op"),
                    };
                    self.apply_directed(mirrored);
                }
            }
        }
    }

    fn neighbor_weights(&self, v: NodeId) -> Vec<(NodeId, f32)> {
        self.edges
            .range((v, 0)..=(v, NodeId::MAX))
            .map(|(&(_, dst), &w)| (dst, w))
            .collect()
    }
}

fn base_graph(edges: &[(u32, u32, f32)]) -> Graph {
    let mut b = GraphBuilder::new();
    b.set_num_nodes(N as usize);
    b.symmetric(true).dedup(true);
    for &(u, v, w) in edges {
        if u != v {
            b.add_edge(u % N, v % N, w);
        }
    }
    b.build()
}

/// Edge ops over the (growable) id space plus arrivals and retirements.
fn churn_mutation() -> impl Strategy<Value = GraphMutation> {
    (0u8..6, 0u32..N + 4, 0u32..N + 4, 0.1f32..8.0).prop_map(|(op, src, dst, w)| match op {
        0 | 1 => GraphMutation::AddEdge {
            src,
            dst,
            weight: w,
        },
        2 => GraphMutation::RemoveEdge { src, dst },
        3 => GraphMutation::UpdateWeight {
            src,
            dst,
            weight: w,
        },
        4 => GraphMutation::AddNode { node: src },
        _ => GraphMutation::RemoveNode { node: src },
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The headline open-world property: streaming churn through the
    /// concurrent ingest pipeline == a from-scratch rebuild of the surviving
    /// universe, across graph state, sampler state and the query plane.
    #[test]
    fn open_world_equivalence(
        edges in prop::collection::vec((0u32..N, 0u32..N, 0.5f32..4.0), 1..40),
        mutations in prop::collection::vec(churn_mutation(), 0..80),
        batch_size in 1usize..16,
        seed in 0u64..1000,
    ) {
        let g = base_graph(&edges);
        let model = DeepWalk::new();

        // Reference: replay the stream against the independent lifecycle
        // model (the "from-scratch rebuild on the surviving universe").
        let mut reference = OpenWorldModel::from_graph(&g, true);
        for &m in &mutations {
            reference.apply(m);
        }

        // Streaming: the concurrent pipeline (sharded edge batches, serial
        // node-op batches, incremental sampler maintenance).
        let mut dg = DynamicGraph::new(g, true);
        let mut manager = SamplerManager::new(dg.base(), &model, EdgeSamplerKind::Alias, 0);
        run_pipeline(
            &IngestConfig {
                batch_size,
                queue_capacity: 4,
                num_threads: 3,
                compaction_threshold: 8,
            },
            &mut dg,
            &mut manager,
            &model,
            &mutations,
            |_, _, _, _| {},
        );

        // Universe equivalence: capacity, live mask, every row's adjacency.
        prop_assert_eq!(dg.num_nodes(), reference.capacity(), "universe capacity");
        prop_assert_eq!(dg.live_mask(), reference.live.as_slice(), "live mask");
        let final_graph = dg.materialize();
        final_graph.validate().unwrap();
        prop_assert_eq!(final_graph.num_nodes(), reference.capacity());
        for v in 0..reference.capacity() as NodeId {
            let expect = reference.neighbor_weights(v);
            if !reference.live[v as usize] {
                prop_assert!(expect.is_empty());
                prop_assert_eq!(
                    final_graph.degree(v), 0,
                    "retired id {} kept edges in the compacted CSR", v
                );
                continue;
            }
            let got: Vec<(NodeId, f32)> = final_graph
                .neighbors(v)
                .iter()
                .copied()
                .zip(final_graph.weights(v).iter().copied())
                .collect();
            prop_assert_eq!(&got, &expect, "adjacency of {}", v);
        }

        // Sampler-weight equivalence: alias tables maintained incrementally
        // through the churn draw the same sequences as tables built fresh
        // over the final graph. Alias construction is deterministic in the
        // weights, so any divergence is a maintenance bug.
        let fresh = SamplerManager::new(&final_graph, &model, EdgeSamplerKind::Alias, 0);
        prop_assert_eq!(manager.num_states(), fresh.num_states(), "sampler state count");
        for v in 0..reference.capacity() as NodeId {
            if !reference.live[v as usize] || final_graph.degree(v) == 0 {
                continue;
            }
            let state = model.initial_state(&final_graph, v);
            let mut rng_a = SmallRng::seed_from_u64(seed ^ u64::from(v));
            let mut rng_b = SmallRng::seed_from_u64(seed ^ u64::from(v));
            for draw in 0..16 {
                let a = manager.sample(dg.base(), &model, state, &mut rng_a);
                let b = fresh.sample(&final_graph, &model, state, &mut rng_b);
                prop_assert_eq!(
                    a, b,
                    "maintained vs fresh alias draw {} diverged at node {}", draw, v
                );
            }
        }

        // Query-plane equivalence: a snapshot published with the final mask
        // never surfaces a retired id, from the exact scan or the ANN index.
        let capacity = reference.capacity();
        let dim = 8usize;
        let mut rng = SmallRng::seed_from_u64(seed);
        let flat: Vec<f32> = (0..capacity * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let store = EmbeddingStore::with_ann(AnnConfig {
            m: 4,
            ef_construction: 16,
            ef_search: 16,
            ..AnnConfig::default()
        });
        let mask = reference
            .live
            .iter()
            .any(|&l| !l)
            .then(|| reference.live.clone());
        store.publish_with_universe(Embeddings::from_flat(dim, flat), mask);
        let snapshot = store.snapshot();
        prop_assert_eq!(
            snapshot.live_count(),
            reference.live.iter().filter(|&&l| l).count()
        );
        for v in 0..capacity as NodeId {
            if reference.live[v as usize] {
                for mode in [QueryMode::Exact, QueryMode::Ann] {
                    for (u, _) in snapshot.top_k_mode(v, capacity, mode) {
                        prop_assert!(
                            reference.live[u as usize],
                            "retired id {} surfaced from {:?} top_k({})", u, mode, v
                        );
                    }
                }
            } else {
                prop_assert!(!snapshot.is_live(v));
                prop_assert!(snapshot.top_k(v, 4).is_empty(), "retired id {} answered", v);
                prop_assert!(store.vector(v).is_none(), "retired id {} served a vector", v);
            }
        }
    }
}
