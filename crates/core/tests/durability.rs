//! Engine-level durability: a durable engine's state survives process death.
//!
//! The persist crate's property tests pin down `restart == no-restart` at
//! the WAL/snapshot layer; these tests pin it down at the `Engine` facade —
//! stream with a WAL, throw the engine away (the moral equivalent of
//! `kill -9`), rebuild via [`EngineBuilder::recover`] and demand the same
//! serving state — plus the builder-validation surface around it.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use uninet_core::{Engine, FsyncPolicy, GraphMutation, ModelSpec, UniNetError};
use uninet_graph::generators::{rmat, RmatConfig};
use uninet_graph::Graph;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "uninet-engine-dur-{}-{}-{tag}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn test_graph() -> Graph {
    rmat(&RmatConfig {
        num_nodes: 120,
        num_edges: 900,
        weighted: true,
        seed: 19,
        ..Default::default()
    })
}

fn mutation_stream(graph: &Graph, count: usize) -> Vec<GraphMutation> {
    let n = graph.num_nodes() as u32;
    (0..count as u32)
        .map(|i| match i % 3 {
            0 => GraphMutation::AddEdge {
                src: i % n,
                dst: (i * 7 + 1) % n,
                weight: 1.0 + (i % 5) as f32 * 0.5,
            },
            1 => GraphMutation::UpdateWeight {
                src: i % n,
                dst: (i * 7 + 1) % n,
                weight: 2.0,
            },
            _ => GraphMutation::RemoveEdge {
                src: (i * 3) % n,
                dst: (i * 11 + 2) % n,
            },
        })
        .collect()
}

fn durable_engine(dir: &PathBuf) -> Engine {
    Engine::builder()
        .graph(test_graph())
        .model(ModelSpec::DeepWalk)
        .num_walks(1)
        .walk_length(8)
        .dim(16)
        .threads(2)
        .seed(11)
        .incremental_train(true)
        .update_batch_size(16)
        .wal(dir)
        .snapshot_every(4)
        .wal_fsync(FsyncPolicy::Never)
        .build()
        .expect("valid durable configuration")
}

#[test]
fn recovered_engine_serves_the_pre_crash_state() {
    let dir = wal_dir("restart");
    let engine = durable_engine(&dir);
    let outcome = engine
        .stream_blocking(mutation_stream(&test_graph(), 120))
        .expect("stream");
    let durability = outcome
        .report
        .durability
        .as_ref()
        .expect("durable session must report durability accounting");
    assert!(durability.wal_error.is_none(), "{:?}", durability.wal_error);
    assert_eq!(durability.batches_logged, outcome.report.batches);
    assert!(
        durability.snapshots_written >= 2,
        "initial + final at minimum, got {}",
        durability.snapshots_written
    );
    assert!(durability.wal_bytes > 0);

    let epoch = outcome.epoch;
    let reference: Vec<Option<Vec<f32>>> = (0..engine.num_nodes() as u32)
        .map(|v| engine.vector(v))
        .collect();
    drop(engine); // the crash: nothing survives but the WAL directory

    let recovered = Engine::builder()
        .model(ModelSpec::DeepWalk)
        .dim(16)
        .seed(11)
        .recover(&dir)
        .build()
        .expect("recovery");
    let summary = recovered.recovery().expect("recovery summary");
    assert_eq!(summary.epoch, epoch);
    assert!(summary.restored_embeddings);
    assert_eq!(
        summary.replayed_batches, 0,
        "a clean shutdown ends on a snapshot, nothing to replay"
    );
    assert_eq!(recovered.snapshot().epoch(), epoch);
    for (v, expected) in reference.iter().enumerate() {
        assert_eq!(
            &recovered.vector(v as u32),
            expected,
            "vector of node {v} must survive the restart bit-for-bit"
        );
    }

    // The recovered engine is a full engine: it can keep streaming onto the
    // same WAL, and a second recovery then reflects the newer state.
    let outcome2 = recovered
        .stream_blocking(mutation_stream(&test_graph(), 40))
        .expect("stream after recovery");
    assert!(outcome2.report.durability.is_some());
    let epoch2 = outcome2.epoch;
    drop(recovered);
    let recovered2 = Engine::builder()
        .recover(&dir)
        .build()
        .expect("second recovery");
    assert_eq!(recovered2.snapshot().epoch(), epoch2);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_recovers_to_the_durable_prefix() {
    let dir = wal_dir("torn");
    let engine = durable_engine(&dir);
    engine
        .stream_blocking(mutation_stream(&test_graph(), 120))
        .expect("stream");
    drop(engine);

    // Simulate a mid-append crash: chop the WAL mid-record.
    let wal = uninet_persist::wal_path(&dir);
    let len = std::fs::metadata(&wal).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(len - 3).unwrap();
    drop(f);

    let recovered = Engine::builder().recover(&dir).build().expect("recovery");
    let summary = recovered.recovery().expect("summary");
    assert!(
        summary.truncated_tail_bytes > 0,
        "the torn record must be truncated, not treated as corruption"
    );
    assert!(recovered.num_nodes() > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persist_flags_without_a_wal_dir_are_rejected() {
    let err = Engine::builder()
        .graph(test_graph())
        .snapshot_every(8)
        .build()
        .unwrap_err();
    assert!(
        matches!(
            err,
            UniNetError::InvalidConfig {
                field: "persist.snapshot_every",
                ..
            }
        ),
        "{err}"
    );
    let err = Engine::builder()
        .graph(test_graph())
        .wal_fsync(FsyncPolicy::Never)
        .build()
        .unwrap_err();
    assert!(
        matches!(
            err,
            UniNetError::InvalidConfig {
                field: "persist.wal_fsync",
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn recover_conflicts_with_an_explicit_graph_source() {
    let dir = wal_dir("conflict");
    let err = Engine::builder()
        .graph(test_graph())
        .recover(&dir)
        .build()
        .unwrap_err();
    assert!(
        matches!(err, UniNetError::InvalidConfig { field: "graph", .. }),
        "{err}"
    );
}

#[test]
fn unwritable_wal_dir_is_a_build_error() {
    // A regular file where the directory should be: create_dir_all fails.
    let blocker =
        std::env::temp_dir().join(format!("uninet-engine-dur-blocker-{}", std::process::id()));
    std::fs::write(&blocker, b"not a directory").unwrap();
    let err = Engine::builder()
        .graph(test_graph())
        .wal(blocker.join("wal"))
        .build()
        .unwrap_err();
    assert!(
        matches!(
            err,
            UniNetError::InvalidConfig {
                field: "persist.wal_dir",
                ..
            }
        ),
        "{err}"
    );
    let _ = std::fs::remove_file(&blocker);
}

#[test]
fn recovering_an_empty_dir_reports_no_state() {
    let dir = wal_dir("empty");
    let err = Engine::builder().recover(&dir).build().unwrap_err();
    assert!(
        matches!(
            &err,
            UniNetError::Persist(uninet_persist::PersistError::NoState { .. })
        ),
        "{err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
