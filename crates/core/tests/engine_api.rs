//! Integration tests of the session API: builder validation, the embedding
//! query service, and concurrent queries against an active streaming session.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uninet_core::{
    EdgeSamplerKind, Engine, GraphMutation, InitStrategy, ModelSpec, QueryMode, UniNetError,
};
use uninet_graph::generators::{barabasi_albert, rmat, RmatConfig};
use uninet_graph::{Graph, NodeId};

fn test_graph() -> Graph {
    rmat(&RmatConfig {
        num_nodes: 200,
        num_edges: 1600,
        weighted: true,
        seed: 23,
        ..Default::default()
    })
}

fn mixed_stream(graph: &Graph, count: usize, seed: u64) -> Vec<GraphMutation> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = graph.num_nodes() as NodeId;
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let src = rng.gen_range(0..n);
        if graph.degree(src) == 0 {
            continue;
        }
        let dst = graph.neighbor_at(src, rng.gen_range(0..graph.degree(src)));
        out.push(match out.len() % 4 {
            0 | 1 => GraphMutation::UpdateWeight {
                src,
                dst,
                weight: rng.gen_range(0.5f32..4.0),
            },
            2 => GraphMutation::AddEdge {
                src,
                dst: (dst + 1) % n,
                weight: 1.0,
            },
            _ => GraphMutation::RemoveEdge { src, dst },
        });
    }
    out
}

fn small_engine(graph: Graph) -> Engine {
    Engine::builder()
        .graph(graph)
        .model(ModelSpec::DeepWalk)
        .num_walks(2)
        .walk_length(10)
        .dim(24)
        .epochs(1)
        .threads(2)
        .sampler(EdgeSamplerKind::MetropolisHastings(InitStrategy::Random))
        .build()
        .expect("valid configuration")
}

fn assert_invalid(err: UniNetError, expected_field: &str) {
    match err {
        UniNetError::InvalidConfig { field, .. } => assert_eq!(field, expected_field),
        other => panic!("expected InvalidConfig({expected_field}), got {other}"),
    }
}

#[test]
fn builder_rejects_bad_configs() {
    let g = || barabasi_albert(60, 3, false, 1);
    assert_invalid(
        Engine::builder()
            .graph(g())
            .num_walks(0)
            .build()
            .unwrap_err(),
        "walk.num_walks",
    );
    assert_invalid(
        Engine::builder()
            .graph(g())
            .walk_length(1)
            .build()
            .unwrap_err(),
        "walk.walk_length",
    );
    assert_invalid(
        Engine::builder().graph(g()).dim(0).build().unwrap_err(),
        "embedding.dim",
    );
    assert_invalid(
        Engine::builder().graph(g()).epochs(0).build().unwrap_err(),
        "embedding.epochs",
    );
    assert_invalid(
        Engine::builder()
            .graph(g())
            .model(ModelSpec::MetaPath2Vec { metapath: vec![0] })
            .build()
            .unwrap_err(),
        "model.metapath",
    );
    // A metapath naming node types the graph does not have is rejected too
    // (barabasi_albert graphs are homogeneous — only type 0 exists).
    assert_invalid(
        Engine::builder()
            .graph(g())
            .model(ModelSpec::MetaPath2Vec {
                metapath: vec![0, 1, 0],
            })
            .build()
            .unwrap_err(),
        "model.metapath",
    );
    assert_invalid(
        Engine::builder()
            .graph(g())
            .model(ModelSpec::Node2Vec { p: 0.0, q: 1.0 })
            .build()
            .unwrap_err(),
        "model.p",
    );
    assert_invalid(
        Engine::builder()
            .graph(g())
            .update_batch_size(0)
            .build()
            .unwrap_err(),
        "streaming.batch_size",
    );
    assert_invalid(
        Engine::builder()
            .graph(g())
            .queue_capacity(0)
            .build()
            .unwrap_err(),
        "streaming.queue_capacity",
    );
    assert_invalid(Engine::builder().build().unwrap_err(), "graph");
    // ANN options are validated only when the index is enabled.
    assert_invalid(
        Engine::builder()
            .graph(g())
            .ann_index(true)
            .ann_m(1)
            .build()
            .unwrap_err(),
        "streaming.ann_m",
    );
    assert_invalid(
        Engine::builder()
            .graph(g())
            .ann_index(true)
            .ann_m(16)
            .ann_ef_construction(4)
            .build()
            .unwrap_err(),
        "streaming.ann_ef_construction",
    );
    assert_invalid(
        Engine::builder()
            .graph(g())
            .ann_index(true)
            .ann_ef_search(0)
            .build()
            .unwrap_err(),
        "streaming.ann_ef_search",
    );
    assert_invalid(
        Engine::builder()
            .graph(g())
            .ann_index(true)
            .ann_rerank(0)
            .build()
            .unwrap_err(),
        "streaming.ann_rerank",
    );
    assert_invalid(
        Engine::builder()
            .graph(g())
            .ann_index(true)
            .ann_drift_threshold(f32::NAN)
            .build()
            .unwrap_err(),
        "streaming.ann_drift_threshold",
    );
    // Quantized serving without an ANN config to carry it is rejected even
    // though the index itself is off.
    assert_invalid(
        Engine::builder()
            .graph(g())
            .ann_quantize(true)
            .build()
            .unwrap_err(),
        "streaming.ann_quantize",
    );
    assert!(Engine::builder()
        .graph(g())
        .ann_m(0) // nonsense, but ignored while the index is off
        .build()
        .is_ok());
    // A valid configuration still builds.
    assert!(Engine::builder().graph(g()).build().is_ok());
}

#[test]
fn builder_loads_edge_list_files_with_typed_errors() {
    let err = Engine::builder()
        .graph_from_edge_list("/nonexistent/graph.edges")
        .build()
        .unwrap_err();
    assert!(matches!(err, UniNetError::Graph(_)), "got {err}");

    let dir = std::env::temp_dir().join("uninet_engine_api_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("toy.edges");
    std::fs::write(&path, "0 1 1.0\n1 2 1.0\n2 0 1.0\n").unwrap();
    let engine = Engine::builder()
        .graph_from_edge_list(&path)
        .num_walks(1)
        .walk_length(5)
        .dim(8)
        .threads(1)
        .build()
        .unwrap();
    assert_eq!(engine.num_nodes(), 3);
    engine.train().unwrap();
    assert_eq!(engine.snapshot().num_nodes(), 3);
}

#[test]
fn train_publishes_queryable_snapshots() {
    let engine = small_engine(test_graph());
    // Before training: epoch 0, empty store, queries answer safely.
    assert_eq!(engine.snapshot().epoch(), 0);
    assert_eq!(engine.vector(0), None);
    assert!(engine.top_k(0, 5).is_empty());

    let report = engine.train().unwrap();
    assert_eq!(report.epoch, 1);
    assert!(report.corpus.num_walks() > 0);
    assert_eq!(engine.snapshot().num_nodes(), engine.num_nodes());
    assert_eq!(
        engine.vector(0).unwrap().len(),
        engine.config().embedding.dim
    );
    let sims = engine.top_k(0, 10);
    assert_eq!(sims.len(), 10);
    // Scores are sorted best-first.
    for pair in sims.windows(2) {
        assert!(pair[0].1 >= pair[1].1);
    }
    // Retraining bumps the epoch.
    let report = engine.train().unwrap();
    assert_eq!(report.epoch, 2);
}

#[test]
fn top_k_agrees_with_brute_force_over_trained_embeddings() {
    let engine = small_engine(test_graph());
    engine.train().unwrap();
    let snapshot = engine.snapshot();
    let emb = snapshot.embeddings();
    for node in [0u32, 7, 42, 199] {
        let fast = engine.top_k(node, 5);
        let brute = emb.most_similar(node, 5);
        assert_eq!(fast.len(), brute.len());
        for (f, b) in fast.iter().zip(&brute) {
            assert!(
                (f.1 - b.1).abs() < 1e-6,
                "node {node}: heap {:?} vs brute {:?}",
                fast,
                brute
            );
        }
    }
}

#[test]
fn ann_engine_routes_top_k_through_the_index() {
    let engine = Engine::builder()
        .graph(test_graph())
        .model(ModelSpec::DeepWalk)
        .num_walks(2)
        .walk_length(10)
        .dim(24)
        .epochs(1)
        .threads(2)
        .seed(11)
        .sampler(EdgeSamplerKind::MetropolisHastings(InitStrategy::Random))
        .ann_index(true)
        .ann_ef_search(128)
        .build()
        .unwrap();
    // Nothing published yet: ANN queries answer safely from the empty epoch.
    assert!(engine.top_k(0, 5).is_empty());
    engine.train().unwrap();

    let snapshot = engine.snapshot();
    assert!(snapshot.ann().is_some(), "snapshot should carry the index");
    let emb = snapshot.embeddings();
    let mut hits = 0usize;
    for node in [0u32, 7, 42, 199] {
        // The default path serves from the index...
        let ann = engine.top_k(node, 10);
        assert_eq!(ann.len(), 10);
        for pair in ann.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "ann results not sorted");
        }
        // ...while QueryMode::Exact still matches brute force exactly.
        let exact = engine.top_k_mode(node, 10, QueryMode::Exact);
        let brute = emb.most_similar(node, 10);
        for (f, b) in exact.iter().zip(&brute) {
            assert!((f.1 - b.1).abs() < 1e-6);
        }
        let exact_ids: Vec<u32> = exact.iter().map(|&(u, _)| u).collect();
        hits += ann.iter().filter(|&&(u, _)| exact_ids.contains(&u)).count();
    }
    assert!(hits >= 36, "recall@10 over 4 probes too low: {hits}/40");
}

#[test]
fn quantized_ann_engine_serves_exact_scores() {
    let engine = Engine::builder()
        .graph(test_graph())
        .model(ModelSpec::DeepWalk)
        .num_walks(2)
        .walk_length(10)
        .dim(24)
        .epochs(1)
        .threads(2)
        .seed(17)
        .sampler(EdgeSamplerKind::MetropolisHastings(InitStrategy::Random))
        .ann_index(true)
        .ann_quantize(true)
        .ann_rerank(4)
        .build()
        .unwrap();
    engine.train().unwrap();
    let snapshot = engine.snapshot();
    assert!(snapshot.is_quantized(), "snapshot should carry int8 codes");
    assert!(snapshot.ann().is_some_and(|i| i.is_quantized()));
    for node in [0u32, 7, 42] {
        for mode in [QueryMode::Exact, QueryMode::Ann] {
            let hits = engine.top_k_mode(node, 10, mode);
            assert_eq!(hits.len(), 10);
            for &(u, s) in &hits {
                // Quantization ranks candidates, but every reported score
                // must be the exact f32 cosine.
                let want = snapshot.embeddings().cosine_similarity(node, u);
                assert!((s - want).abs() < 1e-5, "{mode:?} node {node} hit {u}");
            }
        }
    }
}

#[test]
fn batch_queries_amortize_one_snapshot_acquisition() {
    let engine = small_engine(test_graph());
    engine.train().unwrap();
    let nodes: Vec<u32> = (0..50).collect();
    let batch = engine.top_k_batch(&nodes, 5, QueryMode::Exact);
    assert_eq!(batch.len(), nodes.len());
    for (&node, row) in nodes.iter().zip(&batch) {
        assert_eq!(row, &engine.top_k_mode(node, 5, QueryMode::Exact));
    }
    let pairs = [(0u32, 1u32), (5, 9), (0, 10_000)];
    let cosines = engine.cosine_batch(&pairs);
    assert_eq!(cosines[0], engine.cosine(0, 1));
    assert_eq!(cosines[1], engine.cosine(5, 9));
    assert_eq!(cosines[2], None);
}

#[test]
fn stream_keeps_engine_queryable_and_updates_graph() {
    let graph = test_graph();
    let n = graph.num_nodes();
    let mutations = mixed_stream(&graph, 300, 5);
    let engine = Engine::builder()
        .graph(graph)
        .model(ModelSpec::DeepWalk)
        .num_walks(2)
        .walk_length(10)
        .dim(24)
        .epochs(1)
        .threads(2)
        .sampler(EdgeSamplerKind::MetropolisHastings(InitStrategy::Random))
        .update_batch_size(32)
        .incremental_train(true)
        .build()
        .unwrap();

    let handle = engine.stream(mutations).unwrap();
    // While the session is active, exclusive operations are refused with
    // EngineBusy. The session may already have finished on a fast machine,
    // in which case the probe succeeds — tolerate that, but never any other
    // error. generate_walks is used as the probe because it has no side
    // effects on the store, keeping the epoch arithmetic below exact.
    match engine.generate_walks() {
        Ok(_) | Err(UniNetError::EngineBusy { .. }) => {}
        Err(other) => panic!("unexpected error: {other}"),
    }
    // ...while queries always answer from the store, busy or not.
    let _ = engine.top_k(0, 3);

    let outcome = handle.join().unwrap();
    assert!(outcome.report.batches > 0);
    assert!(
        outcome.epoch >= 2,
        "initial + at least one per-pass snapshot"
    );
    assert_eq!(outcome.result.embeddings.num_nodes(), n);
    assert_eq!(engine.snapshot().epoch(), outcome.epoch);

    // The core is back: batch training works again on the post-stream graph.
    let report = engine.train().unwrap();
    assert_eq!(report.epoch, outcome.epoch + 1);
}

#[test]
fn concurrent_queries_during_streaming_see_monotone_epochs() {
    let graph = test_graph();
    let mutations = mixed_stream(&graph, 400, 9);
    let engine = Engine::builder()
        .graph(graph)
        .model(ModelSpec::DeepWalk)
        .num_walks(2)
        .walk_length(10)
        .dim(24)
        .epochs(1)
        .threads(2)
        .sampler(EdgeSamplerKind::MetropolisHastings(InitStrategy::Random))
        .update_batch_size(32)
        .compaction_threshold(64)
        .incremental_train(true)
        .build()
        .unwrap();

    let handle = engine.stream(mutations).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|i| {
            let store = handle.store();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(100 + i);
                let mut last_epoch = 0u64;
                let mut queries = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let snap = store.snapshot();
                    assert!(
                        snap.epoch() >= last_epoch,
                        "epoch went backwards: {} -> {}",
                        last_epoch,
                        snap.epoch()
                    );
                    last_epoch = snap.epoch();
                    if snap.num_nodes() > 0 {
                        let node = rng.gen_range(0..snap.num_nodes() as u32);
                        let top = snap.top_k(node, 5);
                        assert!(top.len() <= 5);
                        for pair in top.windows(2) {
                            assert!(pair[0].1 >= pair[1].1, "top_k not sorted");
                        }
                    }
                    queries += 1;
                }
                (queries, last_epoch)
            })
        })
        .collect();

    let outcome = handle.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    let final_epoch = outcome.epoch;
    for reader in readers {
        let (queries, last_epoch) = reader.join().expect("reader panicked");
        assert!(queries > 0, "reader made no queries");
        assert!(last_epoch <= final_epoch);
    }
    assert!(
        outcome.report.snapshots_published >= 2,
        "incremental streaming should publish the initial model and at least \
         one refresh-round snapshot"
    );
    assert_eq!(final_epoch, outcome.report.snapshots_published as u64);
}

#[test]
fn ann_queries_during_streaming_see_monotone_epochs() {
    let graph = test_graph();
    let mutations = mixed_stream(&graph, 400, 13);
    let engine = Engine::builder()
        .graph(graph)
        .model(ModelSpec::DeepWalk)
        .num_walks(2)
        .walk_length(10)
        .dim(24)
        .epochs(1)
        .threads(2)
        .sampler(EdgeSamplerKind::MetropolisHastings(InitStrategy::Random))
        .update_batch_size(32)
        .compaction_threshold(64)
        .incremental_train(true)
        .ann_index(true)
        .build()
        .unwrap();

    let handle = engine.stream(mutations).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|i| {
            let store = handle.store();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(500 + i);
                let mut last_epoch = 0u64;
                let mut ann_answers = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let snap = store.snapshot();
                    assert!(
                        snap.epoch() >= last_epoch,
                        "epoch went backwards: {} -> {}",
                        last_epoch,
                        snap.epoch()
                    );
                    last_epoch = snap.epoch();
                    if snap.num_nodes() > 0 {
                        // Every published snapshot must carry a freshly built
                        // index; the ANN path serves the query.
                        assert!(snap.ann().is_some(), "snapshot without HNSW index");
                        let node = rng.gen_range(0..snap.num_nodes() as u32);
                        let top = snap.top_k_mode(node, 5, QueryMode::Ann);
                        assert!(top.len() <= 5);
                        for pair in top.windows(2) {
                            assert!(pair[0].1 >= pair[1].1, "ann top_k not sorted");
                        }
                        ann_answers += 1;
                    }
                }
                (ann_answers, last_epoch)
            })
        })
        .collect();

    let outcome = handle.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    for reader in readers {
        let (ann_answers, last_epoch) = reader.join().expect("reader panicked");
        assert!(ann_answers > 0, "reader served no ANN queries");
        assert!(last_epoch <= outcome.epoch);
    }
    assert!(outcome.report.snapshots_published >= 2);
    assert!(engine.snapshot().ann().is_some());
}

#[test]
fn cloned_engines_share_state_and_store() {
    let engine = small_engine(test_graph());
    let clone = engine.clone();
    engine.train().unwrap();
    // The clone sees the snapshot the original published.
    assert_eq!(clone.snapshot().epoch(), 1);
    assert_eq!(clone.num_nodes(), engine.num_nodes());

    // Busy state is shared too: a stream started through the clone blocks
    // exclusive operations on the original.
    let mutations = mixed_stream(&test_graph(), 200, 41);
    let handle = clone.stream(mutations).unwrap();
    match engine.train() {
        Ok(_) => {} // session may already have finished on a fast machine
        Err(UniNetError::EngineBusy { .. }) => {}
        Err(other) => panic!("unexpected error: {other}"),
    }
    handle.join().unwrap();
}

#[test]
fn stream_blocking_runs_full_retrain_sessions() {
    let graph = test_graph();
    let n = graph.num_nodes();
    let mutations = mixed_stream(&graph, 120, 31);
    let engine = small_engine(graph);
    let outcome = engine.stream_blocking(mutations).unwrap();
    // Full retrain publishes exactly one snapshot, at end-of-stream.
    assert_eq!(outcome.report.snapshots_published, 1);
    assert_eq!(outcome.epoch, 1);
    assert_eq!(engine.snapshot().num_nodes(), n);
    assert!(outcome.report.update_throughput > 0.0);
}
