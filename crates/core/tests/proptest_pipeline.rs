//! Property-based tests over the whole stack: for arbitrary small graphs and
//! model hyper-parameters, walks are always valid paths, state indices stay in
//! bounds, and the pipeline never panics.

use proptest::prelude::*;

use uninet_core::{EdgeSamplerKind, Engine, InitStrategy, ModelSpec, UniNetConfig};
use uninet_graph::generators::{erdos_renyi, heterogenize};

fn arbitrary_spec() -> impl Strategy<Value = ModelSpec> {
    prop_oneof![
        Just(ModelSpec::DeepWalk),
        (0.1f32..4.0, 0.1f32..4.0).prop_map(|(p, q)| ModelSpec::Node2Vec { p, q }),
        (0.1f32..4.0, 0.1f32..4.0).prop_map(|(p, q)| ModelSpec::FairWalk { p, q }),
        (0.1f32..4.0, 0.1f32..4.0).prop_map(|(p, q)| ModelSpec::Edge2Vec { p, q }),
        Just(ModelSpec::MetaPath2Vec {
            metapath: vec![0, 1, 0]
        }),
    ]
}

fn arbitrary_sampler() -> impl Strategy<Value = EdgeSamplerKind> {
    prop_oneof![
        Just(EdgeSamplerKind::MetropolisHastings(InitStrategy::Random)),
        Just(EdgeSamplerKind::MetropolisHastings(
            InitStrategy::high_weight_exact()
        )),
        Just(EdgeSamplerKind::Direct),
        Just(EdgeSamplerKind::Alias),
        Just(EdgeSamplerKind::Rejection),
        Just(EdgeSamplerKind::KnightKing),
        Just(EdgeSamplerKind::MemoryAware),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn walks_are_always_valid_paths(
        nodes in 20usize..80,
        edge_factor in 2usize..6,
        seed in 0u64..1000,
        spec in arbitrary_spec(),
        sampler in arbitrary_sampler(),
    ) {
        let homogeneous = erdos_renyi(nodes, nodes * edge_factor, true, seed);
        let graph = heterogenize(&homogeneous, 3, 2, seed ^ 7);
        let mut cfg = UniNetConfig::small();
        cfg.walk.num_walks = 1;
        cfg.walk.walk_length = 8;
        cfg.walk.num_threads = 2;
        cfg.walk.sampler = sampler;
        cfg.walk.seed = seed;
        let engine = Engine::builder()
            .graph(graph.clone())
            .config(cfg)
            .model(spec.clone())
            .build()
            .expect("valid random configuration");
        let (corpus, _) = engine.generate_walks().expect("engine is idle");
        prop_assert!(corpus.num_walks() > 0);
        for walk in corpus.iter() {
            prop_assert!(!walk.is_empty());
            prop_assert!(walk.len() <= 8);
            for pair in walk.windows(2) {
                prop_assert!(graph.has_edge(pair[0], pair[1]),
                    "{:?} generated non-edge {}->{}", spec, pair[0], pair[1]);
            }
        }
    }

    #[test]
    fn visit_counts_cover_only_existing_nodes(
        nodes in 20usize..60,
        seed in 0u64..500,
    ) {
        let graph = erdos_renyi(nodes, nodes * 3, false, seed);
        let mut cfg = UniNetConfig::small();
        cfg.walk.num_walks = 2;
        cfg.walk.walk_length = 10;
        cfg.walk.num_threads = 2;
        let engine = Engine::builder()
            .graph(graph.clone())
            .config(cfg)
            .model(ModelSpec::DeepWalk)
            .build()
            .expect("valid configuration");
        let (corpus, _) = engine.generate_walks().expect("engine is idle");
        let counts = corpus.visit_counts(graph.num_nodes());
        prop_assert_eq!(counts.len(), graph.num_nodes());
        let total: u64 = counts.iter().sum();
        prop_assert_eq!(total as usize, corpus.total_tokens());
    }
}
