//! End-to-end checks of the engine telemetry plane: one engine, one batch
//! train, one streaming session and some queries must light up instruments in
//! all three planes (`ingest.*`, `engine.*`, `query.*`) of
//! [`Engine::metrics`], and the JSON rendering must carry the same sections.

use uninet_core::{Engine, GraphMutation, ModelSpec, QueryMode, StreamingConfig};
use uninet_graph::generators::{rmat, RmatConfig};

fn engine() -> Engine {
    let graph = rmat(&RmatConfig {
        num_nodes: 300,
        num_edges: 1_500,
        weighted: true,
        seed: 9,
        ..Default::default()
    });
    Engine::builder()
        .graph(graph)
        .model(ModelSpec::DeepWalk)
        .num_walks(2)
        .walk_length(10)
        .dim(16)
        .threads(2)
        .streaming(StreamingConfig {
            batch_size: 64,
            incremental_train: true,
            ..Default::default()
        })
        .build()
        .expect("valid configuration")
}

fn mutations(n: usize) -> Vec<GraphMutation> {
    (0..n)
        .map(|i| GraphMutation::UpdateWeight {
            src: (i % 300) as u32,
            dst: ((i * 7 + 1) % 300) as u32,
            weight: 1.0 + (i % 3) as f32,
        })
        .collect()
}

#[test]
fn metrics_cover_all_three_planes_after_train_stream_query() {
    let engine = engine();

    // Engine plane: one batch train = one recorded round + one publish.
    engine.train().expect("engine is idle");
    let snap = engine.metrics();
    assert_eq!(
        snap.histogram("engine.train.round_ns").map(|h| h.count()),
        Some(1)
    );
    assert_eq!(
        snap.histogram("engine.publish.total_ns").map(|h| h.count()),
        Some(1)
    );
    assert_eq!(snap.gauge("engine.epoch"), Some(1));
    assert!(snap.gauge("engine.epoch_age_ms").is_some());

    // Query plane: the facade's top_k falls back to the exact scan (no ANN
    // index configured), so the fallback counter moves with the histogram.
    for node in 0..10u32 {
        let _ = engine.top_k_mode(node, 5, QueryMode::Exact);
    }
    let _ = engine.top_k(0, 5); // ANN mode without an index: exact fallback
    let snap = engine.metrics();
    assert_eq!(
        snap.histogram("query.top_k.exact_ns").map(|h| h.count()),
        Some(10)
    );
    assert_eq!(
        snap.histogram("query.top_k.ann_ns").map(|h| h.count()),
        Some(1)
    );
    assert_eq!(snap.counter("query.ann_fallbacks"), Some(1));

    // Ingest plane: a streaming session drives the queue, sharded apply,
    // sampler maintenance and walk refresh instruments.
    engine
        .stream_blocking(mutations(256))
        .expect("engine is idle");
    let snap = engine.metrics();
    assert!(snap.counter("ingest.queue.enqueued").unwrap_or(0) > 0);
    assert!(snap.histogram("ingest.apply.batch_ns").unwrap().count() > 0);
    assert!(
        snap.histogram("ingest.maintain.sampler_ns")
            .unwrap()
            .count()
            > 0
    );
    assert!(snap.histogram("ingest.refresh.round_ns").unwrap().count() > 0);
    assert!(
        snap.histogram("engine.train.incremental_pass_ns")
            .unwrap()
            .count()
            > 0,
        "incremental_train sessions must record SGD pass latency"
    );
    // The queue fully drains by end of session.
    assert_eq!(snap.gauge("ingest.queue.depth"), Some(0));

    // The JSON rendering nests the same planes as top-level sections.
    let json = snap.to_json();
    for section in ["\"ingest\"", "\"engine\"", "\"query\""] {
        assert!(json.contains(section), "missing {section} in {json}");
    }
}

#[test]
fn metrics_registry_is_shared_and_live() {
    let engine = engine();
    engine.train().expect("engine is idle");
    // A reader holding the registry sees updates without going through the
    // facade — the handles are the same atomics the hot paths write.
    let registry = engine.metrics_registry();
    let before = registry
        .snapshot()
        .histogram("query.top_k.exact_ns")
        .unwrap()
        .count();
    let _ = engine.top_k_mode(1, 3, QueryMode::Exact);
    let after = registry
        .snapshot()
        .histogram("query.top_k.exact_ns")
        .unwrap()
        .count();
    assert_eq!(after, before + 1);
}
