//! The end-to-end UniNet pipeline: random-walk generation followed by
//! word2vec training, with the per-phase timing of Table VI.

use std::time::Instant;

use uninet_embedding::{Embeddings, TrainStats, Word2VecTrainer};
use uninet_graph::Graph;
use uninet_walker::{WalkCorpus, WalkEngine};

use crate::config::{ModelSpec, UniNetConfig};
use crate::timing::PhaseTiming;

/// Everything produced by one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The learned node embeddings.
    pub embeddings: Embeddings,
    /// The generated walk corpus (kept for inspection / reuse).
    pub corpus: WalkCorpus,
    /// Wall-clock breakdown (`Ti`, `Tw`, `Tl`).
    pub timing: PhaseTiming,
    /// Word2vec training statistics.
    pub train_stats: TrainStats,
}

/// The UniNet framework facade.
#[derive(Debug, Clone, Copy)]
pub struct UniNet {
    config: UniNetConfig,
}

impl UniNet {
    /// Creates a framework instance with the given configuration.
    pub fn new(config: UniNetConfig) -> Self {
        UniNet { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &UniNetConfig {
        &self.config
    }

    /// Runs walk generation only and returns the corpus plus (`Ti`, `Tw`).
    pub fn generate_walks(&self, graph: &Graph, spec: &ModelSpec) -> (WalkCorpus, PhaseTiming) {
        let model = spec.instantiate(graph);
        let engine = WalkEngine::new(self.config.walk);
        let (corpus, timing) = engine.generate(graph, model.as_ref());
        (
            corpus,
            PhaseTiming {
                init: timing.init,
                walk: timing.walk,
                ..Default::default()
            },
        )
    }

    /// Runs the full pipeline (walks + embedding learning).
    pub fn run(&self, graph: &Graph, spec: &ModelSpec) -> PipelineResult {
        let (corpus, mut timing) = self.generate_walks(graph, spec);
        let t = Instant::now();
        let trainer = Word2VecTrainer::new(self.config.embedding);
        let (embeddings, train_stats) = trainer.train(corpus.walks(), graph.num_nodes());
        timing.learn = t.elapsed();
        PipelineResult {
            embeddings,
            corpus,
            timing,
            train_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UniNetConfig;
    use uninet_graph::generators::{heterogenize, planted_partition, PlantedPartitionConfig};
    use uninet_sampler::{EdgeSamplerKind, InitStrategy};

    fn labeled_graph() -> uninet_graph::generators::LabeledGraph {
        planted_partition(&PlantedPartitionConfig {
            num_nodes: 300,
            num_communities: 3,
            intra_degree: 14.0,
            inter_degree: 1.0,
            multi_label_prob: 0.0,
            seed: 11,
        })
    }

    #[test]
    fn deepwalk_pipeline_produces_embeddings() {
        let lg = labeled_graph();
        let mut cfg = UniNetConfig::small();
        cfg.walk.num_walks = 4;
        cfg.walk.walk_length = 30;
        cfg.embedding.epochs = 2;
        let result = UniNet::new(cfg).run(&lg.graph, &ModelSpec::DeepWalk);
        assert_eq!(result.embeddings.num_nodes(), lg.graph.num_nodes());
        assert!(result.corpus.num_walks() > 0);
        assert!(result.timing.total().as_nanos() > 0);
        assert!(result.train_stats.pairs_processed > 0);
    }

    #[test]
    fn embeddings_capture_community_structure() {
        // Nodes in the same planted community should be more similar than
        // nodes in different communities — the property Figure 5 relies on.
        let lg = labeled_graph();
        let mut cfg = UniNetConfig::small();
        cfg.walk.num_walks = 6;
        cfg.walk.walk_length = 40;
        cfg.embedding.dim = 48;
        cfg.embedding.epochs = 3;
        cfg.embedding.window = 5;
        let result = UniNet::new(cfg).run(&lg.graph, &ModelSpec::Node2Vec { p: 1.0, q: 1.0 });
        let emb = &result.embeddings;
        let mut intra = 0.0f64;
        let mut inter = 0.0f64;
        let mut intra_n = 0u32;
        let mut inter_n = 0u32;
        for a in (0..300u32).step_by(7) {
            for b in (1..300u32).step_by(11) {
                if a == b {
                    continue;
                }
                let s = emb.cosine_similarity(a, b) as f64;
                if lg.primary_label(a) == lg.primary_label(b) {
                    intra += s;
                    intra_n += 1;
                } else {
                    inter += s;
                    inter_n += 1;
                }
            }
        }
        let intra = intra / intra_n as f64;
        let inter = inter / inter_n as f64;
        assert!(intra > inter + 0.05, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn all_models_run_end_to_end() {
        let lg = labeled_graph();
        let g = heterogenize(&lg.graph, 3, 2, 5);
        let mut cfg = UniNetConfig::small();
        cfg.walk.num_walks = 1;
        cfg.walk.walk_length = 10;
        cfg.embedding.epochs = 1;
        cfg.embedding.dim = 16;
        let uninet = UniNet::new(cfg);
        for spec in ModelSpec::paper_benchmark_suite() {
            let result = uninet.run(&g, &spec);
            assert_eq!(
                result.embeddings.num_nodes(),
                g.num_nodes(),
                "{}",
                spec.name()
            );
        }
    }

    #[test]
    fn sampler_kind_is_honoured() {
        let lg = labeled_graph();
        let mut cfg = UniNetConfig::small();
        cfg.walk.num_walks = 1;
        cfg.walk.walk_length = 10;
        cfg.walk.sampler = EdgeSamplerKind::Alias;
        cfg.embedding.epochs = 1;
        let uninet = UniNet::new(cfg);
        assert_eq!(uninet.config().walk.sampler, EdgeSamplerKind::Alias);
        let (corpus, timing) =
            uninet.generate_walks(&lg.graph, &ModelSpec::Node2Vec { p: 0.5, q: 2.0 });
        assert!(corpus.num_walks() > 0);
        // Alias materialization has a non-trivial init phase.
        assert!(timing.init.as_nanos() > 0);

        cfg.walk.sampler = EdgeSamplerKind::MetropolisHastings(InitStrategy::Random);
        let (corpus2, _) =
            UniNet::new(cfg).generate_walks(&lg.graph, &ModelSpec::Node2Vec { p: 0.5, q: 2.0 });
        assert_eq!(corpus2.num_walks(), corpus.num_walks());
    }
}
