//! The batch pipeline internals: random-walk generation followed by word2vec
//! training, with the per-phase timing of Table VI.
//!
//! These free functions are the engine-room of [`crate::Engine`]; they assume
//! the model spec was validated up front (the [`crate::EngineBuilder`] does
//! this at build time) and therefore take an already-instantiated
//! [`RandomWalkModel`].

use std::time::Instant;

use uninet_embedding::{Embeddings, TrainStats, Word2VecTrainer};
use uninet_graph::Graph;
use uninet_walker::{RandomWalkModel, WalkCorpus, WalkEngine};

use crate::config::UniNetConfig;
use crate::timing::PhaseTiming;

/// Everything produced by one batch pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The learned node embeddings.
    pub embeddings: Embeddings,
    /// The generated walk corpus (kept for inspection / reuse).
    pub corpus: WalkCorpus,
    /// Wall-clock breakdown (`Ti`, `Tw`, `Tl`).
    pub timing: PhaseTiming,
    /// Word2vec training statistics.
    pub train_stats: TrainStats,
}

/// Runs walk generation only and returns the corpus plus (`Ti`, `Tw`).
pub(crate) fn generate_walks(
    config: &UniNetConfig,
    graph: &Graph,
    model: &dyn RandomWalkModel,
) -> (WalkCorpus, PhaseTiming) {
    let engine = WalkEngine::new(config.walk);
    let (corpus, timing) = engine.generate(graph, model);
    (
        corpus,
        PhaseTiming {
            init: timing.init,
            walk: timing.walk,
            ..Default::default()
        },
    )
}

/// Runs the full batch pipeline (walks + embedding learning).
pub(crate) fn run_batch(
    config: &UniNetConfig,
    graph: &Graph,
    model: &dyn RandomWalkModel,
) -> PipelineResult {
    let (corpus, mut timing) = generate_walks(config, graph, model);
    let t = Instant::now();
    let trainer = Word2VecTrainer::new(config.embedding);
    let (embeddings, train_stats) = trainer.train(corpus.walks(), graph.num_nodes());
    timing.learn = t.elapsed();
    PipelineResult {
        embeddings,
        corpus,
        timing,
        train_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelSpec, UniNetConfig};
    use uninet_graph::generators::{heterogenize, planted_partition, PlantedPartitionConfig};

    fn labeled_graph() -> uninet_graph::generators::LabeledGraph {
        planted_partition(&PlantedPartitionConfig {
            num_nodes: 300,
            num_communities: 3,
            intra_degree: 14.0,
            inter_degree: 1.0,
            multi_label_prob: 0.0,
            seed: 11,
        })
    }

    #[test]
    fn run_batch_produces_embeddings() {
        let lg = labeled_graph();
        let mut cfg = UniNetConfig::small();
        cfg.walk.num_walks = 2;
        cfg.walk.walk_length = 15;
        cfg.embedding.epochs = 1;
        let model = ModelSpec::DeepWalk.instantiate(&lg.graph).unwrap();
        let result = run_batch(&cfg, &lg.graph, model.as_ref());
        assert_eq!(result.embeddings.num_nodes(), lg.graph.num_nodes());
        assert!(result.corpus.num_walks() > 0);
        assert!(result.timing.total().as_nanos() > 0);
        assert!(result.train_stats.pairs_processed > 0);
    }

    #[test]
    fn all_models_train_end_to_end() {
        // Full walks + word2vec pass for all five models, not just walk
        // generation — training-path regressions in any model must fail here.
        let lg = labeled_graph();
        let g = heterogenize(&lg.graph, 3, 2, 5);
        let mut cfg = UniNetConfig::small();
        cfg.walk.num_walks = 1;
        cfg.walk.walk_length = 10;
        cfg.embedding.epochs = 1;
        cfg.embedding.dim = 16;
        for spec in ModelSpec::paper_benchmark_suite() {
            let model = spec.instantiate(&g).unwrap();
            let result = run_batch(&cfg, &g, model.as_ref());
            assert_eq!(
                result.embeddings.num_nodes(),
                g.num_nodes(),
                "{}",
                spec.name()
            );
            assert!(result.train_stats.pairs_processed > 0, "{}", spec.name());
        }
    }

    #[test]
    fn embeddings_capture_community_structure() {
        // Nodes in the same planted community should be more similar than
        // nodes in different communities — the property Figure 5 relies on.
        let lg = labeled_graph();
        let mut cfg = UniNetConfig::small();
        cfg.walk.num_walks = 6;
        cfg.walk.walk_length = 40;
        cfg.embedding.dim = 48;
        cfg.embedding.epochs = 3;
        cfg.embedding.window = 5;
        let model = ModelSpec::Node2Vec { p: 1.0, q: 1.0 }
            .instantiate(&lg.graph)
            .unwrap();
        let result = run_batch(&cfg, &lg.graph, model.as_ref());
        let emb = &result.embeddings;
        let mut intra = 0.0f64;
        let mut inter = 0.0f64;
        let mut intra_n = 0u32;
        let mut inter_n = 0u32;
        for a in (0..300u32).step_by(7) {
            for b in (1..300u32).step_by(11) {
                if a == b {
                    continue;
                }
                let s = emb.cosine_similarity(a, b) as f64;
                if lg.primary_label(a) == lg.primary_label(b) {
                    intra += s;
                    intra_n += 1;
                } else {
                    inter += s;
                    inter_n += 1;
                }
            }
        }
        let intra = intra / intra_n as f64;
        let inter = inter / inter_n as f64;
        assert!(intra > inter + 0.05, "intra {intra} vs inter {inter}");
    }
}
