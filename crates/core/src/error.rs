//! The workspace-wide typed error surface.
//!
//! Every fallible public entry point of the framework returns
//! [`UniNetError`]: per-crate error types (graph I/O, embedding I/O, update
//! stream parsing) convert into it via `From`, so `?` composes across crate
//! boundaries and callers get one enum to match on — no `Result<_, String>`
//! anywhere in the public API.

use uninet_dyngraph::StreamError;
use uninet_embedding::io::EmbeddingIoError;
use uninet_graph::GraphError;
use uninet_persist::PersistError;

/// Everything that can go wrong when building or driving an
/// [`Engine`](crate::Engine).
#[derive(Debug)]
pub enum UniNetError {
    /// A configuration value failed builder validation.
    InvalidConfig {
        /// The offending field (e.g. `walk.num_walks`).
        field: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// A command-line argument could not be interpreted.
    InvalidArgument {
        /// The flag (without the leading `--`).
        flag: String,
        /// Why the value was rejected.
        reason: String,
    },
    /// The engine is already running a streaming session or another
    /// exclusive operation.
    EngineBusy {
        /// The operation that was refused.
        operation: &'static str,
    },
    /// A past streaming session panicked and the engine's graph state was
    /// lost with it; the engine can still serve queries but can no longer
    /// train or stream.
    EnginePoisoned {
        /// The operation that was refused.
        operation: &'static str,
    },
    /// A streaming session thread panicked.
    StreamPanicked,
    /// Graph construction or graph I/O failed.
    Graph(GraphError),
    /// Embedding I/O failed.
    EmbeddingIo(EmbeddingIoError),
    /// Update-stream reading or parsing failed.
    Stream(StreamError),
    /// The durability plane failed: WAL, snapshot or recovery.
    Persist(PersistError),
    /// A bare I/O error outside the structured loaders.
    Io(std::io::Error),
}

impl UniNetError {
    /// Shorthand constructor for builder validation failures.
    pub fn invalid_config(field: &'static str, reason: impl Into<String>) -> Self {
        UniNetError::InvalidConfig {
            field,
            reason: reason.into(),
        }
    }

    /// Shorthand constructor for CLI argument failures.
    pub fn invalid_argument(flag: impl Into<String>, reason: impl Into<String>) -> Self {
        UniNetError::InvalidArgument {
            flag: flag.into(),
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for UniNetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UniNetError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration: {field}: {reason}")
            }
            UniNetError::InvalidArgument { flag, reason } => {
                write!(f, "invalid argument --{flag}: {reason}")
            }
            UniNetError::EngineBusy { operation } => {
                write!(
                    f,
                    "engine is busy with another exclusive operation (an active streaming \
                     session or batch run): cannot {operation}"
                )
            }
            UniNetError::EnginePoisoned { operation } => {
                write!(
                    f,
                    "a previous streaming session panicked and the engine state was lost: \
                     cannot {operation}"
                )
            }
            UniNetError::StreamPanicked => write!(f, "streaming session thread panicked"),
            UniNetError::Graph(e) => write!(f, "{e}"),
            UniNetError::EmbeddingIo(e) => write!(f, "{e}"),
            UniNetError::Stream(e) => write!(f, "{e}"),
            UniNetError::Persist(e) => write!(f, "{e}"),
            UniNetError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for UniNetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UniNetError::Graph(e) => Some(e),
            UniNetError::EmbeddingIo(e) => Some(e),
            UniNetError::Stream(e) => Some(e),
            UniNetError::Persist(e) => Some(e),
            UniNetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for UniNetError {
    fn from(e: GraphError) -> Self {
        UniNetError::Graph(e)
    }
}

impl From<EmbeddingIoError> for UniNetError {
    fn from(e: EmbeddingIoError) -> Self {
        UniNetError::EmbeddingIo(e)
    }
}

impl From<StreamError> for UniNetError {
    fn from(e: StreamError) -> Self {
        UniNetError::Stream(e)
    }
}

impl From<PersistError> for UniNetError {
    fn from(e: PersistError) -> Self {
        UniNetError::Persist(e)
    }
}

impl From<std::io::Error> for UniNetError {
    fn from(e: std::io::Error) -> Self {
        UniNetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = UniNetError::invalid_config("embedding.dim", "must be positive (got 0)");
        assert_eq!(
            format!("{e}"),
            "invalid configuration: embedding.dim: must be positive (got 0)"
        );
        let e = UniNetError::invalid_argument("epochs", "expected an integer, got \"two\"");
        assert!(format!("{e}").contains("--epochs"));
        let e = UniNetError::EngineBusy { operation: "train" };
        assert!(format!("{e}").contains("busy"));
    }

    #[test]
    fn from_impls_preserve_sources() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: UniNetError = io.into();
        assert!(e.source().is_some());

        let stream_err =
            uninet_dyngraph::read_update_stream("nonsense 0 1\n".as_bytes()).unwrap_err();
        let e: UniNetError = stream_err.into();
        assert!(matches!(e, UniNetError::Stream(_)));
        assert!(e.source().is_some());

        let graph_err = GraphError::MissingTypes("node type");
        let e: UniNetError = graph_err.into();
        assert!(format!("{e}").contains("node type"));
    }
}
