//! Durability wiring between the engine and the `uninet-persist` plane.
//!
//! The engine's durability contract is deliberately one-directional: the
//! live path never *depends* on the disk. Every applied [`UpdateBatch`] is
//! appended to the WAL before its effects become observable, and snapshots
//! are cut on a batch cadence, but a failing disk only degrades durability —
//! it never takes down ingestion. The first WAL or snapshot error disables
//! further persistence for the session, emits a single warning, and is
//! surfaced in the [`DurabilityReport`] so callers can see the run was not
//! fully durable.

use std::path::PathBuf;
use std::time::Duration;

use uninet_dyngraph::UpdateBatch;
use uninet_embedding::Embeddings;
use uninet_graph::Graph;
use uninet_persist::{
    write_snapshot, FsyncPolicy, PersistError, RecoveredState, SamplerState, Snapshot, WalWriter,
};

/// Engine-level durability options, set through
/// [`EngineBuilder::wal`](crate::EngineBuilder::wal) and friends.
#[derive(Debug, Clone)]
pub struct PersistOptions {
    /// Directory holding the WAL and its snapshots.
    pub wal_dir: PathBuf,
    /// Cut a snapshot every `n` applied batches during streaming
    /// (0 = only the session-start and session-end snapshots).
    pub snapshot_every: usize,
    /// When WAL appends reach the disk.
    pub fsync: FsyncPolicy,
}

impl PersistOptions {
    /// Durability rooted at `wal_dir` with the safe defaults: fsync on every
    /// append, snapshots only at session boundaries.
    pub fn new(wal_dir: impl Into<PathBuf>) -> Self {
        PersistOptions {
            wal_dir: wal_dir.into(),
            snapshot_every: 0,
            fsync: FsyncPolicy::Always,
        }
    }
}

/// Durability accounting of one streaming session (in
/// [`StreamingReport::durability`](crate::StreamingReport)).
#[derive(Debug, Clone, Default)]
pub struct DurabilityReport {
    /// Batches appended to the WAL.
    pub batches_logged: usize,
    /// Bytes this session appended to the WAL.
    pub wal_bytes: u64,
    /// Highest WAL sequence number written.
    pub last_wal_seq: u64,
    /// Snapshots written (initial + periodic + final).
    pub snapshots_written: usize,
    /// Torn bytes truncated from the WAL tail when the session opened it.
    pub truncated_tail_bytes: u64,
    /// First persistence error, if the session degraded to non-durable.
    pub wal_error: Option<String>,
}

/// What [`EngineBuilder::recover`](crate::EngineBuilder::recover) rebuilt,
/// exposed via [`Engine::recovery`](crate::Engine::recovery).
#[derive(Debug, Clone)]
pub struct RecoverySummary {
    /// Embedding-store epoch restored from the chosen snapshot.
    pub epoch: u64,
    /// Highest durable WAL sequence number.
    pub last_wal_seq: u64,
    /// WAL batches replayed on top of the snapshot.
    pub replayed_batches: usize,
    /// Mutations inside those batches.
    pub replayed_mutations: usize,
    /// Torn bytes dropped from the WAL tail.
    pub truncated_tail_bytes: u64,
    /// Damaged snapshots skipped before one validated.
    pub snapshots_skipped: usize,
    /// Whether an embedding matrix was restored into the serving store.
    pub restored_embeddings: bool,
    /// Wall-clock time of the recovery (snapshot load + WAL replay).
    pub recovery_time: Duration,
}

impl RecoverySummary {
    pub(crate) fn from_state(state: &RecoveredState, recovery_time: Duration) -> Self {
        RecoverySummary {
            epoch: state.epoch,
            last_wal_seq: state.last_wal_seq,
            replayed_batches: state.replayed_batches,
            replayed_mutations: state.replayed_mutations,
            truncated_tail_bytes: state.truncated_tail_bytes,
            snapshots_skipped: state.snapshots_skipped,
            restored_embeddings: state.embeddings.is_some(),
            recovery_time,
        }
    }
}

/// The per-session durability writer: owns the WAL handle and cuts
/// snapshots. Created by [`Engine::stream`](crate::Engine::stream) before
/// the session thread spawns (so open errors surface synchronously) and
/// driven from the consumer thread inside `run_streaming_session`.
pub(crate) struct SessionPersist {
    wal: WalWriter,
    dir: PathBuf,
    snapshot_every: usize,
    symmetric: bool,
    sampler: SamplerState,
    batches_since_snapshot: usize,
    report: DurabilityReport,
    degraded: bool,
}

impl SessionPersist {
    /// Opens (or resumes) the WAL under `opts.wal_dir`, truncating any torn
    /// tail a previous crash left behind.
    pub(crate) fn begin(
        opts: &PersistOptions,
        symmetric: bool,
        sampler: SamplerState,
    ) -> Result<Self, PersistError> {
        let wal = WalWriter::open(&opts.wal_dir, opts.fsync)?;
        let report = DurabilityReport {
            last_wal_seq: wal.last_seq(),
            truncated_tail_bytes: wal.truncated_tail(),
            ..DurabilityReport::default()
        };
        Ok(SessionPersist {
            wal,
            dir: opts.wal_dir.clone(),
            snapshot_every: opts.snapshot_every,
            symmetric,
            sampler,
            batches_since_snapshot: 0,
            report,
            degraded: false,
        })
    }

    /// Disables further persistence for this session. Warns once; the error
    /// is kept in the report so the caller can see the run degraded.
    fn degrade(&mut self, e: PersistError) {
        if !self.degraded {
            eprintln!("warning: durability degraded — disabling WAL/snapshot writes: {e}");
            self.report.wal_error = Some(e.to_string());
        }
        self.degraded = true;
    }

    /// Appends one batch to the WAL (called before the batch is applied).
    pub(crate) fn log_batch(&mut self, batch: &UpdateBatch) {
        if self.degraded {
            return;
        }
        match self.wal.append(batch) {
            Ok(seq) => {
                self.report.batches_logged += 1;
                self.report.last_wal_seq = seq;
                self.report.wal_bytes = self.wal.bytes_written();
                self.batches_since_snapshot += 1;
            }
            Err(e) => self.degrade(e),
        }
    }

    /// Whether the periodic snapshot cadence has elapsed.
    pub(crate) fn snapshot_due(&self) -> bool {
        !self.degraded
            && self.snapshot_every > 0
            && self.batches_since_snapshot >= self.snapshot_every
    }

    /// Cuts a snapshot of the given state, consistent with the WAL position
    /// of the last logged batch. The WAL is synced first so a snapshot never
    /// claims a `wal_seq` the log might lose. `live` is the open-world
    /// universe mask (`None` = fully live), persisted so retired ids stay
    /// retired across a crash.
    pub(crate) fn write_state(
        &mut self,
        graph: Graph,
        embeddings: Option<Embeddings>,
        epoch: u64,
        live: Option<Vec<bool>>,
    ) {
        if self.degraded {
            return;
        }
        if let Err(e) = self.wal.sync() {
            self.degrade(e);
            return;
        }
        let snap = Snapshot {
            wal_seq: self.wal.last_seq(),
            epoch,
            symmetric: self.symmetric,
            sampler: self.sampler,
            graph,
            embeddings,
            live,
        };
        match write_snapshot(&self.dir, &snap) {
            Ok(_) => {
                self.report.snapshots_written += 1;
                self.batches_since_snapshot = 0;
            }
            Err(e) => self.degrade(e),
        }
    }

    /// Final snapshot at end-of-stream; consumes the session and returns its
    /// accounting.
    pub(crate) fn finish(
        mut self,
        graph: &Graph,
        embeddings: &Embeddings,
        epoch: u64,
        live: Option<Vec<bool>>,
    ) -> DurabilityReport {
        self.write_state(graph.clone(), Some(embeddings.clone()), epoch, live);
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uninet_persist::{latest_valid_snapshot, read_wal, wal_path};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("uninet-core-dur-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny_graph() -> Graph {
        uninet_graph::generators::ring_with_chords(12, 0)
    }

    fn one_batch() -> UpdateBatch {
        let mut b = UpdateBatch::new();
        b.add_edge(0, 5, 1.5);
        b
    }

    #[test]
    fn session_logs_batches_and_cuts_final_snapshot() {
        let dir = tmp_dir("final-snap");
        let opts = PersistOptions::new(&dir);
        let mut p = SessionPersist::begin(&opts, true, SamplerState::default()).unwrap();
        p.write_state(tiny_graph(), None, 0, None);
        p.log_batch(&one_batch());
        p.log_batch(&one_batch());
        let emb = Embeddings::from_flat(2, vec![0.5; 24]);
        let report = p.finish(&tiny_graph(), &emb, 3, None);
        assert_eq!(report.batches_logged, 2);
        assert_eq!(report.last_wal_seq, 2);
        assert_eq!(report.snapshots_written, 2, "initial + final");
        assert!(report.wal_error.is_none());
        assert!(report.wal_bytes > 0);

        let scan = read_wal(&wal_path(&dir)).unwrap();
        assert_eq!(scan.last_seq, 2);
        let loaded = latest_valid_snapshot(&dir).unwrap().unwrap();
        assert_eq!(loaded.snapshot.wal_seq, 2);
        assert_eq!(loaded.snapshot.epoch, 3);
        assert!(loaded.snapshot.embeddings.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_cadence_counts_logged_batches() {
        let dir = tmp_dir("cadence");
        let opts = PersistOptions {
            snapshot_every: 2,
            ..PersistOptions::new(&dir)
        };
        let mut p = SessionPersist::begin(&opts, true, SamplerState::default()).unwrap();
        assert!(!p.snapshot_due(), "cadence starts unelapsed");
        p.log_batch(&one_batch());
        assert!(!p.snapshot_due());
        p.log_batch(&one_batch());
        assert!(p.snapshot_due());
        p.write_state(tiny_graph(), None, 1, None);
        assert!(!p.snapshot_due(), "writing a snapshot resets the cadence");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_failure_degrades_instead_of_panicking() {
        let dir = tmp_dir("degrade");
        let opts = PersistOptions::new(&dir);
        let mut p = SessionPersist::begin(&opts, true, SamplerState::default()).unwrap();
        p.log_batch(&one_batch());
        // Replace the WAL directory out from under the writer: the open file
        // handle keeps appends working, but snapshot writes must fail.
        std::fs::remove_dir_all(&dir).unwrap();
        p.write_state(tiny_graph(), None, 1, None);
        let report = p.finish(&tiny_graph(), &Embeddings::from_flat(1, vec![0.0; 12]), 1, None);
        assert!(report.wal_error.is_some(), "degradation must be reported");
        assert_eq!(report.snapshots_written, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
