//! Plain-text report rendering for the benchmark harness: markdown and TSV
//! tables, written without any external serialization dependency.

use std::path::Path;
use std::time::Duration;

/// A simple rectangular table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new<S: Into<String>>(title: S, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; the row is padded or truncated to the header width.
    pub fn add_row(&mut self, cells: &[String]) -> &mut Self {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Convenience for rows of `&str`.
    pub fn add_str_row(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.add_row(&owned)
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let render_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&render_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for row in &self.rows {
            out.push_str(&render_row(row));
        }
        out
    }

    /// Renders the table as tab-separated values (no title).
    pub fn render_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join("\t"));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Writes the markdown rendering to a file.
    pub fn write_markdown<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.render_markdown())
    }
}

/// Formats a duration as seconds with millisecond precision ("1.234s").
pub fn format_duration(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Formats a speed-up factor ("4.3X").
pub fn format_speedup(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.1}X")
    } else {
        "-".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.add_str_row(&["alpha", "1"]);
        t.add_row(&["beta".to_string(), "2".to_string(), "extra".to_string()]);
        t.add_str_row(&["gamma"]);
        t
    }

    #[test]
    fn rows_are_normalized_to_header_width() {
        let t = sample_table();
        assert_eq!(t.num_rows(), 3);
        let tsv = t.render_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "name\tvalue");
        assert_eq!(lines[2], "beta\t2");
        assert_eq!(lines[3], "gamma\t");
    }

    #[test]
    fn markdown_contains_title_and_separator() {
        let md = sample_table().render_markdown();
        assert!(md.starts_with("### Demo"));
        assert!(md.contains("| name"));
        assert!(md.contains("| -----"));
        assert!(md.contains("| alpha"));
    }

    #[test]
    fn write_markdown_creates_file() {
        let dir = std::env::temp_dir().join("uninet_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table.md");
        sample_table().write_markdown(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("alpha"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn duration_and_speedup_formatting() {
        assert_eq!(format_duration(Duration::from_millis(1234)), "1.234s");
        assert_eq!(format_speedup(4.26), "4.3X");
        assert_eq!(format_speedup(f64::INFINITY), "-");
    }
}
