//! # uninet-core
//!
//! UniNet: a unified, scalable framework for random-walk based network
//! representation learning (reproduction of the ICDE 2021 paper).
//!
//! The crate glues the substrates together into the two-step pipeline the
//! paper describes:
//!
//! ```text
//! Walks      = RandomWalkGeneration(G, N, L)   // uninet-walker + uninet-sampler
//! Embeddings = Word2Vec(Walks)                 // uninet-embedding
//! ```
//!
//! * [`ModelSpec`] — declarative description of which NRL model to run
//!   (DeepWalk, node2vec, metapath2vec, edge2vec, fairwalk) with its
//!   hyper-parameters.
//! * [`UniNetConfig`] / [`UniNet`] — the end-to-end pipeline with the timing
//!   breakdown (`Ti`, `Tw`, `Tl`, `Tt`) reported in Table VI.
//! * [`baselines`] — sampler/parallelism configurations that emulate the
//!   original open-source implementations and "UniNet (Orig)".
//! * [`report`] — plain-text table rendering used by the benchmark harness.
//!
//! ## Quickstart
//!
//! ```
//! use uninet_core::{ModelSpec, UniNet, UniNetConfig};
//! use uninet_graph::generators::{rmat, RmatConfig};
//!
//! let graph = rmat(&RmatConfig { num_nodes: 300, num_edges: 2000, ..Default::default() });
//! let mut config = UniNetConfig::default();
//! config.walk.num_walks = 2;
//! config.walk.walk_length = 20;
//! config.embedding.dim = 32;
//! config.embedding.num_threads = 2;
//! config.walk.num_threads = 2;
//! let result = UniNet::new(config).run(&graph, &ModelSpec::DeepWalk);
//! assert_eq!(result.embeddings.num_nodes(), graph.num_nodes());
//! ```

pub mod baselines;
pub mod config;
pub mod pipeline;
pub mod report;
pub mod streaming;
pub mod timing;

pub use baselines::{baseline_sampler_for, BaselineKind};
pub use config::{ModelSpec, UniNetConfig};
pub use pipeline::{PipelineResult, UniNet};
pub use report::{format_duration, format_speedup, Table};
pub use streaming::{StreamingConfig, StreamingReport};
pub use timing::PhaseTiming;

pub use uninet_dyngraph::{DynamicGraph, GraphMutation, IncrementalMaintainer, UpdateBatch};
pub use uninet_embedding::Embeddings;
pub use uninet_graph::Graph;
pub use uninet_ingest::{IngestConfig, QueueStats, ShardPlan, ShardedMaintainer};
pub use uninet_sampler::{EdgeSamplerKind, InitStrategy};
pub use uninet_walker::{WalkCorpus, WalkEngineConfig};
