//! # uninet-core
//!
//! UniNet: a unified, scalable framework for random-walk based network
//! representation learning (reproduction of the ICDE 2021 paper).
//!
//! The crate glues the substrates together into the two-step pipeline the
//! paper describes:
//!
//! ```text
//! Walks      = RandomWalkGeneration(G, N, L)   // uninet-walker + uninet-sampler
//! Embeddings = Word2Vec(Walks)                 // uninet-embedding
//! ```
//!
//! and wraps it in one long-lived facade:
//!
//! * [`Engine`] / [`EngineBuilder`] — the validated entry point: batch
//!   training ([`Engine::train`]), streaming ingestion ([`Engine::stream`])
//!   and a concurrent embedding query service ([`Engine::top_k`]) behind a
//!   single handle.
//! * [`ModelSpec`] — declarative description of which NRL model to run
//!   (DeepWalk, node2vec, metapath2vec, edge2vec, fairwalk) with its
//!   hyper-parameters.
//! * [`UniNetError`] — the workspace-wide typed error enum every fallible
//!   public entry point returns.
//! * [`baselines`] — sampler/parallelism configurations that emulate the
//!   original open-source implementations and "UniNet (Orig)".
//! * [`report`] — plain-text table rendering used by the benchmark harness.
//!
//! ## Quickstart
//!
//! ```
//! use uninet_core::{Engine, ModelSpec};
//! use uninet_graph::generators::{rmat, RmatConfig};
//!
//! let graph = rmat(&RmatConfig { num_nodes: 300, num_edges: 2000, ..Default::default() });
//! let engine = Engine::builder()
//!     .graph(graph)
//!     .model(ModelSpec::DeepWalk)
//!     .num_walks(2)
//!     .walk_length(20)
//!     .dim(32)
//!     .threads(2)
//!     .build()
//!     .expect("valid configuration");
//! let report = engine.train().expect("engine is idle");
//! assert_eq!(engine.snapshot().num_nodes(), engine.num_nodes());
//! assert!(report.corpus.num_walks() > 0);
//! ```

pub mod baselines;
pub mod config;
pub mod durability;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod pipeline;
pub mod report;
pub mod streaming;
pub mod timing;

pub use baselines::{baseline_sampler_for, BaselineKind};
pub use config::{ModelSpec, UniNetConfig};
pub use durability::{DurabilityReport, PersistOptions, RecoverySummary};
pub use engine::{Engine, EngineBuilder, StreamHandle, StreamOutcome, TrainReport};
pub use error::UniNetError;
pub use metrics::EngineMetrics;
pub use pipeline::PipelineResult;
pub use report::{format_duration, format_speedup, Table};
pub use streaming::{StreamingConfig, StreamingReport};
pub use timing::PhaseTiming;

pub use uninet_dyngraph::{
    DynamicGraph, GraphMutation, IncrementalMaintainer, ParseIssue, StreamError, UpdateBatch,
};
pub use uninet_embedding::kernels;
pub use uninet_embedding::{
    AnnConfig, EmbeddingSnapshot, EmbeddingStore, Embeddings, HnswIndex, IncrementalStats,
    KernelBackend, QuantizedMatrix, QueryMode, StoreTelemetry,
};
pub use uninet_graph::{Graph, GraphError};
pub use uninet_ingest::{IngestConfig, IngestMetrics, QueueStats, ShardPlan, ShardedMaintainer};
pub use uninet_metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, MetricsRegistry, MetricsSnapshot,
    PhaseRecorder, StageTimer, Stopwatch,
};
pub use uninet_persist::{FsyncPolicy, PersistError, RecoveredState, SamplerState};
pub use uninet_sampler::{EdgeSamplerKind, InitStrategy};
pub use uninet_walker::{WalkCorpus, WalkEngineConfig};
