//! Streaming pipeline mode: interleave edge-update batches with incremental
//! sampler maintenance and walk refresh, then retrain embeddings on the
//! refreshed corpus.
//!
//! This is the dynamic-workload counterpart of [`crate::UniNet::run`]: instead
//! of a frozen CSR, the graph lives in a [`DynamicGraph`] and each
//! [`UpdateBatch`] flows through the [`IncrementalMaintainer`] (sampler-state
//! repair) and the [`WalkRefresher`] (regenerating only walks whose
//! trajectories crossed mutated vertices).

use std::time::{Duration, Instant};

use uninet_dyngraph::{
    into_batches, DynamicGraph, GraphMutation, IncrementalMaintainer, MaintainerConfig,
    RefreshStats, WalkRefresher,
};
use uninet_embedding::Word2VecTrainer;
use uninet_graph::{Graph, NodeId};
use uninet_walker::{MaintenanceStats, SamplerManager, WalkEngine};

use crate::config::{ModelSpec, UniNetConfig};
use crate::pipeline::PipelineResult;
use crate::timing::PhaseTiming;

/// Configuration of the streaming mode.
#[derive(Debug, Clone, Copy)]
pub struct StreamingConfig {
    /// Mutations applied per maintenance batch.
    pub batch_size: usize,
    /// Pending overlay entries that trigger compaction back into CSR.
    pub compaction_threshold: usize,
    /// Mirror each mutation onto the reverse edge (undirected graphs).
    pub symmetric: bool,
    /// Regenerate affected walks after every batch (off = only at the end).
    pub refresh_each_batch: bool,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            batch_size: 256,
            compaction_threshold: 1024,
            symmetric: true,
            refresh_each_batch: true,
        }
    }
}

/// Aggregate statistics of one streaming run.
#[derive(Debug, Clone, Default)]
pub struct StreamingReport {
    /// Batches processed.
    pub batches: usize,
    /// Weight-only mutations applied.
    pub weight_mutations: usize,
    /// Topology mutations applied.
    pub topology_mutations: usize,
    /// Mutations rejected (missing edges, out-of-range nodes, self-loops).
    pub rejected_mutations: usize,
    /// Compactions performed.
    pub compactions: usize,
    /// Sampler maintenance cost accounting across all batches.
    pub maintenance: MaintenanceStats,
    /// Walk refresh accounting across all batches.
    pub refresh: RefreshStats,
    /// Time spent applying mutations to the dynamic graph.
    pub apply_time: Duration,
    /// Time spent repairing sampler state (incl. compactions).
    pub maintain_time: Duration,
    /// Time spent regenerating walks.
    pub refresh_time: Duration,
    /// Updates per second over apply + maintain time.
    pub update_throughput: f64,
}

impl StreamingReport {
    fn finalize(&mut self) {
        let total = self.apply_time + self.maintain_time;
        let applied = self.weight_mutations + self.topology_mutations;
        self.update_throughput = if applied > 0 && total.as_secs_f64() > 0.0 {
            applied as f64 / total.as_secs_f64()
        } else {
            0.0
        };
    }
}

impl crate::pipeline::UniNet {
    /// Runs the full dynamic pipeline: initial walk corpus over `graph`,
    /// replay of `mutations` in batches with incremental maintenance and walk
    /// refresh, final compaction, then embedding training on the refreshed
    /// corpus.
    ///
    /// Consumes the graph (it becomes the mutable base of the
    /// [`DynamicGraph`]).
    pub fn run_streaming(
        &self,
        graph: Graph,
        spec: &ModelSpec,
        mutations: &[GraphMutation],
        streaming: &StreamingConfig,
    ) -> (PipelineResult, StreamingReport) {
        let cfg: &UniNetConfig = self.config();
        let model = spec.instantiate(&graph);
        let model = model.as_ref();

        // Initial corpus over a caller-owned manager so sampler state (M-H
        // chains in particular) survives into the update phase.
        let t0 = Instant::now();
        let mut manager = SamplerManager::new(
            &graph,
            model,
            cfg.walk.sampler,
            cfg.walk.memory_budget_bytes,
        );
        let init = t0.elapsed();
        let engine = WalkEngine::new(cfg.walk);
        let start_nodes: Vec<NodeId> = graph.non_isolated_nodes().collect();
        let (mut corpus, walk_timing) =
            engine.generate_with_manager(&graph, model, &manager, &start_nodes);

        let num_nodes = graph.num_nodes();
        let mut dyn_graph = DynamicGraph::new(graph, streaming.symmetric);
        let maintainer = IncrementalMaintainer::new(MaintainerConfig {
            compaction_threshold: streaming.compaction_threshold,
        });
        let mut refresher =
            WalkRefresher::new(&corpus, num_nodes, cfg.walk.walk_length, cfg.walk.seed);

        let mut report = StreamingReport::default();
        for batch in into_batches(mutations, streaming.batch_size) {
            let r = maintainer.apply_batch(&mut dyn_graph, &mut manager, model, &batch);
            report.batches += 1;
            report.weight_mutations += r.weight_mutations;
            report.topology_mutations += r.topology_mutations;
            report.rejected_mutations += r.rejected_mutations;
            report.compactions += r.compacted as usize;
            report.maintenance.merge(&r.maintenance);
            report.apply_time += r.apply_time;
            report.maintain_time += r.maintain_time;

            if streaming.refresh_each_batch {
                let mut touched = r.weight_touched.clone();
                touched.extend_from_slice(&r.topology_touched);
                touched.sort_unstable();
                touched.dedup();
                if !touched.is_empty() {
                    let (stats, dur) =
                        refresher.refresh(&mut corpus, dyn_graph.base(), model, &manager, &touched);
                    report.refresh.merge(&stats);
                    report.refresh_time += dur;
                }
            }
        }

        // Fold any leftover overlay into the CSR and refresh what it touched.
        let flush = maintainer.flush(&mut dyn_graph, &mut manager, model);
        if flush.compacted {
            report.compactions += 1;
            report.maintenance.merge(&flush.maintenance);
            report.maintain_time += flush.maintain_time;
            if !flush.topology_touched.is_empty() {
                let (stats, dur) = refresher.refresh(
                    &mut corpus,
                    dyn_graph.base(),
                    model,
                    &manager,
                    &flush.topology_touched,
                );
                report.refresh.merge(&stats);
                report.refresh_time += dur;
            }
        }
        report.finalize();

        // Retrain embeddings on the refreshed corpus.
        let t = Instant::now();
        let trainer = Word2VecTrainer::new(cfg.embedding);
        let (embeddings, train_stats) = trainer.train(corpus.walks(), num_nodes);
        let learn = t.elapsed();

        let timing = PhaseTiming {
            init,
            walk: walk_timing.walk,
            learn,
        };
        (
            PipelineResult {
                embeddings,
                corpus,
                timing,
                train_stats,
            },
            report,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use uninet_graph::generators::{rmat, RmatConfig};
    use uninet_sampler::{EdgeSamplerKind, InitStrategy};

    fn test_graph() -> Graph {
        rmat(&RmatConfig {
            num_nodes: 200,
            num_edges: 1600,
            weighted: true,
            seed: 23,
            ..Default::default()
        })
    }

    fn mixed_stream(graph: &Graph, count: usize, seed: u64) -> Vec<GraphMutation> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = graph.num_nodes() as NodeId;
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let src = rng.gen_range(0..n);
            if graph.degree(src) == 0 {
                continue;
            }
            let k = rng.gen_range(0..graph.degree(src));
            let dst = graph.neighbor_at(src, k);
            out.push(match i % 4 {
                0 | 1 => GraphMutation::UpdateWeight {
                    src,
                    dst,
                    weight: rng.gen_range(0.5f32..4.0),
                },
                2 => GraphMutation::AddEdge {
                    src,
                    dst: (dst + 1) % n,
                    weight: rng.gen_range(0.5f32..2.0),
                },
                _ => GraphMutation::RemoveEdge { src, dst },
            });
        }
        out
    }

    #[test]
    fn streaming_run_produces_refreshed_embeddings() {
        let graph = test_graph();
        let mutations = mixed_stream(&graph, 200, 3);
        let mut cfg = UniNetConfig::small();
        cfg.walk.num_walks = 2;
        cfg.walk.walk_length = 10;
        cfg.walk.sampler = EdgeSamplerKind::MetropolisHastings(InitStrategy::Random);
        cfg.embedding.epochs = 1;
        let streaming = StreamingConfig {
            batch_size: 32,
            compaction_threshold: 64,
            ..Default::default()
        };
        let n = graph.num_nodes();
        let (result, report) = crate::UniNet::new(cfg).run_streaming(
            graph,
            &ModelSpec::DeepWalk,
            &mutations,
            &streaming,
        );
        assert_eq!(result.embeddings.num_nodes(), n);
        assert!(report.batches > 0);
        assert!(report.weight_mutations > 0);
        assert!(report.topology_mutations > 0);
        assert!(report.refresh.walks_refreshed > 0);
        assert!(report.update_throughput > 0.0);
        // M-H backend: weight updates preserved chains, never rebuilt tables
        // on the weight path (topology compactions may rebuild chains).
        assert!(report.maintenance.chains_preserved > 0);
    }

    #[test]
    fn streaming_walks_stay_valid_paths() {
        let graph = test_graph();
        let mutations = mixed_stream(&graph, 120, 7);
        let mut cfg = UniNetConfig::small();
        cfg.walk.num_walks = 1;
        cfg.walk.walk_length = 8;
        cfg.walk.sampler = EdgeSamplerKind::MetropolisHastings(InitStrategy::Random);
        cfg.embedding.epochs = 1;
        let streaming = StreamingConfig {
            batch_size: 16,
            compaction_threshold: 32,
            ..Default::default()
        };
        let (result, _) = crate::UniNet::new(cfg).run_streaming(
            graph,
            &ModelSpec::Node2Vec { p: 0.5, q: 2.0 },
            &mutations,
            &streaming,
        );
        // After the final flush the corpus must be consistent with the final
        // compacted graph: every refreshed walk is a path in it. Walks that
        // were never refreshed may contain edges deleted mid-stream, so only
        // refreshed consistency is checked via regeneration above; here we
        // check the corpus shape.
        assert!(result.corpus.num_walks() > 0);
        for walk in result.corpus.iter() {
            assert!(!walk.is_empty());
            assert!(walk.len() <= 8);
        }
    }

    #[test]
    fn alias_streaming_pays_rebuild_cost() {
        let graph = test_graph();
        // Weight-only stream isolates the maintenance asymmetry.
        let mutations: Vec<GraphMutation> = mixed_stream(&graph, 150, 11)
            .into_iter()
            .filter(|m| m.is_weight_only())
            .collect();
        let mut cfg = UniNetConfig::small();
        cfg.walk.num_walks = 1;
        cfg.walk.walk_length = 8;
        cfg.embedding.epochs = 1;

        cfg.walk.sampler = EdgeSamplerKind::Alias;
        let (_, alias_report) = crate::UniNet::new(cfg).run_streaming(
            graph.clone(),
            &ModelSpec::DeepWalk,
            &mutations,
            &StreamingConfig::default(),
        );
        cfg.walk.sampler = EdgeSamplerKind::MetropolisHastings(InitStrategy::Random);
        let (_, mh_report) = crate::UniNet::new(cfg).run_streaming(
            graph,
            &ModelSpec::DeepWalk,
            &mutations,
            &StreamingConfig::default(),
        );
        assert!(alias_report.maintenance.states_rebuilt > 0);
        assert_eq!(mh_report.maintenance.states_rebuilt, 0);
        assert_eq!(mh_report.maintenance.bytes_rebuilt, 0);
        assert!(mh_report.maintenance.chains_preserved > 0);
    }
}
