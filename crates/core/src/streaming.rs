//! Streaming pipeline mode: concurrent ingestion of edge-update batches with
//! incremental sampler maintenance, parallel walk refresh and (optionally)
//! incremental embedding updates.
//!
//! This is the dynamic-workload counterpart of [`crate::Engine::train`]: the
//! graph lives in a [`DynamicGraph`] and the update stream flows through the
//! `uninet-ingest` pipeline — a reader thread feeding a bounded queue
//! (back-pressure), vertex-range sharded overlay application and sampler
//! maintenance, then per-batch walk refresh fanned out over the walk engine's
//! thread pool. Embeddings are either retrained from scratch on the refreshed
//! corpus (the original behaviour) or, with
//! [`StreamingConfig::incremental_train`], updated online by SGD passes over
//! only the regenerated walks.
//!
//! When the session runs under an [`crate::Engine`], every trained embedding
//! version is published to the engine's [`EmbeddingStore`], so concurrent
//! readers serve `top_k`/`cosine` queries from a consistent epoch while
//! ingestion continues.

use std::cell::RefCell;
use std::time::{Duration, Instant};

use uninet_dyngraph::{DynamicGraph, GraphMutation, RefreshStats, UpdateBatch, WalkRefresher};
use uninet_embedding::{EmbeddingStore, OnlineWord2Vec, TrainStats, Word2VecTrainer};
use uninet_graph::{Graph, NodeId};
use uninet_ingest::{run_durable_pipeline, IngestConfig, IngestMetrics, QueueStats};
use uninet_walker::{MaintenanceStats, SamplerManager, WalkEngine};

use crate::config::{ModelSpec, UniNetConfig};
use crate::durability::{DurabilityReport, SessionPersist};
use crate::metrics::EngineMetrics;
use crate::pipeline::PipelineResult;
use crate::timing::PhaseTiming;

/// Configuration of the streaming mode.
#[derive(Debug, Clone, Copy)]
pub struct StreamingConfig {
    /// Mutations applied per maintenance batch.
    pub batch_size: usize,
    /// Pending overlay entries that trigger compaction back into CSR.
    pub compaction_threshold: usize,
    /// Mirror each mutation onto the reverse edge (undirected graphs).
    pub symmetric: bool,
    /// Regenerate affected walks after every batch (off = only at the end).
    pub refresh_each_batch: bool,
    /// Worker threads for sharded update application, sampler maintenance and
    /// walk refresh. 0 means "use the walk engine's thread count".
    pub ingest_threads: usize,
    /// Batches the intake queue buffers before back-pressure blocks intake.
    pub queue_capacity: usize,
    /// Train embeddings incrementally on regenerated walks instead of a full
    /// retrain at end-of-stream.
    pub incremental_train: bool,
    /// Minimum milliseconds between snapshot publications to the serving
    /// store during incremental training. Publishing copies the full
    /// embedding matrix, recomputes its norms (O(n·dim)) and — with
    /// [`ann_index`](StreamingConfig::ann_index) — rebuilds the HNSW index,
    /// so on large graphs an unthrottled per-round publish dominates the
    /// ingestion path; 0 publishes after every incremental pass. The model
    /// state after the final pass is always published regardless of the
    /// interval.
    pub snapshot_interval_ms: u64,
    /// Build an HNSW ANN index into every published snapshot, so
    /// `QueryMode::Ann` top-k queries run in `O(log n · d)`-ish time instead
    /// of a full scan. The rebuild cost is paid once per publish (outside the
    /// store's write lock); pair with
    /// [`snapshot_interval_ms`](StreamingConfig::snapshot_interval_ms) on
    /// large graphs.
    pub ann_index: bool,
    /// HNSW `M`: max neighbours per node on upper layers (layer 0 keeps 2M).
    pub ann_m: usize,
    /// HNSW construction beam width (`ef_construction`, must be ≥ `ann_m`).
    pub ann_ef_construction: usize,
    /// HNSW query beam width (`ef_search`) — the recall/latency knob.
    pub ann_ef_search: usize,
    /// Score top-k candidates through int8 codes (4x less scan bandwidth),
    /// re-scoring the best `k · ann_rerank` in f32. Requires `ann_index`.
    pub ann_quantize: bool,
    /// f32 re-rank budget multiplier for quantized scans (candidates
    /// re-scored per requested result; must be ≥ 1).
    pub ann_rerank: usize,
    /// Graft the previous epoch's HNSW graph on publish, re-inserting only
    /// drifted/new nodes, instead of rebuilding from scratch each epoch.
    pub ann_incremental: bool,
    /// L2 distance between a node's old and new normalized vectors above
    /// which an incremental publish re-inserts it (must be finite and ≥ 0).
    pub ann_drift_threshold: f32,
    /// Accept open-world node arrivals/retirements in the update stream.
    /// When off, [`Engine::stream`](crate::Engine::stream) rejects a stream
    /// containing node ops up front with a typed error.
    pub allow_churn: bool,
    /// Boosted SGD burn-in passes run over each arrival cohort's freshly
    /// seeded walks, pulling cold-start vectors toward their neighbourhood
    /// (incremental training only; 0 disables burn-in).
    pub cold_start_burn_in: usize,
    /// Learning-rate multiplier for cold-start burn-in passes (must be
    /// finite and > 0).
    pub cold_start_boost: f32,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        let ann = uninet_embedding::AnnConfig::default();
        StreamingConfig {
            batch_size: 256,
            compaction_threshold: 1024,
            symmetric: true,
            refresh_each_batch: true,
            ingest_threads: 0,
            queue_capacity: 8,
            incremental_train: false,
            snapshot_interval_ms: 0,
            ann_index: false,
            ann_m: ann.m,
            ann_ef_construction: ann.ef_construction,
            ann_ef_search: ann.ef_search,
            ann_quantize: ann.quantize,
            ann_rerank: ann.rerank,
            ann_incremental: ann.incremental,
            ann_drift_threshold: ann.drift_threshold,
            allow_churn: false,
            cold_start_burn_in: 2,
            cold_start_boost: 2.0,
        }
    }
}

/// Aggregate statistics of one streaming run.
#[derive(Debug, Clone, Default)]
pub struct StreamingReport {
    /// Batches processed.
    pub batches: usize,
    /// Weight-only mutations applied.
    pub weight_mutations: usize,
    /// Topology mutations applied.
    pub topology_mutations: usize,
    /// Mutations rejected (missing edges, out-of-range nodes, self-loops).
    pub rejected_mutations: usize,
    /// Compactions performed.
    pub compactions: usize,
    /// Sampler maintenance cost accounting across all batches.
    pub maintenance: MaintenanceStats,
    /// Walk refresh accounting across all batches.
    pub refresh: RefreshStats,
    /// Time spent applying mutations to the dynamic graph.
    pub apply_time: Duration,
    /// Time spent repairing sampler state (incl. compactions).
    pub maintain_time: Duration,
    /// Time spent regenerating walks.
    pub refresh_time: Duration,
    /// Updates per second over apply + maintain time.
    pub update_throughput: f64,
    /// Intake queue accounting (back-pressure time, peak depth).
    pub queue: QueueStats,
    /// Walks fed to incremental training passes (0 for full retrain).
    pub incremental_walks_trained: usize,
    /// Incremental SGD passes run (0 for full retrain).
    pub incremental_passes: usize,
    /// Embedding snapshots published to the serving store during the stream.
    pub snapshots_published: usize,
    /// Durability accounting when the session ran with a WAL (`None` for
    /// non-durable sessions).
    pub durability: Option<DurabilityReport>,
    /// Node arrivals applied (open-world streams; includes rejoins).
    pub arrivals: usize,
    /// Node retirements applied (open-world streams).
    pub retirements: usize,
    /// Arrived nodes cold-started: walks seeded (and, with incremental
    /// training, burn-in passes run) once the node gained connectivity.
    pub cold_starts: usize,
}

impl StreamingReport {
    fn finalize(&mut self) {
        let total = self.apply_time + self.maintain_time;
        let applied = self.weight_mutations + self.topology_mutations;
        self.update_throughput = if applied > 0 && total.as_secs_f64() > 0.0 {
            applied as f64 / total.as_secs_f64()
        } else {
            0.0
        };
    }
}

/// The canonical open-world mask of a universe: `None` when every id is live
/// (closed world, the shape closed-world snapshots keep), the full mask
/// otherwise.
fn universe_mask(live: &[bool]) -> Option<Vec<bool>> {
    live.iter().any(|&l| !l).then(|| live.to_vec())
}

/// Merges incremental-pass stats into the session-level training stats.
fn merge_train_stats(total: &mut TrainStats, pass: &TrainStats) {
    let pairs = total.pairs_processed + pass.pairs_processed;
    if pairs > 0 {
        total.final_loss = (total.final_loss * total.pairs_processed as f64
            + pass.final_loss * pass.pairs_processed as f64)
            / pairs as f64;
    }
    total.pairs_processed = pairs;
}

/// Runs the full dynamic pipeline: initial walk corpus over `graph`,
/// concurrent ingestion of `mutations` (bounded intake queue, sharded
/// application, parallel maintenance and walk refresh), final compaction,
/// then embedding training — full retrain on the refreshed corpus, or
/// incremental updates when `streaming.incremental_train` is set.
///
/// Consumes the graph (it becomes the mutable base of the [`DynamicGraph`])
/// and returns the post-stream compacted graph alongside the results, so a
/// long-lived engine can keep its graph current.
///
/// When `store` is set, trained embedding versions are published to it: the
/// initial online model, incremental passes (subject to
/// [`StreamingConfig::snapshot_interval_ms`] throttling), and the
/// end-of-stream state. The returned epoch is that of this session's last
/// publish (0 when `store` is `None`). The spec must already have passed
/// [`ModelSpec::validate`] — the engine builder guarantees this.
///
/// Queue/apply/maintenance/refresh telemetry records into `ingest_metrics`
/// and incremental-pass latency into `engine_metrics` — live, from the
/// session thread, so readers can watch back-pressure while it happens. Pass
/// detached handles when nothing observes them.
///
/// With `persist` set, the session is durable: a snapshot of the pre-stream
/// state is cut at session start, every applied batch is WAL-logged before
/// its effects become observable, periodic snapshots follow the configured
/// batch cadence, and the final compacted graph + embeddings are snapshotted
/// at end-of-stream. Persistence errors degrade (reported in
/// [`StreamingReport::durability`]) — they never abort the session.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_streaming_session(
    cfg: &UniNetConfig,
    streaming: &StreamingConfig,
    spec: &ModelSpec,
    graph: Graph,
    live: Option<Vec<bool>>,
    mutations: &[GraphMutation],
    store: Option<&EmbeddingStore>,
    persist: Option<SessionPersist>,
    ingest_metrics: &IngestMetrics,
    engine_metrics: &EngineMetrics,
) -> (PipelineResult, StreamingReport, Graph, Option<Vec<bool>>, u64) {
    let model = spec
        .instantiate(&graph)
        .expect("model spec is validated before a streaming session starts");
    let model = model.as_ref();
    let threads = if streaming.ingest_threads == 0 {
        cfg.walk.num_threads.max(1)
    } else {
        streaming.ingest_threads
    };

    // Initial corpus over a caller-owned manager so sampler state (M-H
    // chains in particular) survives into the update phase.
    let t0 = Instant::now();
    let mut manager = SamplerManager::new(
        &graph,
        model,
        cfg.walk.sampler,
        cfg.walk.memory_budget_bytes,
    );
    let init = t0.elapsed();
    let engine = WalkEngine::new(cfg.walk);
    let start_nodes: Vec<NodeId> = graph.non_isolated_nodes().collect();
    let (mut corpus, walk_timing) =
        engine.generate_with_manager(&graph, model, &manager, &start_nodes);

    let num_nodes = graph.num_nodes();
    let trainer = Word2VecTrainer::new(cfg.embedding);
    let mut learn = Duration::ZERO;
    let mut train_stats = TrainStats::default();
    let mut report = StreamingReport::default();
    let mut last_epoch = 0u64;
    let mut last_publish = Instant::now();
    let snapshot_interval = Duration::from_millis(streaming.snapshot_interval_ms);
    // Whether the store reflects the session's current model (false after an
    // incremental pass was throttled out of publishing).
    let mut store_current = true;

    // Incremental mode trains the base model up front so refresh rounds
    // can apply corrective passes as the stream is ingested — and so the
    // serving store has fresh vectors from the very first batch.
    let mut online: Option<OnlineWord2Vec> = if streaming.incremental_train {
        let t = Instant::now();
        let (session, stats) = trainer.train_online(corpus.walks(), num_nodes);
        learn += t.elapsed();
        train_stats = stats;
        if let Some(store) = store {
            last_epoch = store.publish_with_universe(session.embeddings(), live.clone());
            report.snapshots_published += 1;
            last_publish = Instant::now();
        }
        Some(session)
    } else {
        None
    };

    // Durable sessions snapshot the pre-stream state first, so a crash at
    // any later point always has a base to replay the WAL onto. Shared
    // between the WAL hook and the on_batch callback below — both run on the
    // pipeline's consumer thread, never nested, so the RefCell cannot panic.
    let mut persist = persist;
    if let Some(p) = persist.as_mut() {
        let initial = online.as_ref().map(|s| s.embeddings());
        p.write_state(graph.clone(), initial, last_epoch, live.clone());
    }
    let persist = RefCell::new(persist);

    let mut dyn_graph = match live {
        Some(mask) => DynamicGraph::with_universe(graph, streaming.symmetric, mask),
        None => DynamicGraph::new(graph, streaming.symmetric),
    };
    let mut refresher = WalkRefresher::new(&corpus, num_nodes, cfg.walk.walk_length, cfg.walk.seed);
    // Arrivals waiting for connectivity before their walks are seeded.
    let mut pending_seed: Vec<NodeId> = Vec::new();

    let ingest_cfg = IngestConfig {
        batch_size: streaming.batch_size,
        queue_capacity: streaming.queue_capacity,
        num_threads: threads,
        compaction_threshold: streaming.compaction_threshold,
    };

    let refresh_each_batch = streaming.refresh_each_batch;
    {
        let refresher = &mut refresher;
        let corpus = &mut corpus;
        let report = &mut report;
        let pending_seed = &mut pending_seed;
        let trainer = &trainer;
        let last_epoch = &mut last_epoch;
        let last_publish = &mut last_publish;
        let store_current = &mut store_current;
        let online = &mut online;
        let learn = &mut learn;
        let train_stats = &mut train_stats;
        let persist = &persist;
        let mut wal_hook = |batch: &UpdateBatch| {
            if let Some(p) = persist.borrow_mut().as_mut() {
                p.log_batch(batch);
            }
        };
        let wal: Option<&mut dyn FnMut(&UpdateBatch)> = if persist.borrow().is_some() {
            Some(&mut wal_hook)
        } else {
            None
        };
        let ingest_report = run_durable_pipeline(
            &ingest_cfg,
            ingest_metrics,
            &mut dyn_graph,
            &mut manager,
            model,
            mutations,
            wal,
            |dg, mgr, r, is_final| {
                // Periodic snapshot cadence, counted in WAL-logged batches.
                // Runs before the refresh early-outs: durability must not
                // depend on whether a batch touched any walks.
                {
                    let mut p = persist.borrow_mut();
                    if let Some(p) = p.as_mut() {
                        if p.snapshot_due() {
                            let emb = online.as_ref().map(|s| s.embeddings());
                            p.write_state(
                                dg.materialize(),
                                emb,
                                *last_epoch,
                                universe_mask(dg.live_mask()),
                            );
                        }
                    }
                }
                // Open-world churn: grow every per-node plane to the new
                // capacity, evict retirees from the walk corpus (so no stale
                // trajectory can resurrect them), and queue arrivals for a
                // cold start once they gain connectivity.
                if !r.arrivals.is_empty() || !r.retirements.is_empty() {
                    let capacity = dg.num_nodes();
                    report.arrivals += r.arrivals.len();
                    report.retirements += r.retirements.len();
                    refresher.grow(capacity);
                    if !r.retirements.is_empty() {
                        let evicted = refresher.evict_walks(corpus, &r.retirements);
                        ingest_metrics
                            .refresh_dirty_walks
                            .add(evicted.len() as u64);
                        pending_seed.retain(|v| !r.retirements.contains(v));
                    }
                    if let Some(session) = online.as_mut() {
                        session.grow(capacity, cfg.walk.seed);
                    }
                    pending_seed.extend(r.arrivals.iter().copied());
                }

                // Per-batch refresh is optional; the end-of-stream flush
                // always refreshes so the corpus matches the final graph.
                if refresh_each_batch || is_final {
                    let mut touched = r.weight_touched.clone();
                    touched.extend_from_slice(&r.topology_touched);
                    touched.sort_unstable();
                    touched.dedup();
                    if !touched.is_empty() {
                        let outcome = refresher
                            .refresh_parallel(corpus, dg.base(), model, mgr, &touched, threads);
                        ingest_metrics
                            .refresh_round_ns
                            .record_duration(outcome.elapsed);
                        ingest_metrics
                            .refresh_dirty_walks
                            .add(outcome.refreshed_ids.len() as u64);
                        report.refresh.merge(&outcome.stats);
                        report.refresh_time += outcome.elapsed;

                        if let Some(session) = online.as_mut() {
                            if !outcome.refreshed_ids.is_empty() {
                                let regenerated: Vec<Vec<NodeId>> = outcome
                                    .refreshed_ids
                                    .iter()
                                    .map(|&id| corpus.walk(id as usize).to_vec())
                                    .collect();
                                let t = Instant::now();
                                let stats = trainer.train_incremental(session, &regenerated);
                                let pass = t.elapsed();
                                engine_metrics.incremental_pass_ns.record_duration(pass);
                                *learn += pass;
                                merge_train_stats(train_stats, &stats);
                                report.incremental_walks_trained += regenerated.len();
                                report.incremental_passes += 1;
                                // Publish the adapted vectors so concurrent
                                // readers track the stream instead of serving
                                // the initial model until end-of-stream.
                                // Publishing copies the matrix and recomputes
                                // norms, so it is throttled by
                                // `snapshot_interval_ms` on the ingestion
                                // path.
                                if let Some(store) = store {
                                    if last_publish.elapsed() >= snapshot_interval {
                                        *last_epoch = store.publish_with_universe(
                                            session.embeddings(),
                                            universe_mask(dg.live_mask()),
                                        );
                                        report.snapshots_published += 1;
                                        *last_publish = Instant::now();
                                        *store_current = true;
                                    } else {
                                        *store_current = false;
                                    }
                                }
                            }
                        }
                    }
                }

                // Cold start: an arrival is seeded once the compacted base
                // graph shows connectivity for it (a node-op batch forces
                // compaction, so an arrival wired up in the same batch is
                // ready immediately; one wired up later waits for the next
                // compaction to surface its edges in the base).
                if !pending_seed.is_empty() {
                    let ready: Vec<NodeId> = pending_seed
                        .iter()
                        .copied()
                        .filter(|&v| {
                            dg.is_live(v)
                                && (v as usize) < dg.base().num_nodes()
                                && dg.base().degree(v) > 0
                        })
                        .collect();
                    if !ready.is_empty() {
                        pending_seed.retain(|v| !ready.contains(v));
                        report.cold_starts += ready.len();
                        if let Some(session) = online.as_mut() {
                            // Neighbour-average initialization: start an
                            // arrival at the centroid of its live neighbours
                            // instead of random noise, so its first served
                            // vector is already in the right region.
                            for &v in &ready {
                                let mut avg = vec![0.0f32; session.dim()];
                                let mut cnt = 0usize;
                                for &u in dg.base().neighbors(v) {
                                    if !dg.is_live(u) || u == v {
                                        continue;
                                    }
                                    for (a, b) in avg.iter_mut().zip(session.input_row(u)) {
                                        *a += b;
                                    }
                                    cnt += 1;
                                }
                                if cnt > 0 {
                                    let inv = 1.0 / cnt as f32;
                                    for a in avg.iter_mut() {
                                        *a *= inv;
                                    }
                                    session.set_input_row(v, &avg);
                                }
                            }
                        }
                        let new_ids = refresher.seed_walks(
                            corpus,
                            dg.base(),
                            model,
                            mgr,
                            &ready,
                            cfg.walk.num_walks,
                        );
                        if let Some(session) = online.as_mut() {
                            if !new_ids.is_empty() && streaming.cold_start_burn_in > 0 {
                                let walks: Vec<Vec<NodeId>> = new_ids
                                    .iter()
                                    .map(|&id| corpus.walk(id as usize).to_vec())
                                    .collect();
                                let t = Instant::now();
                                for _ in 0..streaming.cold_start_burn_in {
                                    let stats = trainer.train_burn_in(
                                        session,
                                        &walks,
                                        streaming.cold_start_boost,
                                    );
                                    merge_train_stats(train_stats, &stats);
                                }
                                let burn = t.elapsed();
                                engine_metrics.cold_start_burn_in_ns.record_duration(burn);
                                *learn += burn;
                                report.incremental_passes += streaming.cold_start_burn_in;
                                report.incremental_walks_trained +=
                                    walks.len() * streaming.cold_start_burn_in;
                                if let Some(store) = store {
                                    if last_publish.elapsed() >= snapshot_interval {
                                        *last_epoch = store.publish_with_universe(
                                            session.embeddings(),
                                            universe_mask(dg.live_mask()),
                                        );
                                        report.snapshots_published += 1;
                                        *last_publish = Instant::now();
                                        *store_current = true;
                                    } else {
                                        *store_current = false;
                                    }
                                }
                            }
                        }
                    }
                }
            },
        );
        report.batches = ingest_report.batches;
        report.weight_mutations = ingest_report.weight_mutations;
        report.topology_mutations = ingest_report.topology_mutations;
        report.rejected_mutations = ingest_report.rejected_mutations;
        report.compactions = ingest_report.compactions;
        report.maintenance = ingest_report.maintenance;
        report.apply_time = ingest_report.apply_time;
        report.maintain_time = ingest_report.maintain_time;
        report.queue = ingest_report.queue;
    }
    report.finalize();

    // Final embeddings: online session snapshot, or full retrain on the
    // refreshed corpus. Incremental sessions already published after the
    // last unthrottled pass, so they only cut an end-of-stream version when
    // the throttle suppressed the most recent one; the full-retrain path
    // always has a new version to publish.
    // The universe the final embeddings are served under: churned sessions
    // carry their mask into every publish and snapshot from here on.
    let final_live = universe_mask(dyn_graph.live_mask());
    let final_capacity = dyn_graph.num_nodes();
    let embeddings = match online {
        Some(session) => {
            let embeddings = session.embeddings();
            if let Some(store) = store {
                if !store_current {
                    last_epoch =
                        store.publish_with_universe(embeddings.clone(), final_live.clone());
                    report.snapshots_published += 1;
                }
            }
            embeddings
        }
        None => {
            let t = Instant::now();
            let (embeddings, stats) = trainer.train(corpus.walks(), final_capacity);
            learn += t.elapsed();
            train_stats = stats;
            if let Some(store) = store {
                last_epoch = store.publish_with_universe(embeddings.clone(), final_live.clone());
                report.snapshots_published += 1;
            }
            embeddings
        }
    };

    let final_graph = dyn_graph.into_base();
    if let Some(p) = persist.into_inner() {
        report.durability = Some(p.finish(&final_graph, &embeddings, last_epoch, final_live.clone()));
    }
    let timing = PhaseTiming {
        init,
        walk: walk_timing.walk,
        learn,
    };
    // A streaming session is one training round for the engine plane: the
    // same Ti/Tw/Tl split batch training records, with learn covering every
    // online/incremental/retrain pass of the session.
    engine_metrics.record_round(&timing);
    (
        PipelineResult {
            embeddings,
            corpus,
            timing,
            train_stats,
        },
        report,
        final_graph,
        final_live,
        last_epoch,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use uninet_graph::generators::{rmat, RmatConfig};
    use uninet_sampler::{EdgeSamplerKind, InitStrategy};

    fn test_graph() -> Graph {
        rmat(&RmatConfig {
            num_nodes: 200,
            num_edges: 1600,
            weighted: true,
            seed: 23,
            ..Default::default()
        })
    }

    fn mixed_stream(graph: &Graph, count: usize, seed: u64) -> Vec<GraphMutation> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = graph.num_nodes() as NodeId;
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let src = rng.gen_range(0..n);
            if graph.degree(src) == 0 {
                continue;
            }
            let k = rng.gen_range(0..graph.degree(src));
            let dst = graph.neighbor_at(src, k);
            out.push(match i % 4 {
                0 | 1 => GraphMutation::UpdateWeight {
                    src,
                    dst,
                    weight: rng.gen_range(0.5f32..4.0),
                },
                2 => GraphMutation::AddEdge {
                    src,
                    dst: (dst + 1) % n,
                    weight: rng.gen_range(0.5f32..2.0),
                },
                _ => GraphMutation::RemoveEdge { src, dst },
            });
        }
        out
    }

    fn session(
        cfg: &UniNetConfig,
        streaming: &StreamingConfig,
        spec: &ModelSpec,
        graph: Graph,
        mutations: &[GraphMutation],
    ) -> (PipelineResult, StreamingReport) {
        let (result, report, _, _, _) = run_streaming_session(
            cfg,
            streaming,
            spec,
            graph,
            None,
            mutations,
            None,
            None,
            &IngestMetrics::detached(),
            &EngineMetrics::detached(),
        );
        (result, report)
    }

    #[test]
    fn streaming_run_produces_refreshed_embeddings() {
        let graph = test_graph();
        let mutations = mixed_stream(&graph, 200, 3);
        let mut cfg = UniNetConfig::small();
        cfg.walk.num_walks = 2;
        cfg.walk.walk_length = 10;
        cfg.walk.sampler = EdgeSamplerKind::MetropolisHastings(InitStrategy::Random);
        cfg.embedding.epochs = 1;
        let streaming = StreamingConfig {
            batch_size: 32,
            compaction_threshold: 64,
            ..Default::default()
        };
        let n = graph.num_nodes();
        let (result, report) = session(&cfg, &streaming, &ModelSpec::DeepWalk, graph, &mutations);
        assert_eq!(result.embeddings.num_nodes(), n);
        assert!(report.batches > 0);
        assert!(report.weight_mutations > 0);
        assert!(report.topology_mutations > 0);
        assert!(report.refresh.walks_refreshed > 0);
        assert!(report.update_throughput > 0.0);
        assert_eq!(report.queue.batches_enqueued, report.batches);
        // M-H backend: weight updates preserved chains, never rebuilt tables
        // on the weight path (topology compactions may rebuild chains).
        assert!(report.maintenance.chains_preserved > 0);
    }

    #[test]
    fn streaming_walks_stay_valid_paths() {
        let graph = test_graph();
        let mutations = mixed_stream(&graph, 120, 7);
        let mut cfg = UniNetConfig::small();
        cfg.walk.num_walks = 1;
        cfg.walk.walk_length = 8;
        cfg.walk.sampler = EdgeSamplerKind::MetropolisHastings(InitStrategy::Random);
        cfg.embedding.epochs = 1;
        let streaming = StreamingConfig {
            batch_size: 16,
            compaction_threshold: 32,
            ..Default::default()
        };
        let (result, _) = session(
            &cfg,
            &streaming,
            &ModelSpec::Node2Vec { p: 0.5, q: 2.0 },
            graph,
            &mutations,
        );
        // After the final flush the corpus must be consistent with the final
        // compacted graph: every refreshed walk is a path in it. Walks that
        // were never refreshed may contain edges deleted mid-stream, so only
        // refreshed consistency is checked via regeneration above; here we
        // check the corpus shape.
        assert!(result.corpus.num_walks() > 0);
        for walk in result.corpus.iter() {
            assert!(!walk.is_empty());
            assert!(walk.len() <= 8);
        }
    }

    #[test]
    fn alias_streaming_pays_rebuild_cost() {
        let graph = test_graph();
        // Weight-only stream isolates the maintenance asymmetry.
        let mutations: Vec<GraphMutation> = mixed_stream(&graph, 150, 11)
            .into_iter()
            .filter(|m| m.is_weight_only())
            .collect();
        let mut cfg = UniNetConfig::small();
        cfg.walk.num_walks = 1;
        cfg.walk.walk_length = 8;
        cfg.embedding.epochs = 1;

        cfg.walk.sampler = EdgeSamplerKind::Alias;
        let (_, alias_report) = session(
            &cfg,
            &StreamingConfig::default(),
            &ModelSpec::DeepWalk,
            graph.clone(),
            &mutations,
        );
        cfg.walk.sampler = EdgeSamplerKind::MetropolisHastings(InitStrategy::Random);
        let (_, mh_report) = session(
            &cfg,
            &StreamingConfig::default(),
            &ModelSpec::DeepWalk,
            graph,
            &mutations,
        );
        assert!(alias_report.maintenance.states_rebuilt > 0);
        assert_eq!(mh_report.maintenance.states_rebuilt, 0);
        assert_eq!(mh_report.maintenance.bytes_rebuilt, 0);
        assert!(mh_report.maintenance.chains_preserved > 0);
    }

    #[test]
    fn incremental_training_tracks_refreshed_walks() {
        let graph = test_graph();
        let mutations = mixed_stream(&graph, 200, 13);
        let mut cfg = UniNetConfig::small();
        cfg.walk.num_walks = 2;
        cfg.walk.walk_length = 10;
        cfg.walk.sampler = EdgeSamplerKind::MetropolisHastings(InitStrategy::Random);
        cfg.embedding.epochs = 1;
        let streaming = StreamingConfig {
            batch_size: 32,
            compaction_threshold: 64,
            incremental_train: true,
            ingest_threads: 2,
            queue_capacity: 2,
            ..Default::default()
        };
        let n = graph.num_nodes();
        let (result, report) = session(&cfg, &streaming, &ModelSpec::DeepWalk, graph, &mutations);
        assert_eq!(result.embeddings.num_nodes(), n);
        assert!(report.incremental_passes > 0, "no incremental passes ran");
        assert_eq!(
            report.incremental_walks_trained, report.refresh.walks_refreshed,
            "every refreshed walk should feed incremental training"
        );
        assert!(result.train_stats.pairs_processed > 0);
    }

    #[test]
    fn churn_session_grows_universe_and_masks_retirees() {
        let graph = test_graph();
        let n = graph.num_nodes() as NodeId;
        let mut mutations = mixed_stream(&graph, 80, 29);
        // Two arrivals (one wired up immediately, one later), one retirement.
        mutations.push(GraphMutation::AddNode { node: n });
        mutations.push(GraphMutation::AddEdge {
            src: n,
            dst: 0,
            weight: 1.0,
        });
        mutations.push(GraphMutation::AddNode { node: n + 1 });
        mutations.push(GraphMutation::RemoveNode { node: 5 });
        mutations.extend(mixed_stream(&graph, 40, 31));
        mutations.push(GraphMutation::AddEdge {
            src: n + 1,
            dst: 2,
            weight: 2.0,
        });
        // A second node-op batch forces the compaction that surfaces the
        // late arrival's edge in the base graph, making it seedable.
        mutations.push(GraphMutation::AddNode { node: n + 2 });
        mutations.push(GraphMutation::AddEdge {
            src: n + 2,
            dst: 3,
            weight: 1.0,
        });

        let mut cfg = UniNetConfig::small();
        cfg.walk.num_walks = 2;
        cfg.walk.walk_length = 10;
        cfg.walk.sampler = EdgeSamplerKind::MetropolisHastings(InitStrategy::Random);
        cfg.embedding.epochs = 1;
        let streaming = StreamingConfig {
            batch_size: 16,
            compaction_threshold: 64,
            incremental_train: true,
            allow_churn: true,
            ..Default::default()
        };
        let store = EmbeddingStore::new();
        let (result, report, final_graph, final_live, _) = run_streaming_session(
            &cfg,
            &streaming,
            &ModelSpec::DeepWalk,
            graph,
            None,
            &mutations,
            Some(&store),
            None,
            &IngestMetrics::detached(),
            &EngineMetrics::detached(),
        );
        assert_eq!(report.arrivals, 3);
        assert_eq!(report.retirements, 1);
        assert_eq!(report.cold_starts, 3, "every wired arrival cold-started");
        assert_eq!(final_graph.num_nodes(), n as usize + 3);
        assert_eq!(result.embeddings.num_nodes(), n as usize + 3);
        let live = final_live.expect("churned session yields a mask");
        assert!(!live[5] && live[n as usize] && live[n as usize + 2]);

        // The serving plane reflects the final universe: retirees are
        // unreachable, arrivals are served.
        let snap = store.snapshot();
        assert!(store.vector(5).is_none(), "retired id must not be served");
        assert!(store.vector(n).is_some(), "arrival must be served");
        assert!(
            snap.top_k(0, 10).iter().all(|&(v, _)| v != 5),
            "retired id must never appear in top-k"
        );

        // No surviving walk trajectory mentions the retiree.
        for walk in result.corpus.iter() {
            assert!(walk.iter().all(|&v| v != 5), "stale trajectory survived");
        }
    }

    #[test]
    fn session_publishes_snapshots_and_returns_final_graph() {
        let graph = test_graph();
        let n = graph.num_nodes();
        let mutations = mixed_stream(&graph, 150, 17);
        let mut cfg = UniNetConfig::small();
        cfg.walk.num_walks = 1;
        cfg.walk.walk_length = 8;
        cfg.walk.sampler = EdgeSamplerKind::MetropolisHastings(InitStrategy::Random);
        cfg.embedding.epochs = 1;
        let streaming = StreamingConfig {
            batch_size: 32,
            incremental_train: true,
            ..Default::default()
        };
        let store = EmbeddingStore::new();
        let (_, report, final_graph, _, last_epoch) = run_streaming_session(
            &cfg,
            &streaming,
            &ModelSpec::DeepWalk,
            graph,
            None,
            &mutations,
            Some(&store),
            None,
            &IngestMetrics::detached(),
            &EngineMetrics::detached(),
        );
        assert_eq!(last_epoch, store.epoch());
        // Initial online model + one per incremental pass; the end-of-stream
        // state is identical to the last pass, so no extra version is cut.
        assert_eq!(
            report.snapshots_published,
            1 + report.incremental_passes,
            "initial + per-pass snapshots"
        );
        assert!(
            report.incremental_passes > 0,
            "stream produced no refreshes"
        );
        assert_eq!(store.epoch(), report.snapshots_published as u64);
        assert_eq!(store.num_nodes(), n);
        assert_eq!(final_graph.num_nodes(), n);
    }
}
