//! Configuration types for the end-to-end UniNet pipeline.

use uninet_graph::{Graph, Metapath};
use uninet_walker::models::{DeepWalk, Edge2Vec, FairWalk, MetaPath2Vec, Node2Vec};
use uninet_walker::{RandomWalkModel, WalkEngineConfig};

use uninet_embedding::Word2VecConfig;

use crate::error::UniNetError;

/// Declarative description of which NRL model to run.
///
/// A `ModelSpec` is turned into a concrete [`RandomWalkModel`] against a given
/// graph by [`ModelSpec::instantiate`]; this indirection exists because some
/// models (fairwalk) precompute per-graph tables at construction time.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// DeepWalk (first-order, static weights).
    DeepWalk,
    /// node2vec with return parameter `p` and in-out parameter `q`.
    Node2Vec {
        /// Return parameter.
        p: f32,
        /// In-out parameter.
        q: f32,
    },
    /// metapath2vec guided by a metapath of node types.
    MetaPath2Vec {
        /// The metapath (sequence of node type ids).
        metapath: Vec<u16>,
    },
    /// edge2vec with node2vec parameters and a uniform edge-type transition matrix.
    Edge2Vec {
        /// Return parameter.
        p: f32,
        /// In-out parameter.
        q: f32,
    },
    /// fairwalk with node2vec parameters.
    FairWalk {
        /// Return parameter.
        p: f32,
        /// In-out parameter.
        q: f32,
    },
}

impl ModelSpec {
    /// The model name used in reports (matches the paper's tables).
    pub fn name(&self) -> &'static str {
        match self {
            ModelSpec::DeepWalk => "deepwalk",
            ModelSpec::Node2Vec { .. } => "node2vec",
            ModelSpec::MetaPath2Vec { .. } => "metapath2vec",
            ModelSpec::Edge2Vec { .. } => "edge2vec",
            ModelSpec::FairWalk { .. } => "fairwalk",
        }
    }

    /// Whether the model requires node-type information.
    pub fn needs_heterogeneous_graph(&self) -> bool {
        matches!(self, ModelSpec::MetaPath2Vec { .. })
    }

    /// Checks the spec's own hyper-parameters, without a graph.
    ///
    /// A metapath with fewer than two node types cannot describe a
    /// transition, and non-positive or non-finite `p`/`q` make the
    /// second-order transition weights meaningless — both are reported as
    /// [`UniNetError::InvalidConfig`] instead of being silently patched.
    pub fn validate(&self) -> Result<(), UniNetError> {
        match self {
            ModelSpec::DeepWalk => Ok(()),
            ModelSpec::MetaPath2Vec { metapath } => {
                if metapath.len() < 2 {
                    return Err(UniNetError::invalid_config(
                        "model.metapath",
                        format!(
                            "a metapath needs at least 2 node types to define a transition \
                             (got {})",
                            metapath.len()
                        ),
                    ));
                }
                Ok(())
            }
            ModelSpec::Node2Vec { p, q }
            | ModelSpec::Edge2Vec { p, q }
            | ModelSpec::FairWalk { p, q } => {
                for (name, v) in [("model.p", *p), ("model.q", *q)] {
                    if !v.is_finite() || v <= 0.0 {
                        return Err(UniNetError::invalid_config(
                            name,
                            format!("must be a positive finite number (got {v})"),
                        ));
                    }
                }
                Ok(())
            }
        }
    }

    /// Builds the concrete model for `graph`.
    ///
    /// Fails with [`UniNetError::InvalidConfig`] when [`ModelSpec::validate`]
    /// rejects the spec (e.g. a metapath shorter than two node types).
    pub fn instantiate(&self, graph: &Graph) -> Result<Box<dyn RandomWalkModel>, UniNetError> {
        self.validate()?;
        Ok(match self {
            ModelSpec::DeepWalk => Box::new(DeepWalk::new()),
            ModelSpec::Node2Vec { p, q } => Box::new(Node2Vec::new(*p, *q)),
            ModelSpec::MetaPath2Vec { metapath } => {
                Box::new(MetaPath2Vec::new(Metapath::new(metapath.clone())))
            }
            ModelSpec::Edge2Vec { p, q } => {
                let types = graph.num_edge_types().max(1) as usize;
                Box::new(Edge2Vec::uniform(*p, *q, types))
            }
            ModelSpec::FairWalk { p, q } => Box::new(FairWalk::new(graph, *p, *q)),
        })
    }

    /// The five models with the hyper-parameters used in the paper's
    /// efficiency study (Section V-C / V-D).
    pub fn paper_benchmark_suite() -> Vec<ModelSpec> {
        vec![
            ModelSpec::DeepWalk,
            ModelSpec::Node2Vec { p: 0.25, q: 4.0 },
            ModelSpec::MetaPath2Vec {
                metapath: vec![0, 1, 2, 1, 0],
            },
            ModelSpec::Edge2Vec { p: 0.25, q: 0.25 },
            ModelSpec::FairWalk { p: 1.0, q: 1.0 },
        ]
    }
}

/// Full pipeline configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniNetConfig {
    /// Random-walk generation settings (sampler, K, L, threads).
    pub walk: WalkEngineConfig,
    /// Word2vec settings.
    pub embedding: Word2VecConfig,
}

impl UniNetConfig {
    /// A configuration scaled down for unit tests and examples.
    pub fn small() -> Self {
        let mut cfg = Self::default();
        cfg.walk.num_walks = 2;
        cfg.walk.walk_length = 20;
        cfg.walk.num_threads = 2;
        cfg.embedding.dim = 32;
        cfg.embedding.num_threads = 2;
        cfg.embedding.window = 5;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uninet_graph::generators::{heterogenize, ring_with_chords};

    #[test]
    fn names_and_suite() {
        let suite = ModelSpec::paper_benchmark_suite();
        assert_eq!(suite.len(), 5);
        let names: Vec<_> = suite.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "deepwalk",
                "node2vec",
                "metapath2vec",
                "edge2vec",
                "fairwalk"
            ]
        );
        assert!(suite[2].needs_heterogeneous_graph());
        assert!(!suite[0].needs_heterogeneous_graph());
    }

    #[test]
    fn instantiate_all_models() {
        let g = heterogenize(&ring_with_chords(30, 1), 3, 2, 2);
        for spec in ModelSpec::paper_benchmark_suite() {
            let model = spec.instantiate(&g).unwrap();
            assert_eq!(model.name(), spec.name());
            assert!(model.num_states(&g) >= g.num_nodes());
        }
    }

    #[test]
    fn degenerate_metapath_is_rejected() {
        let g = heterogenize(&ring_with_chords(20, 1), 3, 2, 3);
        for metapath in [vec![], vec![0u16]] {
            let spec = ModelSpec::MetaPath2Vec { metapath };
            match spec.instantiate(&g) {
                Err(UniNetError::InvalidConfig { field, .. }) => {
                    assert_eq!(field, "model.metapath")
                }
                Err(other) => panic!("expected InvalidConfig, got {other}"),
                Ok(_) => panic!("degenerate metapath must not instantiate"),
            }
        }
    }

    #[test]
    fn non_positive_node2vec_params_are_rejected() {
        assert!(ModelSpec::Node2Vec { p: 0.0, q: 1.0 }.validate().is_err());
        assert!(ModelSpec::FairWalk {
            p: 1.0,
            q: f32::NAN
        }
        .validate()
        .is_err());
        assert!(ModelSpec::Edge2Vec { p: -1.0, q: 1.0 }.validate().is_err());
        assert!(ModelSpec::Node2Vec { p: 0.25, q: 4.0 }.validate().is_ok());
    }

    #[test]
    fn small_config_is_smaller() {
        let small = UniNetConfig::small();
        let default = UniNetConfig::default();
        assert!(small.walk.num_walks < default.walk.num_walks);
        assert!(small.embedding.dim < default.embedding.dim);
    }
}
