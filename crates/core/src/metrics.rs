//! The engine plane's training telemetry.
//!
//! [`EngineMetrics`] carries the training-side instruments that are not owned
//! by the serving store (`uninet_embedding::StoreTelemetry` covers publishes,
//! epochs and query latency): the per-round `Ti`/`Tw`/`Tl` phase breakdown
//! and the incremental-SGD pass latency during streaming. Same
//! detached/registered pattern as the other planes — handles always exist,
//! registration only decides whether snapshots can see them.

use std::sync::Arc;

use uninet_metrics::{Histogram, MetricsRegistry, PhaseTiming};

/// Pre-resolved instrument handles for training rounds.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// Sampler initialization per round, `Ti` (`engine.train.init_ns`).
    pub train_init_ns: Arc<Histogram>,
    /// Walk generation per round, `Tw` (`engine.train.walk_ns`).
    pub train_walk_ns: Arc<Histogram>,
    /// Embedding learning per round, `Tl` (`engine.train.learn_ns`).
    pub train_learn_ns: Arc<Histogram>,
    /// Whole-round wall clock, `Tt` (`engine.train.round_ns`).
    pub train_round_ns: Arc<Histogram>,
    /// One incremental SGD pass over regenerated walks during streaming
    /// (`engine.train.incremental_pass_ns`).
    pub incremental_pass_ns: Arc<Histogram>,
    /// Cold-start burn-in latency per arrival cohort: neighbour-average
    /// init plus all boosted SGD passes (`engine.train.cold_start_burn_in_ns`).
    pub cold_start_burn_in_ns: Arc<Histogram>,
}

impl EngineMetrics {
    /// Handles not registered anywhere (the no-telemetry default).
    pub fn detached() -> Self {
        EngineMetrics {
            train_init_ns: Arc::new(Histogram::new()),
            train_walk_ns: Arc::new(Histogram::new()),
            train_learn_ns: Arc::new(Histogram::new()),
            train_round_ns: Arc::new(Histogram::new()),
            incremental_pass_ns: Arc::new(Histogram::new()),
            cold_start_burn_in_ns: Arc::new(Histogram::new()),
        }
    }

    /// Handles registered under `engine.train.*` in `registry`.
    pub fn registered(registry: &MetricsRegistry) -> Self {
        EngineMetrics {
            train_init_ns: registry.histogram("engine.train.init_ns"),
            train_walk_ns: registry.histogram("engine.train.walk_ns"),
            train_learn_ns: registry.histogram("engine.train.learn_ns"),
            train_round_ns: registry.histogram("engine.train.round_ns"),
            incremental_pass_ns: registry.histogram("engine.train.incremental_pass_ns"),
            cold_start_burn_in_ns: registry.histogram("engine.train.cold_start_burn_in_ns"),
        }
    }

    /// Records one completed round's Table VI breakdown.
    pub fn record_round(&self, timing: &PhaseTiming) {
        self.train_init_ns.record_duration(timing.init);
        self.train_walk_ns.record_duration(timing.walk);
        self.train_learn_ns.record_duration(timing.learn);
        self.train_round_ns.record_duration(timing.total());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn record_round_fills_all_phase_histograms() {
        let registry = MetricsRegistry::new();
        let m = EngineMetrics::registered(&registry);
        m.record_round(&PhaseTiming {
            init: Duration::from_micros(10),
            walk: Duration::from_micros(20),
            learn: Duration::from_micros(30),
        });
        let snap = registry.snapshot();
        for name in [
            "engine.train.init_ns",
            "engine.train.walk_ns",
            "engine.train.learn_ns",
            "engine.train.round_ns",
        ] {
            assert_eq!(snap.histogram(name).unwrap().count(), 1, "{name}");
        }
        assert_eq!(
            snap.histogram("engine.train.round_ns").unwrap().min(),
            60_000
        );
    }
}
