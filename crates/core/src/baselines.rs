//! Baseline configurations emulating the systems UniNet is compared against
//! in Table VI.
//!
//! The paper compares three columns per model:
//!
//! 1. **Open-sourced version** — the reference Python/C++ implementations
//!    (DeepWalk, node2vec, …). We cannot run those here; the algorithmically
//!    relevant property is *which sampler they use* (alias tables with full
//!    precomputation for node2vec, per-step direct sampling for the others)
//!    and their lack of parallel walk generation. [`BaselineKind::OpenSource`]
//!    reproduces that behaviour inside our engine (original sampler, single
//!    thread).
//! 2. **UniNet (Orig)** — the original sampler of each model running inside
//!    the UniNet framework (original sampler, full parallelism).
//! 3. **UniNet (M-H)** — the paper's contribution (M-H sampler, full
//!    parallelism, high-weight initialization by default).

use uninet_sampler::{EdgeSamplerKind, InitStrategy};

use crate::config::{ModelSpec, UniNetConfig};

/// Which system column of Table VI a configuration emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// The open-source reference implementation (original sampler, 1 thread).
    OpenSource,
    /// UniNet running the model's original sampler (parallel).
    UniNetOriginal,
    /// UniNet with the M-H edge sampler (parallel).
    UniNetMh,
}

impl BaselineKind {
    /// All three columns in Table VI order.
    pub const ALL: [BaselineKind; 3] = [
        BaselineKind::OpenSource,
        BaselineKind::UniNetOriginal,
        BaselineKind::UniNetMh,
    ];

    /// Column label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            BaselineKind::OpenSource => "Open-sourced",
            BaselineKind::UniNetOriginal => "UniNet (Orig)",
            BaselineKind::UniNetMh => "UniNet (M-H)",
        }
    }
}

/// The edge sampler used by the original implementation of each model: the
/// node2vec reference precomputes alias tables per state, all the others draw
/// with direct (inverse-CDF) sampling.
pub fn baseline_sampler_for(spec: &ModelSpec) -> EdgeSamplerKind {
    match spec {
        ModelSpec::Node2Vec { .. } => EdgeSamplerKind::Alias,
        _ => EdgeSamplerKind::Direct,
    }
}

/// Produces the pipeline configuration for one Table VI column, starting from
/// a base configuration that fixes K, L, dimensions, etc.
pub fn configure(base: &UniNetConfig, spec: &ModelSpec, kind: BaselineKind) -> UniNetConfig {
    let mut cfg = *base;
    match kind {
        BaselineKind::OpenSource => {
            cfg.walk.sampler = baseline_sampler_for(spec);
            cfg.walk.num_threads = 1;
            cfg.embedding.num_threads = 1;
        }
        BaselineKind::UniNetOriginal => {
            cfg.walk.sampler = baseline_sampler_for(spec);
        }
        BaselineKind::UniNetMh => {
            cfg.walk.sampler =
                EdgeSamplerKind::MetropolisHastings(InitStrategy::high_weight_exact());
        }
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node2vec_baseline_uses_alias() {
        assert_eq!(
            baseline_sampler_for(&ModelSpec::Node2Vec { p: 1.0, q: 1.0 }),
            EdgeSamplerKind::Alias
        );
        assert_eq!(
            baseline_sampler_for(&ModelSpec::DeepWalk),
            EdgeSamplerKind::Direct
        );
        assert_eq!(
            baseline_sampler_for(&ModelSpec::FairWalk { p: 1.0, q: 1.0 }),
            EdgeSamplerKind::Direct
        );
    }

    #[test]
    fn open_source_column_is_single_threaded() {
        let base = UniNetConfig::default();
        let spec = ModelSpec::DeepWalk;
        let cfg = configure(&base, &spec, BaselineKind::OpenSource);
        assert_eq!(cfg.walk.num_threads, 1);
        assert_eq!(cfg.embedding.num_threads, 1);
        assert_eq!(cfg.walk.sampler, EdgeSamplerKind::Direct);
    }

    #[test]
    fn uninet_columns_keep_parallelism() {
        let base = UniNetConfig::default();
        let spec = ModelSpec::Node2Vec { p: 0.25, q: 4.0 };
        let orig = configure(&base, &spec, BaselineKind::UniNetOriginal);
        assert_eq!(orig.walk.num_threads, base.walk.num_threads);
        assert_eq!(orig.walk.sampler, EdgeSamplerKind::Alias);
        let mh = configure(&base, &spec, BaselineKind::UniNetMh);
        assert!(matches!(
            mh.walk.sampler,
            EdgeSamplerKind::MetropolisHastings(_)
        ));
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<_> = BaselineKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 3);
        assert!(labels.contains(&"UniNet (M-H)"));
    }
}
