//! Phase timing of the end-to-end pipeline, matching the `Ti`/`Tw`/`Tl`/`Tt`
//! columns of Table VI in the paper.
//!
//! The types now live in `uninet-metrics` (the workspace telemetry core) so
//! every crate can share the same stage-timer primitives; this module keeps
//! the historical `uninet_core::timing` path working.

pub use uninet_metrics::{PhaseRecorder, PhaseTiming};
