//! Phase timing of the end-to-end pipeline, matching the `Ti`/`Tw`/`Tl`/`Tt`
//! columns of Table VI in the paper.

use std::time::Duration;

/// Wall-clock breakdown of one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTiming {
    /// Sampler initialization cost (`Ti`).
    pub init: Duration,
    /// Random-walk generation cost (`Tw`).
    pub walk: Duration,
    /// Embedding learning cost (`Tl`).
    pub learn: Duration,
}

impl PhaseTiming {
    /// Total cost (`Tt = Ti + Tw + Tl`).
    pub fn total(&self) -> Duration {
        self.init + self.walk + self.learn
    }

    /// Speed-up of this run's total time relative to `other` (e.g. how much
    /// faster UniNet (M-H) is than UniNet (Orig)).
    pub fn speedup_over(&self, other: &PhaseTiming) -> f64 {
        let own = self.total().as_secs_f64();
        if own <= 0.0 {
            return f64::INFINITY;
        }
        other.total().as_secs_f64() / own
    }

    /// Fraction of the total time spent in initialization (the quantity the
    /// paper uses to argue against burn-in initialization in Figure 6).
    pub fn init_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total <= 0.0 {
            0.0
        } else {
            self.init.as_secs_f64() / total
        }
    }
}

impl std::fmt::Display for PhaseTiming {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Ti={:.3}s Tw={:.3}s Tl={:.3}s Tt={:.3}s",
            self.init.as_secs_f64(),
            self.walk.as_secs_f64(),
            self.learn.as_secs_f64(),
            self.total().as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(init_ms: u64, walk_ms: u64, learn_ms: u64) -> PhaseTiming {
        PhaseTiming {
            init: Duration::from_millis(init_ms),
            walk: Duration::from_millis(walk_ms),
            learn: Duration::from_millis(learn_ms),
        }
    }

    #[test]
    fn total_sums_phases() {
        assert_eq!(t(10, 20, 30).total(), Duration::from_millis(60));
    }

    #[test]
    fn speedup_is_ratio_of_totals() {
        let fast = t(5, 10, 15);
        let slow = t(20, 40, 60);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-9);
        assert!((slow.speedup_over(&fast) - 0.25).abs() < 1e-9);
        assert_eq!(t(0, 0, 0).speedup_over(&slow), f64::INFINITY);
    }

    #[test]
    fn init_fraction() {
        assert!((t(25, 50, 25).init_fraction() - 0.25).abs() < 1e-9);
        assert_eq!(t(0, 0, 0).init_fraction(), 0.0);
    }

    #[test]
    fn display_contains_all_phases() {
        let s = format!("{}", t(1000, 2000, 3000));
        assert!(s.contains("Ti=1.000s"));
        assert!(s.contains("Tt=6.000s"));
    }
}
