//! The long-lived engine facade: one builder-validated handle over batch
//! training, streaming ingestion and concurrent embedding queries.
//!
//! [`EngineBuilder`] collects the graph source, model spec and
//! hyper-parameters, validates everything once, and produces an [`Engine`].
//! The engine owns the graph and an [`EmbeddingStore`] serving layer:
//!
//! * [`Engine::train`] — the batch pipeline (walks + word2vec), publishing
//!   the learned embeddings to the store.
//! * [`Engine::stream`] — spawns the concurrent ingestion pipeline on a
//!   background thread and returns a [`StreamHandle`]; the engine stays
//!   queryable the whole time, and with
//!   [`StreamingConfig::incremental_train`](crate::StreamingConfig) every
//!   refresh round publishes an updated snapshot.
//! * [`Engine::top_k`] / [`Engine::cosine`] / [`Engine::vector`] — embedding
//!   queries served lock-free from the latest published snapshot; with
//!   [`EngineBuilder::ann_index`] top-k routes through a per-snapshot HNSW
//!   index ([`QueryMode`] selects the path per call), and
//!   [`Engine::top_k_batch`] / [`Engine::cosine_batch`] answer query slabs
//!   from one snapshot acquisition.
//!
//! ```
//! use uninet_core::{Engine, ModelSpec};
//! use uninet_graph::generators::barabasi_albert;
//!
//! let engine = Engine::builder()
//!     .graph(barabasi_albert(300, 4, true, 7))
//!     .model(ModelSpec::DeepWalk)
//!     .num_walks(2)
//!     .walk_length(15)
//!     .dim(32)
//!     .threads(2)
//!     .build()
//!     .expect("valid configuration");
//! let report = engine.train().expect("engine is idle");
//! assert!(report.corpus.num_walks() > 0);
//! let neighbours = engine.top_k(0, 5);
//! assert_eq!(neighbours.len(), 5);
//! ```

use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use uninet_dyngraph::GraphMutation;
use uninet_embedding::{
    AnnConfig, EmbeddingSnapshot, EmbeddingStore, QueryMode, StoreTelemetry, TrainStats,
};
use uninet_graph::io::{read_edge_list_file, EdgeListOptions};
use uninet_graph::Graph;
use uninet_ingest::IngestMetrics;
use uninet_metrics::{MetricsRegistry, MetricsSnapshot};
use uninet_persist::{FsyncPolicy, SamplerState};
use uninet_sampler::EdgeSamplerKind;
use uninet_walker::{WalkCorpus, WalkEngineConfig};

use crate::config::{ModelSpec, UniNetConfig};
use crate::durability::{PersistOptions, RecoverySummary, SessionPersist};
use crate::error::UniNetError;
use crate::metrics::EngineMetrics;
use crate::pipeline::{self, PipelineResult};
use crate::streaming::{run_streaming_session, StreamingConfig, StreamingReport};
use crate::timing::PhaseTiming;

/// Where the engine's graph comes from.
enum GraphSource {
    /// An already-constructed graph.
    InMemory(Graph),
    /// An edge-list file loaded at build time.
    EdgeList(PathBuf, EdgeListOptions),
}

/// Typed, validating builder for [`Engine`].
///
/// Every setter is chainable; [`EngineBuilder::build`] performs all
/// validation and returns [`UniNetError::InvalidConfig`] for the first
/// rejected field, so a misconfigured engine can never be constructed.
///
/// ```
/// use uninet_core::{Engine, ModelSpec, UniNetError};
/// use uninet_graph::generators::ring_with_chords;
///
/// // Zero walks per node is rejected at build time, not at run time.
/// let err = Engine::builder()
///     .graph(ring_with_chords(50, 2))
///     .num_walks(0)
///     .build()
///     .unwrap_err();
/// assert!(matches!(err, UniNetError::InvalidConfig { field: "walk.num_walks", .. }));
/// ```
pub struct EngineBuilder {
    source: Option<GraphSource>,
    spec: ModelSpec,
    config: UniNetConfig,
    streaming: StreamingConfig,
    wal_dir: Option<PathBuf>,
    snapshot_every: Option<usize>,
    wal_fsync: Option<FsyncPolicy>,
    recover_dir: Option<PathBuf>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineBuilder {
    /// Starts a builder with the paper-default configuration and DeepWalk.
    pub fn new() -> Self {
        EngineBuilder {
            source: None,
            spec: ModelSpec::DeepWalk,
            config: UniNetConfig::default(),
            streaming: StreamingConfig::default(),
            wal_dir: None,
            snapshot_every: None,
            wal_fsync: None,
            recover_dir: None,
        }
    }

    /// Uses an already-constructed graph.
    pub fn graph(mut self, graph: Graph) -> Self {
        self.source = Some(GraphSource::InMemory(graph));
        self
    }

    /// Loads the graph from an edge-list file at build time
    /// (`src dst [weight] [edge_type]` per line).
    pub fn graph_from_edge_list(mut self, path: impl Into<PathBuf>) -> Self {
        self.source = Some(GraphSource::EdgeList(
            path.into(),
            EdgeListOptions::default(),
        ));
        self
    }

    /// Loads the graph from an edge-list file with explicit parse options.
    pub fn graph_from_edge_list_with(
        mut self,
        path: impl Into<PathBuf>,
        options: EdgeListOptions,
    ) -> Self {
        self.source = Some(GraphSource::EdgeList(path.into(), options));
        self
    }

    /// Selects the NRL model to run (default: DeepWalk).
    pub fn model(mut self, spec: ModelSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Replaces the whole pipeline configuration (walk + embedding), e.g.
    /// one produced by [`crate::baselines::configure`].
    pub fn config(mut self, config: UniNetConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the walk-generation configuration wholesale.
    pub fn walk_config(mut self, walk: WalkEngineConfig) -> Self {
        self.config.walk = walk;
        self
    }

    /// Replaces the streaming configuration wholesale.
    pub fn streaming(mut self, streaming: StreamingConfig) -> Self {
        self.streaming = streaming;
        self
    }

    /// Walks started per node (`K`).
    pub fn num_walks(mut self, k: usize) -> Self {
        self.config.walk.num_walks = k;
        self
    }

    /// Nodes per walk (`L`).
    pub fn walk_length(mut self, l: usize) -> Self {
        self.config.walk.walk_length = l;
        self
    }

    /// Worker threads for walk generation, training and ingestion.
    pub fn threads(mut self, t: usize) -> Self {
        self.config.walk.num_threads = t;
        self.config.embedding.num_threads = t;
        self
    }

    /// The edge-sampler backend.
    pub fn sampler(mut self, sampler: EdgeSamplerKind) -> Self {
        self.config.walk.sampler = sampler;
        self
    }

    /// Memory budget for the memory-aware sampler.
    pub fn memory_budget_bytes(mut self, bytes: usize) -> Self {
        self.config.walk.memory_budget_bytes = bytes;
        self
    }

    /// Seed for both walk generation and embedding training RNGs.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.walk.seed = seed;
        self.config.embedding.seed = seed;
        self
    }

    /// Embedding dimensionality.
    pub fn dim(mut self, dim: usize) -> Self {
        self.config.embedding.dim = dim;
        self
    }

    /// Skip-gram context window.
    pub fn window(mut self, window: usize) -> Self {
        self.config.embedding.window = window;
        self
    }

    /// Word2vec epochs.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.config.embedding.epochs = epochs;
        self
    }

    /// Mutations applied per streaming maintenance batch.
    pub fn update_batch_size(mut self, n: usize) -> Self {
        self.streaming.batch_size = n;
        self
    }

    /// Pending overlay entries that trigger CSR compaction.
    pub fn compaction_threshold(mut self, n: usize) -> Self {
        self.streaming.compaction_threshold = n;
        self
    }

    /// Whether streaming mutations mirror onto the reverse edge.
    pub fn symmetric_updates(mut self, symmetric: bool) -> Self {
        self.streaming.symmetric = symmetric;
        self
    }

    /// Worker threads for the ingestion pipeline (0 = follow
    /// [`EngineBuilder::threads`]).
    pub fn ingest_threads(mut self, t: usize) -> Self {
        self.streaming.ingest_threads = t;
        self
    }

    /// Update batches buffered by the intake queue before back-pressure.
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.streaming.queue_capacity = n;
        self
    }

    /// Train embeddings incrementally on regenerated walks during streaming.
    pub fn incremental_train(mut self, on: bool) -> Self {
        self.streaming.incremental_train = on;
        self
    }

    /// Minimum milliseconds between serving-store snapshot publications
    /// during incremental streaming (0 = publish after every pass). See
    /// [`StreamingConfig::snapshot_interval_ms`](crate::StreamingConfig).
    pub fn snapshot_interval_ms(mut self, ms: u64) -> Self {
        self.streaming.snapshot_interval_ms = ms;
        self
    }

    /// Build an HNSW ANN index into every published snapshot, so
    /// [`Engine::top_k`] serves approximate results in `O(log n · d)`-ish
    /// time instead of a full scan ([`QueryMode::Exact`] queries stay
    /// available per call). The per-epoch rebuild runs outside the store's
    /// write lock.
    pub fn ann_index(mut self, on: bool) -> Self {
        self.streaming.ann_index = on;
        self
    }

    /// HNSW `M` (max neighbours per node and layer; layer 0 keeps `2M`).
    pub fn ann_m(mut self, m: usize) -> Self {
        self.streaming.ann_m = m;
        self
    }

    /// HNSW construction beam width (`ef_construction`).
    pub fn ann_ef_construction(mut self, ef: usize) -> Self {
        self.streaming.ann_ef_construction = ef;
        self
    }

    /// HNSW query beam width (`ef_search`) — the recall/latency knob.
    pub fn ann_ef_search(mut self, ef: usize) -> Self {
        self.streaming.ann_ef_search = ef;
        self
    }

    /// Score top-k candidates through int8 codes (4x less scan bandwidth for
    /// both the exact scan and the HNSW traversal), re-scoring the best
    /// `k · rerank` candidates in f32 so reported similarities stay exact.
    /// Requires [`ann_index`](EngineBuilder::ann_index).
    pub fn ann_quantize(mut self, on: bool) -> Self {
        self.streaming.ann_quantize = on;
        self
    }

    /// f32 re-rank budget multiplier for quantized queries: per requested
    /// result, how many int8-ranked candidates are re-scored in f32.
    pub fn ann_rerank(mut self, rerank: usize) -> Self {
        self.streaming.ann_rerank = rerank;
        self
    }

    /// Whether streaming publishes graft the previous epoch's HNSW graph
    /// (re-inserting only drifted/new nodes) instead of rebuilding from
    /// scratch. On by default when ANN is enabled.
    pub fn ann_incremental(mut self, on: bool) -> Self {
        self.streaming.ann_incremental = on;
        self
    }

    /// Drift threshold for incremental publishes: the L2 distance between a
    /// node's old and new normalized vectors above which it is re-inserted.
    pub fn ann_drift_threshold(mut self, threshold: f32) -> Self {
        self.streaming.ann_drift_threshold = threshold;
        self
    }

    /// Accept open-world node arrivals/retirements in streamed mutations.
    /// Off by default: closed-world engines reject node ops up front.
    pub fn allow_churn(mut self, on: bool) -> Self {
        self.streaming.allow_churn = on;
        self
    }

    /// Boosted SGD burn-in passes per arrival cohort during incremental
    /// streaming (0 disables burn-in). See
    /// [`StreamingConfig::cold_start_burn_in`](crate::StreamingConfig).
    pub fn cold_start_burn_in(mut self, passes: usize) -> Self {
        self.streaming.cold_start_burn_in = passes;
        self
    }

    /// Learning-rate multiplier for cold-start burn-in passes. See
    /// [`StreamingConfig::cold_start_boost`](crate::StreamingConfig).
    pub fn cold_start_boost(mut self, boost: f32) -> Self {
        self.streaming.cold_start_boost = boost;
        self
    }

    /// Enables the durability plane rooted at `dir`: every streaming batch
    /// is WAL-logged before it is applied, and snapshots of the full state
    /// (graph + embeddings + sampler config) are cut at session boundaries
    /// (plus every [`EngineBuilder::snapshot_every`] batches). The directory
    /// is created and probed for writability at build time.
    pub fn wal(mut self, dir: impl Into<PathBuf>) -> Self {
        self.wal_dir = Some(dir.into());
        self
    }

    /// Cut a durability snapshot every `batches` WAL-logged batches during
    /// streaming (0 = only at session boundaries). Requires
    /// [`EngineBuilder::wal`] or [`EngineBuilder::recover`].
    pub fn snapshot_every(mut self, batches: usize) -> Self {
        self.snapshot_every = Some(batches);
        self
    }

    /// When WAL appends reach the disk (default: [`FsyncPolicy::Always`]).
    /// Requires [`EngineBuilder::wal`] or [`EngineBuilder::recover`].
    pub fn wal_fsync(mut self, policy: FsyncPolicy) -> Self {
        self.wal_fsync = Some(policy);
        self
    }

    /// Uses crash recovery from `dir` as the graph source: the newest valid
    /// snapshot is loaded, any torn WAL tail is truncated, and the WAL
    /// suffix is replayed to reconstruct the pre-crash graph; a snapshotted
    /// embedding matrix is restored into the serving store at its original
    /// epoch. The directory stays the engine's WAL directory, so subsequent
    /// streams keep appending where the crashed process stopped. Conflicts
    /// with [`EngineBuilder::graph`] / edge-list sources.
    pub fn recover(mut self, dir: impl Into<PathBuf>) -> Self {
        self.recover_dir = Some(dir.into());
        self
    }

    /// Validates the configuration, loads (or recovers) the graph, and
    /// constructs the engine.
    pub fn build(self) -> Result<Engine, UniNetError> {
        let EngineBuilder {
            source,
            spec,
            mut config,
            streaming,
            wal_dir,
            snapshot_every,
            wal_fsync,
            recover_dir,
        } = self;

        // Durability options resolve first: a WAL directory that cannot be
        // written is a build-time error, not a degraded session later.
        let persist = match wal_dir.clone().or_else(|| recover_dir.clone()) {
            Some(dir) => {
                std::fs::create_dir_all(&dir).map_err(|e| {
                    UniNetError::invalid_config(
                        "persist.wal_dir",
                        format!("cannot create {}: {e}", dir.display()),
                    )
                })?;
                let probe = dir.join(".uninet-write-probe");
                std::fs::write(&probe, b"probe").map_err(|e| {
                    UniNetError::invalid_config(
                        "persist.wal_dir",
                        format!("{} is not writable: {e}", dir.display()),
                    )
                })?;
                let _ = std::fs::remove_file(&probe);
                Some(PersistOptions {
                    wal_dir: dir,
                    snapshot_every: snapshot_every.unwrap_or(0),
                    fsync: wal_fsync.unwrap_or(FsyncPolicy::Always),
                })
            }
            None => {
                if snapshot_every.is_some() {
                    return Err(UniNetError::invalid_config(
                        "persist.snapshot_every",
                        "requires a WAL directory: call .wal(dir) or .recover(dir)",
                    ));
                }
                if wal_fsync.is_some() {
                    return Err(UniNetError::invalid_config(
                        "persist.wal_fsync",
                        "requires a WAL directory: call .wal(dir) or .recover(dir)",
                    ));
                }
                None
            }
        };

        // Crash recovery is a graph *source*; mixing it with an explicit one
        // would silently discard whichever lost the race.
        let mut recovery: Option<RecoverySummary> = None;
        let mut restored_embeddings: Option<(uninet_embedding::Embeddings, u64)> = None;
        let mut live: Option<Vec<bool>> = None;
        let graph = if let Some(dir) = &recover_dir {
            if source.is_some() {
                return Err(UniNetError::invalid_config(
                    "graph",
                    ".recover(..) conflicts with an explicit graph source: \
                     pass one or the other",
                ));
            }
            let t = Instant::now();
            let state = uninet_persist::recover(dir)?;
            recovery = Some(RecoverySummary::from_state(&state, t.elapsed()));
            restored_embeddings = state.embeddings.map(|e| (e, state.epoch));
            live = state.live;
            state.graph
        } else {
            match source.ok_or_else(|| {
                UniNetError::invalid_config(
                    "graph",
                    "no graph source: call .graph(..), .graph_from_edge_list(..) \
                     or .recover(..)",
                )
            })? {
                GraphSource::InMemory(g) => g,
                GraphSource::EdgeList(path, options) => read_edge_list_file(&path, options)?,
            }
        };

        if graph.num_nodes() == 0 {
            return Err(UniNetError::invalid_config("graph", "graph has no nodes"));
        }
        spec.validate()?;
        // Graph-dependent spec checks: a metapath naming a node type the
        // graph does not have can never transition and silently degenerates
        // every walk to its start node.
        if let ModelSpec::MetaPath2Vec { metapath } = &spec {
            let available = graph.num_node_types().max(1);
            if let Some(&bad) = metapath.iter().find(|&&t| t >= available) {
                return Err(UniNetError::invalid_config(
                    "model.metapath",
                    format!(
                        "metapath names node type {bad} but the graph only has types \
                         0..{available}"
                    ),
                ));
            }
        }

        // Thread counts are normalized, everything else must be explicit.
        config.walk.num_threads = config.walk.num_threads.max(1);
        config.embedding.num_threads = config.embedding.num_threads.max(1);

        let checks: [(&'static str, bool, String); 8] = [
            (
                "walk.num_walks",
                config.walk.num_walks >= 1,
                "must start at least 1 walk per node (got 0)".into(),
            ),
            (
                "walk.walk_length",
                config.walk.walk_length >= 2,
                format!(
                    "a walk must visit at least 2 nodes (got {})",
                    config.walk.walk_length
                ),
            ),
            (
                "embedding.dim",
                config.embedding.dim >= 1,
                "embedding dimensionality must be positive (got 0)".into(),
            ),
            (
                "embedding.epochs",
                config.embedding.epochs >= 1,
                "training needs at least 1 epoch (got 0)".into(),
            ),
            (
                "embedding.window",
                config.embedding.window >= 1,
                "the context window must be positive (got 0)".into(),
            ),
            (
                "embedding.initial_alpha",
                config.embedding.initial_alpha.is_finite() && config.embedding.initial_alpha > 0.0,
                format!(
                    "the learning rate must be a positive finite number (got {})",
                    config.embedding.initial_alpha
                ),
            ),
            (
                "streaming.batch_size",
                streaming.batch_size >= 1,
                "streaming batches must hold at least 1 mutation (got 0)".into(),
            ),
            (
                "streaming.queue_capacity",
                streaming.queue_capacity >= 1,
                "the intake queue must buffer at least 1 batch (got 0)".into(),
            ),
        ];
        for (field, ok, reason) in checks {
            if !ok {
                return Err(UniNetError::InvalidConfig { field, reason });
            }
        }
        if streaming.ann_index {
            if streaming.ann_m < 2 {
                return Err(UniNetError::invalid_config(
                    "streaming.ann_m",
                    format!(
                        "HNSW needs at least 2 links per node (got {})",
                        streaming.ann_m
                    ),
                ));
            }
            if streaming.ann_ef_construction < streaming.ann_m {
                return Err(UniNetError::invalid_config(
                    "streaming.ann_ef_construction",
                    format!(
                        "the construction beam must be at least ann_m = {} (got {})",
                        streaming.ann_m, streaming.ann_ef_construction
                    ),
                ));
            }
            if streaming.ann_ef_search == 0 {
                return Err(UniNetError::invalid_config(
                    "streaming.ann_ef_search",
                    "the query beam must be positive (got 0)".to_string(),
                ));
            }
            if streaming.ann_rerank == 0 {
                return Err(UniNetError::invalid_config(
                    "streaming.ann_rerank",
                    "the f32 re-rank budget must be at least 1 per result (got 0)".to_string(),
                ));
            }
            if !streaming.ann_drift_threshold.is_finite() || streaming.ann_drift_threshold < 0.0 {
                return Err(UniNetError::invalid_config(
                    "streaming.ann_drift_threshold",
                    format!(
                        "the drift threshold must be finite and non-negative (got {})",
                        streaming.ann_drift_threshold
                    ),
                ));
            }
        } else if streaming.ann_quantize {
            return Err(UniNetError::invalid_config(
                "streaming.ann_quantize",
                "int8 quantized serving requires ann_index".to_string(),
            ));
        }
        if !streaming.cold_start_boost.is_finite() || streaming.cold_start_boost <= 0.0 {
            return Err(UniNetError::invalid_config(
                "streaming.cold_start_boost",
                format!(
                    "the cold-start learning-rate boost must be finite and positive (got {})",
                    streaming.cold_start_boost
                ),
            ));
        }

        // One registry spans all three telemetry planes: the store registers
        // its publish/epoch/query instruments, the ingest pipeline its
        // queue/apply/maintenance ones, and the engine its training rounds.
        let registry = MetricsRegistry::new();

        // The serving store; with ANN enabled, every published snapshot gets
        // an HNSW index whose level RNG derives from the engine seed.
        let store = if streaming.ann_index {
            EmbeddingStore::with_ann(AnnConfig {
                m: streaming.ann_m,
                ef_construction: streaming.ann_ef_construction,
                ef_search: streaming.ann_ef_search,
                seed: config.walk.seed,
                quantize: streaming.ann_quantize,
                rerank: streaming.ann_rerank,
                incremental: streaming.ann_incremental,
                drift_threshold: streaming.ann_drift_threshold,
            })
        } else {
            EmbeddingStore::new()
        };
        let store = store.instrumented(StoreTelemetry::registered(&registry));
        // A recovered embedding matrix is served immediately, at the epoch
        // the snapshot recorded — readers observe the same epoch sequence
        // (and the same open-world universe) they would have seen had the
        // process never died.
        if let Some((embeddings, epoch)) = restored_embeddings {
            store.restore_with_universe(embeddings, epoch, live.clone());
        }

        let num_nodes = graph.num_nodes();
        Ok(Engine {
            inner: Arc::new(EngineInner {
                config,
                streaming,
                spec,
                num_nodes,
                store: Arc::new(store),
                ingest_metrics: IngestMetrics::registered(&registry),
                engine_metrics: EngineMetrics::registered(&registry),
                registry,
                persist,
                recovery,
                core: Mutex::new(CoreState::Idle(EngineCore { graph, live })),
            }),
        })
    }
}

/// The engine state a streaming session borrows exclusively.
struct EngineCore {
    graph: Graph,
    /// Open-world universe mask over the graph's rows (`None` = fully live),
    /// carried across sessions so retired ids stay retired.
    live: Option<Vec<bool>>,
}

/// Whereabouts of the engine's exclusive state.
enum CoreState {
    /// Available for `train`/`generate_walks`/`stream`.
    Idle(EngineCore),
    /// A streaming session owns the core on its background thread.
    Streaming,
    /// A streaming session panicked and the core was lost with it.
    Poisoned,
}

struct EngineInner {
    config: UniNetConfig,
    streaming: StreamingConfig,
    spec: ModelSpec,
    num_nodes: usize,
    store: Arc<EmbeddingStore>,
    /// Ingest-plane instrument handles, shared with streaming sessions.
    ingest_metrics: IngestMetrics,
    /// Training-round instrument handles.
    engine_metrics: EngineMetrics,
    /// The registry all three planes register into; snapshotted by
    /// [`Engine::metrics`].
    registry: MetricsRegistry,
    /// Durability options; `Some` makes every streaming session durable.
    persist: Option<PersistOptions>,
    /// What [`EngineBuilder::recover`] rebuilt, when the engine was born
    /// from a crash recovery.
    recovery: Option<RecoverySummary>,
    core: Mutex<CoreState>,
}

impl EngineInner {
    /// Acquires the core for an exclusive operation. The returned guard is
    /// held for the operation's duration — a panic in the operation unwinds
    /// with the core still in place, so the engine survives.
    fn lock_core(
        &self,
        operation: &'static str,
    ) -> Result<std::sync::MutexGuard<'_, CoreState>, UniNetError> {
        let guard = match self.core.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                return Err(UniNetError::EngineBusy { operation })
            }
            Err(std::sync::TryLockError::Poisoned(e)) => {
                // An exclusive operation panicked while holding the lock.
                // Batch operations only read the graph, so the state is
                // intact — recover it.
                self.core.clear_poison();
                e.into_inner()
            }
        };
        match &*guard {
            CoreState::Idle(_) => Ok(guard),
            CoreState::Streaming => Err(UniNetError::EngineBusy { operation }),
            CoreState::Poisoned => Err(UniNetError::EnginePoisoned { operation }),
        }
    }
}

/// Summary of one [`Engine::train`] run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Wall-clock breakdown (`Ti`, `Tw`, `Tl`).
    pub timing: PhaseTiming,
    /// Word2vec training statistics.
    pub train_stats: TrainStats,
    /// The generated walk corpus.
    pub corpus: WalkCorpus,
    /// The store epoch under which the learned embeddings were published.
    pub epoch: u64,
}

/// Everything produced by a completed streaming session.
#[derive(Debug)]
pub struct StreamOutcome {
    /// The pipeline outputs (final embeddings, refreshed corpus, timing).
    pub result: PipelineResult,
    /// Ingestion/maintenance/refresh accounting.
    pub report: StreamingReport,
    /// The store epoch after the final snapshot was published.
    pub epoch: u64,
}

/// A running streaming-ingestion session.
///
/// The session drives the ingest pipeline on a background thread; the engine
/// (and any clone of its [`EmbeddingStore`]) stays queryable the whole time.
/// Call [`StreamHandle::join`] to wait for completion and collect the
/// [`StreamOutcome`]; the engine's graph is updated to the post-stream
/// compacted graph and becomes available to `train`/`stream` again.
pub struct StreamHandle {
    thread: JoinHandle<(PipelineResult, StreamingReport, u64)>,
    store: Arc<EmbeddingStore>,
}

impl StreamHandle {
    /// The serving store the session publishes snapshots into — clone it
    /// into reader threads to query embeddings while ingestion runs.
    pub fn store(&self) -> Arc<EmbeddingStore> {
        Arc::clone(&self.store)
    }

    /// Whether the session thread has finished.
    pub fn is_finished(&self) -> bool {
        self.thread.is_finished()
    }

    /// Waits for the session to finish and returns its outcome.
    pub fn join(self) -> Result<StreamOutcome, UniNetError> {
        // The epoch comes from the session's own last publish, not from the
        // store, so a train() racing in right after the session cannot leak
        // its epoch into this outcome.
        let (result, report, epoch) = self
            .thread
            .join()
            .map_err(|_| UniNetError::StreamPanicked)?;
        Ok(StreamOutcome {
            result,
            report,
            epoch,
        })
    }
}

/// The long-lived UniNet engine: batch training, streaming ingestion and a
/// concurrent embedding query service behind one handle.
///
/// Constructed by [`EngineBuilder`] (see [`Engine::builder`]); cheap to
/// clone-share via its internal `Arc`s. See the [module docs](self) for a
/// quickstart.
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Clone for Engine {
    /// Clones the handle, not the state: both handles share the same graph,
    /// store and busy/idle state via the internal `Arc`.
    fn clone(&self) -> Self {
        Engine {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match self.inner.core.try_lock() {
            Ok(guard) => match &*guard {
                CoreState::Idle(_) => "idle",
                CoreState::Streaming => "streaming",
                CoreState::Poisoned => "poisoned",
            },
            Err(_) => "busy",
        };
        f.debug_struct("Engine")
            .field("model", &self.inner.spec.name())
            .field("num_nodes", &self.inner.num_nodes)
            .field("epoch", &self.inner.store.epoch())
            .field("state", &state)
            .finish()
    }
}

impl Engine {
    /// Starts a new [`EngineBuilder`].
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The active pipeline configuration.
    pub fn config(&self) -> &UniNetConfig {
        &self.inner.config
    }

    /// The active streaming configuration.
    pub fn streaming_config(&self) -> &StreamingConfig {
        &self.inner.streaming
    }

    /// The model spec the engine runs.
    pub fn spec(&self) -> &ModelSpec {
        &self.inner.spec
    }

    /// The durability options the engine was built with (`None` when the
    /// engine runs without a WAL).
    pub fn persist_options(&self) -> Option<&PersistOptions> {
        self.inner.persist.as_ref()
    }

    /// What [`EngineBuilder::recover`] rebuilt, when this engine was born
    /// from a crash recovery.
    pub fn recovery(&self) -> Option<&RecoverySummary> {
        self.inner.recovery.as_ref()
    }

    /// The persisted sampler identity (strategy + seed) snapshots record so
    /// recovery can rebuild chains deterministically.
    fn sampler_state(&self) -> SamplerState {
        SamplerState {
            kind: self.inner.config.walk.sampler,
            seed: self.inner.config.walk.seed,
        }
    }

    /// Number of nodes in the engine's graph.
    pub fn num_nodes(&self) -> usize {
        self.inner.num_nodes
    }

    /// The concurrent embedding query service. Snapshots are published by
    /// [`Engine::train`] and by streaming sessions; clones can be handed to
    /// reader threads and outlive the engine.
    pub fn store(&self) -> Arc<EmbeddingStore> {
        Arc::clone(&self.inner.store)
    }

    /// The registry every engine instrument is registered in. Useful for
    /// registering additional application-level instruments next to the
    /// engine's own, so one [`Engine::metrics`] snapshot covers both.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        self.inner.registry.clone()
    }

    /// A point-in-time snapshot of every instrument across the three planes
    /// (`ingest.*`, `engine.*`, `query.*`). Derived gauges (epoch age) are
    /// refreshed first; the snapshot itself never blocks recording threads.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.store.telemetry().refresh_epoch_age();
        self.inner.registry.snapshot()
    }

    /// The current embedding snapshot (epoch 0 and empty until the first
    /// train or stream completes a training pass).
    pub fn snapshot(&self) -> Arc<EmbeddingSnapshot> {
        self.inner.store.snapshot()
    }

    /// The embedding vector of `node` in the latest snapshot.
    pub fn vector(&self, node: u32) -> Option<Vec<f32>> {
        self.inner.store.vector(node)
    }

    /// Cosine similarity between two nodes in the latest snapshot.
    pub fn cosine(&self, a: u32, b: u32) -> Option<f32> {
        self.inner.store.cosine(a, b)
    }

    /// The `k` most similar nodes to `node` in the latest snapshot.
    ///
    /// Routes through the snapshot's HNSW index when the engine was built
    /// with [`EngineBuilder::ann_index`] (falling back to the exact scan
    /// otherwise); use [`Engine::top_k_mode`] to pick the path explicitly.
    pub fn top_k(&self, node: u32, k: usize) -> Vec<(u32, f32)> {
        self.inner.store.top_k_mode(node, k, QueryMode::Ann)
    }

    /// The `k` most similar nodes to `node`, selected via an explicit
    /// [`QueryMode`]: [`QueryMode::Exact`] always scans every vector,
    /// [`QueryMode::Ann`] uses the snapshot's HNSW index when one exists.
    pub fn top_k_mode(&self, node: u32, k: usize, mode: QueryMode) -> Vec<(u32, f32)> {
        self.inner.store.top_k_mode(node, k, mode)
    }

    /// Answers a slab of top-k queries with one snapshot acquisition: the
    /// read lock is taken once and every row is served from the same epoch.
    pub fn top_k_batch(&self, nodes: &[u32], k: usize, mode: QueryMode) -> Vec<Vec<(u32, f32)>> {
        self.inner.store.top_k_batch(nodes, k, mode)
    }

    /// Answers a slab of cosine queries with one snapshot acquisition.
    pub fn cosine_batch(&self, pairs: &[(u32, u32)]) -> Vec<Option<f32>> {
        self.inner.store.cosine_batch(pairs)
    }

    /// Runs walk generation only and returns the corpus plus (`Ti`, `Tw`).
    ///
    /// Fails with [`UniNetError::EngineBusy`] while a streaming session (or
    /// another exclusive operation) is active.
    pub fn generate_walks(&self) -> Result<(WalkCorpus, PhaseTiming), UniNetError> {
        let guard = self.inner.lock_core("generate walks")?;
        let CoreState::Idle(core) = &*guard else {
            unreachable!("lock_core only returns idle guards");
        };
        let model = self
            .inner
            .spec
            .instantiate(&core.graph)
            .expect("spec validated at build time");
        Ok(pipeline::generate_walks(
            &self.inner.config,
            &core.graph,
            model.as_ref(),
        ))
    }

    /// Runs the batch pipeline (walks + embedding learning) and publishes
    /// the learned embeddings to the engine's store.
    ///
    /// Fails with [`UniNetError::EngineBusy`] while a streaming session (or
    /// another exclusive operation) is active.
    pub fn train(&self) -> Result<TrainReport, UniNetError> {
        let guard = self.inner.lock_core("train")?;
        let CoreState::Idle(core) = &*guard else {
            unreachable!("lock_core only returns idle guards");
        };
        let model = self
            .inner
            .spec
            .instantiate(&core.graph)
            .expect("spec validated at build time");
        let result = pipeline::run_batch(&self.inner.config, &core.graph, model.as_ref());
        self.inner.engine_metrics.record_round(&result.timing);
        // Publish before releasing the core, so a stream() racing in right
        // after us cannot have its fresher snapshots overwritten by these.
        let durable_copy = self
            .inner
            .persist
            .as_ref()
            .map(|_| result.embeddings.clone());
        let epoch = self
            .inner
            .store
            .publish_with_universe(result.embeddings, core.live.clone());
        // Batch training replaces the whole matrix, so a durable engine cuts
        // a snapshot right after publishing — a crash between trainings then
        // recovers to exactly what readers were being served.
        if let (Some(opts), Some(embeddings)) = (self.inner.persist.as_ref(), durable_copy) {
            match SessionPersist::begin(opts, self.inner.streaming.symmetric, self.sampler_state())
            {
                Ok(mut p) => {
                    p.write_state(core.graph.clone(), Some(embeddings), epoch, core.live.clone())
                }
                Err(e) => eprintln!("warning: post-train durability snapshot failed: {e}"),
            }
        }
        drop(guard);
        Ok(TrainReport {
            timing: result.timing,
            train_stats: result.train_stats,
            corpus: result.corpus,
            epoch,
        })
    }

    /// Spawns the streaming-ingestion session over `mutations` on a
    /// background thread and returns its [`StreamHandle`].
    ///
    /// The engine stays queryable while the session runs: reads are served
    /// from the latest published snapshot (with
    /// [`StreamingConfig::incremental_train`](crate::StreamingConfig) each
    /// refresh round publishes one; otherwise the final embeddings are
    /// published at end-of-stream). A second `stream` or a `train` during the
    /// session fails with [`UniNetError::EngineBusy`].
    pub fn stream(&self, mutations: Vec<GraphMutation>) -> Result<StreamHandle, UniNetError> {
        // Closed-world engines reject node ops up front with a typed error,
        // instead of silently skipping them or mutating the universe behind
        // the caller's back.
        if !self.inner.streaming.allow_churn {
            if let Some(pos) = mutations.iter().position(|m| m.is_node_op()) {
                return Err(UniNetError::invalid_config(
                    "streaming.allow_churn",
                    format!(
                        "mutation #{pos} ({:?}) is an open-world node op but churn is \
                         disabled; enable allow_churn to stream arrivals/retirements",
                        mutations[pos]
                    ),
                ));
            }
        }
        // Open the WAL before taking the core: a durable session that cannot
        // log must fail synchronously, with the engine still idle.
        let persist = match self.inner.persist.as_ref() {
            Some(opts) => Some(
                SessionPersist::begin(opts, self.inner.streaming.symmetric, self.sampler_state())
                    .map_err(UniNetError::Persist)?,
            ),
            None => None,
        };
        let mut guard = self.inner.lock_core("stream")?;
        let CoreState::Idle(core) = std::mem::replace(&mut *guard, CoreState::Streaming) else {
            unreachable!("lock_core only returns idle guards");
        };
        drop(guard);
        let inner = Arc::clone(&self.inner);
        let thread = std::thread::spawn(move || {
            // The session owns the graph, so a panic would otherwise lose the
            // core forever while the state still claims a session is active.
            // Catch the unwind, mark the engine poisoned (later exclusive
            // calls get `EnginePoisoned` instead of a misleading busy error),
            // and re-raise so `join` reports `StreamPanicked`.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_streaming_session(
                    &inner.config,
                    &inner.streaming,
                    &inner.spec,
                    core.graph,
                    core.live,
                    &mutations,
                    Some(&inner.store),
                    persist,
                    &inner.ingest_metrics,
                    &inner.engine_metrics,
                )
            }));
            let mut state = inner.core.lock().expect("engine core lock poisoned");
            match outcome {
                Ok((result, report, final_graph, final_live, epoch)) => {
                    *state = CoreState::Idle(EngineCore {
                        graph: final_graph,
                        live: final_live,
                    });
                    drop(state);
                    (result, report, epoch)
                }
                Err(payload) => {
                    *state = CoreState::Poisoned;
                    drop(state);
                    std::panic::resume_unwind(payload)
                }
            }
        });
        Ok(StreamHandle {
            thread,
            store: Arc::clone(&self.inner.store),
        })
    }

    /// Convenience wrapper: run a full streaming session synchronously.
    pub fn stream_blocking(
        &self,
        mutations: Vec<GraphMutation>,
    ) -> Result<StreamOutcome, UniNetError> {
        self.stream(mutations)?.join()
    }
}
