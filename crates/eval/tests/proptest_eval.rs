//! Property-based tests of the evaluation layer: F1 bounds, split invariants,
//! and logistic-regression sanity over arbitrary inputs.

use proptest::prelude::*;

use uninet_eval::metrics::f1_scores;
use uninet_eval::split::train_test_split;
use uninet_eval::LogisticRegression;

fn label_sets(num_samples: usize, num_labels: u32) -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(
        prop::collection::btree_set(0u32..num_labels, 1..(num_labels as usize).min(4)),
        num_samples..=num_samples,
    )
    .prop_map(|sets| sets.into_iter().map(|s| s.into_iter().collect()).collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn f1_is_bounded_and_perfect_on_identical_labels(truth in label_sets(20, 6)) {
        let s = f1_scores(&truth, &truth, 6);
        prop_assert!((s.micro - 1.0).abs() < 1e-9);
        prop_assert!((s.macro_ - 1.0).abs() < 1e-9);
    }

    #[test]
    fn f1_of_arbitrary_predictions_is_in_unit_interval(
        truth in label_sets(15, 5),
        pred in label_sets(15, 5),
    ) {
        let s = f1_scores(&truth, &pred, 5);
        prop_assert!((0.0..=1.0).contains(&s.micro));
        prop_assert!((0.0..=1.0).contains(&s.macro_));
    }

    #[test]
    fn split_partitions_the_node_set(n in 2usize..500, frac in 0.0f64..1.0, seed in 0u64..1000) {
        let (train, test) = train_test_split(n, frac, seed);
        prop_assert_eq!(train.len() + test.len(), n);
        prop_assert!(!train.is_empty());
        prop_assert!(!test.is_empty());
        let mut all: Vec<u32> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), n);
    }

    #[test]
    fn logistic_regression_probabilities_are_valid(
        points in prop::collection::vec((-5.0f32..5.0, -5.0f32..5.0), 10..60),
        seed_bias in -1.0f32..1.0,
    ) {
        let xs: Vec<Vec<f32>> = points.iter().map(|&(a, b)| vec![a, b]).collect();
        let ys: Vec<bool> = points.iter().map(|&(a, b)| a + b + seed_bias > 0.0).collect();
        prop_assume!(ys.iter().any(|&y| y) && ys.iter().any(|&y| !y));
        let refs: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
        let mut model = LogisticRegression::new(2, 0.3, 1e-4, 100);
        let loss = model.fit(&refs, &ys);
        prop_assert!(loss.is_finite() && loss >= 0.0);
        for x in &refs {
            let p = model.predict_proba(x);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }
}
