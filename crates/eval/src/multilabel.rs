//! One-vs-rest multi-label node classification — the protocol of the paper's
//! Figure-5 accuracy evaluation (and of the original DeepWalk/node2vec papers).
//!
//! One logistic regression is trained per label on the training nodes'
//! embeddings; at prediction time, each test node is assigned its top-k labels
//! by predicted probability, where k is the number of ground-truth labels of
//! that node (the standard evaluation trick that sidesteps threshold tuning).

use crate::logistic::LogisticRegression;
use crate::metrics::{f1_scores, F1Score};

/// Result of one classification run.
#[derive(Debug, Clone, Copy)]
pub struct ClassificationReport {
    /// Micro / macro F1 on the test nodes.
    pub f1: F1Score,
    /// Number of training nodes used.
    pub num_train: usize,
    /// Number of test nodes evaluated.
    pub num_test: usize,
}

/// A one-vs-rest multi-label classifier over dense node features.
#[derive(Debug, Clone)]
pub struct OneVsRestClassifier {
    models: Vec<LogisticRegression>,
    num_labels: usize,
}

impl OneVsRestClassifier {
    /// Trains one binary classifier per label.
    ///
    /// * `features[i]` — the feature (embedding) vector of training node `i`,
    /// * `labels[i]` — its ground-truth label set,
    /// * `num_labels` — total number of labels.
    pub fn fit(features: &[&[f32]], labels: &[&[u32]], num_labels: usize) -> Self {
        assert_eq!(features.len(), labels.len());
        assert!(num_labels > 0);
        let dim = features.first().map(|f| f.len()).unwrap_or(1);
        let mut models = Vec::with_capacity(num_labels);
        for label in 0..num_labels as u32 {
            let mut model = LogisticRegression::with_defaults(dim);
            let targets: Vec<bool> = labels.iter().map(|ls| ls.contains(&label)).collect();
            model.fit(features, &targets);
            models.push(model);
        }
        OneVsRestClassifier { models, num_labels }
    }

    /// Number of labels the classifier was trained for.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Predicted probability of `label` for a feature vector.
    pub fn predict_proba(&self, features: &[f32], label: u32) -> f32 {
        self.models[label as usize].predict_proba(features)
    }

    /// Predicts the top-`k` labels for one node.
    pub fn predict_top_k(&self, features: &[f32], k: usize) -> Vec<u32> {
        let mut scored: Vec<(u32, f32)> = (0..self.num_labels as u32)
            .map(|l| (l, self.models[l as usize].predict_proba(features)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k.max(1));
        scored.into_iter().map(|(l, _)| l).collect()
    }

    /// Evaluates the classifier on test nodes using the "predict as many
    /// labels as the ground truth has" protocol and returns micro/macro F1.
    pub fn evaluate(&self, features: &[&[f32]], labels: &[&[u32]]) -> F1Score {
        assert_eq!(features.len(), labels.len());
        let truth: Vec<Vec<u32>> = labels.iter().map(|l| l.to_vec()).collect();
        let predicted: Vec<Vec<u32>> = features
            .iter()
            .zip(labels)
            .map(|(f, l)| self.predict_top_k(f, l.len()))
            .collect();
        f1_scores(&truth, &predicted, self.num_labels)
    }
}

/// End-to-end helper: split the labeled nodes, train on the train fraction and
/// report F1 on the rest. `features[v]` and `labels[v]` are indexed by node id.
pub fn classify_with_fraction(
    features: &[Vec<f32>],
    labels: &[Vec<u32>],
    num_labels: usize,
    train_fraction: f64,
    seed: u64,
) -> ClassificationReport {
    assert_eq!(features.len(), labels.len());
    let (train_idx, test_idx) =
        crate::split::train_test_split(features.len(), train_fraction, seed);
    let train_x: Vec<&[f32]> = train_idx
        .iter()
        .map(|&i| features[i as usize].as_slice())
        .collect();
    let train_y: Vec<&[u32]> = train_idx
        .iter()
        .map(|&i| labels[i as usize].as_slice())
        .collect();
    let test_x: Vec<&[f32]> = test_idx
        .iter()
        .map(|&i| features[i as usize].as_slice())
        .collect();
    let test_y: Vec<&[u32]> = test_idx
        .iter()
        .map(|&i| labels[i as usize].as_slice())
        .collect();
    let clf = OneVsRestClassifier::fit(&train_x, &train_y, num_labels);
    ClassificationReport {
        f1: clf.evaluate(&test_x, &test_y),
        num_train: train_idx.len(),
        num_test: test_idx.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Synthetic separable data: label = quadrant of a 2-D point, plus a
    /// second label shared by the upper half-plane.
    fn synthetic(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<Vec<u32>>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f32 = rng.gen_range(-1.0..1.0);
            let b: f32 = rng.gen_range(-1.0..1.0);
            let quadrant = match (a >= 0.0, b >= 0.0) {
                (true, true) => 0u32,
                (false, true) => 1,
                (false, false) => 2,
                (true, false) => 3,
            };
            let mut labels = vec![quadrant];
            if b >= 0.0 {
                labels.push(4);
            }
            xs.push(vec![a, b, a * b]);
            ys.push(labels);
        }
        (xs, ys)
    }

    #[test]
    fn learns_separable_multilabel_data() {
        let (xs, ys) = synthetic(400, 1);
        let report = classify_with_fraction(&xs, &ys, 5, 0.5, 3);
        assert!(report.f1.micro > 0.8, "micro = {}", report.f1.micro);
        assert!(report.f1.macro_ > 0.7, "macro = {}", report.f1.macro_);
        assert_eq!(report.num_train + report.num_test, 400);
    }

    #[test]
    fn more_training_data_does_not_hurt() {
        let (xs, ys) = synthetic(500, 2);
        let low = classify_with_fraction(&xs, &ys, 5, 0.1, 7);
        let high = classify_with_fraction(&xs, &ys, 5, 0.9, 7);
        assert!(high.f1.micro >= low.f1.micro - 0.05);
    }

    #[test]
    fn top_k_prediction_size() {
        let (xs, ys) = synthetic(200, 3);
        let refs_x: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
        let refs_y: Vec<&[u32]> = ys.iter().map(|v| v.as_slice()).collect();
        let clf = OneVsRestClassifier::fit(&refs_x, &refs_y, 5);
        assert_eq!(clf.num_labels(), 5);
        assert_eq!(clf.predict_top_k(&xs[0], 2).len(), 2);
        assert_eq!(clf.predict_top_k(&xs[0], 0).len(), 1);
        let p = clf.predict_proba(&xs[0], 0);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn random_features_give_poor_f1() {
        let mut rng = SmallRng::seed_from_u64(4);
        let xs: Vec<Vec<f32>> = (0..300)
            .map(|_| (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let ys: Vec<Vec<u32>> = (0..300).map(|_| vec![rng.gen_range(0..5u32)]).collect();
        let report = classify_with_fraction(&xs, &ys, 5, 0.5, 5);
        assert!(report.f1.micro < 0.45, "micro = {}", report.f1.micro);
    }
}
