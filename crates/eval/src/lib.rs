//! # uninet-eval
//!
//! Downstream evaluation of node embeddings, reproducing the accuracy
//! experiments of the UniNet paper (Figure 5):
//!
//! * [`logistic::LogisticRegression`] — binary logistic regression trained
//!   with mini-batch gradient descent,
//! * [`multilabel::OneVsRestClassifier`] — the standard one-vs-rest
//!   multi-label node classification protocol used by DeepWalk/node2vec
//!   evaluations,
//! * [`metrics`] — micro/macro F1 scores,
//! * [`split`] — train-fraction splits over labeled nodes,
//! * [`linkpred`] — link prediction via embedding similarity (extension).

pub mod linkpred;
pub mod logistic;
pub mod metrics;
pub mod multilabel;
pub mod split;

pub use linkpred::{link_prediction_auc, LinkPredictionConfig};
pub use logistic::LogisticRegression;
pub use metrics::{confusion_counts, f1_scores, F1Score};
pub use multilabel::{ClassificationReport, OneVsRestClassifier};
pub use split::train_test_split;
