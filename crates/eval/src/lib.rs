//! # uninet-eval
//!
//! Downstream evaluation of node embeddings, reproducing the accuracy
//! experiments of the UniNet paper (Figure 5):
//!
//! * [`logistic::LogisticRegression`] — binary logistic regression trained
//!   with mini-batch gradient descent,
//! * [`multilabel::OneVsRestClassifier`] — the standard one-vs-rest
//!   multi-label node classification protocol used by DeepWalk/node2vec
//!   evaluations,
//! * [`metrics`] — micro/macro F1 scores,
//! * [`split`] — train-fraction splits over labeled nodes,
//! * [`linkpred`] — link prediction via embedding similarity (extension).
//!
//! The crate is deliberately independent of the rest of the workspace (it
//! sees embeddings only through closures and plain slices), so any vector
//! representation can be evaluated with it.
//!
//! ```
//! use uninet_eval::{f1_scores, train_test_split};
//!
//! let truth = vec![vec![0], vec![1], vec![0, 1]];
//! let predicted = vec![vec![0], vec![1], vec![0]];
//! let f1 = f1_scores(&truth, &predicted, 2);
//! assert!(f1.micro > 0.5 && f1.micro <= 1.0);
//!
//! let (train, test) = train_test_split(10, 0.7, 42);
//! assert_eq!(train.len() + test.len(), 10);
//! ```

pub mod linkpred;
pub mod logistic;
pub mod metrics;
pub mod multilabel;
pub mod split;

pub use linkpred::{link_prediction_auc, LinkPredictionConfig};
pub use logistic::LogisticRegression;
pub use metrics::{confusion_counts, f1_scores, F1Score};
pub use multilabel::{ClassificationReport, OneVsRestClassifier};
pub use split::train_test_split;
