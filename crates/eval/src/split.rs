//! Train/test splits over labeled nodes at a given train fraction — the
//! x-axis of Figure 5 ("Train Label Fraction").

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Splits node indices `0..num_nodes` into (train, test) sets where the train
/// set contains `train_fraction` of the nodes (at least one in each set when
/// possible). The split is deterministic for a given seed.
pub fn train_test_split(num_nodes: usize, train_fraction: f64, seed: u64) -> (Vec<u32>, Vec<u32>) {
    assert!(
        (0.0..=1.0).contains(&train_fraction),
        "train fraction must be in [0, 1], got {train_fraction}"
    );
    let mut indices: Vec<u32> = (0..num_nodes as u32).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..indices.len()).rev() {
        let j = rng.gen_range(0..=i);
        indices.swap(i, j);
    }
    let mut n_train = (num_nodes as f64 * train_fraction).round() as usize;
    if num_nodes >= 2 {
        n_train = n_train.clamp(1, num_nodes - 1);
    } else {
        n_train = n_train.min(num_nodes);
    }
    let test = indices.split_off(n_train);
    (indices, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_are_respected() {
        let (train, test) = train_test_split(100, 0.3, 1);
        assert_eq!(train.len(), 30);
        assert_eq!(test.len(), 70);
    }

    #[test]
    fn no_overlap_and_full_coverage() {
        let (train, test) = train_test_split(50, 0.5, 2);
        let mut all: Vec<u32> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        let expected: Vec<u32> = (0..50).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn extreme_fractions_keep_both_sides_nonempty() {
        let (train, test) = train_test_split(10, 0.0, 3);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 9);
        let (train, test) = train_test_split(10, 1.0, 3);
        assert_eq!(train.len(), 9);
        assert_eq!(test.len(), 1);
    }

    #[test]
    fn deterministic_for_seed() {
        assert_eq!(train_test_split(30, 0.4, 7), train_test_split(30, 0.4, 7));
        assert_ne!(
            train_test_split(30, 0.4, 7).0,
            train_test_split(30, 0.4, 8).0
        );
    }

    #[test]
    #[should_panic]
    fn invalid_fraction_panics() {
        let _ = train_test_split(10, 1.5, 0);
    }
}
