//! Link prediction via embedding similarity (AUC), an extension evaluation
//! beyond the paper's node classification study: positive test pairs are
//! existing edges, negatives are random non-edges, and the score of a pair is
//! the cosine similarity (or dot product) of the endpoint embeddings.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of the link-prediction evaluation.
#[derive(Debug, Clone, Copy)]
pub struct LinkPredictionConfig {
    /// Number of positive (and negative) pairs to sample.
    pub num_pairs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LinkPredictionConfig {
    fn default() -> Self {
        LinkPredictionConfig {
            num_pairs: 1000,
            seed: 42,
        }
    }
}

/// Computes the AUC of distinguishing existing edges from random non-edges by
/// embedding dot-product score.
///
/// * `num_nodes` — number of nodes,
/// * `has_edge(u, v)` — adjacency oracle,
/// * `edges` — a list of (u, v) positive pairs to sample from,
/// * `score(u, v)` — similarity score (higher = more likely an edge).
pub fn link_prediction_auc<F, S>(
    num_nodes: usize,
    edges: &[(u32, u32)],
    has_edge: F,
    score: S,
    cfg: &LinkPredictionConfig,
) -> f64
where
    F: Fn(u32, u32) -> bool,
    S: Fn(u32, u32) -> f64,
{
    assert!(num_nodes >= 2, "need at least two nodes");
    assert!(!edges.is_empty(), "need at least one positive edge");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = cfg.num_pairs.max(1);

    let mut positive_scores = Vec::with_capacity(n);
    for _ in 0..n {
        let (u, v) = edges[rng.gen_range(0..edges.len())];
        positive_scores.push(score(u, v));
    }
    let mut negative_scores = Vec::with_capacity(n);
    let mut guard = 0;
    while negative_scores.len() < n && guard < 100 * n {
        guard += 1;
        let u = rng.gen_range(0..num_nodes as u32);
        let v = rng.gen_range(0..num_nodes as u32);
        if u != v && !has_edge(u, v) {
            negative_scores.push(score(u, v));
        }
    }
    if negative_scores.is_empty() {
        return 0.5;
    }

    // AUC = P(score(pos) > score(neg)) with ties counting 1/2.
    let mut wins = 0.0f64;
    for &p in &positive_scores {
        for &q in &negative_scores {
            if p > q {
                wins += 1.0;
            } else if (p - q).abs() < 1e-12 {
                wins += 0.5;
            }
        }
    }
    wins / (positive_scores.len() as f64 * negative_scores.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two cliques {0..4} and {5..9}; embeddings = one-hot cluster indicator.
    #[allow(clippy::type_complexity)]
    fn clique_setup() -> (
        Vec<(u32, u32)>,
        impl Fn(u32, u32) -> bool,
        impl Fn(u32, u32) -> f64,
    ) {
        let mut edges = Vec::new();
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    edges.push((base + i, base + j));
                }
            }
        }
        let has_edge = |u: u32, v: u32| (u < 5) == (v < 5) && u != v;
        let score = |u: u32, v: u32| if (u < 5) == (v < 5) { 1.0 } else { 0.0 };
        (edges, has_edge, score)
    }

    #[test]
    fn perfect_scores_give_auc_one() {
        let (edges, has_edge, score) = clique_setup();
        let auc = link_prediction_auc(
            10,
            &edges,
            has_edge,
            score,
            &LinkPredictionConfig::default(),
        );
        assert!(auc > 0.99, "auc = {auc}");
    }

    #[test]
    fn random_scores_give_auc_half() {
        let (edges, has_edge, _) = clique_setup();
        // Score is a deterministic pseudo-random hash of (u, v): uninformative.
        let score =
            |u: u32, v: u32| ((u.wrapping_mul(2654435761).wrapping_add(v * 40503)) % 1000) as f64;
        let cfg = LinkPredictionConfig {
            num_pairs: 2000,
            seed: 9,
        };
        let auc = link_prediction_auc(10, &edges, has_edge, score, &cfg);
        assert!((auc - 0.5).abs() < 0.1, "auc = {auc}");
    }

    #[test]
    fn inverted_scores_give_auc_zero() {
        let (edges, has_edge, _) = clique_setup();
        let score = |u: u32, v: u32| if (u < 5) == (v < 5) { 0.0 } else { 1.0 };
        let auc = link_prediction_auc(
            10,
            &edges,
            has_edge,
            score,
            &LinkPredictionConfig::default(),
        );
        assert!(auc < 0.01, "auc = {auc}");
    }

    #[test]
    #[should_panic]
    fn empty_edges_panic() {
        let _ = link_prediction_auc(
            10,
            &[],
            |_, _| false,
            |_, _| 0.0,
            &LinkPredictionConfig::default(),
        );
    }
}
