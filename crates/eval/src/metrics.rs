//! Micro- and macro-averaged F1 scores for multi-label classification,
//! the metrics reported in Figure 5 of the paper.

/// Micro and macro F1 of a multi-label prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F1Score {
    /// Micro-averaged F1 (global counts).
    pub micro: f64,
    /// Macro-averaged F1 (mean of per-label F1).
    pub macro_: f64,
}

/// Per-label confusion counts: (true positives, false positives, false negatives).
pub fn confusion_counts(
    truth: &[Vec<u32>],
    predicted: &[Vec<u32>],
    num_labels: usize,
) -> Vec<(u64, u64, u64)> {
    assert_eq!(truth.len(), predicted.len(), "prediction count mismatch");
    let mut counts = vec![(0u64, 0u64, 0u64); num_labels];
    for (t, p) in truth.iter().zip(predicted) {
        for &label in p {
            if t.contains(&label) {
                counts[label as usize].0 += 1;
            } else {
                counts[label as usize].1 += 1;
            }
        }
        for &label in t {
            if !p.contains(&label) {
                counts[label as usize].2 += 1;
            }
        }
    }
    counts
}

/// Computes micro and macro F1 from ground-truth and predicted label sets.
pub fn f1_scores(truth: &[Vec<u32>], predicted: &[Vec<u32>], num_labels: usize) -> F1Score {
    let counts = confusion_counts(truth, predicted, num_labels);
    let (mut tp, mut fp, mut fne) = (0u64, 0u64, 0u64);
    let mut macro_sum = 0.0;
    let mut macro_n = 0usize;
    for &(t, f, n) in &counts {
        tp += t;
        fp += f;
        fne += n;
        if t + f + n > 0 {
            macro_sum += f1(t, f, n);
            macro_n += 1;
        }
    }
    F1Score {
        micro: f1(tp, fp, fne),
        macro_: if macro_n == 0 {
            0.0
        } else {
            macro_sum / macro_n as f64
        },
    }
}

fn f1(tp: u64, fp: u64, fne: u64) -> f64 {
    if tp == 0 {
        return 0.0;
    }
    let precision = tp as f64 / (tp + fp) as f64;
    let recall = tp as f64 / (tp + fne) as f64;
    2.0 * precision * recall / (precision + recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_one() {
        let truth = vec![vec![0], vec![1], vec![0, 1]];
        let s = f1_scores(&truth, &truth, 2);
        assert!((s.micro - 1.0).abs() < 1e-12);
        assert!((s.macro_ - 1.0).abs() < 1e-12);
    }

    #[test]
    fn completely_wrong_prediction_scores_zero() {
        let truth = vec![vec![0], vec![0]];
        let pred = vec![vec![1], vec![1]];
        let s = f1_scores(&truth, &pred, 2);
        assert_eq!(s.micro, 0.0);
        assert_eq!(s.macro_, 0.0);
    }

    #[test]
    fn hand_computed_case() {
        // Label 0: tp=1 (sample0), fn=1 (sample1), fp=0 → F1 = 2/3
        // Label 1: tp=1 (sample1), fp=1 (sample0), fn=0 → F1 = 2/3
        let truth = vec![vec![0], vec![0, 1]];
        let pred = vec![vec![0, 1], vec![1]];
        let counts = confusion_counts(&truth, &pred, 2);
        assert_eq!(counts[0], (1, 0, 1));
        assert_eq!(counts[1], (1, 1, 0));
        let s = f1_scores(&truth, &pred, 2);
        assert!((s.macro_ - 2.0 / 3.0).abs() < 1e-9);
        // micro: tp=2, fp=1, fn=1 → precision 2/3, recall 2/3.
        assert!((s.micro - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn micro_weights_frequent_labels_more() {
        // Label 0 has many correct predictions, label 1 is always wrong.
        let truth = vec![vec![0]; 9]
            .into_iter()
            .chain([vec![1]])
            .collect::<Vec<_>>();
        let mut pred = vec![vec![0]; 9];
        pred.push(vec![0]);
        let s = f1_scores(&truth, &pred, 2);
        assert!(s.micro > s.macro_);
    }

    #[test]
    fn unused_labels_are_ignored_in_macro() {
        let truth = vec![vec![0], vec![0]];
        let pred = vec![vec![0], vec![0]];
        // num_labels = 5, labels 1..4 never appear → macro over label 0 only.
        let s = f1_scores(&truth, &pred, 5);
        assert!((s.macro_ - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let _ = f1_scores(&[vec![0]], &[], 1);
    }
}
