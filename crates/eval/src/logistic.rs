//! Binary logistic regression with L2 regularization, trained by full-batch
//! gradient descent. Used as the per-label base learner of the one-vs-rest
//! multi-label classifier.

/// A binary logistic regression model over dense feature vectors.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f32>,
    bias: f32,
    learning_rate: f32,
    l2: f32,
    epochs: usize,
}

impl LogisticRegression {
    /// Creates an untrained model for `dim`-dimensional inputs.
    pub fn new(dim: usize, learning_rate: f32, l2: f32, epochs: usize) -> Self {
        assert!(dim > 0 && epochs > 0 && learning_rate > 0.0);
        LogisticRegression {
            weights: vec![0.0; dim],
            bias: 0.0,
            learning_rate,
            l2,
            epochs,
        }
    }

    /// Creates a model with the defaults used in the Figure-5 reproduction.
    pub fn with_defaults(dim: usize) -> Self {
        Self::new(dim, 0.1, 1e-4, 200)
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// The predicted probability of the positive class for `x`.
    pub fn predict_proba(&self, x: &[f32]) -> f32 {
        let z = self.decision(x);
        1.0 / (1.0 + (-z).exp())
    }

    /// The raw decision value `w·x + b`.
    pub fn decision(&self, x: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), self.weights.len());
        let mut z = self.bias;
        for (w, xi) in self.weights.iter().zip(x) {
            z += w * xi;
        }
        z
    }

    /// Hard prediction at a 0.5 threshold.
    pub fn predict(&self, x: &[f32]) -> bool {
        self.decision(x) >= 0.0
    }

    /// Trains the model on `(features, labels)` pairs; `labels[i]` is `true`
    /// for the positive class. Returns the final mean log-loss.
    pub fn fit(&mut self, features: &[&[f32]], labels: &[bool]) -> f32 {
        assert_eq!(features.len(), labels.len());
        if features.is_empty() {
            return 0.0;
        }
        let n = features.len() as f32;
        let dim = self.weights.len();
        let mut final_loss = 0.0;
        for _ in 0..self.epochs {
            let mut grad_w = vec![0.0f32; dim];
            let mut grad_b = 0.0f32;
            let mut loss = 0.0f32;
            for (x, &y) in features.iter().zip(labels) {
                let p = self.predict_proba(x);
                let y_f = if y { 1.0 } else { 0.0 };
                let err = p - y_f;
                for (g, xi) in grad_w.iter_mut().zip(*x) {
                    *g += err * xi;
                }
                grad_b += err;
                loss += -(y_f * p.max(1e-7).ln() + (1.0 - y_f) * (1.0 - p).max(1e-7).ln());
            }
            for (w, g) in self.weights.iter_mut().zip(&grad_w) {
                *w -= self.learning_rate * (g / n + self.l2 * *w);
            }
            self.bias -= self.learning_rate * grad_b / n;
            final_loss = loss / n;
        }
        final_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable toy data: positive iff x0 > x1.
    fn toy_data() -> (Vec<Vec<f32>>, Vec<bool>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40 {
            let a = (i % 10) as f32 / 10.0;
            let b = (i / 10) as f32 / 4.0;
            xs.push(vec![a, b]);
            ys.push(a > b);
        }
        (xs, ys)
    }

    #[test]
    fn learns_separable_data() {
        let (xs, ys) = toy_data();
        let refs: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
        let mut model = LogisticRegression::new(2, 0.5, 0.0, 500);
        let loss = model.fit(&refs, &ys);
        assert!(loss < 0.4, "loss = {loss}");
        let correct = refs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| model.predict(x) == y)
            .count();
        assert!(correct as f64 / ys.len() as f64 > 0.9);
    }

    #[test]
    fn proba_is_bounded_and_monotone_in_decision() {
        let (xs, ys) = toy_data();
        let refs: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
        let mut model = LogisticRegression::with_defaults(2);
        model.fit(&refs, &ys);
        for x in &refs {
            let p = model.predict_proba(x);
            assert!((0.0..=1.0).contains(&p));
            assert_eq!(model.predict(x), p >= 0.5);
        }
    }

    #[test]
    fn empty_training_set_is_noop() {
        let mut model = LogisticRegression::with_defaults(3);
        let loss = model.fit(&[], &[]);
        assert_eq!(loss, 0.0);
        assert_eq!(model.weights(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn l2_shrinks_weights() {
        let (xs, ys) = toy_data();
        let refs: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
        let mut free = LogisticRegression::new(2, 0.5, 0.0, 300);
        let mut reg = LogisticRegression::new(2, 0.5, 0.5, 300);
        free.fit(&refs, &ys);
        reg.fit(&refs, &ys);
        let norm = |w: &[f32]| w.iter().map(|x| x * x).sum::<f32>();
        assert!(norm(reg.weights()) < norm(free.weights()));
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut model = LogisticRegression::with_defaults(2);
        let x = vec![1.0f32, 2.0];
        let _ = model.fit(&[x.as_slice()], &[true, false]);
    }
}
