//! End-to-end serving-plane tests: real sockets, concurrent clients,
//! epochs advancing underneath them, and admission control under a tiny
//! bound.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use uninet_core::{Engine, GraphMutation, ModelSpec, QueryMode};
use uninet_graph::generators::{rmat, RmatConfig};
use uninet_server::{serve, Client, ClientError, ErrorCode, ServeAddr, ServerConfig};

fn test_engine() -> Engine {
    let graph = rmat(&RmatConfig {
        num_nodes: 150,
        num_edges: 1000,
        weighted: true,
        seed: 7,
        ..Default::default()
    });
    let engine = Engine::builder()
        .graph(graph)
        .model(ModelSpec::DeepWalk)
        .num_walks(1)
        .walk_length(8)
        .dim(16)
        .threads(2)
        .seed(7)
        .build()
        .expect("valid configuration");
    engine.train().expect("initial training");
    engine
}

#[test]
fn concurrent_clients_observe_monotone_epochs_while_training_publishes() {
    let engine = test_engine();
    let server = serve(
        &engine,
        &ServeAddr::parse("127.0.0.1:0"),
        ServerConfig::default(),
    )
    .expect("bind");
    let addr = server.addr().to_string();

    let max_seen = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let addr = addr.clone();
            let max_seen = Arc::clone(&max_seen);
            thread::spawn(move || {
                let mut client = Client::connect(addr.as_str()).expect("connect");
                let mut last_epoch = 0u64;
                for i in 0..30u32 {
                    let node = (c * 31 + i) % 150;
                    let (epoch, neighbors) =
                        client.top_k(node, 5, QueryMode::Exact).expect("top_k");
                    assert!(
                        epoch >= last_epoch,
                        "epochs must be monotone per client: {epoch} < {last_epoch}"
                    );
                    assert!(neighbors.len() <= 5);
                    for &(n, _) in &neighbors {
                        assert_ne!(n, node, "a node is not its own neighbor");
                    }
                    last_epoch = epoch;
                    let (vec_epoch, vector) = client.vector(node).expect("vector");
                    assert!(vec_epoch >= last_epoch);
                    assert_eq!(vector.expect("known node").len(), 16);
                }
                max_seen.fetch_max(last_epoch, Ordering::Relaxed);
            })
        })
        .collect();

    // Publish fresh epochs while the clients hammer the data plane; every
    // answer must come from some complete epoch, never a torn one.
    let epoch_before = engine.store().epoch();
    for _ in 0..2 {
        engine.train().expect("republish");
    }
    for c in clients {
        c.join().expect("client thread");
    }
    assert_eq!(engine.store().epoch(), epoch_before + 2);

    server.shutdown();

    // The serving plane surfaces in the engine's own telemetry.
    let metrics = engine.metrics();
    let top_k = metrics.histogram("server.top_k_ns").expect("histogram");
    assert!(top_k.count() >= 4 * 30, "per-endpoint latency recorded");
    assert!(metrics.counter("server.requests").unwrap_or(0) >= 4 * 60);
    assert!(
        metrics.counter("server.coalesced_queries").unwrap_or(0) >= 4 * 30,
        "every top_k rides a coalesced slab"
    );
    assert!(metrics.counter("server.coalesced_slabs").unwrap_or(0) > 0);
}

#[test]
fn quantized_serving_is_wire_transparent() {
    // A quantized+incremental ANN engine must look identical on the wire:
    // same protocol frames, same f32 score encoding, exact cosine scores.
    let graph = rmat(&RmatConfig {
        num_nodes: 150,
        num_edges: 1000,
        weighted: true,
        seed: 7,
        ..Default::default()
    });
    let engine = Engine::builder()
        .graph(graph)
        .model(ModelSpec::DeepWalk)
        .num_walks(1)
        .walk_length(8)
        .dim(16)
        .threads(2)
        .seed(7)
        .ann_index(true)
        .ann_quantize(true)
        .build()
        .expect("valid configuration");
    engine.train().expect("initial training");
    let snapshot = engine.snapshot();
    assert!(snapshot.is_quantized());

    let server = serve(
        &engine,
        &ServeAddr::parse("127.0.0.1:0"),
        ServerConfig::default(),
    )
    .expect("bind");
    let mut client = Client::connect(server.addr().to_string().as_str()).expect("connect");
    for mode in [QueryMode::Exact, QueryMode::Ann] {
        let (epoch, neighbors) = client.top_k(3, 5, mode).expect("top_k");
        assert_eq!(epoch, snapshot.epoch());
        assert_eq!(neighbors.len(), 5);
        for &(u, s) in &neighbors {
            let want = snapshot.cosine(3, u).expect("in range");
            assert!(
                (s - want).abs() < 1e-5,
                "{mode:?} hit {u}: wire score {s} vs exact {want}"
            );
        }
    }
    // Cosine frames are untouched by quantization: still exact f32.
    let (_, cos) = client.cosine(0, 1).expect("cosine");
    let want = snapshot.cosine(0, 1).unwrap();
    assert!((cos.unwrap() - want).abs() < 1e-6);
    drop(client);
    server.shutdown();
}

#[test]
fn batched_top_k_answers_from_one_epoch() {
    let engine = test_engine();
    let server = serve(
        &engine,
        &ServeAddr::parse("127.0.0.1:0"),
        ServerConfig::default(),
    )
    .expect("bind");
    let mut client = Client::connect(server.addr().to_string().as_str()).expect("connect");

    let nodes: Vec<u32> = (0..32).collect();
    let (epoch, rows) = client
        .top_k_batch(&nodes, 3, QueryMode::Exact)
        .expect("top_k_batch");
    assert_eq!(epoch, engine.store().epoch());
    assert_eq!(rows.len(), nodes.len());

    // The batch answer must agree with per-node exact queries at the same
    // epoch (no publishes are happening here).
    for (node, row) in nodes.iter().zip(&rows) {
        let (_, single) = client.top_k(*node, 3, QueryMode::Exact).expect("top_k");
        assert_eq!(&single, row, "batch and single answers agree for {node}");
    }
    server.shutdown();
}

#[test]
fn a_zero_admission_bound_rejects_data_plane_but_not_control_plane() {
    let engine = test_engine();
    let server = serve(
        &engine,
        &ServeAddr::parse("127.0.0.1:0"),
        ServerConfig { max_inflight: 0 },
    )
    .expect("bind");
    let mut client = Client::connect(server.addr().to_string().as_str()).expect("connect");

    let err = client.top_k(0, 5, QueryMode::Exact).expect_err("rejected");
    assert!(err.is_overloaded(), "{err}");
    let err = client.vector(0).expect_err("rejected");
    assert!(
        matches!(
            err,
            ClientError::Rejected {
                code: ErrorCode::Overloaded,
                ..
            }
        ),
        "{err}"
    );

    // Control plane stays observable while the data plane is saturated.
    assert_eq!(client.epoch().expect("epoch"), engine.store().epoch());
    let json = client.metrics_json().expect("metrics");
    assert!(json.contains("rejected_overload"), "{json}");

    server.shutdown();
    assert!(
        engine
            .metrics()
            .counter("server.rejected_overload")
            .unwrap_or(0)
            >= 2
    );
}

#[test]
fn unknown_nodes_and_malformed_frames_degrade_gracefully() {
    let engine = test_engine();
    let server = serve(
        &engine,
        &ServeAddr::parse("127.0.0.1:0"),
        ServerConfig::default(),
    )
    .expect("bind");
    let addr = server.addr().to_string();

    let mut client = Client::connect(addr.as_str()).expect("connect");
    // Ids the universe never contained earn a typed UnknownNode refusal —
    // never a silent empty body, never a panic.
    let err = client.vector(9_999_999).expect_err("out-of-range node");
    assert!(err.is_unknown_node(), "{err}");
    let err = client.cosine(0, 9_999_999).expect_err("out-of-range pair");
    assert!(err.is_unknown_node(), "{err}");
    let err = client
        .top_k(9_999_999, 3, QueryMode::Exact)
        .expect_err("out-of-range top_k");
    assert!(err.is_unknown_node(), "{err}");
    let err = client
        .top_k_batch(&[0, 9_999_999], 3, QueryMode::Exact)
        .expect_err("out-of-range batch member");
    assert!(err.is_unknown_node(), "{err}");
    // The refusal is not fatal: the same connection keeps working.
    let (_, vector) = client.vector(0).expect("known node");
    assert_eq!(vector.expect("live row").len(), 16);

    // A garbage opcode earns a typed BadRequest reply, then the server
    // closes that connection — and only that connection.
    let raw = TcpStream::connect(addr.as_str()).expect("connect raw");
    let mut bad = Client::from_stream(raw);
    let err = bad.epoch_with_opcode_99().expect_err("bad opcode");
    assert!(
        matches!(
            err,
            ClientError::Rejected {
                code: ErrorCode::BadRequest,
                ..
            }
        ),
        "{err}"
    );
    // The well-behaved connection is unaffected.
    assert_eq!(client.epoch().expect("epoch"), engine.store().epoch());

    server.shutdown();
    assert!(engine.metrics().counter("server.bad_requests").unwrap_or(0) >= 1);
}

#[test]
fn retired_ids_never_surface_to_concurrent_clients_across_epoch_flips() {
    // Satellite: open-world serving. One node is retired (and one arrives)
    // before serving starts; while concurrent clients hammer top_k and
    // top_k_batch, further churn flips epochs underneath them. The retired
    // id must never appear in any result row at any epoch, queries naming
    // it must earn a typed RetiredNode refusal, and ids beyond the grown
    // universe a typed UnknownNode refusal — never a stale vector.
    const N: u32 = 150;
    const RETIRED: u32 = 5;
    const ARRIVED: u32 = N; // first grown row
    let graph = rmat(&RmatConfig {
        num_nodes: N as usize,
        num_edges: 1000,
        weighted: true,
        seed: 7,
        ..Default::default()
    });
    let engine = Engine::builder()
        .graph(graph)
        .model(ModelSpec::DeepWalk)
        .num_walks(1)
        .walk_length(8)
        .dim(16)
        .threads(2)
        .seed(7)
        .allow_churn(true)
        .cold_start_burn_in(1)
        .build()
        .expect("valid configuration");
    engine.train().expect("initial training");

    // Phase 1 (before serving): retire RETIRED, admit ARRIVED and wire it in.
    let churn = vec![
        GraphMutation::RemoveNode { node: RETIRED },
        GraphMutation::AddNode { node: ARRIVED },
        GraphMutation::AddEdge {
            src: ARRIVED,
            dst: 3,
            weight: 1.0,
        },
        GraphMutation::AddEdge {
            src: ARRIVED,
            dst: 10,
            weight: 2.0,
        },
    ];
    let outcome = engine.stream(churn).unwrap().join().expect("churn session");
    assert_eq!(outcome.report.retirements, 1);
    assert_eq!(outcome.report.arrivals, 1);

    let server = serve(
        &engine,
        &ServeAddr::parse("127.0.0.1:0"),
        ServerConfig::default(),
    )
    .expect("bind");
    let addr = server.addr().to_string();

    let clients: Vec<_> = (0..4)
        .map(|c: u32| {
            let addr = addr.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr.as_str()).expect("connect");
                for i in 0..30u32 {
                    // Probe a live node: the retired id must be absent from
                    // every row, whatever epoch the answer comes from.
                    let node = {
                        let v = (c * 37 + i) % N;
                        if v == RETIRED {
                            RETIRED + 1
                        } else {
                            v
                        }
                    };
                    let (_, neighbors) =
                        client.top_k(node, 10, QueryMode::Exact).expect("top_k");
                    assert!(
                        neighbors.iter().all(|&(u, _)| u != RETIRED),
                        "retired id {RETIRED} leaked into top_k({node})"
                    );
                    let (_, rows) = client
                        .top_k_batch(&[node, ARRIVED], 10, QueryMode::Exact)
                        .expect("top_k_batch");
                    for row in &rows {
                        assert!(
                            row.iter().all(|&(u, _)| u != RETIRED),
                            "retired id {RETIRED} leaked into a batch row"
                        );
                    }
                    // Naming the retired id is a typed refusal on every
                    // endpoint — never a stale vector, never a panic.
                    assert!(client.vector(RETIRED).expect_err("retired").is_retired_node());
                    assert!(client
                        .top_k(RETIRED, 5, QueryMode::Exact)
                        .expect_err("retired")
                        .is_retired_node());
                    assert!(client
                        .cosine(node, RETIRED)
                        .expect_err("retired")
                        .is_retired_node());
                    assert!(client
                        .top_k_batch(&[node, RETIRED], 5, QueryMode::Exact)
                        .expect_err("retired")
                        .is_retired_node());
                    // Beyond the grown universe: unknown, not retired.
                    assert!(client.vector(N + 50).expect_err("unknown").is_unknown_node());
                }
            })
        })
        .collect();

    // Flip epochs underneath the clients with more churn: edge rewires plus
    // a second arrival. No additional retirement, so the clients' absence
    // assertion stays exact at every epoch they can observe.
    let mut more = vec![
        GraphMutation::AddNode { node: N + 1 },
        GraphMutation::AddEdge {
            src: N + 1,
            dst: 20,
            weight: 1.0,
        },
    ];
    for i in 0..60u32 {
        let (src, dst) = ((i * 13 + 1) % N, (i * 7 + 3) % N);
        if src != dst && src != RETIRED && dst != RETIRED {
            more.push(GraphMutation::AddEdge {
                src,
                dst,
                weight: 1.0 + (i % 5) as f32,
            });
        }
    }
    let outcome = engine.stream(more).unwrap().join().expect("second session");
    assert_eq!(outcome.report.arrivals, 1);
    for c in clients {
        c.join().expect("client thread");
    }

    // After all flips: the arrival serves, the retiree still refuses.
    let mut client = Client::connect(addr.as_str()).expect("connect");
    let (_, vector) = client.vector(ARRIVED).expect("arrived node serves");
    assert_eq!(vector.expect("live row").len(), 16);
    assert!(client.vector(RETIRED).expect_err("still retired").is_retired_node());
    let (_, neighbors) = client.top_k(3, 20, QueryMode::Exact).expect("top_k");
    assert!(neighbors.iter().all(|&(u, _)| u != RETIRED));
    server.shutdown();
}

#[test]
fn unix_socket_transport_works() {
    let engine = test_engine();
    let path = std::env::temp_dir().join(format!("uninet-serve-{}.sock", std::process::id()));
    let server = serve(
        &engine,
        &ServeAddr::Unix(path.clone()),
        ServerConfig::default(),
    )
    .expect("bind unix");
    let mut client = Client::connect_unix(&path).expect("connect unix");
    assert_eq!(client.epoch().expect("epoch"), engine.store().epoch());
    let (_, neighbors) = client.top_k(1, 4, QueryMode::Exact).expect("top_k");
    assert!(neighbors.len() <= 4);
    server.shutdown();
    assert!(!path.exists(), "the socket file is cleaned up on shutdown");
}

/// Test-only extension: speak a deliberately broken opcode.
trait BadOpcode {
    fn epoch_with_opcode_99(&mut self) -> Result<u64, ClientError>;
}

impl<S: std::io::Read + std::io::Write> BadOpcode for Client<S> {
    fn epoch_with_opcode_99(&mut self) -> Result<u64, ClientError> {
        use uninet_server::proto::{read_frame, write_frame, Response};
        let stream = self.stream_mut();
        write_frame(stream, &[99u8])?;
        let payload =
            read_frame(stream)?.ok_or_else(|| ClientError::Protocol("closed".to_string()))?;
        match Response::decode(&payload).map_err(|e| ClientError::Protocol(e.reason))? {
            Response::Epoch { epoch } => Ok(epoch),
            Response::Error { code, message } => Err(ClientError::Rejected { code, message }),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }
}
