//! # uninet-server
//!
//! The serving plane: a threaded wire-protocol front-end over a cloned
//! [`uninet_core::Engine`].
//!
//! The engine facade already supports cheap cloning (one `Arc` bump) and
//! lock-free epoch-snapshot reads; this crate puts a socket in front of it:
//!
//! * [`serve`] binds a TCP address or Unix socket and answers the
//!   length-prefixed binary protocol in [`proto`] — `vector`, `cosine`,
//!   `top_k`, `top_k_batch`, `metrics`, `epoch`.
//! * Concurrent `top_k` requests are **coalesced**: a batcher thread
//!   drains everything queued, acquires one embedding snapshot per slab
//!   and answers via `top_k_batch`, so snapshot acquisition is amortised
//!   and every rider sees a consistent epoch.
//! * **Admission control** bounds data-plane concurrency
//!   ([`ServerConfig::max_inflight`]); excess requests get a typed
//!   `Overloaded` reply instead of unbounded queueing. `metrics` and
//!   `epoch` bypass admission so a saturated instance stays observable.
//! * Per-endpoint latency histograms and request/rejection counters are
//!   registered in the engine's own `MetricsRegistry` under `server.*`,
//!   visible through `Engine::metrics()` and `--metrics-json`.
//!
//! The `uninet` CLI binary lives here too, wiring the durability plane
//! (`--wal-dir`, `--recover`) and the serving plane (`--serve`) onto the
//! engine builder.
//!
//! ```no_run
//! use uninet_core::{Engine, ModelSpec};
//! use uninet_graph::generators::{rmat, RmatConfig};
//! use uninet_server::{serve, Client, ServeAddr, ServerConfig};
//!
//! let graph = rmat(&RmatConfig { num_nodes: 100, num_edges: 600, ..Default::default() });
//! let engine = Engine::builder().graph(graph).model(ModelSpec::DeepWalk).build()?;
//! engine.train()?;
//! let server = serve(&engine, &ServeAddr::parse("127.0.0.1:0"), ServerConfig::default())?;
//! let addr = server.addr().to_string();
//! let mut client = Client::connect(addr.as_str())?;
//! let (epoch, neighbors) = client.top_k(0, 5, Default::default())?;
//! assert!(epoch >= 1 && neighbors.len() <= 5);
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod client;
pub mod metrics;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError};
pub use metrics::ServerMetrics;
pub use proto::{ErrorCode, ProtoError, Request, Response, MAX_FRAME_BYTES};
pub use server::{serve, ServeAddr, ServerConfig, ServerHandle};
