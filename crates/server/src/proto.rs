//! The length-prefixed wire protocol spoken between [`crate::Client`] and
//! the server.
//!
//! Every message travels as one frame:
//!
//! ```text
//! [u32: payload length (LE)] [payload bytes]
//! ```
//!
//! The payload is a request or response encoded with the same hand-rolled
//! little-endian codec the durability plane uses (`uninet_persist::codec`) —
//! the workspace is vendored offline, so there is no serde. Requests start
//! with a `u8` opcode, responses with a `u8` tag; unknown tags and short
//! buffers decode into [`ProtoError`], never panics. Frames are capped at
//! [`MAX_FRAME_BYTES`] so a malicious or confused peer cannot make either
//! side allocate unbounded memory from a length prefix.

use std::fmt;
use std::io::{self, Read, Write};

use uninet_embedding::QueryMode;
use uninet_persist::codec::{Dec, DecodeError, Enc};

/// Upper bound on one frame's payload (16 MiB).
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Upper bound on nodes per `top_k_batch` request.
pub const MAX_BATCH_NODES: usize = 1 << 20;

const OP_VECTOR: u8 = 1;
const OP_COSINE: u8 = 2;
const OP_TOP_K: u8 = 3;
const OP_TOP_K_BATCH: u8 = 4;
const OP_METRICS: u8 = 5;
const OP_EPOCH: u8 = 6;

const RESP_VECTOR: u8 = 1;
const RESP_COSINE: u8 = 2;
const RESP_TOP_K: u8 = 3;
const RESP_TOP_K_BATCH: u8 = 4;
const RESP_METRICS: u8 = 5;
const RESP_EPOCH: u8 = 6;
const RESP_ERROR: u8 = 7;

/// A malformed frame or payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// What failed to decode.
    pub reason: String,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.reason)
    }
}

impl std::error::Error for ProtoError {}

impl From<DecodeError> for ProtoError {
    fn from(e: DecodeError) -> Self {
        ProtoError {
            reason: e.to_string(),
        }
    }
}

fn proto_err(reason: impl Into<String>) -> ProtoError {
    ProtoError {
        reason: reason.into(),
    }
}

/// Why the server refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The admission bound was hit; retry later.
    Overloaded,
    /// The request could not be interpreted.
    BadRequest,
    /// The server failed internally while answering.
    Internal,
    /// The requested node id has never been part of the served universe.
    UnknownNode,
    /// The requested node id was retired from the universe; the server
    /// refuses to answer from its (stale) row.
    RetiredNode,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Overloaded => 1,
            ErrorCode::BadRequest => 2,
            ErrorCode::Internal => 3,
            ErrorCode::UnknownNode => 4,
            ErrorCode::RetiredNode => 5,
        }
    }

    fn from_u8(v: u8) -> Result<Self, ProtoError> {
        match v {
            1 => Ok(ErrorCode::Overloaded),
            2 => Ok(ErrorCode::BadRequest),
            3 => Ok(ErrorCode::Internal),
            4 => Ok(ErrorCode::UnknownNode),
            5 => Ok(ErrorCode::RetiredNode),
            other => Err(proto_err(format!("unknown error code {other}"))),
        }
    }
}

fn mode_to_u8(mode: QueryMode) -> u8 {
    match mode {
        QueryMode::Ann => 0,
        QueryMode::Exact => 1,
    }
}

fn mode_from_u8(v: u8) -> Result<QueryMode, ProtoError> {
    match v {
        0 => Ok(QueryMode::Ann),
        1 => Ok(QueryMode::Exact),
        other => Err(proto_err(format!("unknown query mode {other}"))),
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// The embedding vector of one node.
    Vector {
        /// Node to look up.
        node: u32,
    },
    /// Cosine similarity between two nodes.
    Cosine {
        /// First node.
        a: u32,
        /// Second node.
        b: u32,
    },
    /// The `k` most similar nodes to `node`.
    TopK {
        /// Query node.
        node: u32,
        /// Result count.
        k: u32,
        /// Exact scan or ANN index.
        mode: QueryMode,
    },
    /// A slab of top-k queries answered from one snapshot.
    TopKBatch {
        /// Query nodes.
        nodes: Vec<u32>,
        /// Result count per node.
        k: u32,
        /// Exact scan or ANN index.
        mode: QueryMode,
    },
    /// The engine's full telemetry snapshot as JSON.
    Metrics,
    /// The current serving epoch.
    Epoch,
}

impl Request {
    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Request::Vector { node } => {
                e.u8(OP_VECTOR);
                e.u32(*node);
            }
            Request::Cosine { a, b } => {
                e.u8(OP_COSINE);
                e.u32(*a);
                e.u32(*b);
            }
            Request::TopK { node, k, mode } => {
                e.u8(OP_TOP_K);
                e.u32(*node);
                e.u32(*k);
                e.u8(mode_to_u8(*mode));
            }
            Request::TopKBatch { nodes, k, mode } => {
                e.u8(OP_TOP_K_BATCH);
                e.u32(*k);
                e.u8(mode_to_u8(*mode));
                e.usize(nodes.len());
                for n in nodes {
                    e.u32(*n);
                }
            }
            Request::Metrics => e.u8(OP_METRICS),
            Request::Epoch => e.u8(OP_EPOCH),
        }
        e.into_bytes()
    }

    /// Decodes a frame payload into a request.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtoError> {
        let mut d = Dec::new(bytes);
        let req = match d.u8()? {
            OP_VECTOR => Request::Vector { node: d.u32()? },
            OP_COSINE => Request::Cosine {
                a: d.u32()?,
                b: d.u32()?,
            },
            OP_TOP_K => Request::TopK {
                node: d.u32()?,
                k: d.u32()?,
                mode: mode_from_u8(d.u8()?)?,
            },
            OP_TOP_K_BATCH => {
                let k = d.u32()?;
                let mode = mode_from_u8(d.u8()?)?;
                let count = d.bounded_len(MAX_BATCH_NODES, "batch nodes")?;
                let mut nodes = Vec::with_capacity(count);
                for _ in 0..count {
                    nodes.push(d.u32()?);
                }
                Request::TopKBatch { nodes, k, mode }
            }
            OP_METRICS => Request::Metrics,
            OP_EPOCH => Request::Epoch,
            other => return Err(proto_err(format!("unknown opcode {other}"))),
        };
        d.finish()?;
        Ok(req)
    }
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Vector`]; `None` when the node is unknown.
    Vector {
        /// Serving epoch the answer came from.
        epoch: u64,
        /// The vector, when the node exists in the snapshot.
        vector: Option<Vec<f32>>,
    },
    /// Answer to [`Request::Cosine`]; `None` when either node is unknown.
    Cosine {
        /// Serving epoch the answer came from.
        epoch: u64,
        /// The similarity, when both nodes exist.
        value: Option<f32>,
    },
    /// Answer to [`Request::TopK`].
    TopK {
        /// Serving epoch the answer came from.
        epoch: u64,
        /// `(node, similarity)` pairs, most similar first.
        neighbors: Vec<(u32, f32)>,
    },
    /// Answer to [`Request::TopKBatch`]: one row per requested node, all
    /// from the same epoch.
    TopKBatch {
        /// Serving epoch the answer came from.
        epoch: u64,
        /// One neighbor list per requested node, in request order.
        rows: Vec<Vec<(u32, f32)>>,
    },
    /// Answer to [`Request::Metrics`].
    Metrics {
        /// The telemetry snapshot as JSON.
        json: String,
    },
    /// Answer to [`Request::Epoch`].
    Epoch {
        /// Current serving epoch.
        epoch: u64,
    },
    /// The request was refused.
    Error {
        /// Why.
        code: ErrorCode,
        /// Human-readable context.
        message: String,
    },
}

fn encode_neighbors(e: &mut Enc, neighbors: &[(u32, f32)]) {
    e.usize(neighbors.len());
    for (node, score) in neighbors {
        e.u32(*node);
        e.f32(*score);
    }
}

fn decode_neighbors(d: &mut Dec) -> Result<Vec<(u32, f32)>, ProtoError> {
    let count = d.bounded_len(MAX_BATCH_NODES, "neighbors")?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let node = d.u32()?;
        let score = d.f32()?;
        out.push((node, score));
    }
    Ok(out)
}

impl Response {
    /// Encodes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Response::Vector { epoch, vector } => {
                e.u8(RESP_VECTOR);
                e.u64(*epoch);
                match vector {
                    None => e.u8(0),
                    Some(v) => {
                        e.u8(1);
                        e.usize(v.len());
                        for x in v {
                            e.f32(*x);
                        }
                    }
                }
            }
            Response::Cosine { epoch, value } => {
                e.u8(RESP_COSINE);
                e.u64(*epoch);
                match value {
                    None => e.u8(0),
                    Some(v) => {
                        e.u8(1);
                        e.f32(*v);
                    }
                }
            }
            Response::TopK { epoch, neighbors } => {
                e.u8(RESP_TOP_K);
                e.u64(*epoch);
                encode_neighbors(&mut e, neighbors);
            }
            Response::TopKBatch { epoch, rows } => {
                e.u8(RESP_TOP_K_BATCH);
                e.u64(*epoch);
                e.usize(rows.len());
                for row in rows {
                    encode_neighbors(&mut e, row);
                }
            }
            Response::Metrics { json } => {
                e.u8(RESP_METRICS);
                e.str(json);
            }
            Response::Epoch { epoch } => {
                e.u8(RESP_EPOCH);
                e.u64(*epoch);
            }
            Response::Error { code, message } => {
                e.u8(RESP_ERROR);
                e.u8(code.to_u8());
                e.str(message);
            }
        }
        e.into_bytes()
    }

    /// Decodes a frame payload into a response.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtoError> {
        let mut d = Dec::new(bytes);
        let resp = match d.u8()? {
            RESP_VECTOR => {
                let epoch = d.u64()?;
                let vector = match d.u8()? {
                    0 => None,
                    _ => {
                        let dim = d.bounded_len(MAX_FRAME_BYTES / 4, "vector dim")?;
                        let mut v = Vec::with_capacity(dim);
                        for _ in 0..dim {
                            v.push(d.f32()?);
                        }
                        Some(v)
                    }
                };
                Response::Vector { epoch, vector }
            }
            RESP_COSINE => {
                let epoch = d.u64()?;
                let value = match d.u8()? {
                    0 => None,
                    _ => Some(d.f32()?),
                };
                Response::Cosine { epoch, value }
            }
            RESP_TOP_K => Response::TopK {
                epoch: d.u64()?,
                neighbors: decode_neighbors(&mut d)?,
            },
            RESP_TOP_K_BATCH => {
                let epoch = d.u64()?;
                let count = d.bounded_len(MAX_BATCH_NODES, "batch rows")?;
                let mut rows = Vec::with_capacity(count);
                for _ in 0..count {
                    rows.push(decode_neighbors(&mut d)?);
                }
                Response::TopKBatch { epoch, rows }
            }
            RESP_METRICS => Response::Metrics { json: d.str()? },
            RESP_EPOCH => Response::Epoch { epoch: d.u64()? },
            RESP_ERROR => Response::Error {
                code: ErrorCode::from_u8(d.u8()?)?,
                message: d.str()?,
            },
            other => return Err(proto_err(format!("unknown response tag {other}"))),
        };
        d.finish()?;
        Ok(resp)
    }
}

/// Writes one frame: `u32` length prefix followed by the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` means the peer closed the connection cleanly
/// (EOF before any length byte); EOF mid-frame is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = vec![
            Request::Vector { node: 7 },
            Request::Cosine { a: 1, b: 2 },
            Request::TopK {
                node: 3,
                k: 10,
                mode: QueryMode::Exact,
            },
            Request::TopKBatch {
                nodes: vec![0, 5, 9],
                k: 4,
                mode: QueryMode::Ann,
            },
            Request::Metrics,
            Request::Epoch,
        ];
        for req in cases {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Vector {
                epoch: 3,
                vector: Some(vec![0.5, -1.25]),
            },
            Response::Vector {
                epoch: 3,
                vector: None,
            },
            Response::Cosine {
                epoch: 1,
                value: Some(0.75),
            },
            Response::Cosine {
                epoch: 1,
                value: None,
            },
            Response::TopK {
                epoch: 9,
                neighbors: vec![(1, 0.9), (4, 0.5)],
            },
            Response::TopKBatch {
                epoch: 2,
                rows: vec![vec![(1, 0.5)], vec![]],
            },
            Response::Metrics {
                json: "{\"a\":1}".to_string(),
            },
            Response::Epoch { epoch: 42 },
            Response::Error {
                code: ErrorCode::Overloaded,
                message: "try later".to_string(),
            },
            Response::Error {
                code: ErrorCode::UnknownNode,
                message: "node 999 is outside the universe".to_string(),
            },
            Response::Error {
                code: ErrorCode::RetiredNode,
                message: "node 5 was retired".to_string(),
            },
        ];
        for resp in cases {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frames_and_bad_opcodes_error_not_panic() {
        let mut cursor = std::io::Cursor::new(vec![5u8, 0, 0]);
        assert!(read_frame(&mut cursor).is_err(), "EOF mid-length");

        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[99]).is_err(), "unknown opcode");
        let mut good = Request::Epoch.encode();
        good.push(0);
        assert!(Request::decode(&good).is_err(), "trailing bytes rejected");
        assert!(Response::decode(&[99]).is_err(), "unknown tag");
    }
}
