//! Server-side telemetry, registered in the engine's own
//! [`MetricsRegistry`] so `Engine::metrics()` (and the CLI's
//! `--metrics-json`) show the serving plane next to walk/train/ingest
//! counters under a single `server.` prefix.

use std::sync::Arc;
use std::time::Duration;

use uninet_metrics::{Counter, Gauge, Histogram, MetricsRegistry};

use crate::proto::Request;

/// Handles to every `server.*` metric. Cloning is cheap (all `Arc`s).
#[derive(Clone)]
pub struct ServerMetrics {
    /// Total requests decoded, including rejected ones.
    pub requests: Arc<Counter>,
    /// Connections accepted over the server's lifetime.
    pub connections: Arc<Counter>,
    /// Data-plane requests refused by admission control.
    pub rejected_overload: Arc<Counter>,
    /// Frames that failed to decode into a request.
    pub bad_requests: Arc<Counter>,
    /// Data-plane requests currently being answered.
    pub inflight: Arc<Gauge>,
    /// Coalesced slabs executed by the batcher thread.
    pub coalesced_slabs: Arc<Counter>,
    /// Individual top-k queries absorbed into those slabs.
    pub coalesced_queries: Arc<Counter>,
    vector_ns: Arc<Histogram>,
    cosine_ns: Arc<Histogram>,
    top_k_ns: Arc<Histogram>,
    top_k_batch_ns: Arc<Histogram>,
    metrics_ns: Arc<Histogram>,
    epoch_ns: Arc<Histogram>,
}

impl ServerMetrics {
    /// Registers (or re-attaches to) the `server.*` metric family.
    pub fn register(registry: &MetricsRegistry) -> Self {
        ServerMetrics {
            requests: registry.counter("server.requests"),
            connections: registry.counter("server.connections"),
            rejected_overload: registry.counter("server.rejected_overload"),
            bad_requests: registry.counter("server.bad_requests"),
            inflight: registry.gauge("server.inflight"),
            coalesced_slabs: registry.counter("server.coalesced_slabs"),
            coalesced_queries: registry.counter("server.coalesced_queries"),
            vector_ns: registry.histogram("server.vector_ns"),
            cosine_ns: registry.histogram("server.cosine_ns"),
            top_k_ns: registry.histogram("server.top_k_ns"),
            top_k_batch_ns: registry.histogram("server.top_k_batch_ns"),
            metrics_ns: registry.histogram("server.metrics_ns"),
            epoch_ns: registry.histogram("server.epoch_ns"),
        }
    }

    /// Records one answered request's end-to-end latency into the
    /// per-endpoint histogram.
    pub fn record_latency(&self, request: &Request, elapsed: Duration) {
        let hist = match request {
            Request::Vector { .. } => &self.vector_ns,
            Request::Cosine { .. } => &self.cosine_ns,
            Request::TopK { .. } => &self.top_k_ns,
            Request::TopKBatch { .. } => &self.top_k_batch_ns,
            Request::Metrics => &self.metrics_ns,
            Request::Epoch => &self.epoch_ns,
        };
        hist.record_duration(elapsed);
    }
}
