//! The threaded serving loop: accept connections, decode frames, answer
//! from epoch snapshots.
//!
//! Three design points carry the subsystem:
//!
//! * **Coalescing.** Concurrent `top_k` requests from different
//!   connections land in one queue; a single batcher thread drains
//!   whatever has accumulated, acquires **one** embedding snapshot for the
//!   whole slab and answers it via `top_k_batch`. Under load the snapshot
//!   acquisition (an epoch-pinned `Arc` swap plus ANN handle) is amortised
//!   across every rider in the slab, and all riders observe the same epoch.
//! * **Admission control.** Data-plane requests occupy one of
//!   [`ServerConfig::max_inflight`] slots; when the slots are gone the
//!   server answers a typed [`ErrorCode::Overloaded`] instead of queueing
//!   unboundedly. Control-plane requests (`metrics`, `epoch`) bypass
//!   admission so the instance stays observable while saturated.
//! * **Degrade, don't panic.** Malformed frames produce a
//!   [`ErrorCode::BadRequest`] reply (when the connection is still
//!   writable) and close that connection only.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use uninet_core::{Engine, QueryMode};

use crate::metrics::ServerMetrics;
use crate::proto::{write_frame, ErrorCode, Request, Response};

const ACCEPT_POLL: Duration = Duration::from_millis(20);
const READ_POLL: Duration = Duration::from_millis(100);

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeAddr {
    /// A TCP address, e.g. `127.0.0.1:7878`.
    Tcp(String),
    /// A Unix-domain socket path, spelled `unix:<path>` on the CLI.
    Unix(PathBuf),
}

impl ServeAddr {
    /// Parses the CLI spelling: `unix:<path>` selects a Unix socket,
    /// anything else is treated as a TCP bind address.
    pub fn parse(spec: &str) -> ServeAddr {
        match spec.strip_prefix("unix:") {
            Some(path) => ServeAddr::Unix(PathBuf::from(path)),
            None => ServeAddr::Tcp(spec.to_string()),
        }
    }
}

impl std::fmt::Display for ServeAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeAddr::Tcp(addr) => write!(f, "{addr}"),
            ServeAddr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Serving-plane knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum data-plane requests answered concurrently before the server
    /// replies `Overloaded`. `metrics`/`epoch` are exempt.
    pub max_inflight: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { max_inflight: 64 }
    }
}

/// One queued `top_k` waiting to ride a coalesced slab.
struct PendingTopK {
    node: u32,
    k: u32,
    mode: QueryMode,
    reply: mpsc::Sender<(u64, Vec<(u32, f32)>)>,
}

struct CoalescerState {
    queue: VecDeque<PendingTopK>,
    stop: bool,
}

/// Funnel for concurrent `top_k` requests; drained in slabs by one batcher
/// thread so each slab costs a single snapshot acquisition.
struct Coalescer {
    state: Mutex<CoalescerState>,
    wake: Condvar,
}

impl Coalescer {
    fn new() -> Self {
        Coalescer {
            state: Mutex::new(CoalescerState {
                queue: VecDeque::new(),
                stop: false,
            }),
            wake: Condvar::new(),
        }
    }

    fn submit(&self, pending: PendingTopK) {
        let mut state = self.state.lock().unwrap();
        state.queue.push_back(pending);
        drop(state);
        self.wake.notify_one();
    }

    fn stop(&self) {
        self.state.lock().unwrap().stop = true;
        self.wake.notify_all();
    }

    /// Blocks until work or shutdown; returns the whole accumulated slab.
    fn next_slab(&self) -> Option<Vec<PendingTopK>> {
        let mut state = self.state.lock().unwrap();
        loop {
            if !state.queue.is_empty() {
                return Some(state.queue.drain(..).collect());
            }
            if state.stop {
                return None;
            }
            state = self.wake.wait(state).unwrap();
        }
    }
}

fn run_batcher(engine: Engine, coalescer: Arc<Coalescer>, metrics: ServerMetrics) {
    let store = engine.store();
    while let Some(slab) = coalescer.next_slab() {
        metrics.coalesced_slabs.inc();
        metrics.coalesced_queries.add(slab.len() as u64);
        // One snapshot for the whole slab: every rider gets the same epoch
        // and the acquisition cost is paid once.
        let snapshot = store.snapshot();
        let epoch = snapshot.epoch();
        // Group riders that share (k, mode) so each group is a single
        // top_k_batch call over the snapshot.
        let mut groups: Vec<((u32, QueryMode), Vec<usize>)> = Vec::new();
        for (i, p) in slab.iter().enumerate() {
            match groups.iter_mut().find(|(key, _)| *key == (p.k, p.mode)) {
                Some((_, members)) => members.push(i),
                None => groups.push(((p.k, p.mode), vec![i])),
            }
        }
        for ((k, mode), members) in groups {
            let nodes: Vec<u32> = members.iter().map(|&i| slab[i].node).collect();
            let rows = snapshot.top_k_batch(&nodes, k as usize, mode);
            for (&i, row) in members.iter().zip(rows) {
                // A dropped receiver just means the connection died first.
                let _ = slab[i].reply.send((epoch, row));
            }
        }
    }
}

/// RAII data-plane admission slot.
struct AdmissionGuard<'a> {
    inflight: &'a AtomicUsize,
    metrics: &'a ServerMetrics,
}

impl<'a> AdmissionGuard<'a> {
    /// Claims a slot, or `None` when the server is at `max_inflight`.
    fn acquire(inflight: &'a AtomicUsize, max: usize, metrics: &'a ServerMetrics) -> Option<Self> {
        inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < max).then_some(n + 1)
            })
            .ok()?;
        metrics.inflight.add(1);
        Some(AdmissionGuard { inflight, metrics })
    }
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
        self.metrics.inflight.add(-1);
    }
}

struct Shared {
    engine: Engine,
    coalescer: Arc<Coalescer>,
    metrics: ServerMetrics,
    inflight: AtomicUsize,
    max_inflight: usize,
    stop: Arc<AtomicBool>,
}

/// Refuses queries that name an id outside the snapshot's live universe.
/// The in-range/live split yields distinct typed errors: an id the universe
/// never contained is [`ErrorCode::UnknownNode`]; an id that arrived and was
/// later retired is [`ErrorCode::RetiredNode`]. Either way the server never
/// answers from the (stale) embedding row.
fn check_universe(snapshot: &uninet_core::EmbeddingSnapshot, node: u32) -> Option<Response> {
    if !snapshot.in_range(node) {
        Some(Response::Error {
            code: ErrorCode::UnknownNode,
            message: format!(
                "node {node} is outside the {}-row universe",
                snapshot.num_nodes()
            ),
        })
    } else if !snapshot.is_live(node) {
        Some(Response::Error {
            code: ErrorCode::RetiredNode,
            message: format!("node {node} was retired from the universe"),
        })
    } else {
        None
    }
}

fn answer(shared: &Shared, request: &Request) -> Response {
    let store = shared.engine.store();
    match request {
        Request::Metrics => Response::Metrics {
            json: shared.engine.metrics().to_json(),
        },
        Request::Epoch => Response::Epoch {
            epoch: store.epoch(),
        },
        data_plane => {
            let Some(_slot) =
                AdmissionGuard::acquire(&shared.inflight, shared.max_inflight, &shared.metrics)
            else {
                shared.metrics.rejected_overload.inc();
                return Response::Error {
                    code: ErrorCode::Overloaded,
                    message: format!(
                        "{} data-plane requests already in flight",
                        shared.max_inflight
                    ),
                };
            };
            match data_plane {
                Request::Vector { node } => {
                    let snapshot = store.snapshot();
                    if let Some(err) = check_universe(&snapshot, *node) {
                        return err;
                    }
                    Response::Vector {
                        epoch: snapshot.epoch(),
                        vector: Some(snapshot.embeddings().vector(*node).to_vec()),
                    }
                }
                Request::Cosine { a, b } => {
                    let snapshot = store.snapshot();
                    for node in [*a, *b] {
                        if let Some(err) = check_universe(&snapshot, node) {
                            return err;
                        }
                    }
                    Response::Cosine {
                        epoch: snapshot.epoch(),
                        value: snapshot.cosine(*a, *b),
                    }
                }
                Request::TopK { node, k, mode } => {
                    if let Some(err) = check_universe(&store.snapshot(), *node) {
                        return err;
                    }
                    let (tx, rx) = mpsc::channel();
                    shared.coalescer.submit(PendingTopK {
                        node: *node,
                        k: *k,
                        mode: *mode,
                        reply: tx,
                    });
                    match rx.recv() {
                        Ok((epoch, neighbors)) => Response::TopK { epoch, neighbors },
                        Err(_) => Response::Error {
                            code: ErrorCode::Internal,
                            message: "server shutting down".to_string(),
                        },
                    }
                }
                Request::TopKBatch { nodes, k, mode } => {
                    let snapshot = store.snapshot();
                    for node in nodes {
                        if let Some(err) = check_universe(&snapshot, *node) {
                            return err;
                        }
                    }
                    Response::TopKBatch {
                        epoch: snapshot.epoch(),
                        rows: snapshot.top_k_batch(nodes, *k as usize, *mode),
                    }
                }
                Request::Metrics | Request::Epoch => unreachable!("handled above"),
            }
        }
    }
}

/// Fills `buf`, riding out read timeouts so the `stop` flag is polled
/// between them without losing partially-read bytes. `Ok(None)` means clean
/// EOF (only legal at `eof_ok_at_start`) or shutdown.
fn read_full<S: Read>(
    stream: &mut S,
    buf: &mut [u8],
    stop: &AtomicBool,
    eof_ok_at_start: bool,
) -> io::Result<Option<()>> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 && eof_ok_at_start => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::Acquire) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(()))
}

/// Reads one frame, polling `stop` across read timeouts. `Ok(None)` means
/// clean EOF or shutdown.
fn read_frame_polling<S: Read>(stream: &mut S, stop: &AtomicBool) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    if read_full(stream, &mut len_buf, stop, true)?.is_none() {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > crate::proto::MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    if read_full(stream, &mut payload, stop, false)?.is_none() {
        return Ok(None);
    }
    Ok(Some(payload))
}

fn handle_connection<S: Read + Write>(stream: &mut S, shared: &Shared) {
    shared.metrics.connections.inc();
    loop {
        let payload = match read_frame_polling(stream, &shared.stop) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(_) => return,
        };
        shared.metrics.requests.inc();
        let response = match Request::decode(&payload) {
            Ok(request) => {
                let started = Instant::now();
                let response = answer(shared, &request);
                shared.metrics.record_latency(&request, started.elapsed());
                response
            }
            Err(e) => {
                shared.metrics.bad_requests.inc();
                Response::Error {
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                }
            }
        };
        let fatal = matches!(
            response,
            Response::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        );
        if write_frame(stream, &response.encode()).is_err() {
            return;
        }
        if fatal {
            return;
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Listener {
    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

fn run_accept_loop(
    listener: Listener,
    shared: Arc<Shared>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok(conn) => {
                let shared = Arc::clone(&shared);
                let handle = thread::spawn(move || match conn {
                    Conn::Tcp(mut s) => {
                        let _ = s.set_nodelay(true);
                        let _ = s.set_read_timeout(Some(READ_POLL));
                        handle_connection(&mut s, &shared);
                    }
                    Conn::Unix(mut s) => {
                        let _ = s.set_read_timeout(Some(READ_POLL));
                        handle_connection(&mut s, &shared);
                    }
                });
                conn_threads.lock().unwrap().push(handle);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

/// A running server. Dropping it (or calling [`ServerHandle::shutdown`])
/// stops the accept loop, the batcher and every connection thread.
pub struct ServerHandle {
    addr: ServeAddr,
    stop: Arc<AtomicBool>,
    coalescer: Arc<Coalescer>,
    accept_thread: Option<JoinHandle<()>>,
    batcher_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    unix_path: Option<PathBuf>,
}

impl ServerHandle {
    /// The bound address — for TCP this is the *resolved* address, so
    /// binding `127.0.0.1:0` reports the kernel-assigned port.
    pub fn addr(&self) -> &ServeAddr {
        &self.addr
    }

    /// Stops accepting, drains in-flight work and joins every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.coalescer.stop();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let handles: Vec<_> = self.conn_threads.lock().unwrap().drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
        // Connection threads may still have queued top_k work; stop() made
        // next_slab drain-then-exit, so join the batcher last.
        if let Some(t) = self.batcher_thread.take() {
            let _ = t.join();
        }
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Binds `addr` and starts serving `engine` until the handle is shut down.
///
/// The engine handle is cloned internally (it is an `Arc` facade), so the
/// caller keeps full use of its own handle — including publishing new
/// epochs via `train`/`stream` while the server answers queries.
pub fn serve(engine: &Engine, addr: &ServeAddr, config: ServerConfig) -> io::Result<ServerHandle> {
    let (listener, resolved, unix_path) = match addr {
        ServeAddr::Tcp(spec) => {
            let l = TcpListener::bind(spec.as_str())?;
            l.set_nonblocking(true)?;
            let resolved = ServeAddr::Tcp(l.local_addr()?.to_string());
            (Listener::Tcp(l), resolved, None)
        }
        ServeAddr::Unix(path) => {
            // A stale socket file from a killed process would fail the bind.
            if path.exists() {
                let _ = std::fs::remove_file(path);
            }
            let l = UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            (Listener::Unix(l), addr.clone(), Some(path.clone()))
        }
    };

    let metrics = ServerMetrics::register(&engine.metrics_registry());
    let coalescer = Arc::new(Coalescer::new());
    let stop = Arc::new(AtomicBool::new(false));
    let shared = Arc::new(Shared {
        engine: engine.clone(),
        coalescer: Arc::clone(&coalescer),
        metrics: metrics.clone(),
        inflight: AtomicUsize::new(0),
        max_inflight: config.max_inflight,
        stop: Arc::clone(&stop),
    });

    let batcher_thread = {
        let engine = engine.clone();
        let coalescer = Arc::clone(&coalescer);
        thread::Builder::new()
            .name("uninet-serve-batch".to_string())
            .spawn(move || run_batcher(engine, coalescer, metrics))?
    };
    let conn_threads = Arc::new(Mutex::new(Vec::new()));
    let accept_thread = {
        let shared = Arc::clone(&shared);
        let conn_threads = Arc::clone(&conn_threads);
        thread::Builder::new()
            .name("uninet-serve-accept".to_string())
            .spawn(move || run_accept_loop(listener, shared, conn_threads))?
    };

    Ok(ServerHandle {
        addr: resolved,
        stop,
        coalescer,
        accept_thread: Some(accept_thread),
        batcher_thread: Some(batcher_thread),
        conn_threads,
        unix_path,
    })
}
