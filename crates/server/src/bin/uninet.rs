//! `uninet` — command-line front end of the engine: read an edge list (or
//! generate a synthetic graph), run one of the five NRL models, and write the
//! embeddings in word2vec text format. With `--wal-dir` the run is durable
//! (write-ahead logged and snapshotted); with `--recover` it restarts from
//! that state; with `--serve` it answers the wire protocol until stdin
//! closes.
//!
//! ```text
//! uninet --model node2vec --p 0.25 --q 4.0 --input graph.edges --output emb.txt
//! uninet --model deepwalk --updates stream.txt --wal-dir ./wal --output emb.txt
//! uninet --recover --wal-dir ./wal --serve 127.0.0.1:7878
//! ```
//!
//! Run `uninet --help` for the full flag list. The flag parser is hand-rolled
//! (no external CLI dependency is allowed in this workspace); every failure
//! path surfaces a typed [`UniNetError`] with the offending flag or the
//! file/line of a malformed input.

use std::io::Read;
use std::process::ExitCode;

use uninet_core::{
    EdgeSamplerKind, Engine, EngineBuilder, FsyncPolicy, InitStrategy, ModelSpec, StreamingConfig,
    UniNetError,
};
use uninet_dyngraph::{read_update_stream_file, read_update_stream_validated_file};
use uninet_embedding::io::save_embeddings;
use uninet_graph::generators::{barabasi_albert, rmat, RmatConfig};
use uninet_graph::Graph;
use uninet_server::{serve, ServeAddr, ServerConfig};

const HELP: &str = "\
uninet — unified random-walk network representation learning

USAGE:
  uninet [OPTIONS] --output <FILE>
  uninet [OPTIONS] --serve <ADDR>

INPUT (choose one):
  --input <FILE>          edge list: `src dst [weight] [edge_type]` per line
  --synthetic <rmat|ba>   generate a synthetic graph instead (default rmat)
  --nodes <N>             synthetic graph size                 [default: 10000]
  --mean-degree <D>       synthetic mean degree                [default: 10]
  --recover               rebuild graph + embeddings from --wal-dir instead of
                          any other input source

MODEL:
  --model <NAME>          deepwalk | node2vec | metapath2vec | edge2vec | fairwalk
                                                               [default: deepwalk]
  --p <F>  --q <F>        node2vec/edge2vec/fairwalk parameters [default: 1.0]
  --metapath <T,T,..>     metapath node types for metapath2vec  [default: 0,1,0]

WALKS & TRAINING:
  --num-walks <K>         walks per node                        [default: 10]
  --walk-length <L>       nodes per walk                        [default: 80]
  --dim <D>               embedding dimensionality              [default: 128]
  --epochs <E>            word2vec epochs                       [default: 1]
  --threads <T>           worker threads                        [default: 16]
  --sampler <NAME>        mh-weight | mh-random | mh-burnin | alias | direct |
                          rejection | knightking | memory-aware [default: mh-weight]
  --seed <S>              RNG seed                              [default: 42]

STREAMING UPDATES (dynamic-graph mode):
  --updates <FILE>        edge-update stream replayed after the initial walks:
                          `add u v [w]` / `del u v` / `w u v <weight>` per line
                          (aliases: + / - / ~). Affected walks are refreshed
                          incrementally and embeddings retrained at the end.
  --update-batch-size <N> mutations per maintenance batch     [default: 256]
  --compaction-threshold <N>
                          pending overlay edges that trigger CSR compaction
                                                              [default: 1024]
  --directed-updates      do not mirror mutations onto the reverse edge
  --ingest-threads <T>    worker threads for sharded update application,
                          sampler maintenance and walk refresh
                                                       [default: --threads]
  --queue-capacity <N>    update batches buffered by the intake queue before
                          back-pressure blocks the reader      [default: 8]
  --incremental-train     update embeddings online on regenerated walks
                          instead of a full retrain at end-of-stream

OPEN-WORLD CHURN (node arrival & departure):
  --allow-churn           accept `addnode <v>` / `rmnode <v>` events in the
                          update stream: the universe grows (new embedding
                          rows, cold-start initialised from neighbours) and
                          retired ids become unqueryable everywhere (walks,
                          snapshots, ANN index, wire protocol) but are never
                          recycled for a different identity. The stream is
                          validated up front: duplicate arrivals, retirements
                          of unknown ids and edge ops naming retired
                          endpoints are typed errors with line context
  --cold-start-burn-in <N>
                          boosted online-SGD passes over the seeded walks of
                          each arrival cohort                  [default: 2]
  --cold-start-boost <F>  learning-rate multiplier during burn-in
                                                              [default: 2.0]

DURABILITY (write-ahead log + snapshots):
  --wal-dir <DIR>         append every applied update batch to a WAL in DIR
                          and cut binary snapshots of graph + embeddings +
                          sampler state; survives kill -9
  --snapshot-every <N>    also cut a snapshot every N logged batches (initial
                          and final snapshots are always written)
  --wal-fsync <POLICY>    always | never | <N> (fsync every N appends)
                                                              [default: always]
  --recover               load the newest valid snapshot in --wal-dir, replay
                          the WAL suffix, truncate any torn tail, and continue
                          from that state

QUERY SERVICE (ANN):
  --ann                   build an HNSW index into every published embedding
                          snapshot, so top-k queries run in ~O(log n * d)
                          instead of a full scan
  --ann-m <M>             HNSW links per node and layer (layer 0: 2M)
                                                              [default: 16]
  --ann-ef-construction <N>
                          HNSW construction beam width        [default: 100]
  --ann-ef-search <N>     HNSW query beam width (recall knob) [default: 64]
  --ann-quantize          rank top-k candidates through int8 codes (4x less
                          scan bandwidth), re-scoring the best k*rerank in
                          f32 so reported scores stay exact; requires --ann
  --ann-rerank <N>        f32 re-rank budget per requested result under
                          --ann-quantize                      [default: 4]
  --ann-full-rebuild      rebuild the HNSW index from scratch every publish
                          instead of grafting the previous epoch's graph and
                          re-inserting only drifted/new nodes
  --ann-drift-threshold <X>
                          L2 drift (between normalized vectors) above which
                          an incremental publish re-inserts a node
                                                              [default: 0.05]

SERVING (wire protocol):
  --serve <ADDR>          after training/recovery, serve vector / cosine /
                          top_k / top_k_batch / metrics / epoch over a
                          length-prefixed binary protocol until stdin closes.
                          ADDR is host:port, or unix:<path> for a Unix socket
  --serve-max-inflight <N>
                          data-plane admission bound; excess requests get a
                          typed Overloaded reply              [default: 64]

OUTPUT:
  --output <FILE>         embeddings in word2vec text format (required unless
                          --serve is given)
  --metrics-json <FILE>   dump the engine telemetry snapshot (counters, gauges
                          and latency quantiles for the ingest, engine, query
                          and serving planes) as JSON after the run
  --help                  print this help
";

struct Args {
    map: std::collections::HashMap<String, String>,
}

impl Args {
    fn parse() -> Result<Self, UniNetError> {
        let mut map = std::collections::HashMap::new();
        let mut iter = std::env::args().skip(1).peekable();
        while let Some(arg) = iter.next() {
            if arg == "--help" || arg == "-h" {
                map.insert("help".to_string(), "1".to_string());
                continue;
            }
            if let Some(flag) = [
                "directed-updates",
                "incremental-train",
                "allow-churn",
                "ann",
                "ann-quantize",
                "ann-full-rebuild",
                "recover",
            ]
            .iter()
            .find(|f| arg == format!("--{f}"))
            {
                map.insert(flag.to_string(), "1".to_string());
                continue;
            }
            let Some(key) = arg.strip_prefix("--") else {
                return Err(UniNetError::invalid_argument(
                    arg.clone(),
                    "unexpected positional argument (flags start with --)",
                ));
            };
            let value = iter.next().ok_or_else(|| {
                UniNetError::invalid_argument(key.to_string(), "the flag expects a value")
            })?;
            map.insert(key.to_string(), value);
        }
        Ok(Args { map })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, UniNetError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                UniNetError::invalid_argument(
                    key.to_string(),
                    format!(
                        "cannot parse {v:?} as {}",
                        std::any::type_name::<T>()
                            .rsplit("::")
                            .next()
                            .unwrap_or("number")
                    ),
                )
            }),
        }
    }
}

/// Builds the synthetic graph; `--input` files are loaded by the engine
/// builder itself so their errors carry file context.
fn build_graph(args: &Args) -> Result<Graph, UniNetError> {
    let nodes: usize = args.parse_or("nodes", 10_000)?;
    let mean_degree: f64 = args.parse_or("mean-degree", 10.0)?;
    let seed: u64 = args.parse_or("seed", 42u64)?;
    match args.get("synthetic").unwrap_or("rmat") {
        "ba" => Ok(barabasi_albert(
            nodes,
            (mean_degree / 2.0).max(1.0) as usize,
            true,
            seed,
        )),
        "rmat" => Ok(rmat(&RmatConfig {
            num_nodes: nodes,
            num_edges: ((nodes as f64 * mean_degree) / 2.0) as usize,
            weighted: true,
            seed,
            ..Default::default()
        })),
        other => Err(UniNetError::invalid_argument(
            "synthetic",
            format!("unknown generator {other:?} (expected rmat or ba)"),
        )),
    }
}

fn build_spec(args: &Args) -> Result<ModelSpec, UniNetError> {
    let p: f32 = args.parse_or("p", 1.0f32)?;
    let q: f32 = args.parse_or("q", 1.0f32)?;
    match args.get("model").unwrap_or("deepwalk") {
        "deepwalk" => Ok(ModelSpec::DeepWalk),
        "node2vec" => Ok(ModelSpec::Node2Vec { p, q }),
        "edge2vec" => Ok(ModelSpec::Edge2Vec { p, q }),
        "fairwalk" => Ok(ModelSpec::FairWalk { p, q }),
        "metapath2vec" => {
            let metapath: Vec<u16> = args
                .get("metapath")
                .unwrap_or("0,1,0")
                .split(',')
                .map(|t| {
                    t.trim().parse().map_err(|_| {
                        UniNetError::invalid_argument(
                            "metapath",
                            format!("bad node-type entry {t:?} (expected a small integer)"),
                        )
                    })
                })
                .collect::<Result<_, _>>()?;
            Ok(ModelSpec::MetaPath2Vec { metapath })
        }
        other => Err(UniNetError::invalid_argument(
            "model",
            format!(
                "unknown model {other:?} (expected deepwalk, node2vec, metapath2vec, \
                 edge2vec or fairwalk)"
            ),
        )),
    }
}

fn build_sampler(args: &Args) -> Result<EdgeSamplerKind, UniNetError> {
    Ok(match args.get("sampler").unwrap_or("mh-weight") {
        "mh-weight" => EdgeSamplerKind::MetropolisHastings(InitStrategy::high_weight_exact()),
        "mh-random" => EdgeSamplerKind::MetropolisHastings(InitStrategy::Random),
        "mh-burnin" => {
            EdgeSamplerKind::MetropolisHastings(InitStrategy::BurnIn { iterations: 100 })
        }
        "alias" => EdgeSamplerKind::Alias,
        "direct" => EdgeSamplerKind::Direct,
        "rejection" => EdgeSamplerKind::Rejection,
        "knightking" => EdgeSamplerKind::KnightKing,
        "memory-aware" => EdgeSamplerKind::MemoryAware,
        other => {
            return Err(UniNetError::invalid_argument(
                "sampler",
                format!("unknown sampler {other:?}"),
            ))
        }
    })
}

fn parse_fsync(args: &Args) -> Result<Option<FsyncPolicy>, UniNetError> {
    match args.get("wal-fsync") {
        None => Ok(None),
        Some("always") => Ok(Some(FsyncPolicy::Always)),
        Some("never") => Ok(Some(FsyncPolicy::Never)),
        Some(n) => match n.parse::<u32>() {
            Ok(every) if every > 0 => Ok(Some(FsyncPolicy::EveryN(every))),
            _ => Err(UniNetError::invalid_argument(
                "wal-fsync",
                format!("expected always, never or a positive integer, got {n:?}"),
            )),
        },
    }
}

/// Validates the CLI-level flag combinations around durability and serving:
/// typed errors, no panics.
fn validate(args: &Args) -> Result<(), UniNetError> {
    if args.get("recover").is_some() {
        if args.get("wal-dir").is_none() {
            return Err(UniNetError::invalid_argument(
                "recover",
                "requires --wal-dir <DIR> pointing at the log to recover from",
            ));
        }
        if args.get("input").is_some() {
            return Err(UniNetError::invalid_argument(
                "recover",
                "conflicts with --input; the graph is rebuilt from the WAL directory",
            ));
        }
    }
    if let Some(dir) = args.get("wal-dir") {
        // Surface an unusable directory as a CLI error before any training
        // work starts; the engine builder re-probes as a backstop.
        let path = std::path::Path::new(dir);
        std::fs::create_dir_all(path).map_err(|e| {
            UniNetError::invalid_argument("wal-dir", format!("cannot create {dir:?}: {e}"))
        })?;
        let probe = path.join(".uninet-write-probe");
        std::fs::write(&probe, b"probe")
            .and_then(|()| std::fs::remove_file(&probe))
            .map_err(|e| {
                UniNetError::invalid_argument("wal-dir", format!("{dir:?} is not writable: {e}"))
            })?;
    }
    if args.get("output").is_none() && args.get("serve").is_none() {
        return Err(UniNetError::invalid_argument(
            "output",
            "the flag is required unless --serve is given (see --help)",
        ));
    }
    if args.get("allow-churn").is_none() {
        for flag in ["cold-start-burn-in", "cold-start-boost"] {
            if args.get(flag).is_some() {
                return Err(UniNetError::invalid_argument(
                    flag.to_string(),
                    "cold-start knobs require --allow-churn (the closed-world \
                     stream has no arrivals to burn in)",
                ));
            }
        }
    }
    Ok(())
}

fn build_engine(args: &Args) -> Result<Engine, UniNetError> {
    let mut builder: EngineBuilder = Engine::builder()
        .model(build_spec(args)?)
        .num_walks(args.parse_or("num-walks", 10usize)?)
        .walk_length(args.parse_or("walk-length", 80usize)?)
        .threads(args.parse_or("threads", 16usize)?)
        .seed(args.parse_or("seed", 42u64)?)
        .sampler(build_sampler(args)?)
        .dim(args.parse_or("dim", 128usize)?)
        .epochs(args.parse_or("epochs", 1usize)?)
        .update_batch_size(args.parse_or("update-batch-size", 256usize)?)
        .compaction_threshold(args.parse_or("compaction-threshold", 1024usize)?)
        .symmetric_updates(args.get("directed-updates").is_none())
        // 0 = follow --threads, so ingestion, maintenance and walk refresh
        // honor the same worker count as walk generation.
        .ingest_threads(args.parse_or("ingest-threads", 0usize)?)
        .queue_capacity(args.parse_or("queue-capacity", 8usize)?)
        .incremental_train(args.get("incremental-train").is_some())
        .allow_churn(args.get("allow-churn").is_some())
        .cold_start_burn_in(args.parse_or("cold-start-burn-in", 2usize)?)
        .cold_start_boost(args.parse_or("cold-start-boost", 2.0f32)?)
        .ann_index(args.get("ann").is_some())
        .ann_m(args.parse_or("ann-m", 16usize)?)
        .ann_ef_construction(args.parse_or("ann-ef-construction", 100usize)?)
        .ann_ef_search(args.parse_or("ann-ef-search", 64usize)?)
        .ann_quantize(args.get("ann-quantize").is_some())
        .ann_rerank(args.parse_or("ann-rerank", 4usize)?)
        .ann_incremental(args.get("ann-full-rebuild").is_none())
        .ann_drift_threshold(args.parse_or("ann-drift-threshold", 0.05f32)?);
    if let Some(dir) = args.get("wal-dir") {
        if args.get("recover").is_some() {
            builder = builder.recover(dir);
        } else {
            builder = builder.wal(dir);
        }
        if args.get("snapshot-every").is_some() {
            builder = builder.snapshot_every(args.parse_or("snapshot-every", 0usize)?);
        }
        if let Some(policy) = parse_fsync(args)? {
            builder = builder.wal_fsync(policy);
        }
    } else if args.get("snapshot-every").is_some() || args.get("wal-fsync").is_some() {
        return Err(UniNetError::invalid_argument(
            "snapshot-every",
            "durability flags require --wal-dir <DIR>",
        ));
    }
    if args.get("recover").is_none() {
        builder = match args.get("input") {
            Some(path) => builder.graph_from_edge_list(path),
            None => builder.graph(build_graph(args)?),
        };
    }
    builder.build()
}

fn run() -> Result<(), UniNetError> {
    let args = Args::parse()?;
    if args.get("help").is_some() {
        print!("{HELP}");
        return Ok(());
    }
    validate(&args)?;

    let engine = build_engine(&args)?;
    eprintln!(
        "graph: {} nodes; model: {}; sampler: {:?}",
        engine.num_nodes(),
        engine.spec().name(),
        engine.config().walk.sampler,
    );
    if engine.streaming_config().ann_index {
        let s = engine.streaming_config();
        eprintln!(
            "query service: HNSW ANN per snapshot (M={}, ef_construction={}, ef_search={}, \
             {} publish, {} scoring, kernels={})",
            s.ann_m,
            s.ann_ef_construction,
            s.ann_ef_search,
            if s.ann_incremental {
                "incremental"
            } else {
                "full-rebuild"
            },
            if s.ann_quantize {
                "int8+f32-rerank"
            } else {
                "f32"
            },
            uninet_core::kernels::backend_name(),
        );
    }
    let mut recovered_ready = false;
    if let Some(summary) = engine.recovery() {
        recovered_ready = summary.restored_embeddings;
        eprintln!(
            "recovery: epoch {} restored in {:.1} ms (wal seq {}, {} batches / {} mutations \
             replayed, {} torn bytes truncated, {} corrupt snapshots skipped, embeddings {})",
            summary.epoch,
            summary.recovery_time.as_secs_f64() * 1e3,
            summary.last_wal_seq,
            summary.replayed_batches,
            summary.replayed_mutations,
            summary.truncated_tail_bytes,
            summary.snapshots_skipped,
            if summary.restored_embeddings {
                "restored"
            } else {
                "absent (will retrain)"
            },
        );
    }

    if let Some(updates_path) = args.get("updates") {
        // Under --allow-churn the stream is validated against the id
        // lifecycle up front (duplicate arrivals, retirements of unknown
        // ids, edge ops naming retired endpoints are typed errors with
        // line context); the closed-world reader stays lenient and lets
        // the engine reject any node op it encounters.
        let mutations = if args.get("allow-churn").is_some() {
            read_update_stream_validated_file(updates_path, engine.num_nodes())?
        } else {
            read_update_stream_file(updates_path)?
        };
        let streaming: &StreamingConfig = engine.streaming_config();
        eprintln!(
            "streaming mode: {} mutations in batches of {} (compaction threshold {}, \
             {} ingest threads, queue capacity {}, {} training)",
            mutations.len(),
            streaming.batch_size,
            streaming.compaction_threshold,
            if streaming.ingest_threads == 0 {
                engine.config().walk.num_threads
            } else {
                streaming.ingest_threads
            },
            streaming.queue_capacity,
            if streaming.incremental_train {
                "incremental"
            } else {
                "full-retrain"
            },
        );
        let outcome = engine.stream_blocking(mutations)?;
        let report = &outcome.report;
        eprintln!(
            "updates: {} weight + {} topology applied, {} rejected over {} batches \
             ({:.0} updates/s, {} compactions)",
            report.weight_mutations,
            report.topology_mutations,
            report.rejected_mutations,
            report.batches,
            report.update_throughput,
            report.compactions,
        );
        eprintln!(
            "maintenance: {} states rebuilt ({} bytes), {} M-H chains preserved, {} reset; \
             refresh: {} walks regenerated; queue: peak depth {}, {:.1} ms back-pressure",
            report.maintenance.states_rebuilt,
            report.maintenance.bytes_rebuilt,
            report.maintenance.chains_preserved,
            report.maintenance.chains_reset,
            report.refresh.walks_refreshed,
            report.queue.peak_depth,
            report.queue.producer_wait.as_secs_f64() * 1e3,
        );
        if report.queue.stalls > 0 {
            eprintln!(
                "back-pressure: producer stalled {} times waiting for queue slots \
                 (raise --queue-capacity or --ingest-threads to absorb bursts)",
                report.queue.stalls,
            );
        }
        if report.arrivals > 0 || report.retirements > 0 {
            eprintln!(
                "open world: {} arrivals ({} cold-started), {} retirements; \
                 universe now {} rows",
                report.arrivals,
                report.cold_starts,
                report.retirements,
                engine.snapshot().num_nodes(),
            );
        }
        if report.incremental_passes > 0 {
            eprintln!(
                "incremental training: {} passes over {} regenerated walks \
                 ({} snapshots served)",
                report.incremental_passes,
                report.incremental_walks_trained,
                report.snapshots_published,
            );
        }
        if let Some(durability) = &report.durability {
            eprintln!(
                "durability: {} batches logged ({} WAL bytes, last seq {}), {} snapshots{}",
                durability.batches_logged,
                durability.wal_bytes,
                durability.last_wal_seq,
                durability.snapshots_written,
                match &durability.wal_error {
                    Some(e) => format!("; DEGRADED: {e}"),
                    None => String::new(),
                },
            );
        }
        eprintln!(
            "walks: {} sequences, {} tokens; timing: {}",
            outcome.result.corpus.num_walks(),
            outcome.result.corpus.total_tokens(),
            outcome.result.timing,
        );
    } else if recovered_ready {
        eprintln!(
            "serving the recovered state as-is (epoch {}); pass --updates to keep streaming",
            engine.snapshot().epoch(),
        );
    } else {
        let report = engine.train()?;
        eprintln!(
            "walks: {} sequences, {} tokens; timing: {}",
            report.corpus.num_walks(),
            report.corpus.total_tokens(),
            report.timing,
        );
    }

    if let Some(output) = args.get("output") {
        save_embeddings(engine.snapshot().embeddings(), output)?;
        eprintln!("embeddings written to {output}");
    }

    if let Some(spec) = args.get("serve") {
        if engine.store().epoch() == 0 {
            return Err(UniNetError::invalid_argument(
                "serve",
                "the engine has no published embeddings to serve; train, stream or \
                 recover a state that includes embeddings first",
            ));
        }
        let addr = ServeAddr::parse(spec);
        let config = ServerConfig {
            max_inflight: args.parse_or("serve-max-inflight", 64usize)?,
        };
        let server = serve(&engine, &addr, config).map_err(|e| {
            UniNetError::invalid_argument("serve", format!("cannot bind {addr}: {e}"))
        })?;
        eprintln!(
            "serving on {} (epoch {}); close stdin or send EOF to stop",
            server.addr(),
            engine.store().epoch(),
        );
        // Block until the operator closes stdin (or the process is killed —
        // the WAL makes that survivable).
        let mut drain = [0u8; 4096];
        let mut stdin = std::io::stdin().lock();
        while matches!(stdin.read(&mut drain), Ok(n) if n > 0) {}
        eprintln!("stdin closed; shutting down the server");
        server.shutdown();
    }

    if let Some(path) = args.get("metrics-json") {
        std::fs::write(path, engine.metrics().to_json())?;
        eprintln!("telemetry snapshot written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
