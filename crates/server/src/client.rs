//! A small blocking client for the wire protocol — used by the integration
//! tests and the CI kill-and-recover smoke, and usable as a library for
//! anything that wants to talk to a running `uninet --serve` instance.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;

use uninet_embedding::QueryMode;

use crate::proto::{read_frame, write_frame, ErrorCode, ProtoError, Request, Response};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server sent something this client cannot parse, closed the
    /// connection mid-exchange, or answered with the wrong response type.
    Protocol(String),
    /// The server refused the request.
    Rejected {
        /// The typed refusal.
        code: ErrorCode,
        /// Server-provided context.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Rejected { code, message } => {
                write!(f, "rejected ({code:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Protocol(e.reason)
    }
}

impl ClientError {
    /// True when the server answered with a typed `Overloaded` rejection.
    pub fn is_overloaded(&self) -> bool {
        matches!(
            self,
            ClientError::Rejected {
                code: ErrorCode::Overloaded,
                ..
            }
        )
    }

    /// True when the server refused because the id was never part of the
    /// served universe.
    pub fn is_unknown_node(&self) -> bool {
        matches!(
            self,
            ClientError::Rejected {
                code: ErrorCode::UnknownNode,
                ..
            }
        )
    }

    /// True when the server refused because the id was retired from the
    /// universe (the row exists but must not be served).
    pub fn is_retired_node(&self) -> bool {
        matches!(
            self,
            ClientError::Rejected {
                code: ErrorCode::RetiredNode,
                ..
            }
        )
    }
}

/// A blocking connection to a serving instance. One request in flight at a
/// time per client; open several clients for concurrency.
pub struct Client<S> {
    stream: S,
}

impl Client<TcpStream> {
    /// Connects over TCP.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }
}

impl Client<UnixStream> {
    /// Connects over a Unix-domain socket.
    pub fn connect_unix(path: impl AsRef<Path>) -> Result<Self, ClientError> {
        Ok(Client {
            stream: UnixStream::connect(path)?,
        })
    }
}

impl<S: Read + Write> Client<S> {
    /// Wraps an already-connected stream.
    pub fn from_stream(stream: S) -> Self {
        Client { stream }
    }

    /// Mutable access to the underlying stream, for callers that need to
    /// speak raw frames (tests, protocol probes).
    pub fn stream_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".to_string()))?;
        match Response::decode(&payload)? {
            Response::Error { code, message } => Err(ClientError::Rejected { code, message }),
            other => Ok(other),
        }
    }

    /// The embedding vector of `node`, with the epoch it was read from.
    /// Unknown or retired ids are refused with a typed
    /// [`ClientError::Rejected`]; `None` survives in the signature only for
    /// older servers that answered out-of-range lookups with an empty body.
    pub fn vector(&mut self, node: u32) -> Result<(u64, Option<Vec<f32>>), ClientError> {
        match self.call(&Request::Vector { node })? {
            Response::Vector { epoch, vector } => Ok((epoch, vector)),
            other => Err(unexpected("vector", &other)),
        }
    }

    /// Cosine similarity of `a` and `b`, with the serving epoch.
    pub fn cosine(&mut self, a: u32, b: u32) -> Result<(u64, Option<f32>), ClientError> {
        match self.call(&Request::Cosine { a, b })? {
            Response::Cosine { epoch, value } => Ok((epoch, value)),
            other => Err(unexpected("cosine", &other)),
        }
    }

    /// The `k` nearest neighbors of `node`, with the serving epoch.
    pub fn top_k(
        &mut self,
        node: u32,
        k: u32,
        mode: QueryMode,
    ) -> Result<(u64, Vec<(u32, f32)>), ClientError> {
        match self.call(&Request::TopK { node, k, mode })? {
            Response::TopK { epoch, neighbors } => Ok((epoch, neighbors)),
            other => Err(unexpected("top_k", &other)),
        }
    }

    /// Top-k for a whole slab of nodes, answered from one snapshot.
    #[allow(clippy::type_complexity)]
    pub fn top_k_batch(
        &mut self,
        nodes: &[u32],
        k: u32,
        mode: QueryMode,
    ) -> Result<(u64, Vec<Vec<(u32, f32)>>), ClientError> {
        match self.call(&Request::TopKBatch {
            nodes: nodes.to_vec(),
            k,
            mode,
        })? {
            Response::TopKBatch { epoch, rows } => Ok((epoch, rows)),
            other => Err(unexpected("top_k_batch", &other)),
        }
    }

    /// The server's full telemetry snapshot as JSON.
    pub fn metrics_json(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { json } => Ok(json),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// The current serving epoch.
    pub fn epoch(&mut self) -> Result<u64, ClientError> {
        match self.call(&Request::Epoch)? {
            Response::Epoch { epoch } => Ok(epoch),
            other => Err(unexpected("epoch", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected a {wanted} response, got {got:?}"))
}
