//! Edge value types used by the builder and by iteration over CSR graphs.

use crate::NodeId;

/// An owned edge used while building a graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Static edge weight (`w_{uv}` in the paper).
    pub weight: f32,
    /// Optional edge type (heterogeneous networks); `u16::MAX` means untyped.
    pub edge_type: u16,
}

impl Edge {
    /// Creates an untyped weighted edge.
    pub fn new(src: NodeId, dst: NodeId, weight: f32) -> Self {
        Edge {
            src,
            dst,
            weight,
            edge_type: u16::MAX,
        }
    }

    /// Creates a typed weighted edge.
    pub fn typed(src: NodeId, dst: NodeId, weight: f32, edge_type: u16) -> Self {
        Edge {
            src,
            dst,
            weight,
            edge_type,
        }
    }

    /// Returns the edge with source and destination swapped (same weight/type).
    pub fn reversed(&self) -> Self {
        Edge {
            src: self.dst,
            dst: self.src,
            weight: self.weight,
            edge_type: self.edge_type,
        }
    }
}

/// A borrowed view of one out-edge of a node inside a CSR graph.
///
/// `EdgeRef` is what the random-walk layer sees when it asks for "the k-th
/// neighbor edge of node v": it carries the destination, the static weight and
/// the global edge index (used as the affixture part of second-order walker
/// states).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRef {
    /// Source node (the node whose adjacency list this edge belongs to).
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Static edge weight.
    pub weight: f32,
    /// Position of this edge inside `src`'s adjacency list (0-based).
    pub local_idx: u32,
    /// Global index into the CSR edge arrays.
    pub global_idx: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_new_is_untyped() {
        let e = Edge::new(1, 2, 0.5);
        assert_eq!(e.src, 1);
        assert_eq!(e.dst, 2);
        assert_eq!(e.weight, 0.5);
        assert_eq!(e.edge_type, u16::MAX);
    }

    #[test]
    fn edge_typed_keeps_type() {
        let e = Edge::typed(3, 4, 2.0, 7);
        assert_eq!(e.edge_type, 7);
    }

    #[test]
    fn edge_reversed_swaps_endpoints() {
        let e = Edge::typed(3, 4, 2.0, 7);
        let r = e.reversed();
        assert_eq!(r.src, 4);
        assert_eq!(r.dst, 3);
        assert_eq!(r.weight, 2.0);
        assert_eq!(r.edge_type, 7);
    }
}
