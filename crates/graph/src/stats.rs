//! Summary statistics of a graph, used to regenerate Table V of the paper.

use crate::csr::Graph;
use crate::NodeId;

/// Dataset statistics in the shape of the paper's Table V.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes |V|.
    pub num_nodes: usize,
    /// Number of directed edges |E| stored in CSR.
    pub num_edges: usize,
    /// Mean out-degree.
    pub mean_degree: f64,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Number of isolated nodes (degree 0).
    pub isolated_nodes: usize,
    /// Number of distinct node types.
    pub num_node_types: u16,
    /// Number of distinct edge types.
    pub num_edge_types: u16,
    /// Ratio of the maximum static edge weight to the minimum (1.0 when
    /// unweighted); this is the skew quantity that drives Theorem 3.
    pub weight_skew: f64,
}

impl GraphStats {
    /// Computes statistics from a graph.
    pub fn compute(graph: &Graph) -> Self {
        let num_nodes = graph.num_nodes();
        let num_edges = graph.num_edges();
        let mut max_degree = 0usize;
        let mut isolated = 0usize;
        let mut wmin = f64::INFINITY;
        let mut wmax: f64 = 0.0;
        for v in 0..num_nodes as NodeId {
            let d = graph.degree(v);
            max_degree = max_degree.max(d);
            if d == 0 {
                isolated += 1;
            }
            for &w in graph.weights(v) {
                let w = w as f64;
                if w > 0.0 {
                    wmin = wmin.min(w);
                    wmax = wmax.max(w);
                }
            }
        }
        let weight_skew = if num_edges == 0 || !wmin.is_finite() || wmin == 0.0 {
            1.0
        } else {
            wmax / wmin
        };
        GraphStats {
            num_nodes,
            num_edges,
            mean_degree: graph.mean_degree(),
            max_degree,
            isolated_nodes: isolated,
            num_node_types: graph.num_node_types(),
            num_edge_types: graph.num_edge_types(),
            weight_skew,
        }
    }

    /// Renders one row of a Table-V-like markdown table.
    pub fn to_table_row(&self, name: &str) -> String {
        format!(
            "| {} | {} | {} | {:.2} | {} |",
            name, self.num_nodes, self.num_edges, self.mean_degree, self.num_node_types
        )
    }
}

/// Degree distribution histogram with logarithmic (powers-of-two) buckets.
///
/// Useful for verifying that generated graphs have the skewed degree
/// distributions that the paper's samplers are sensitive to.
#[derive(Debug, Clone, Default)]
pub struct DegreeHistogram {
    /// `buckets[i]` counts nodes with degree in `[2^i, 2^(i+1))` (bucket 0 is degree 0..2).
    pub buckets: Vec<usize>,
}

impl DegreeHistogram {
    /// Builds the histogram for a graph.
    pub fn compute(graph: &Graph) -> Self {
        let mut buckets: Vec<usize> = Vec::new();
        for v in 0..graph.num_nodes() as NodeId {
            let d = graph.degree(v);
            let bucket = if d == 0 {
                0
            } else {
                (usize::BITS - d.leading_zeros()) as usize
            };
            if buckets.len() <= bucket {
                buckets.resize(bucket + 1, 0);
            }
            buckets[bucket] += 1;
        }
        DegreeHistogram { buckets }
    }

    /// Total number of nodes counted.
    pub fn total(&self) -> usize {
        self.buckets.iter().sum()
    }

    /// Gini-style skew indicator: fraction of nodes in the top bucket range
    /// (degree >= 2^(max_bucket-2)). Larger means heavier tail.
    pub fn tail_fraction(&self) -> f64 {
        if self.buckets.is_empty() {
            return 0.0;
        }
        let cut = self.buckets.len().saturating_sub(2);
        let tail: usize = self.buckets[cut..].iter().sum();
        tail as f64 / self.total().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn star(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        for i in 1..n as NodeId {
            b.add_edge(0, i, i as f32);
        }
        b.symmetric(true).build()
    }

    #[test]
    fn stats_of_star() {
        let g = star(11);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_nodes, 11);
        assert_eq!(s.num_edges, 20);
        assert_eq!(s.max_degree, 10);
        assert_eq!(s.isolated_nodes, 0);
        assert_eq!(s.num_node_types, 1);
        assert!((s.mean_degree - 20.0 / 11.0).abs() < 1e-9);
        assert!((s.weight_skew - 10.0).abs() < 1e-9);
    }

    #[test]
    fn stats_unweighted_skew_is_one() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        let g = b.symmetric(true).build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.weight_skew, 1.0);
    }

    #[test]
    fn stats_counts_isolated() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.set_num_nodes(4);
        let g = b.symmetric(true).build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.isolated_nodes, 2);
    }

    #[test]
    fn table_row_contains_counts() {
        let g = star(4);
        let s = GraphStats::compute(&g);
        let row = s.to_table_row("Star4");
        assert!(row.contains("Star4"));
        assert!(row.contains("| 4 |"));
    }

    #[test]
    fn degree_histogram_sums_to_nodes() {
        let g = star(17);
        let h = DegreeHistogram::compute(&g);
        assert_eq!(h.total(), 17);
        assert!(h.tail_fraction() > 0.0);
    }

    #[test]
    fn empty_graph_stats() {
        let mut b = GraphBuilder::new();
        b.set_num_nodes(3);
        let g = b.build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_edges, 0);
        assert_eq!(s.weight_skew, 1.0);
        assert_eq!(s.max_degree, 0);
    }
}
