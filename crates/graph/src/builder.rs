//! Incremental graph construction, producing CSR [`Graph`]s.

use crate::csr::Graph;
use crate::edge::Edge;
use crate::hetero::TypeRegistry;
use crate::NodeId;

/// Builds a [`Graph`] from a stream of edges.
///
/// The builder collects edges in an edge list, then sorts them into CSR form.
/// Duplicate edges are kept unless [`GraphBuilder::dedup`] is enabled, in
/// which case duplicate (src, dst) pairs are merged by summing their weights.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    edges: Vec<Edge>,
    node_types: Vec<u16>,
    num_nodes: usize,
    symmetric: bool,
    dedup: bool,
    registry: TypeRegistry,
    has_edge_types: bool,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-allocates space for `n` edges.
    pub fn with_capacity(n: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(n),
            ..Self::default()
        }
    }

    /// If `true` (default `false`), every added edge is mirrored so the
    /// resulting graph is undirected in the CSR sense.
    pub fn symmetric(&mut self, yes: bool) -> &mut Self {
        self.symmetric = yes;
        self
    }

    /// If `true` (default `false`), duplicate (src, dst) pairs are merged by
    /// summing their weights during `build`.
    pub fn dedup(&mut self, yes: bool) -> &mut Self {
        self.dedup = yes;
        self
    }

    /// Declares that the graph has at least `n` nodes (to include isolated
    /// trailing nodes that never appear in an edge).
    pub fn set_num_nodes(&mut self, n: usize) -> &mut Self {
        self.num_nodes = self.num_nodes.max(n);
        self
    }

    /// Adds a weighted edge.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: f32) -> &mut Self {
        self.push(Edge::new(src, dst, weight))
    }

    /// Adds a weighted, typed edge.
    pub fn add_typed_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        weight: f32,
        edge_type: u16,
    ) -> &mut Self {
        self.has_edge_types = true;
        self.push(Edge::typed(src, dst, weight, edge_type))
    }

    /// Adds a pre-built [`Edge`].
    pub fn push(&mut self, e: Edge) -> &mut Self {
        self.num_nodes = self.num_nodes.max(e.src.max(e.dst) as usize + 1);
        self.edges.push(e);
        self
    }

    /// Sets the node type of `v`. Nodes default to type 0.
    pub fn set_node_type(&mut self, v: NodeId, t: u16) -> &mut Self {
        let v = v as usize;
        if self.node_types.len() <= v {
            self.node_types.resize(v + 1, 0);
        }
        self.node_types[v] = t;
        self.num_nodes = self.num_nodes.max(v + 1);
        self
    }

    /// Sets node types for all nodes at once (index = node id).
    pub fn set_node_types(&mut self, types: Vec<u16>) -> &mut Self {
        self.num_nodes = self.num_nodes.max(types.len());
        self.node_types = types;
        self
    }

    /// Access to the type-name registry (names are optional).
    pub fn registry_mut(&mut self) -> &mut TypeRegistry {
        &mut self.registry
    }

    /// Number of edges currently buffered (before mirroring).
    pub fn num_buffered_edges(&self) -> usize {
        self.edges.len()
    }

    /// Consumes the builder and produces the CSR graph.
    pub fn build(&mut self) -> Graph {
        let mut edges = std::mem::take(&mut self.edges);
        if self.symmetric {
            let mirrored: Vec<Edge> = edges.iter().map(Edge::reversed).collect();
            edges.extend(mirrored);
        }
        let n = self.num_nodes;

        // Counting sort by source node, then sort each adjacency list by dst.
        let mut degree = vec![0usize; n];
        for e in &edges {
            degree[e.src as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let m = edges.len();
        let mut neighbors = vec![0 as NodeId; m];
        let mut weights = vec![0f32; m];
        let mut etypes = if self.has_edge_types {
            vec![0u16; m]
        } else {
            Vec::new()
        };
        let mut cursor = offsets.clone();
        for e in &edges {
            let pos = cursor[e.src as usize];
            neighbors[pos] = e.dst;
            weights[pos] = e.weight;
            if self.has_edge_types {
                etypes[pos] = if e.edge_type == u16::MAX {
                    0
                } else {
                    e.edge_type
                };
            }
            cursor[e.src as usize] += 1;
        }
        // Sort each adjacency list by destination id.
        for v in 0..n {
            let range = offsets[v]..offsets[v + 1];
            let mut idx: Vec<usize> = range.clone().collect();
            idx.sort_unstable_by_key(|&i| neighbors[i]);
            let nb: Vec<NodeId> = idx.iter().map(|&i| neighbors[i]).collect();
            let ws: Vec<f32> = idx.iter().map(|&i| weights[i]).collect();
            neighbors[range.clone()].copy_from_slice(&nb);
            weights[range.clone()].copy_from_slice(&ws);
            if self.has_edge_types {
                let et: Vec<u16> = idx.iter().map(|&i| etypes[i]).collect();
                etypes[range].copy_from_slice(&et);
            }
        }

        if self.dedup {
            let (o, nbr, w, et) = dedup_csr(
                &offsets,
                &neighbors,
                &weights,
                if self.has_edge_types {
                    Some(&etypes)
                } else {
                    None
                },
            );
            offsets = o;
            neighbors = nbr;
            weights = w;
            if let Some(et) = et {
                etypes = et;
            }
        }

        let mut node_types = std::mem::take(&mut self.node_types);
        if !node_types.is_empty() && node_types.len() < n {
            node_types.resize(n, 0);
        }
        let num_node_types = node_types.iter().copied().max().map(|m| m + 1).unwrap_or(1);
        let num_edge_types = if self.has_edge_types {
            etypes.iter().copied().max().map(|m| m + 1).unwrap_or(0)
        } else {
            0
        };

        Graph::from_csr_parts(
            offsets,
            neighbors,
            weights,
            node_types,
            etypes,
            num_node_types,
            num_edge_types,
            std::mem::take(&mut self.registry),
        )
    }
}

/// Merges duplicate (src, dst) entries in already-sorted CSR arrays,
/// summing weights. Edge types keep the first occurrence's type.
#[allow(clippy::type_complexity)]
fn dedup_csr(
    offsets: &[usize],
    neighbors: &[NodeId],
    weights: &[f32],
    edge_types: Option<&[u16]>,
) -> (Vec<usize>, Vec<NodeId>, Vec<f32>, Option<Vec<u16>>) {
    let n = offsets.len() - 1;
    let mut new_offsets = vec![0usize; n + 1];
    let mut new_neighbors = Vec::with_capacity(neighbors.len());
    let mut new_weights = Vec::with_capacity(weights.len());
    let mut new_etypes = edge_types.map(|_| Vec::with_capacity(weights.len()));
    for v in 0..n {
        let range = offsets[v]..offsets[v + 1];
        let mut last: Option<NodeId> = None;
        for i in range {
            let dst = neighbors[i];
            if last == Some(dst) {
                *new_weights.last_mut().unwrap() += weights[i];
            } else {
                new_neighbors.push(dst);
                new_weights.push(weights[i]);
                if let (Some(et), Some(src)) = (new_etypes.as_mut(), edge_types) {
                    et.push(src[i]);
                }
                last = Some(dst);
            }
        }
        new_offsets[v + 1] = new_neighbors.len();
    }
    (new_offsets, new_neighbors, new_weights, new_etypes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_build_preserves_direction() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 1.0);
        let g = b.build();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 0);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn symmetric_build_mirrors_edges() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.5);
        let g = b.symmetric(true).build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.weight_at(1, 0), 1.5);
    }

    #[test]
    fn dedup_merges_weights() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 1, 2.0);
        b.add_edge(0, 2, 1.0);
        let g = b.dedup(true).build();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.weight_at(0, 0), 3.0);
    }

    #[test]
    fn adjacency_lists_are_sorted() {
        let mut b = GraphBuilder::new();
        for dst in [5u32, 3, 9, 1, 7] {
            b.add_edge(0, dst, dst as f32);
        }
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 3, 5, 7, 9]);
        // weights must follow the permutation
        assert_eq!(g.weights(0), &[1.0, 3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn node_types_and_edge_types_are_kept() {
        let mut b = GraphBuilder::new();
        b.add_typed_edge(0, 1, 1.0, 2);
        b.add_typed_edge(1, 2, 1.0, 0);
        b.set_node_type(0, 0);
        b.set_node_type(1, 1);
        b.set_node_type(2, 2);
        let g = b.symmetric(true).build();
        assert_eq!(g.num_node_types(), 3);
        assert_eq!(g.num_edge_types(), 3);
        assert!(g.is_heterogeneous());
        assert_eq!(g.node_type(1), 1);
        assert_eq!(g.edge_type_at(0, 0), 2);
        // mirrored edge keeps the type
        assert_eq!(g.edge_type_at(1, g.find_neighbor(1, 0).unwrap()), 2);
    }

    #[test]
    fn isolated_nodes_via_set_num_nodes() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1, 1.0);
        b.set_num_nodes(10);
        let g = b.build();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn with_capacity_and_buffered_count() {
        let mut b = GraphBuilder::with_capacity(8);
        b.add_edge(0, 1, 1.0);
        assert_eq!(b.num_buffered_edges(), 1);
    }

    #[test]
    fn builder_registry_names() {
        let mut b = GraphBuilder::new();
        let author = b.registry_mut().node_type_id("author");
        let paper = b.registry_mut().node_type_id("paper");
        b.add_edge(0, 1, 1.0);
        b.set_node_type(0, author);
        b.set_node_type(1, paper);
        let g = b.build();
        assert_eq!(g.type_registry().node_type_name(author), Some("author"));
        assert_eq!(g.type_registry().node_type_name(paper), Some("paper"));
    }
}
