//! Reading and writing graphs.
//!
//! Two formats are supported:
//! * a plain-text edge list (`src dst [weight] [edge_type]`, whitespace
//!   separated, `#`-prefixed comment lines ignored) compatible with the
//!   formats used by the DeepWalk / node2vec reference implementations, and
//! * a compact little-endian binary snapshot of the CSR arrays, useful for
//!   caching large generated graphs between benchmark runs.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::hetero::TypeRegistry;
use crate::{GraphError, NodeId, Result};

/// Magic bytes identifying a binary graph snapshot.
const MAGIC: &[u8; 8] = b"UNINETG1";

/// Options controlling edge-list parsing.
#[derive(Debug, Clone, Copy)]
pub struct EdgeListOptions {
    /// Treat the input as undirected (mirror every edge).
    pub symmetric: bool,
    /// Merge duplicate edges by summing weights.
    pub dedup: bool,
    /// Default weight when a line has no weight column.
    pub default_weight: f32,
}

impl Default for EdgeListOptions {
    fn default() -> Self {
        EdgeListOptions {
            symmetric: true,
            dedup: false,
            default_weight: 1.0,
        }
    }
}

/// Parses an edge list from any reader.
pub fn read_edge_list<R: Read>(reader: R, opts: EdgeListOptions) -> Result<Graph> {
    let mut builder = GraphBuilder::new();
    builder.symmetric(opts.symmetric).dedup(opts.dedup);
    let buf = BufReader::new(reader);
    let mut line_buf = String::new();
    let mut reader = buf;
    let mut line_no = 0usize;
    loop {
        line_buf.clear();
        let n = reader.read_line(&mut line_buf)?;
        if n == 0 {
            break;
        }
        line_no += 1;
        let line = line_buf.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let src = parse_node(it.next(), line_no, line)?;
        let dst = parse_node(it.next(), line_no, line)?;
        let weight = match it.next() {
            Some(tok) => tok.parse::<f32>().map_err(|_| GraphError::Parse {
                line: line_no,
                content: line.to_string(),
            })?,
            None => opts.default_weight,
        };
        match it.next() {
            Some(tok) => {
                let et = tok.parse::<u16>().map_err(|_| GraphError::Parse {
                    line: line_no,
                    content: line.to_string(),
                })?;
                builder.add_typed_edge(src, dst, weight, et);
            }
            None => {
                builder.add_edge(src, dst, weight);
            }
        }
    }
    Ok(builder.build())
}

fn parse_node(tok: Option<&str>, line: usize, content: &str) -> Result<NodeId> {
    tok.and_then(|t| t.parse::<NodeId>().ok())
        .ok_or_else(|| GraphError::Parse {
            line,
            content: content.to_string(),
        })
}

/// Reads an edge-list file from disk; errors carry the path for context.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P, opts: EdgeListOptions) -> Result<Graph> {
    let path = path.as_ref();
    let attach = |e: GraphError| e.with_path(path);
    let file = std::fs::File::open(path)
        .map_err(GraphError::from)
        .map_err(attach)?;
    read_edge_list(file, opts).map_err(attach)
}

/// Writes the graph as a plain-text edge list (`src dst weight`), one directed
/// edge per line.
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    for (src, dst, weight) in graph.all_edges() {
        writeln!(w, "{src} {dst} {weight}")?;
    }
    w.flush()?;
    Ok(())
}

/// Serializes the graph into a binary snapshot.
pub fn to_bytes(graph: &Graph) -> Bytes {
    let mut buf = BytesMut::with_capacity(graph.memory_bytes() + 64);
    buf.put_slice(MAGIC);
    buf.put_u64_le(graph.num_nodes() as u64);
    buf.put_u64_le(graph.num_edges() as u64);
    buf.put_u16_le(graph.num_node_types());
    buf.put_u16_le(graph.num_edge_types());
    let has_node_types = !graph.raw_node_types().is_empty();
    let has_edge_types = !graph.raw_edge_types().is_empty();
    buf.put_u8(u8::from(has_node_types));
    buf.put_u8(u8::from(has_edge_types));
    for v in 0..=graph.num_nodes() {
        buf.put_u64_le(graph.offsets()[v] as u64);
    }
    for &n in graph.raw_neighbors() {
        buf.put_u32_le(n);
    }
    for &w in graph.raw_weights() {
        buf.put_f32_le(w);
    }
    if has_node_types {
        for &t in graph.raw_node_types() {
            buf.put_u16_le(t);
        }
    }
    if has_edge_types {
        for &t in graph.raw_edge_types() {
            buf.put_u16_le(t);
        }
    }
    buf.freeze()
}

/// Deserializes a graph from a binary snapshot produced by [`to_bytes`].
pub fn from_bytes(mut data: &[u8]) -> Result<Graph> {
    if data.len() < 8 || &data[..8] != MAGIC {
        return Err(GraphError::Corrupt("missing magic header".into()));
    }
    data.advance(8);
    if data.remaining() < 8 * 2 + 2 * 2 + 2 {
        return Err(GraphError::Corrupt("truncated header".into()));
    }
    let num_nodes = data.get_u64_le() as usize;
    let num_edges = data.get_u64_le() as usize;
    let num_node_types = data.get_u16_le();
    let num_edge_types = data.get_u16_le();
    let has_node_types = data.get_u8() != 0;
    let has_edge_types = data.get_u8() != 0;

    let need = (num_nodes + 1) * 8
        + num_edges * 4
        + num_edges * 4
        + if has_node_types { num_nodes * 2 } else { 0 }
        + if has_edge_types { num_edges * 2 } else { 0 };
    if data.remaining() < need {
        return Err(GraphError::Corrupt(format!(
            "truncated body: need {need} bytes, have {}",
            data.remaining()
        )));
    }

    let mut offsets = Vec::with_capacity(num_nodes + 1);
    for _ in 0..=num_nodes {
        offsets.push(data.get_u64_le() as usize);
    }
    let mut neighbors = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        neighbors.push(data.get_u32_le());
    }
    let mut weights = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        weights.push(data.get_f32_le());
    }
    let mut node_types = Vec::new();
    if has_node_types {
        node_types.reserve(num_nodes);
        for _ in 0..num_nodes {
            node_types.push(data.get_u16_le());
        }
    }
    let mut edge_types = Vec::new();
    if has_edge_types {
        edge_types.reserve(num_edges);
        for _ in 0..num_edges {
            edge_types.push(data.get_u16_le());
        }
    }

    if *offsets.last().unwrap_or(&0) != num_edges {
        return Err(GraphError::Corrupt(
            "offset array inconsistent with edge count".into(),
        ));
    }
    let g = Graph::from_csr_parts(
        offsets,
        neighbors,
        weights,
        node_types,
        edge_types,
        num_node_types,
        num_edge_types,
        TypeRegistry::new(),
    );
    g.validate()?;
    Ok(g)
}

/// Writes the binary snapshot of a graph to a file; errors carry the path.
pub fn write_binary_file<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<()> {
    let path = path.as_ref();
    let bytes = to_bytes(graph);
    std::fs::write(path, &bytes).map_err(|e| GraphError::from(e).with_path(path))?;
    Ok(())
}

/// Reads a binary snapshot of a graph from a file; errors carry the path.
pub fn read_binary_file<P: AsRef<Path>>(path: P) -> Result<Graph> {
    let path = path.as_ref();
    let data = std::fs::read(path).map_err(|e| GraphError::from(e).with_path(path))?;
    from_bytes(&data).map_err(|e| e.with_path(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample_graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_typed_edge(0, 1, 1.0, 0);
        b.add_typed_edge(1, 2, 2.0, 1);
        b.add_typed_edge(2, 3, 0.5, 0);
        b.set_node_types(vec![0, 1, 0, 1]);
        b.symmetric(true).build()
    }

    #[test]
    fn edge_list_roundtrip() {
        let text = "# a comment\n0 1 2.5\n1 2\n% another comment\n2 0 1.5\n";
        let g = read_edge_list(text.as_bytes(), EdgeListOptions::default()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.weight_at(0, g.find_neighbor(0, 1).unwrap()), 2.5);
        assert_eq!(g.weight_at(1, g.find_neighbor(1, 2).unwrap()), 1.0);

        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(
            out.as_slice(),
            EdgeListOptions {
                symmetric: false,
                dedup: false,
                default_weight: 1.0,
            },
        )
        .unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.num_nodes(), g.num_nodes());
    }

    #[test]
    fn edge_list_with_types() {
        let text = "0 1 1.0 2\n1 2 1.0 0\n";
        let g = read_edge_list(text.as_bytes(), EdgeListOptions::default()).unwrap();
        assert_eq!(g.num_edge_types(), 3);
        assert_eq!(g.edge_type_at(0, 0), 2);
    }

    #[test]
    fn edge_list_parse_error_reports_line() {
        let text = "0 1\nnot an edge\n";
        let err = read_edge_list(text.as_bytes(), EdgeListOptions::default()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn binary_roundtrip_preserves_everything() {
        let g = sample_graph();
        let bytes = to_bytes(&g);
        let g2 = from_bytes(&bytes).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.num_node_types(), g.num_node_types());
        assert_eq!(g2.num_edge_types(), g.num_edge_types());
        for v in 0..g.num_nodes() as NodeId {
            assert_eq!(g2.neighbors(v), g.neighbors(v));
            assert_eq!(g2.weights(v), g.weights(v));
            assert_eq!(g2.node_type(v), g.node_type(v));
            assert_eq!(g2.edge_types_of(v), g.edge_types_of(v));
        }
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(from_bytes(b"garbage").is_err());
        let g = sample_graph();
        let bytes = to_bytes(&g);
        // Truncate the body.
        assert!(from_bytes(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn binary_file_roundtrip() {
        let g = sample_graph();
        let dir = std::env::temp_dir().join("uninet_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        write_binary_file(&g, &path).unwrap();
        let g2 = read_binary_file(&path).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        std::fs::remove_file(path).ok();
    }
}
