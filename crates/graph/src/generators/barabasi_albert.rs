//! Barabási–Albert preferential-attachment generator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::Graph;
use crate::{GraphBuilder, NodeId};

/// Generates an undirected Barabási–Albert graph: nodes arrive one at a time
/// and attach `m` edges to existing nodes with probability proportional to
/// their current degree, producing a power-law degree distribution.
///
/// `m0 = m + 1` seed nodes form an initial clique.
pub fn barabasi_albert(n: usize, m: usize, weighted: bool, seed: u64) -> Graph {
    assert!(m >= 1, "attachment count m must be >= 1");
    assert!(n > m + 1, "need more nodes than the initial clique");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n * m);
    b.set_num_nodes(n);

    // Repeated-nodes trick: `targets` holds each node once per unit of degree,
    // so uniform sampling from it is degree-proportional sampling.
    let m0 = m + 1;
    let mut targets: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    for u in 0..m0 {
        for v in (u + 1)..m0 {
            let w = if weighted {
                rng.gen_range(0.5..2.0)
            } else {
                1.0
            };
            b.add_edge(u as NodeId, v as NodeId, w);
            targets.push(u as NodeId);
            targets.push(v as NodeId);
        }
    }

    for new_node in m0..n {
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 100 * m {
            guard += 1;
            let t = targets[rng.gen_range(0..targets.len())];
            if t != new_node as NodeId && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            let w = if weighted {
                rng.gen_range(0.5..2.0)
            } else {
                1.0
            };
            b.add_edge(new_node as NodeId, t, w);
            targets.push(new_node as NodeId);
            targets.push(t);
        }
    }
    b.symmetric(true).dedup(true).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeHistogram;

    #[test]
    fn node_and_edge_counts() {
        let n = 500;
        let m = 3;
        let g = barabasi_albert(n, m, false, 1);
        assert_eq!(g.num_nodes(), n);
        // clique edges + m per arriving node, times 2 for symmetry, minus dedup losses
        let expected_undirected = (m + 1) * m / 2 + (n - m - 1) * m;
        assert!(g.num_edges() <= 2 * expected_undirected);
        assert!(g.num_edges() as f64 >= 1.8 * expected_undirected as f64);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = barabasi_albert(2000, 2, false, 5);
        let max_d = g.max_degree();
        let mean_d = g.mean_degree();
        // Power-law graphs have hubs far above the mean.
        assert!(max_d as f64 > 8.0 * mean_d, "max {max_d} vs mean {mean_d}");
        let h = DegreeHistogram::compute(&g);
        assert!(h.buckets.len() >= 5);
    }

    #[test]
    fn minimum_degree_is_m() {
        let g = barabasi_albert(300, 4, false, 9);
        for v in 0..g.num_nodes() as NodeId {
            assert!(g.degree(v) >= 4, "node {v} degree {}", g.degree(v));
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = barabasi_albert(200, 2, true, 77);
        let b = barabasi_albert(200, 2, true, 77);
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    #[should_panic]
    fn too_few_nodes_panics() {
        let _ = barabasi_albert(3, 3, false, 0);
    }
}
