//! Planted-partition generator with ground-truth (multi-)labels.
//!
//! The node classification experiments of the paper (Figure 5) need datasets
//! where node labels correlate with structure (BlogCatalog, Flickr, Reddit,
//! AMiner). This generator plants `k` communities, wires nodes within a
//! community with probability `p_in` and across communities with `p_out`,
//! and emits per-node label sets: the primary label is the community, and with
//! probability `multi_label_prob` a node also carries a secondary label,
//! mimicking the multi-label nature of BlogCatalog/Flickr.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::Graph;
use crate::{GraphBuilder, NodeId};

/// Configuration of the planted-partition generator.
#[derive(Debug, Clone, Copy)]
pub struct PlantedPartitionConfig {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of planted communities (= number of labels).
    pub num_communities: usize,
    /// Expected intra-community degree per node.
    pub intra_degree: f64,
    /// Expected inter-community degree per node.
    pub inter_degree: f64,
    /// Probability that a node receives a second label.
    pub multi_label_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantedPartitionConfig {
    fn default() -> Self {
        PlantedPartitionConfig {
            num_nodes: 1000,
            num_communities: 10,
            intra_degree: 12.0,
            inter_degree: 3.0,
            multi_label_prob: 0.2,
            seed: 42,
        }
    }
}

/// A generated graph together with ground-truth labels.
#[derive(Debug, Clone)]
pub struct LabeledGraph {
    /// The graph itself.
    pub graph: Graph,
    /// `labels[v]` is the sorted list of labels of node `v`.
    pub labels: Vec<Vec<u32>>,
    /// Total number of distinct labels.
    pub num_labels: usize,
}

impl LabeledGraph {
    /// The community (primary label) of node `v`.
    pub fn primary_label(&self, v: NodeId) -> u32 {
        self.labels[v as usize][0]
    }
}

/// Generates a planted-partition labeled graph.
pub fn planted_partition(cfg: &PlantedPartitionConfig) -> LabeledGraph {
    assert!(cfg.num_communities >= 2, "need at least two communities");
    assert!(
        cfg.num_nodes >= cfg.num_communities * 2,
        "need at least 2 nodes per community"
    );
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = cfg.num_nodes;
    let k = cfg.num_communities;

    // Assign communities round-robin with a shuffle so ids are not clustered.
    let mut community: Vec<u32> = (0..n).map(|i| (i % k) as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        community.swap(i, j);
    }

    // Group members per community for intra-community edge sampling.
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for (v, &c) in community.iter().enumerate() {
        members[c as usize].push(v as NodeId);
    }

    let mut b = GraphBuilder::with_capacity(n * (cfg.intra_degree + cfg.inter_degree) as usize);
    b.set_num_nodes(n);

    let intra_edges = (n as f64 * cfg.intra_degree / 2.0) as usize;
    let inter_edges = (n as f64 * cfg.inter_degree / 2.0) as usize;

    for _ in 0..intra_edges {
        let c = rng.gen_range(0..k);
        let group = &members[c];
        if group.len() < 2 {
            continue;
        }
        let u = group[rng.gen_range(0..group.len())];
        let v = group[rng.gen_range(0..group.len())];
        if u != v {
            b.add_edge(u, v, 1.0);
        }
    }
    for _ in 0..inter_edges {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v && community[u as usize] != community[v as usize] {
            b.add_edge(u, v, 1.0);
        }
    }

    let graph = b.symmetric(true).dedup(true).build();

    let labels: Vec<Vec<u32>> = community
        .iter()
        .map(|&c| {
            let mut ls = vec![c];
            if rng.gen_bool(cfg.multi_label_prob) {
                let extra = rng.gen_range(0..k as u32);
                if extra != c {
                    ls.push(extra);
                }
            }
            ls.sort_unstable();
            ls
        })
        .collect();

    LabeledGraph {
        graph,
        labels,
        num_labels: k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size() {
        let cfg = PlantedPartitionConfig {
            num_nodes: 500,
            num_communities: 5,
            ..Default::default()
        };
        let lg = planted_partition(&cfg);
        assert_eq!(lg.graph.num_nodes(), 500);
        assert_eq!(lg.labels.len(), 500);
        assert_eq!(lg.num_labels, 5);
        lg.graph.validate().unwrap();
    }

    #[test]
    fn labels_within_range_and_sorted() {
        let cfg = PlantedPartitionConfig {
            num_nodes: 300,
            num_communities: 6,
            multi_label_prob: 0.5,
            ..Default::default()
        };
        let lg = planted_partition(&cfg);
        let mut multi = 0;
        for ls in &lg.labels {
            assert!(!ls.is_empty() && ls.len() <= 2);
            assert!(ls.windows(2).all(|w| w[0] < w[1]));
            assert!(ls.iter().all(|&l| (l as usize) < lg.num_labels));
            if ls.len() > 1 {
                multi += 1;
            }
        }
        assert!(
            multi > 30,
            "expected a good number of multi-label nodes, got {multi}"
        );
    }

    #[test]
    fn communities_are_assortative() {
        // Most edges should connect nodes sharing the primary label.
        let cfg = PlantedPartitionConfig {
            num_nodes: 1000,
            num_communities: 5,
            intra_degree: 16.0,
            inter_degree: 2.0,
            ..Default::default()
        };
        let lg = planted_partition(&cfg);
        let mut same = 0usize;
        let mut total = 0usize;
        for (u, v, _) in lg.graph.all_edges() {
            total += 1;
            if lg.primary_label(u) == lg.primary_label(v) {
                same += 1;
            }
        }
        let frac = same as f64 / total as f64;
        assert!(frac > 0.7, "intra-community edge fraction too low: {frac}");
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = PlantedPartitionConfig {
            seed: 123,
            ..Default::default()
        };
        let a = planted_partition(&cfg);
        let b = planted_partition(&cfg);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    }

    #[test]
    #[should_panic]
    fn too_few_communities_panics() {
        let cfg = PlantedPartitionConfig {
            num_communities: 1,
            ..Default::default()
        };
        let _ = planted_partition(&cfg);
    }
}
