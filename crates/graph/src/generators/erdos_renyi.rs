//! Erdős–Rényi G(n, m) random graph generator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::Graph;
use crate::{GraphBuilder, NodeId};

/// Generates an undirected Erdős–Rényi graph with `n` nodes and (approximately)
/// `m` undirected edges; self-loops are skipped and duplicates merged.
///
/// Edge weights are 1.0 unless `weighted` is set, in which case weights are
/// drawn uniformly from (0.5, 2.0).
pub fn erdos_renyi(n: usize, m: usize, weighted: bool, seed: u64) -> Graph {
    assert!(n >= 2, "need at least two nodes");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(m);
    b.set_num_nodes(n);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut added = 0usize;
    let mut attempts = 0usize;
    let max_attempts = m.saturating_mul(20).max(1000);
    while added < m && attempts < max_attempts {
        attempts += 1;
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u == v || !seen.insert((u.min(v), u.max(v))) {
            continue;
        }
        let w = if weighted {
            rng.gen_range(0.5..2.0)
        } else {
            1.0
        };
        b.add_edge(u, v, w);
        added += 1;
    }
    b.symmetric(true).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_node_count() {
        let g = erdos_renyi(100, 300, false, 42);
        assert_eq!(g.num_nodes(), 100);
        // dedup may drop a handful of duplicate edges
        assert!(g.num_edges() <= 600);
        assert!(g.num_edges() >= 500);
        assert!(g.is_unweighted());
    }

    #[test]
    fn weighted_variant_has_varied_weights() {
        let g = erdos_renyi(50, 200, true, 7);
        assert!(!g.is_unweighted());
        for v in 0..g.num_nodes() as NodeId {
            for &w in g.weights(v) {
                assert!(w > 0.0 && w < 4.1, "weight {w} out of range");
            }
        }
    }

    #[test]
    fn no_self_loops() {
        let g = erdos_renyi(60, 400, false, 3);
        for v in 0..g.num_nodes() as NodeId {
            assert!(!g.has_edge(v, v), "self loop at {v}");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let g1 = erdos_renyi(80, 200, true, 99);
        let g2 = erdos_renyi(80, 200, true, 99);
        assert_eq!(g1.num_edges(), g2.num_edges());
        for v in 0..80u32 {
            assert_eq!(g1.neighbors(v), g2.neighbors(v));
        }
    }

    #[test]
    #[should_panic]
    fn single_node_panics() {
        let _ = erdos_renyi(1, 5, false, 0);
    }
}
